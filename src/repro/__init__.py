"""repro — a reproduction of *"A Migratory Heterogeneity-Aware Data
Layout Scheme for Parallel File Systems"* (He, Sun, Wang, Xu; 2018).

The package rebuilds, in pure Python, the paper's full stack:

* :mod:`repro.core` — the MHA optimizer (cost model, request grouping,
  data reordering + DRT, RSSD stripe search + RST, placement,
  redirection, five-phase pipeline);
* :mod:`repro.schemes` — MHA plus the DEF/AAL/HARL comparison schemes;
* :mod:`repro.pfs`, :mod:`repro.mpiio`, :mod:`repro.devices`,
  :mod:`repro.network`, :mod:`repro.simulate` — the simulated testbed
  (hybrid OrangeFS-like PFS, MPI-IO middleware, HDD/SSD/GigE models,
  discrete-event engine);
* :mod:`repro.tracing`, :mod:`repro.kvstore` — the IOSIG-like tracer
  and the Berkeley-DB-like store backing the DRT/RST;
* :mod:`repro.workloads`, :mod:`repro.harness` — the paper's workloads
  (IOR, HPIO, BTIO, LANL, LU, Cholesky) and one entry point per
  evaluation figure.

Quick start::

    from repro import ClusterSpec, compare_schemes
    from repro.workloads import IORWorkload
    from repro.units import KiB, MiB

    spec = ClusterSpec()                 # 6 HServers + 2 SServers
    trace = IORWorkload(request_sizes=[128 * KiB, 256 * KiB],
                        total_size=32 * MiB).trace("write")
    result = compare_schemes(spec, trace)
    for name in result.ranking():
        print(name, f"{result.bandwidth(name) / MiB:.1f} MiB/s")
"""

from .cluster import ClusterSpec
from .core import MHAPipeline, MHAPlan, load_plan, verify_plan
from .harness import compare_schemes, run_scheme
from .pfs import (
    DataClient,
    HybridPFS,
    RunMetrics,
    migrate,
    replay_trace,
    run_workload,
    simulate_migration,
)
from .schemes import (
    AALScheme,
    DEFScheme,
    HARLScheme,
    MHAScheme,
    build_view,
    make_scheme,
    scheme_names,
)
from .tracing import IOCollector, Trace, TraceRecord

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "MHAPipeline",
    "MHAPlan",
    "load_plan",
    "verify_plan",
    "HybridPFS",
    "RunMetrics",
    "DataClient",
    "migrate",
    "simulate_migration",
    "replay_trace",
    "run_workload",
    "DEFScheme",
    "AALScheme",
    "HARLScheme",
    "MHAScheme",
    "make_scheme",
    "build_view",
    "scheme_names",
    "compare_schemes",
    "run_scheme",
    "Trace",
    "TraceRecord",
    "IOCollector",
    "__version__",
]

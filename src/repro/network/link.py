"""Network link model.

The paper's cluster interconnect is Gigabit Ethernet and its cost model
"assumes all servers offer the same network bandwidth": every byte a
server ships to a client costs the unit network transfer time ``t``
(Table I).  :class:`Link` captures exactly that — a serialization rate
plus a small per-message latency — and is instantiated once per server
NIC by the PFS simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import MiB

__all__ = ["Link", "GIGABIT_ETHERNET"]


@dataclass(frozen=True)
class Link:
    """A full-duplex point-to-point link with fixed serialization rate.

    Parameters
    ----------
    bandwidth:
        Payload bytes per second the link sustains.  Gigabit Ethernet's
        theoretical 125 MB/s lands near 117 MiB/s of payload after
        framing/TCP overheads.
    latency:
        One-way propagation + stack latency per message (seconds).
    """

    bandwidth: float = 117.0 * MiB
    latency: float = 0.05e-3
    name: str = "link"

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    @property
    def unit_transfer_time(self) -> float:
        """Table I ``t``: seconds to move one byte across the link."""
        return 1.0 / self.bandwidth

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move an ``nbytes`` message across the link."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes * self.unit_transfer_time


#: The paper's interconnect, ready to use.
GIGABIT_ETHERNET = Link(name="gige")

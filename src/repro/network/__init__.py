"""Network substrate: the per-server link model (Table I's ``t``)."""

from .link import GIGABIT_ETHERNET, Link

__all__ = ["Link", "GIGABIT_ETHERNET"]

"""FIFO resources for the discrete-event engine.

A storage server's disk and NIC are modelled as :class:`FIFOResource`
instances: work items are served one at a time in arrival order, each
occupying the resource for a caller-supplied duration.  This is the
standard single-channel queueing abstraction the paper's cost model
approximates analytically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..contracts import twin_of
from .engine import Completion, Simulator

__all__ = ["FIFOResource", "ServiceRecord"]


@dataclass(frozen=True)
class ServiceRecord:
    """Bookkeeping for one completed service on a resource."""

    arrival: float
    start: float
    finish: float
    duration: float
    tag: object = None

    @property
    def wait(self) -> float:
        """Queueing delay before service began."""
        return self.start - self.arrival


class FIFOResource:
    """A ``capacity``-channel FIFO queue with busy-until semantics.

    ``submit(duration)`` enqueues a work item that will occupy one
    channel for ``duration`` seconds once a channel frees up, and
    returns a :class:`~repro.simulate.engine.Completion` firing (with
    the :class:`ServiceRecord`) when service finishes.  ``capacity``
    models internal parallelism — a disk head is 1, a flash device's
    channel array is several.

    The implementation does not need explicit queue objects: because
    service is FIFO and non-preemptive, per-channel ``busy_until``
    watermarks fully determine each item's start time at submission;
    arrivals take the earliest-free channel.  :meth:`schedule` exposes
    the computed times synchronously for callers composing multi-stage
    pipelines (device then NIC), including a ``not_before`` lower bound
    on the start time.
    """

    def __init__(self, sim: Simulator, name: str = "", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._sim = sim
        self.name = name
        self.capacity = capacity
        self._tails = [0.0] * capacity
        #: total seconds of service performed (utilization numerator)
        self.busy_time = 0.0
        #: completed service count
        self.served = 0
        #: records of every service, in completion order (optional use)
        self.records: list[ServiceRecord] = []
        self.keep_records = False

    @property
    def busy_until(self) -> float:
        """Simulated time at which the current backlog fully drains."""
        return max(self._tails)

    def schedule(
        self, duration: float, not_before: float = 0.0, tag: object = None
    ) -> tuple[ServiceRecord, Completion]:
        """Enqueue a work item; returns its (record, completion).

        The record's ``start``/``finish`` are already final (FIFO,
        non-preemptive), so multi-stage callers can chain stages
        without waiting.
        """
        if duration < 0:
            raise ValueError(f"service duration must be >= 0, got {duration}")
        now = self._sim.now
        channel = min(range(self.capacity), key=self._tails.__getitem__)
        start = max(now, not_before, self._tails[channel])
        finish = start + duration
        self._tails[channel] = finish
        self.busy_time += duration
        self.served += 1
        record = ServiceRecord(
            arrival=now, start=start, finish=finish, duration=duration, tag=tag
        )
        if self.keep_records:
            self.records.append(record)
        done = Completion()
        self._sim.schedule_at(finish, lambda: done.fire(record))
        return record, done

    @twin_of(
        "repro.simulate.resources:FIFOResource.schedule",
        twin_only=("now",),
        harness="fifo_schedule",
    )
    def schedule_flat(
        self, now: float, duration: float, not_before: float = 0.0, tag: object = None
    ) -> float:
        """Queue-tail arithmetic twin of :meth:`schedule`.

        Identical bookkeeping (tails, busy time, served count, optional
        service records) and identical start/finish arithmetic, but no
        :class:`Completion` and no heap event: the finish time is
        returned directly.  ``now`` is the caller-maintained clock —
        the flat replay kernel (:mod:`repro.pfs.flat`) advances time
        itself and only moves the simulator clock at the end.
        """
        if duration < 0:
            raise ValueError(f"service duration must be >= 0, got {duration}")
        tails = self._tails
        if self.capacity == 1:
            channel = 0
        else:
            channel = min(range(self.capacity), key=tails.__getitem__)
        start = max(now, not_before, tails[channel])
        finish = start + duration
        tails[channel] = finish
        self.busy_time += duration
        self.served += 1
        if self.keep_records:
            self.records.append(
                ServiceRecord(
                    arrival=now, start=start, finish=finish, duration=duration, tag=tag
                )
            )
        return finish

    def submit(self, duration: float, tag: object = None) -> Completion:
        """Enqueue a work item; returns a completion for its finish."""
        _, done = self.schedule(duration, tag=tag)
        return done

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this resource spent serving."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def reset_stats(self) -> None:
        """Clear accumulated statistics (not the busy watermark)."""
        self.busy_time = 0.0
        self.served = 0
        self.records.clear()

"""Deterministic discrete-event simulation engine (substrate).

See :mod:`repro.simulate.engine` for the event loop and process model
and :mod:`repro.simulate.resources` for FIFO queueing resources.
"""

from .engine import AllOf, Completion, Event, Process, Simulator, Waitable
from .resources import FIFOResource, ServiceRecord

__all__ = [
    "AllOf",
    "Completion",
    "Event",
    "Process",
    "Simulator",
    "Waitable",
    "FIFOResource",
    "ServiceRecord",
]

"""A small deterministic discrete-event simulation engine.

The parallel-file-system simulator in :mod:`repro.pfs` is built on this
engine.  It is intentionally minimal: a binary-heap event queue keyed by
``(time, sequence)`` so that events scheduled at the same instant fire
in FIFO order, which makes every simulation fully deterministic.

Two programming styles are supported:

* **callback events** via :meth:`Simulator.schedule` /
  :meth:`Simulator.schedule_at`;
* **generator processes** via :meth:`Simulator.spawn`.  A process is a
  Python generator that yields either a delay (``float`` seconds) or a
  :class:`Waitable` (e.g. :class:`Completion`), and is resumed when the
  delay elapses or the waitable fires.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable

from ..exceptions import SimulationError

__all__ = ["Event", "Completion", "Waitable", "Simulator", "Process"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, seq)`` for determinism."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # back-reference so cancel() can keep the owning simulator's live
    # event count exact without an O(heap) scan
    owner: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Prevent the callback from running when the event is popped."""
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._event_cancelled()


class Waitable:
    """Something a process can ``yield`` on: fires once, resumes waiters."""

    __slots__ = ("_fired", "_value", "_waiters")

    def __init__(self) -> None:
        self._fired = False
        self._value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        """Whether :meth:`fire` has been called."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value passed to :meth:`fire` (``None`` before firing)."""
        return self._value

    def fire(self, value: Any = None) -> None:
        """Mark the waitable complete and resume all waiters in order."""
        if self._fired:
            raise SimulationError("Waitable fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    def add_waiter(self, fn: Callable[[Any], None]) -> None:
        """Register ``fn`` to run on fire; runs immediately if already fired."""
        if self._fired:
            fn(self._value)
        else:
            self._waiters.append(fn)


class Completion(Waitable):
    """A :class:`Waitable` representing the completion of one operation.

    Carries an optional ``result`` payload (set by :meth:`Waitable.fire`).
    """


class AllOf(Waitable):
    """Fires when all child waitables have fired.

    The fire value is the list of child values in input order.  Useful
    for a process that issues several sub-operations and must wait for
    the slowest one — exactly the "a file request completes when its
    slowest sub-request completes" semantics of parallel file systems.
    """

    def __init__(self, children: Iterable[Waitable]) -> None:
        super().__init__()
        self._children = list(children)
        self._pending = len(self._children)
        if self._pending == 0:
            self.fire([])
            return
        for child in self._children:
            child.add_waiter(self._child_done)

    def _child_done(self, _value: Any) -> None:
        self._pending -= 1
        if self._pending == 0:
            self.fire([c.value for c in self._children])


ProcessGen = Generator[Any, Any, None]


class Process:
    """Drives a generator through the simulator.

    The generator yields:

    * a non-negative ``float``/``int`` — sleep that many simulated
      seconds;
    * a :class:`Waitable` — resume (with its value) when it fires.

    When the generator returns, :attr:`done` fires with the value of a
    ``return`` statement (``StopIteration.value``).
    """

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self._sim = sim
        self._gen = gen
        self.name = name
        self.done = Completion()
        # bind the resume callbacks once; a per-resume lambda/bound-method
        # allocation on every yield is pure overhead
        self._on_fire = self._step
        self._on_delay = self._resume_from_delay
        self._step(None)

    def _resume_from_delay(self) -> None:
        self._step(None)

    def _step(self, send_value: Any) -> None:
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.done.fire(stop.value)
            return
        if isinstance(yielded, Waitable):
            yielded.add_waiter(self._on_fire)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {yielded}"
                )
            self._sim.schedule(float(yielded), self._on_delay)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {yielded!r}; expected a "
                "delay or a Waitable"
            )


class Simulator:
    """Deterministic event-heap simulator with a floating-point clock."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._pending = 0  # live (scheduled, not cancelled, not run) events

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past ({time} < {self._now})"
            )
        event = Event(time, next(self._seq), callback, owner=self)
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def _event_cancelled(self) -> None:
        self._pending -= 1

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator process; returns its :class:`Process` handle."""
        return Process(self, gen, name=name)

    def all_of(self, waitables: Iterable[Waitable]) -> AllOf:
        """Convenience constructor for :class:`AllOf`."""
        return AllOf(waitables)

    def run(self, until: float | None = None) -> float:
        """Run events until the heap drains (or ``until`` is reached).

        Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._pending -= 1
                self._now = event.time
                event.callback()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def advance_to(self, time: float) -> float:
        """Move the clock to ``time`` without processing any events.

        Used by the flat replay kernel (:mod:`repro.pfs.flat`), which
        computes every completion time arithmetically and only needs
        the clock placed at the end of the replay.  Refuses to move
        backwards or to skip over scheduled work.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance to the past ({time} < {self._now})"
            )
        if self._pending:
            raise SimulationError(
                f"advance_to({time}) would skip {self._pending} pending event(s)"
            )
        self._now = time
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._pending

"""Persistent key-value substrate (the paper's Berkeley DB role)."""

from .cache import LRUCache
from .hashdb import HashDB

__all__ = ["HashDB", "LRUCache"]

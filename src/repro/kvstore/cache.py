"""LRU cache of hot entries.

§IV-A: "To reduce the size of the in-memory reordering table for
efficient lookup, we use a list to maintain frequently accessed
reordering entries."  :class:`LRUCache` is that list: bounded, with
recency-ordered eviction, fronting the persistent :class:`HashDB`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache(Generic[K, V]):
    """A fixed-capacity least-recently-used cache."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: K, default: V | None = None) -> V | None:
        """Fetch and refresh recency; counts hit/miss statistics."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert/refresh ``key``; evicts the LRU entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def invalidate(self, key: K) -> bool:
        """Drop ``key`` if cached; returns whether it was present."""
        return self._data.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

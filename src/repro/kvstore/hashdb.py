"""A file-backed hash key-value store (the paper's Berkeley DB role).

The DRT and RST are "implemented as a database file stored in the same
directory as the MPI program", configured as a hash table of key-value
records, with in-memory changes "synchronously written to the storage
in order to survive power failures" (§IV-A).  :class:`HashDB`
reproduces those properties:

* an in-memory hash table for lookups;
* an append-only on-disk log, flushed + fsynced per mutation when
  ``sync=True`` (the paper's durability mode);
* crash recovery by log replay on open, tolerating a torn final record;
* explicit :meth:`compact` to rewrite the log without superseded
  entries.

Keys and values are ``bytes``; higher layers (``repro.core.drt`` /
``rst``) define the encodings.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

from ..exceptions import KVStoreError

__all__ = ["HashDB"]

_MAGIC = b"RKV1"
# record: crc32(u32) keylen(u32) vallen(i32, -1 = tombstone) key val
_HEADER = struct.Struct("<IIi")


class HashDB:
    """Persistent hash table with synchronous write-through.

    Usable as a context manager; supports ``db[key]``, ``key in db``,
    ``len(db)`` and iteration over keys.
    """

    def __init__(self, path: str | Path, sync: bool = True) -> None:
        self.path = Path(path)
        self.sync = sync
        self._table: dict[bytes, bytes] = {}
        self._fh = None
        self._open()

    # -- lifecycle -----------------------------------------------------

    def _open(self) -> None:
        exists = self.path.exists()
        if exists:
            self._replay()
            self._fh = open(self.path, "ab")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
            self._fh.write(_MAGIC)
            self._flush()

    def _replay(self) -> None:
        data = self.path.read_bytes()
        if len(data) < len(_MAGIC) or data[: len(_MAGIC)] != _MAGIC:
            raise KVStoreError(f"{self.path}: not a HashDB file")
        pos = len(_MAGIC)
        table: dict[bytes, bytes] = {}
        while pos < len(data):
            if pos + _HEADER.size > len(data):
                break  # torn trailing record: drop it
            crc, keylen, vallen = _HEADER.unpack_from(data, pos)
            body_len = keylen + max(vallen, 0)
            end = pos + _HEADER.size + body_len
            if end > len(data):
                break  # torn record body
            body = data[pos + _HEADER.size : end]
            if zlib.crc32(body) != crc:
                break  # corrupt tail; everything before it is intact
            key = body[:keylen]
            if vallen < 0:
                table.pop(key, None)
            else:
                table[key] = body[keylen:]
            pos = end
        self._table = table

    def close(self) -> None:
        """Flush and close the log file; further mutation raises."""
        if self._fh is not None:
            self._flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "HashDB":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- mutation ------------------------------------------------------

    def _append(self, key: bytes, value: bytes | None) -> None:
        if self._fh is None:
            raise KVStoreError("HashDB is closed")
        if value is None:
            body = key
            header = _HEADER.pack(zlib.crc32(body), len(key), -1)
        else:
            body = key + value
            header = _HEADER.pack(zlib.crc32(body), len(key), len(value))
        self._fh.write(header)
        self._fh.write(body)
        self._flush()

    def _flush(self) -> None:
        assert self._fh is not None
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``; durable before returning."""
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise KVStoreError("HashDB keys and values must be bytes")
        self._append(key, value)
        self._table[key] = value

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        """Fetch ``key`` or ``default``."""
        return self._table.get(key, default)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it existed."""
        if key not in self._table:
            return False
        self._append(key, None)
        del self._table[key]
        return True

    def compact(self) -> None:
        """Rewrite the log keeping only live entries (atomic rename)."""
        if self._fh is None:
            raise KVStoreError("HashDB is closed")
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        with open(tmp, "wb") as out:
            out.write(_MAGIC)
            for key, value in self._table.items():
                body = key + value
                out.write(_HEADER.pack(zlib.crc32(body), len(key), len(value)))
                out.write(body)
            out.flush()
            os.fsync(out.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")

    # -- mapping protocol ----------------------------------------------

    def __getitem__(self, key: bytes) -> bytes:
        try:
            return self._table[key]
        except KeyError:
            raise KVStoreError(f"key not found: {key!r}") from None

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self.put(key, value)

    def __contains__(self, key: object) -> bool:
        return key in self._table

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._table)

    def items(self):
        """Live ``(key, value)`` pairs."""
        return self._table.items()

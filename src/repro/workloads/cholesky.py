"""Sparse Cholesky factorization trace model (§V-D).

The application "stores the matrix as panels rather than blocks and
conducts synchronous I/O accesses ... The read request size ranges
from 2 bytes to 4206976 bytes, and write size ranges from 131556 bytes
to 4206976 bytes", with "a small number of large requests" — the
request-size distribution is highly skewed, which is why the paper's
Fig. 13b bandwidths are the lowest of the trace studies.

We model panel accesses with a seeded log-uniform size distribution
between the paper's exact bounds (log-uniform gives the many-small /
few-large skew sparse panels exhibit), clipped to the bounds, 8 clients
against per-process files, reads and writes interleaved per panel.
"""

from __future__ import annotations

import numpy as np

from ..determinism import SeedDomain, derive_rng
from ..devices.base import READ, WRITE
from ..exceptions import ConfigurationError
from ..tracing.record import Trace
from .base import TraceBuilder, Workload

__all__ = ["CholeskyWorkload", "READ_BOUNDS", "WRITE_BOUNDS"]

#: (min, max) request sizes from the paper
READ_BOUNDS = (2, 4206976)
WRITE_BOUNDS = (131556, 4206976)


class CholeskyWorkload(Workload):
    """Skewed panel-sized reads/writes over per-process files."""

    name = "Cholesky"

    def __init__(
        self,
        num_processes: int = 8,
        panels: int = 24,
        seed: int = 7,
        file_prefix: str = "cholesky",
    ) -> None:
        if num_processes <= 0 or panels <= 0:
            raise ConfigurationError("num_processes and panels must be >= 1")
        self.num_processes = num_processes
        self.panels = panels
        self.seed = seed
        self.file_prefix = file_prefix

    def file_for(self, rank: int) -> str:
        return f"{self.file_prefix}.{rank}.dat"

    def _sizes(self, bounds: tuple[int, int], count: int, rng) -> np.ndarray:
        lo, hi = bounds
        sizes = np.exp(rng.uniform(np.log(lo), np.log(hi), size=count))
        return np.clip(np.round(sizes).astype(np.int64), lo, hi)

    def trace(self, op: str | None = None) -> Trace:
        builder = TraceBuilder()
        rng = derive_rng(SeedDomain.CHOLESKY, base=self.seed)
        # one size schedule shared by all ranks per panel keeps phases
        # aligned (the solver's panels are global); bounds are exact
        read_sizes = self._sizes(READ_BOUNDS, self.panels, rng)
        write_sizes = self._sizes(WRITE_BOUNDS, self.panels, rng)
        # guarantee the paper's extremes appear in the trace
        if self.panels >= 2:
            read_sizes[0], read_sizes[-1] = READ_BOUNDS
            write_sizes[0], write_sizes[-1] = WRITE_BOUNDS
        read_cursor = [0] * self.num_processes
        write_cursor = [0] * self.num_processes
        phase = 0
        for panel in range(self.panels):
            if op in (None, READ):
                size = int(read_sizes[panel])
                for rank in range(self.num_processes):
                    builder.add(
                        rank, READ, read_cursor[rank], size,
                        phase=phase, file=self.file_for(rank),
                    )
                    read_cursor[rank] += size
                phase += 1
            if op in (None, WRITE):
                size = int(write_sizes[panel])
                for rank in range(self.num_processes):
                    builder.add(
                        rank, WRITE, write_cursor[rank], size,
                        phase=phase, file=self.file_for(rank),
                    )
                    write_cursor[rank] += size
                phase += 1
        return builder.build()

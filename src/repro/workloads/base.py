"""Workload-generation helpers shared by every benchmark/application model.

A workload emits a :class:`~repro.tracing.record.Trace`.  Generators
structure time as **phases**: within a phase every participating rank
issues one request "simultaneously" (timestamps a hair apart so
ordering stays deterministic), and consecutive phases are separated by
a gap far larger than the phase-detection threshold — which is exactly
how bulk-synchronous HPC applications behave and what makes the
concurrency feature recoverable from the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.base import OpType
from ..tracing.columnar import ColumnarTrace, as_columnar_trace
from ..tracing.record import Trace, TraceRecord

__all__ = ["TraceBuilder", "PHASE_GAP", "Workload"]

#: inter-phase time gap (trace time units); >> the analysis gap of 0.5
PHASE_GAP = 10.0
#: intra-phase stagger between ranks, small enough to stay in one phase
_RANK_STAGGER = 1e-4


@dataclass
class TraceBuilder:
    """Accumulates records phase by phase."""

    file: str = "file"
    records: list[TraceRecord] = field(default_factory=list)
    _phase: int = 0

    def add(
        self,
        rank: int,
        op: OpType,
        offset: int,
        size: int,
        *,
        phase: int | None = None,
        file: str | None = None,
    ) -> None:
        """Record one request in the given (or current) phase."""
        phase_idx = self._phase if phase is None else phase
        self.records.append(
            TraceRecord(
                offset=offset,
                timestamp=phase_idx * PHASE_GAP + rank * _RANK_STAGGER,
                rank=rank,
                pid=rank,
                file=self.file if file is None else file,
                op=op,
                size=size,
            )
        )

    def next_phase(self) -> int:
        """Advance to the next phase; returns the new phase index."""
        self._phase += 1
        return self._phase

    @property
    def phase(self) -> int:
        return self._phase

    def build(self, sort_by_offset: bool = False) -> Trace:
        """The accumulated trace (issue order by default)."""
        trace = Trace(self.records)
        return trace.sorted_by_offset() if sort_by_offset else trace


class Workload:
    """Base class for workload generators.

    Subclasses implement :meth:`trace` returning the request stream of
    one run.  ``name`` identifies the workload in reports.
    """

    name: str = "workload"

    def trace(self, op: OpType = "write") -> Trace:  # pragma: no cover - abstract
        raise NotImplementedError

    def columnar(self, *args: "OpType | None") -> ColumnarTrace:
        """This workload's trace on the columnar spine.

        Generators with a vectorized fast path override this to build
        the structured array directly via
        :meth:`~repro.tracing.columnar.ColumnarTrace.from_columns`;
        the default converts the record trace, so every workload can
        feed the columnar figure path.  Either way the result equals
        ``as_columnar_trace(self.trace(*args))`` record for record —
        arguments pass through untouched so each generator's own
        ``trace`` defaults (``"write"`` for most, ``None`` = full mixed
        trace for checkpoint/LU-style workloads) keep applying.
        """
        return as_columnar_trace(self.trace(*args))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

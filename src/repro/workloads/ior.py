"""IOR-like workload generator (LLNL's parallel-FS micro-benchmark).

Three modes match the paper's IOR experiments:

* **uniform** — every process issues requests of one size to a shared
  file (baseline IOR behaviour, §V-A: 16 processes, 64 KB default);
* **mixed sizes** (Fig. 7) — "the process number is fixed to 32 and
  each process issues random requests at multiple sizes to access a
  16 GB file"; request sizes alternate over the configured set at
  randomized non-overlapping file locations;
* **mixed process numbers** (Fig. 9) — "IOR sends requests at different
  parts of the file with 8 and 32 processes respectively": the file is
  split into one segment per process-count, each segment driven by its
  own process group at a fixed request size.

``total_size`` defaults far below the paper's 16 GB so simulated runs
finish in milliseconds of wall time; every comparison is
volume-normalized (bandwidth), so the shape of the results does not
depend on it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..determinism import SeedDomain, derive_rng
from ..devices.base import OpType
from ..exceptions import ConfigurationError
from ..tracing.columnar import ColumnarTrace
from ..tracing.record import Trace
from ..units import KiB, MiB
from .base import PHASE_GAP, _RANK_STAGGER, TraceBuilder, Workload

__all__ = ["IORWorkload", "IORMixedProcsWorkload"]


class IORWorkload(Workload):
    """Shared-file IOR with one or several request sizes.

    Parameters
    ----------
    num_processes:
        Ranks issuing I/O (paper default for Fig. 7: 32).
    request_sizes:
        One or more request sizes; several sizes produce the paper's
        heterogeneous "x+y" configurations.
    total_size:
        Total bytes moved per run (scaled down from the paper's 16 GB).
    randomize_offsets:
        Shuffle which file location receives which request size
        (the "random requests at multiple sizes" of §V-B); offsets
        never overlap either way.
    seed:
        RNG seed for the shuffle.
    """

    name = "IOR"

    def __init__(
        self,
        num_processes: int = 32,
        request_sizes: Sequence[int] | int = 64 * KiB,
        total_size: int = 64 * MiB,
        randomize_offsets: bool = True,
        seed: int = 0,
        file: str = "ior.dat",
    ) -> None:
        if isinstance(request_sizes, int):
            request_sizes = [request_sizes]
        if not request_sizes or any(s <= 0 for s in request_sizes):
            raise ConfigurationError(f"bad request sizes: {request_sizes}")
        if num_processes <= 0:
            raise ConfigurationError("num_processes must be >= 1")
        self.num_processes = num_processes
        self.request_sizes = [int(s) for s in request_sizes]
        self.total_size = int(total_size)
        self.randomize_offsets = randomize_offsets
        self.seed = seed
        self.file = file

    def _plan_requests(self) -> list[tuple[int, int]]:
        """Non-overlapping (offset, size) slots alternating over the sizes."""
        slots: list[tuple[int, int]] = []
        offset = 0
        idx = 0
        sizes = self.request_sizes
        while offset + sizes[idx % len(sizes)] <= self.total_size:
            size = sizes[idx % len(sizes)]
            slots.append((offset, size))
            offset += size
            idx += 1
        if not slots:
            raise ConfigurationError(
                "total_size too small for even one request"
            )
        if self.randomize_offsets:
            rng = derive_rng(SeedDomain.IOR, base=self.seed)
            # shuffle which slot is issued when, keeping slots disjoint
            order = rng.permutation(len(slots))
            slots = [slots[i] for i in order]
        return slots

    def trace(self, op: OpType = "write") -> Trace:
        builder = TraceBuilder(file=self.file)
        slots = self._plan_requests()
        P = self.num_processes
        for phase_start in range(0, len(slots), P):
            batch = slots[phase_start : phase_start + P]
            for rank, (offset, size) in enumerate(batch):
                builder.add(rank, op, offset, size)
            builder.next_phase()
        return builder.build()

    def columnar(self, op: OpType = "write") -> ColumnarTrace:
        """Columnar-native :meth:`trace`: same requests, no records.

        The slot plan (including the seeded shuffle) is shared with the
        record path, so the two emit identical request streams; only
        the materialization differs.
        """
        slots = np.asarray(self._plan_requests(), dtype=np.int64)
        idx = np.arange(len(slots))
        ranks = idx % self.num_processes
        phases = idx // self.num_processes
        timestamps = phases * PHASE_GAP + ranks * _RANK_STAGGER
        return ColumnarTrace.from_columns(
            offsets=slots[:, 0],
            timestamps=timestamps,
            ranks=ranks,
            sizes=slots[:, 1],
            ops=op,
            files=self.file,
            pids=ranks,
        )

    def label(self) -> str:
        """The paper's "x+y" figure label for this configuration."""
        return "+".join(str(s // KiB) for s in self.request_sizes)


class IORMixedProcsWorkload(Workload):
    """IOR with different process counts at different file parts (Fig. 9)."""

    name = "IOR-procs"

    def __init__(
        self,
        process_groups: Sequence[int] = (8, 32),
        request_size: int = 256 * KiB,
        bytes_per_group: int = 32 * MiB,
        file: str = "ior.dat",
    ) -> None:
        if not process_groups or any(p <= 0 for p in process_groups):
            raise ConfigurationError(f"bad process groups: {process_groups}")
        if request_size <= 0:
            raise ConfigurationError("request_size must be > 0")
        self.process_groups = [int(p) for p in process_groups]
        self.request_size = int(request_size)
        self.bytes_per_group = int(bytes_per_group)
        self.file = file

    def trace(self, op: OpType = "write") -> Trace:
        builder = TraceBuilder(file=self.file)
        segment_base = 0
        rank_base = 0
        size = self.request_size
        per_group = (self.bytes_per_group // size) * size
        for procs in self.process_groups:
            offset = segment_base
            count = per_group // size
            phase = 0
            for i in range(count):
                rank = rank_base + (i % procs)
                builder.add(rank, op, offset, size, phase=phase)
                offset += size
                if (i + 1) % procs == 0:
                    phase += 1
            segment_base += per_group
            rank_base += procs
            builder._phase = max(builder._phase, phase)
        return builder.build()

    def columnar(self, op: OpType = "write") -> ColumnarTrace:
        """Columnar-native :meth:`trace` over every process group."""
        size = self.request_size
        per_group = (self.bytes_per_group // size) * size
        count = per_group // size
        offset_parts: list[np.ndarray] = []
        rank_parts: list[np.ndarray] = []
        phase_parts: list[np.ndarray] = []
        segment_base = 0
        rank_base = 0
        for procs in self.process_groups:
            i = np.arange(count)
            offset_parts.append(segment_base + i * size)
            rank_parts.append(rank_base + i % procs)
            phase_parts.append(i // procs)
            segment_base += per_group
            rank_base += procs
        offsets = np.concatenate(offset_parts)
        ranks = np.concatenate(rank_parts)
        phases = np.concatenate(phase_parts)
        timestamps = phases * PHASE_GAP + ranks * _RANK_STAGGER
        return ColumnarTrace.from_columns(
            offsets=offsets,
            timestamps=timestamps,
            ranks=ranks,
            sizes=np.full(offsets.size, size, dtype=np.int64),
            ops=op,
            files=self.file,
            pids=ranks,
        )

    def label(self) -> str:
        """The paper's "a+b" process-count label."""
        return "+".join(str(p) for p in self.process_groups)

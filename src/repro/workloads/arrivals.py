"""Seeded open-arrival rewrites: Poisson traffic from closed generators.

Every generator in this package emits bulk-synchronous *phase* time
(:data:`~repro.workloads.base.PHASE_GAP` between phases, ranks a hair
apart within one).  A multi-tenant service instead sees an **open**
request stream per tenant: requests arrive on their own clock whether
or not earlier ones finished.  :class:`OpenArrivalWorkload` bridges the
two without touching any generator — it wraps a workload and rewrites
the timestamps of its time-ordered trace onto a seeded Poisson arrival
process (exponential inter-arrival gaps at a target ``rate``, plus an
optional uniformly jittered start offset so tenants launched together
do not phase-lock).

Determinism contract: tenant ``k`` passes ``stream=k`` and the rewrite
draws from ``derive_rng(SeedDomain.ARRIVALS, stream, base=seed)`` (the
central lineage registry of :mod:`repro.determinism`), so each
tenant's arrival stream is independent of every other's — and of every
fault/sampling stream — yet byte-reproducible on any worker process.  Record *order* is preserved — arrival times are a
strictly increasing rewrite of the ``sorted_by_time`` order — which is
what lets premapped per-file request runs survive the rewrite.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..config import DEFAULT_ARRIVAL_SEED
from ..determinism import SeedDomain, derive_rng
from ..devices.base import OpType
from ..exceptions import TraceError
from ..tracing.record import Trace
from .base import Workload

__all__ = ["OpenArrivalWorkload", "poisson_arrival_times"]


def poisson_arrival_times(
    n: int,
    rate: float,
    *,
    start: float = 0.0,
    jitter: float = 0.0,
    seed: int = DEFAULT_ARRIVAL_SEED,
    stream: int = 0,
) -> list[float]:
    """``n`` strictly increasing Poisson arrival times.

    Exponential inter-arrival gaps with mean ``1 / rate``, beginning at
    ``start`` plus a ``U[0, jitter)`` launch offset.  The generator is
    derived from ``(SeedDomain.ARRIVALS, stream)`` under the ``seed``
    root, so distinct streams are independent and each is reproducible
    in isolation.
    """
    if rate <= 0.0:
        raise TraceError(f"arrival rate must be > 0, got {rate}")
    if jitter < 0.0:
        raise TraceError(f"jitter must be >= 0, got {jitter}")
    rng = derive_rng(SeedDomain.ARRIVALS, stream, base=seed)
    offset = start + (float(rng.uniform(0.0, jitter)) if jitter > 0.0 else 0.0)
    times = offset + np.cumsum(rng.exponential(1.0 / rate, n))
    return [float(t) for t in times]


class OpenArrivalWorkload(Workload):
    """Wrap a workload, replaying its requests on a Poisson clock.

    ``rate`` is the mean arrival rate (requests per simulated second);
    ``start``/``jitter`` place the tenant's first request at
    ``start + U[0, jitter)`` plus the first exponential gap.  The
    wrapped trace is taken in ``sorted_by_time`` order and re-stamped,
    so every within-rank (and within-tenant) ordering is preserved —
    only the pacing changes.  Combine with
    ``replay_trace(..., open_arrivals=True)`` to honour the new clock.
    """

    def __init__(
        self,
        inner: Workload,
        rate: float,
        *,
        start: float = 0.0,
        jitter: float = 0.0,
        seed: int = DEFAULT_ARRIVAL_SEED,
        stream: int = 0,
    ) -> None:
        if rate <= 0.0:
            raise TraceError(f"arrival rate must be > 0, got {rate}")
        if jitter < 0.0:
            raise TraceError(f"jitter must be >= 0, got {jitter}")
        self.inner = inner
        self.rate = rate
        self.start = start
        self.jitter = jitter
        self.seed = seed
        self.stream = stream

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"open({self.inner.name})"

    def trace(self, op: OpType = "write") -> Trace:
        ordered = self.inner.trace(op).sorted_by_time()
        times = poisson_arrival_times(
            len(ordered),
            self.rate,
            start=self.start,
            jitter=self.jitter,
            seed=self.seed,
            stream=self.stream,
        )
        return Trace(
            replace(record, timestamp=t) for record, t in zip(ordered, times)
        )

    def __repr__(self) -> str:
        return (
            f"OpenArrivalWorkload({self.inner!r}, rate={self.rate}, "
            f"stream={self.stream})"
        )

"""LANL anonymous-application trace model (Fig. 3 / §V-D).

The paper analyzes the LANL "Anonymous App2" I/O trace: "For each loop
in the application, there are three I/O operations, one small request
with 16 bytes, and followed by two large requests with 128K-16 bytes
and 128 KB" — and the same-size requests recur *across* loops rather
than consecutively, which is exactly the heterogeneity MHA's reordering
groups together.

The generator reproduces that loop structure over a shared file: each
process owns a contiguous area; in loop ``i`` it issues the three
requests back-to-back within its area, and all processes run their
loops in lock-step phases.
"""

from __future__ import annotations

from ..devices.base import OpType
from ..exceptions import ConfigurationError
from ..tracing.record import Trace
from ..units import KiB
from .base import TraceBuilder, Workload

__all__ = ["LANLWorkload", "LOOP_PATTERN"]

#: request sizes of one application loop (Fig. 3)
LOOP_PATTERN: tuple[int, ...] = (16, 128 * KiB - 16, 128 * KiB)


class LANLWorkload(Workload):
    """The 16 B / 128K−16 B / 128 KB loop of the LANL trace."""

    name = "LANL"

    def __init__(
        self,
        num_processes: int = 8,
        loops: int = 64,
        file: str = "lanl.dat",
    ) -> None:
        if num_processes <= 0 or loops <= 0:
            raise ConfigurationError("num_processes and loops must be >= 1")
        self.num_processes = num_processes
        self.loops = loops
        self.file = file

    @property
    def bytes_per_loop(self) -> int:
        return sum(LOOP_PATTERN)

    @property
    def area_size(self) -> int:
        """Bytes each process's file area spans."""
        return self.loops * self.bytes_per_loop

    def request_sequence(self) -> list[int]:
        """One process's request sizes in issue order (regenerates Fig. 3)."""
        return list(LOOP_PATTERN) * self.loops

    def trace(self, op: OpType = "write") -> Trace:
        builder = TraceBuilder(file=self.file)
        for loop in range(self.loops):
            for part, size in enumerate(LOOP_PATTERN):
                # one phase per request slot: all processes issue the
                # same-shaped request simultaneously
                phase = loop * len(LOOP_PATTERN) + part
                for rank in range(self.num_processes):
                    offset = (
                        rank * self.area_size
                        + loop * self.bytes_per_loop
                        + sum(LOOP_PATTERN[:part])
                    )
                    builder.add(rank, op, offset, size, phase=phase)
        return builder.build()

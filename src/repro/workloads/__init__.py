"""Workload generators reproducing the paper's benchmarks and traces."""

from .arrivals import OpenArrivalWorkload, poisson_arrival_times
from .base import PHASE_GAP, TraceBuilder, Workload
from .btio import BTIOWorkload, CLASS_TOTALS
from .checkpoint import CheckpointWorkload
from .cholesky import READ_BOUNDS, WRITE_BOUNDS, CholeskyWorkload
from .hpio import HPIOWorkload
from .ior import IORMixedProcsWorkload, IORWorkload
from .lanl import LANLWorkload, LOOP_PATTERN
from .lu import LUWorkload, MAX_READ, MIN_READ, WRITE_SIZE

__all__ = [
    "Workload",
    "TraceBuilder",
    "PHASE_GAP",
    "OpenArrivalWorkload",
    "poisson_arrival_times",
    "IORWorkload",
    "IORMixedProcsWorkload",
    "HPIOWorkload",
    "BTIOWorkload",
    "CLASS_TOTALS",
    "CheckpointWorkload",
    "LANLWorkload",
    "LOOP_PATTERN",
    "LUWorkload",
    "WRITE_SIZE",
    "MIN_READ",
    "MAX_READ",
    "CholeskyWorkload",
    "READ_BOUNDS",
    "WRITE_BOUNDS",
]

"""HPIO-like workload generator (Northwestern/Sandia's benchmark).

HPIO is parameterized by *region count*, *region spacing* and *region
size*; each process owns an interleaved sequence of regions and
accesses them in order.  The paper's configuration (§V-B): region
count 4096, spacing 0, region sizes mixed over {16 KB, 32 KB, 64 KB}
to generate heterogeneous patterns, with 16–64 processes.
"""

from __future__ import annotations

from typing import Sequence

from ..devices.base import OpType
from ..exceptions import ConfigurationError
from ..tracing.record import Trace
from ..units import KiB
from .base import TraceBuilder, Workload

__all__ = ["HPIOWorkload"]


class HPIOWorkload(Workload):
    """Structured regions, one interleaved stream per process.

    The file is a sequence of *groups*; group ``g`` holds one region
    per process (process ``p``'s region ``g`` comes ``p``-th in the
    group, regions separated by ``region_spacing``).  Every process
    touches its region in group order, all processes in lock-step
    phases — HPIO's canonical access pattern.  The region size cycles
    through ``region_sizes`` per group, which is the paper's
    modification for heterogeneous request sizes.
    """

    name = "HPIO"

    def __init__(
        self,
        num_processes: int = 16,
        region_count: int = 4096,
        region_sizes: Sequence[int] | int = (16 * KiB, 32 * KiB, 64 * KiB),
        region_spacing: int = 0,
        file: str = "hpio.dat",
    ) -> None:
        if isinstance(region_sizes, int):
            region_sizes = [region_sizes]
        if not region_sizes or any(s <= 0 for s in region_sizes):
            raise ConfigurationError(f"bad region sizes: {region_sizes}")
        if num_processes <= 0 or region_count <= 0:
            raise ConfigurationError("num_processes and region_count must be >= 1")
        if region_spacing < 0:
            raise ConfigurationError("region_spacing must be >= 0")
        if region_count % num_processes:
            raise ConfigurationError(
                f"region_count {region_count} must divide evenly over "
                f"{num_processes} processes"
            )
        self.num_processes = num_processes
        self.region_count = region_count
        self.region_sizes = [int(s) for s in region_sizes]
        self.region_spacing = region_spacing
        self.file = file

    @property
    def groups(self) -> int:
        """Lock-step phases: one region per process per group."""
        return self.region_count // self.num_processes

    def trace(self, op: OpType = "write") -> Trace:
        builder = TraceBuilder(file=self.file)
        offset = 0
        sizes = self.region_sizes
        P = self.num_processes
        for group in range(self.groups):
            size = sizes[group % len(sizes)]
            for rank in range(P):
                builder.add(rank, op, offset, size, phase=group)
                offset += size + self.region_spacing
        return builder.build()

    def label(self) -> str:
        return f"{self.num_processes}p"

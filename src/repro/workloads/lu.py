"""Out-of-core LU decomposition trace model (§V-D).

The application "computes the dense LU decomposition of an out-of-core
matrix ... driven by an 8192×8192 double precision matrix with a slab
size of 64 columns.  The dataset is stored in 8 files, one per
process.  The write request size is fixed to 524544 bytes.  However,
the read request size ranges from 6272 bytes to 524544 bytes."

The model keeps those exact sizes: out-of-core LU factors the matrix
slab by slab; for slab ``k`` each process re-reads the already-factored
panel — whose size *grows* with ``k`` (that is where the 6272 →
524544 B read range comes from) — and writes back its fixed-size slab
share.  Reads and writes interleave per slab, per process, each process
against its own file.
"""

from __future__ import annotations

from ..devices.base import READ, WRITE
from ..exceptions import ConfigurationError
from ..tracing.record import Trace
from .base import TraceBuilder, Workload

__all__ = ["LUWorkload", "WRITE_SIZE", "MIN_READ", "MAX_READ"]

#: fixed write request size from the paper
WRITE_SIZE = 524544
#: smallest / largest read request sizes from the paper
MIN_READ = 6272
MAX_READ = 524544


class LUWorkload(Workload):
    """Growing reads + fixed-size writes over per-process files."""

    name = "LU"

    def __init__(
        self,
        num_processes: int = 8,
        slabs: int = 32,
        file_prefix: str = "lu",
    ) -> None:
        if num_processes <= 0 or slabs <= 0:
            raise ConfigurationError("num_processes and slabs must be >= 1")
        self.num_processes = num_processes
        self.slabs = slabs
        self.file_prefix = file_prefix

    def file_for(self, rank: int) -> str:
        return f"{self.file_prefix}.{rank}.dat"

    def read_size(self, slab: int) -> int:
        """Panel read size for slab ``slab``: linear from MIN to MAX."""
        if self.slabs == 1:
            return MAX_READ
        frac = slab / (self.slabs - 1)
        size = MIN_READ + frac * (MAX_READ - MIN_READ)
        return int(round(size))

    def trace(self, op: str | None = None) -> Trace:
        """The full read+write trace (``op`` filters to one type)."""
        builder = TraceBuilder()
        write_cursor = [0] * self.num_processes
        read_cursor = [0] * self.num_processes
        phase = 0
        for slab in range(self.slabs):
            rsize = self.read_size(slab)
            if op in (None, READ):
                for rank in range(self.num_processes):
                    builder.add(
                        rank,
                        READ,
                        read_cursor[rank],
                        rsize,
                        phase=phase,
                        file=self.file_for(rank),
                    )
                    read_cursor[rank] += rsize
                phase += 1
            if op in (None, WRITE):
                for rank in range(self.num_processes):
                    builder.add(
                        rank,
                        WRITE,
                        write_cursor[rank],
                        WRITE_SIZE,
                        phase=phase,
                        file=self.file_for(rank),
                    )
                    write_cursor[rank] += WRITE_SIZE
                phase += 1
        return builder.build()

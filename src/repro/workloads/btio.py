"""BTIO-like workload generator (NAS Parallel Benchmarks' BT I/O).

BTIO solves block-tridiagonal systems on a square number of processes
and appends the whole solution array to a shared file every few time
steps; with the *simple* subtype each process writes its own cells as
one contiguous request per step.  The paper's modification (§V-C):
"access a new file with the total size of 1.69GB+6.8GB ... each
process issues file requests at the sizes of those in Class B and C in
an interleaved fashion" — i.e. alternating small (class B share) and
large (class C share) requests, which is the heterogeneity MHA
exploits.

Class volumes: B writes a 102^3 grid solution (~1.69 GB over the run),
C a 162^3 grid (~6.8 GB).  Per-step-per-process request sizes scale as
``grid_bytes / (steps * processes)``; we keep that proportionality and
scale the totals down by ``scale`` for tractable simulation.
"""

from __future__ import annotations

from ..devices.base import OpType
from ..exceptions import ConfigurationError
from ..tracing.record import Trace
from ..units import GiB, KiB
from .base import TraceBuilder, Workload

__all__ = ["BTIOWorkload", "CLASS_TOTALS"]

#: total solution bytes each NPB class writes over a full run
CLASS_TOTALS = {"B": int(1.69 * GiB), "C": int(6.8 * GiB)}
#: time steps between I/O in the reference run
DEFAULT_STEPS = 40


def _is_square(n: int) -> bool:
    r = int(round(n ** 0.5))
    return r * r == n


class BTIOWorkload(Workload):
    """Interleaved class-B/class-C sized collective writes."""

    name = "BTIO"

    def __init__(
        self,
        num_processes: int = 16,
        classes: tuple[str, ...] = ("B", "C"),
        steps: int = DEFAULT_STEPS,
        scale: float = 1 / 64,
        file: str = "btio.dat",
    ) -> None:
        if not _is_square(num_processes):
            raise ConfigurationError(
                f"BTIO requires a square number of processes, got {num_processes}"
            )
        for cls in classes:
            if cls not in CLASS_TOTALS:
                raise ConfigurationError(f"unknown NPB class {cls!r}")
        if steps <= 0 or scale <= 0:
            raise ConfigurationError("steps and scale must be positive")
        self.num_processes = num_processes
        self.classes = tuple(classes)
        self.steps = steps
        self.scale = scale
        self.file = file

    def request_size(self, cls: str) -> int:
        """Per-process request size for one I/O step of class ``cls``.

        Rounded to 1 KiB granularity, minimum 1 KiB.
        """
        raw = CLASS_TOTALS[cls] * self.scale / (self.steps * self.num_processes)
        return max(KiB, int(round(raw / KiB)) * KiB)

    def trace(self, op: OpType = "write") -> Trace:
        builder = TraceBuilder(file=self.file)
        offset = 0
        P = self.num_processes
        for step in range(self.steps):
            cls = self.classes[step % len(self.classes)]
            size = self.request_size(cls)
            for rank in range(P):
                builder.add(rank, op, offset, size, phase=step)
                offset += size
        return builder.build()

    def label(self) -> str:
        return f"{self.num_processes}p"

"""Checkpoint/restart workload — the classic HPC pattern MHA targets.

Not one of the paper's named benchmarks, but the access pattern its
introduction motivates: applications that periodically dump state
(large sequential writes preceded by small metadata/header writes) and
occasionally restart (reading the newest checkpoint back).  The
header/payload size split makes it heterogeneous in exactly MHA's
sense; the restart phase adds a read/write op mix.
"""

from __future__ import annotations

import numpy as np

from ..devices.base import READ, WRITE
from ..exceptions import ConfigurationError
from ..tracing.columnar import OP_NAMES, ColumnarTrace
from ..tracing.record import Trace
from ..units import MiB
from .base import PHASE_GAP, _RANK_STAGGER, TraceBuilder, Workload

__all__ = ["CheckpointWorkload"]


class CheckpointWorkload(Workload):
    """Periodic checkpoints plus an optional restart read-back.

    Parameters
    ----------
    num_processes:
        Ranks writing to the shared checkpoint file.
    checkpoints:
        Number of checkpoint epochs.
    header_size / payload_size:
        Per-rank metadata header and state dump per epoch.
    restart:
        Whether a restart phase (re-reading the final checkpoint)
        follows the writes.
    """

    name = "checkpoint"

    def __init__(
        self,
        num_processes: int = 8,
        checkpoints: int = 16,
        header_size: int = 512,
        payload_size: int = 1 * MiB,
        restart: bool = True,
        file: str = "checkpoint.dat",
    ) -> None:
        if num_processes <= 0 or checkpoints <= 0:
            raise ConfigurationError("num_processes and checkpoints must be >= 1")
        if header_size <= 0 or payload_size <= 0:
            raise ConfigurationError("header and payload sizes must be > 0")
        self.num_processes = num_processes
        self.checkpoints = checkpoints
        self.header_size = header_size
        self.payload_size = payload_size
        self.restart = restart
        self.file = file

    @property
    def epoch_bytes(self) -> int:
        """Bytes one rank writes per checkpoint epoch."""
        return self.header_size + self.payload_size

    @property
    def area_size(self) -> int:
        """Bytes of the file owned by one rank."""
        return self.checkpoints * self.epoch_bytes

    def _offset(self, rank: int, epoch: int) -> int:
        return rank * self.area_size + epoch * self.epoch_bytes

    def trace(self, op: str | None = None) -> Trace:
        """The full write(+restart-read) trace; ``op`` filters one type."""
        builder = TraceBuilder(file=self.file)
        phase = 0
        if op in (None, WRITE):
            for epoch in range(self.checkpoints):
                for rank in range(self.num_processes):
                    base = self._offset(rank, epoch)
                    builder.add(rank, WRITE, base, self.header_size, phase=phase)
                    builder.add(
                        rank,
                        WRITE,
                        base + self.header_size,
                        self.payload_size,
                        phase=phase + 1,
                    )
                phase += 2
        if self.restart and op in (None, READ):
            last = self.checkpoints - 1
            for rank in range(self.num_processes):
                base = self._offset(rank, last)
                builder.add(rank, READ, base, self.header_size, phase=phase)
                builder.add(
                    rank,
                    READ,
                    base + self.header_size,
                    self.payload_size,
                    phase=phase + 1,
                )
        return builder.build()

    def columnar(self, op: str | None = None) -> ColumnarTrace:
        """Columnar-native :meth:`trace`, header/payload rows interleaved."""
        P = self.num_processes
        C = self.checkpoints
        offset_parts: list[np.ndarray] = []
        size_parts: list[np.ndarray] = []
        rank_parts: list[np.ndarray] = []
        phase_parts: list[np.ndarray] = []
        code_parts: list[np.ndarray] = []

        def emit(rank, epoch, phase0, code) -> None:
            n = rank.size
            base = rank * self.area_size + epoch * self.epoch_bytes
            offsets = np.empty(2 * n, dtype=np.int64)
            offsets[0::2] = base
            offsets[1::2] = base + self.header_size
            sizes = np.empty(2 * n, dtype=np.int64)
            sizes[0::2] = self.header_size
            sizes[1::2] = self.payload_size
            phases = np.empty(2 * n, dtype=np.int64)
            phases[0::2] = phase0
            phases[1::2] = phase0 + 1
            offset_parts.append(offsets)
            size_parts.append(sizes)
            rank_parts.append(np.repeat(rank, 2))
            phase_parts.append(phases)
            code_parts.append(np.full(2 * n, code, dtype=np.int8))

        next_phase = 0
        if op in (None, WRITE):
            epoch = np.repeat(np.arange(C), P)
            rank = np.tile(np.arange(P), C)
            emit(rank, epoch, 2 * epoch, OP_NAMES.index(WRITE))
            next_phase = 2 * C
        if self.restart and op in (None, READ):
            rank = np.arange(P)
            emit(rank, C - 1, next_phase, OP_NAMES.index(READ))
        if not offset_parts:
            return ColumnarTrace.from_columns(
                offsets=np.empty(0, dtype=np.int64),
                timestamps=np.empty(0, dtype=np.float64),
                ranks=np.empty(0, dtype=np.int32),
                sizes=np.empty(0, dtype=np.int64),
                files=self.file,
            )
        ranks = np.concatenate(rank_parts)
        phases = np.concatenate(phase_parts)
        return ColumnarTrace.from_columns(
            offsets=np.concatenate(offset_parts),
            timestamps=phases * PHASE_GAP + ranks * _RANK_STAGGER,
            ranks=ranks,
            sizes=np.concatenate(size_parts),
            ops=np.concatenate(code_parts),
            files=self.file,
            pids=ranks,
        )

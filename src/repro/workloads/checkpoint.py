"""Checkpoint/restart workload — the classic HPC pattern MHA targets.

Not one of the paper's named benchmarks, but the access pattern its
introduction motivates: applications that periodically dump state
(large sequential writes preceded by small metadata/header writes) and
occasionally restart (reading the newest checkpoint back).  The
header/payload size split makes it heterogeneous in exactly MHA's
sense; the restart phase adds a read/write op mix.
"""

from __future__ import annotations

from ..devices.base import READ, WRITE
from ..exceptions import ConfigurationError
from ..tracing.record import Trace
from ..units import MiB
from .base import TraceBuilder, Workload

__all__ = ["CheckpointWorkload"]


class CheckpointWorkload(Workload):
    """Periodic checkpoints plus an optional restart read-back.

    Parameters
    ----------
    num_processes:
        Ranks writing to the shared checkpoint file.
    checkpoints:
        Number of checkpoint epochs.
    header_size / payload_size:
        Per-rank metadata header and state dump per epoch.
    restart:
        Whether a restart phase (re-reading the final checkpoint)
        follows the writes.
    """

    name = "checkpoint"

    def __init__(
        self,
        num_processes: int = 8,
        checkpoints: int = 16,
        header_size: int = 512,
        payload_size: int = 1 * MiB,
        restart: bool = True,
        file: str = "checkpoint.dat",
    ) -> None:
        if num_processes <= 0 or checkpoints <= 0:
            raise ConfigurationError("num_processes and checkpoints must be >= 1")
        if header_size <= 0 or payload_size <= 0:
            raise ConfigurationError("header and payload sizes must be > 0")
        self.num_processes = num_processes
        self.checkpoints = checkpoints
        self.header_size = header_size
        self.payload_size = payload_size
        self.restart = restart
        self.file = file

    @property
    def epoch_bytes(self) -> int:
        """Bytes one rank writes per checkpoint epoch."""
        return self.header_size + self.payload_size

    @property
    def area_size(self) -> int:
        """Bytes of the file owned by one rank."""
        return self.checkpoints * self.epoch_bytes

    def _offset(self, rank: int, epoch: int) -> int:
        return rank * self.area_size + epoch * self.epoch_bytes

    def trace(self, op: str | None = None) -> Trace:
        """The full write(+restart-read) trace; ``op`` filters one type."""
        builder = TraceBuilder(file=self.file)
        phase = 0
        if op in (None, WRITE):
            for epoch in range(self.checkpoints):
                for rank in range(self.num_processes):
                    base = self._offset(rank, epoch)
                    builder.add(rank, WRITE, base, self.header_size, phase=phase)
                    builder.add(
                        rank,
                        WRITE,
                        base + self.header_size,
                        self.payload_size,
                        phase=phase + 1,
                    )
                phase += 2
        if self.restart and op in (None, READ):
            last = self.checkpoints - 1
            for rank in range(self.num_processes):
                base = self._offset(rank, last)
                builder.add(rank, READ, base, self.header_size, phase=phase)
                builder.add(
                    rank,
                    READ,
                    base + self.header_size,
                    self.payload_size,
                    phase=phase + 1,
                )
        return builder.build()

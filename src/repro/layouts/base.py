"""Layout interface: mapping logical file extents to per-server fragments.

A *layout* answers the question a PFS client asks on every request:
which servers hold the bytes ``[offset, offset + length)`` of this
file/region, and at what offsets inside each server's storage object?
The answer is a list of :class:`SubRequest` fragments that **tile** the
request: contiguous in logical order, non-overlapping, covering every
byte exactly once.  Those tiling invariants are property-tested in
``tests/layouts``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..exceptions import LayoutError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .batch import MergedRuns

__all__ = ["SubRequest", "Layout", "check_tiling"]


@dataclass(frozen=True)
class SubRequest:
    """One contiguous fragment of a request on one server.

    Attributes
    ----------
    server:
        Index of the data server in the cluster's server list.
    obj:
        Storage-object identifier on that server.  Each logical file or
        reordered region is a distinct object, so different regions
        never collide in a server's address space (in OrangeFS terms,
        each is a separate datafile handle).
    offset:
        Byte offset inside the server object.
    length:
        Fragment length in bytes (> 0).
    logical_offset:
        Offset in the logical file/region this fragment covers; used to
        verify tiling and to re-assemble read data.
    """

    server: int
    obj: str
    offset: int
    length: int
    logical_offset: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise LayoutError(f"fragment length must be > 0, got {self.length}")
        if self.offset < 0 or self.logical_offset < 0:
            raise LayoutError("fragment offsets must be non-negative")

    @property
    def logical_end(self) -> int:
        """One past the last logical byte the fragment covers."""
        return self.logical_offset + self.length


class Layout(abc.ABC):
    """Maps logical extents of one file/region onto server objects."""

    #: storage-object label fragments from this layout carry
    obj: str

    @property
    @abc.abstractmethod
    def servers(self) -> Sequence[int]:
        """Indices of the servers this layout may place data on."""

    @abc.abstractmethod
    def map_extent(self, offset: int, length: int) -> list[SubRequest]:
        """Split ``[offset, offset+length)`` into per-server fragments.

        Fragments are returned in ascending ``logical_offset`` order and
        tile the extent exactly.  A zero-length extent maps to ``[]``.
        """

    def map_extents(
        self, offsets: Sequence[int], lengths: Sequence[int]
    ) -> list[list[SubRequest]]:
        """Batch :meth:`map_extent` over parallel offset/length arrays.

        The default is a per-extent loop; layouts with a vectorized
        kernel override it (the result must be element-identical).
        """
        return [
            self.map_extent(int(offset), int(length))
            for offset, length in zip(offsets, lengths)
        ]

    def merged_extent_runs(
        self, offsets: Sequence[int], lengths: Sequence[int]
    ) -> "MergedRuns | None":
        """Columnar *merged* runs for a batch of extents, or ``None``.

        ``None`` means this layout has no batch kernel; callers fall
        back to ``map_extent`` + ``merge_fragments`` through
        :func:`repro.layouts.batch.merged_runs_of`.
        """
        return None

    def locate(self, offset: int) -> SubRequest:
        """The fragment containing the single byte at ``offset``."""
        frags = self.map_extent(offset, 1)
        if len(frags) != 1:
            raise LayoutError(f"locate({offset}) produced {len(frags)} fragments")
        return frags[0]


def check_tiling(offset: int, length: int, fragments: Iterable[SubRequest]) -> None:
    """Raise :class:`LayoutError` unless ``fragments`` tile the extent.

    Used by tests and by the PFS client in paranoid mode.
    """
    cursor = offset
    for frag in fragments:
        if frag.logical_offset != cursor:
            raise LayoutError(
                f"tiling gap/overlap at logical offset {cursor}: fragment "
                f"starts at {frag.logical_offset}"
            )
        cursor += frag.length
    if cursor != offset + length:
        raise LayoutError(
            f"tiling covers [{offset}, {cursor}) but extent is "
            f"[{offset}, {offset + length})"
        )

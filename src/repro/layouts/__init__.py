"""Striping math: layout interfaces, fixed/varied/region striping.

These modules are pure offset arithmetic with no dependency on the
cost model or the simulator; the DEF/AAL/HARL/MHA *schemes* that decide
which layout to build live in :mod:`repro.schemes`.
"""

from .base import Layout, SubRequest, check_tiling
from .extents import (
    bytes_in_window,
    per_server_bytes,
    per_server_bytes_batch,
    windows_touched,
)
from .fixed import FixedStripeLayout
from .region import Region, RegionLayout
from .varied import VariedStripeLayout

__all__ = [
    "Layout",
    "SubRequest",
    "check_tiling",
    "FixedStripeLayout",
    "VariedStripeLayout",
    "Region",
    "RegionLayout",
    "bytes_in_window",
    "windows_touched",
    "per_server_bytes",
    "per_server_bytes_batch",
]

"""Fixed-size round-robin striping — the classic PFS layout (DEF).

A file is cut into ``stripe``-byte units distributed over the servers
in round-robin order (Fig. 1 of the paper).  This is the OrangeFS /
Lustre default that the DEF baseline uses with a 64 KB stripe.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import LayoutError
from .base import Layout, SubRequest
from .batch import MergedRuns, periodic_merged_runs

__all__ = ["FixedStripeLayout"]


class FixedStripeLayout(Layout):
    """Round-robin fixed striping over an ordered server list."""

    def __init__(self, servers: Sequence[int], stripe: int, obj: str = "file") -> None:
        if not servers:
            raise LayoutError("FixedStripeLayout needs at least one server")
        if len(set(servers)) != len(servers):
            raise LayoutError(f"duplicate server indices: {list(servers)}")
        if stripe <= 0:
            raise LayoutError(f"stripe must be > 0, got {stripe}")
        self._servers = tuple(servers)
        self.stripe = int(stripe)
        self.obj = obj

    @property
    def servers(self) -> Sequence[int]:
        return self._servers

    def map_extent(self, offset: int, length: int) -> list[SubRequest]:
        if offset < 0 or length < 0:
            raise LayoutError("offset and length must be non-negative")
        fragments: list[SubRequest] = []
        nservers = len(self._servers)
        cursor = offset
        end = offset + length
        while cursor < end:
            stripe_idx, within = divmod(cursor, self.stripe)
            take = min(self.stripe - within, end - cursor)
            server = self._servers[stripe_idx % nservers]
            server_offset = (stripe_idx // nservers) * self.stripe + within
            fragments.append(
                SubRequest(
                    server=server,
                    obj=self.obj,
                    offset=server_offset,
                    length=take,
                    logical_offset=cursor,
                )
            )
            cursor += take
        return fragments

    def map_extents(
        self, offsets: Sequence[int], lengths: Sequence[int]
    ) -> list[list[SubRequest]]:
        """Vectorized batch mapping: all stripe indices for all extents
        are computed in NumPy; only the final fragments are objects."""
        off = np.asarray(offsets, dtype=np.int64).reshape(-1)
        lng = np.asarray(lengths, dtype=np.int64).reshape(-1)
        if off.size == 0:
            return []
        if int(off.min()) < 0 or int(lng.min()) < 0:
            raise LayoutError("offset and length must be non-negative")
        stripe = self.stripe
        nservers = len(self._servers)
        end = off + lng
        first = off // stripe
        # zero-length extents touch no stripes
        last = np.where(lng > 0, (end - 1) // stripe, first - 1)
        counts = last - first + 1
        total = int(counts.sum())
        row_starts = np.zeros(off.size + 1, dtype=np.int64)
        np.cumsum(counts, out=row_starts[1:])
        rows = np.repeat(np.arange(off.size), counts)
        sidx = first[rows] + (np.arange(total) - row_starts[rows])
        frag_lo = np.maximum(off[rows], sidx * stripe)
        frag_hi = np.minimum(end[rows], (sidx + 1) * stripe)
        servers = np.asarray(self._servers, dtype=np.int64)[sidx % nservers]
        srv_off = (sidx // nservers) * stripe + (frag_lo - sidx * stripe)
        srv_list = servers.tolist()
        off_list = srv_off.tolist()
        len_list = (frag_hi - frag_lo).tolist()
        log_list = frag_lo.tolist()
        bounds = row_starts.tolist()
        obj = self.obj
        return [
            [
                SubRequest(
                    server=srv_list[j],
                    obj=obj,
                    offset=off_list[j],
                    length=len_list[j],
                    logical_offset=log_list[j],
                )
                for j in range(bounds[k], bounds[k + 1])
            ]
            for k in range(off.size)
        ]

    def merged_extent_runs(
        self, offsets: Sequence[int], lengths: Sequence[int]
    ) -> MergedRuns:
        nservers = len(self._servers)
        return periodic_merged_runs(
            offsets,
            lengths,
            window_starts=np.arange(nservers, dtype=np.int64) * self.stripe,
            window_widths=np.full(nservers, self.stripe, dtype=np.int64),
            window_servers=np.asarray(self._servers, dtype=np.int64),
            cycle=nservers * self.stripe,
            obj=self.obj,
        )

    def __repr__(self) -> str:
        return (
            f"FixedStripeLayout(servers={list(self._servers)}, "
            f"stripe={self.stripe}, obj={self.obj!r})"
        )

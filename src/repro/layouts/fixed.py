"""Fixed-size round-robin striping — the classic PFS layout (DEF).

A file is cut into ``stripe``-byte units distributed over the servers
in round-robin order (Fig. 1 of the paper).  This is the OrangeFS /
Lustre default that the DEF baseline uses with a 64 KB stripe.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import LayoutError
from .base import Layout, SubRequest

__all__ = ["FixedStripeLayout"]


class FixedStripeLayout(Layout):
    """Round-robin fixed striping over an ordered server list."""

    def __init__(self, servers: Sequence[int], stripe: int, obj: str = "file") -> None:
        if not servers:
            raise LayoutError("FixedStripeLayout needs at least one server")
        if len(set(servers)) != len(servers):
            raise LayoutError(f"duplicate server indices: {list(servers)}")
        if stripe <= 0:
            raise LayoutError(f"stripe must be > 0, got {stripe}")
        self._servers = tuple(servers)
        self.stripe = int(stripe)
        self.obj = obj

    @property
    def servers(self) -> Sequence[int]:
        return self._servers

    def map_extent(self, offset: int, length: int) -> list[SubRequest]:
        if offset < 0 or length < 0:
            raise LayoutError("offset and length must be non-negative")
        fragments: list[SubRequest] = []
        nservers = len(self._servers)
        cursor = offset
        end = offset + length
        while cursor < end:
            stripe_idx, within = divmod(cursor, self.stripe)
            take = min(self.stripe - within, end - cursor)
            server = self._servers[stripe_idx % nservers]
            server_offset = (stripe_idx // nservers) * self.stripe + within
            fragments.append(
                SubRequest(
                    server=server,
                    obj=self.obj,
                    offset=server_offset,
                    length=take,
                    logical_offset=cursor,
                )
            )
            cursor += take
        return fragments

    def __repr__(self) -> str:
        return (
            f"FixedStripeLayout(servers={list(self._servers)}, "
            f"stripe={self.stripe}, obj={self.obj!r})"
        )

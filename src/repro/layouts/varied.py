"""Varied-size striping: stripe ``h`` on HServers, stripe ``s`` on SServers.

This is the layout shape MHA and HARL optimize (§II-A, §III-F).  One
*stripe cycle* covers ``M*h + N*s`` logical bytes: the first ``M*h``
bytes go round-robin (``h`` at a time) across the ``M`` HServers and
the next ``N*s`` bytes go round-robin (``s`` at a time) across the
``N`` SServers, then the cycle repeats.

The extreme configuration ``h == 0`` ("dispatching the data only on
SServer", Algorithm 2) is supported: HServers receive nothing and the
cycle is ``N*s``.  Symmetrically ``s == 0`` places data only on
HServers.  ``h == s == 0`` is invalid.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import LayoutError
from .base import Layout, SubRequest
from .batch import MergedRuns, periodic_merged_runs

__all__ = ["VariedStripeLayout"]


class VariedStripeLayout(Layout):
    """Two-class varied striping over HServers and SServers.

    Parameters
    ----------
    hservers / sservers:
        Cluster server indices of each class, in placement order.
    h / s:
        Stripe sizes in bytes for the respective class; either (but not
        both) may be 0 to exclude that class entirely.
    """

    def __init__(
        self,
        hservers: Sequence[int],
        sservers: Sequence[int],
        h: int,
        s: int,
        obj: str = "file",
    ) -> None:
        if h < 0 or s < 0:
            raise LayoutError(f"stripe sizes must be >= 0, got h={h}, s={s}")
        hs = tuple(hservers)
        ss = tuple(sservers)
        if len(set(hs) | set(ss)) != len(hs) + len(ss):
            raise LayoutError("server index appears twice across classes")
        if h > 0 and not hs:
            raise LayoutError("h > 0 but no HServers given")
        if s > 0 and not ss:
            raise LayoutError("s > 0 but no SServers given")
        effective_h = h if hs else 0
        effective_s = s if ss else 0
        if effective_h == 0 and effective_s == 0:
            raise LayoutError("layout places no data anywhere (h == s == 0)")
        self._hservers = hs
        self._sservers = ss
        self.h = int(effective_h)
        self.s = int(effective_s)
        self.obj = obj
        self._hspan = len(hs) * self.h
        self._cycle = self._hspan + len(ss) * self.s

    @property
    def hservers(self) -> Sequence[int]:
        """HServer indices (even if ``h == 0``)."""
        return self._hservers

    @property
    def sservers(self) -> Sequence[int]:
        """SServer indices (even if ``s == 0``)."""
        return self._sservers

    @property
    def servers(self) -> Sequence[int]:
        used: list[int] = []
        if self.h > 0:
            used.extend(self._hservers)
        if self.s > 0:
            used.extend(self._sservers)
        return tuple(used)

    @property
    def cycle(self) -> int:
        """Logical bytes covered by one full stripe cycle."""
        return self._cycle

    def map_extent(self, offset: int, length: int) -> list[SubRequest]:
        if offset < 0 or length < 0:
            raise LayoutError("offset and length must be non-negative")
        fragments: list[SubRequest] = []
        cursor = offset
        end = offset + length
        cycle = self._cycle
        hspan = self._hspan
        while cursor < end:
            cycle_idx, within_cycle = divmod(cursor, cycle)
            if within_cycle < hspan:
                slot, within = divmod(within_cycle, self.h)
                server = self._hservers[slot]
                stripe = self.h
                server_offset = cycle_idx * self.h + within
            else:
                slot, within = divmod(within_cycle - hspan, self.s)
                server = self._sservers[slot]
                stripe = self.s
                server_offset = cycle_idx * self.s + within
            take = min(stripe - within, end - cursor)
            fragments.append(
                SubRequest(
                    server=server,
                    obj=self.obj,
                    offset=server_offset,
                    length=take,
                    logical_offset=cursor,
                )
            )
            cursor += take
        return fragments

    def merged_extent_runs(
        self, offsets: Sequence[int], lengths: Sequence[int]
    ) -> MergedRuns:
        starts: list[int] = []
        widths: list[int] = []
        servers: list[int] = []
        if self.h > 0:
            for slot, server in enumerate(self._hservers):
                starts.append(slot * self.h)
                widths.append(self.h)
                servers.append(server)
        if self.s > 0:
            for slot, server in enumerate(self._sservers):
                starts.append(self._hspan + slot * self.s)
                widths.append(self.s)
                servers.append(server)
        return periodic_merged_runs(
            offsets,
            lengths,
            window_starts=np.asarray(starts, dtype=np.int64),
            window_widths=np.asarray(widths, dtype=np.int64),
            window_servers=np.asarray(servers, dtype=np.int64),
            cycle=self._cycle,
            obj=self.obj,
        )

    def __repr__(self) -> str:
        return (
            f"VariedStripeLayout(h={self.h}, s={self.s}, "
            f"hservers={list(self._hservers)}, sservers={list(self._sservers)}, "
            f"obj={self.obj!r})"
        )

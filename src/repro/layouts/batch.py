"""Batched request mapping: columnar merged sub-request runs.

The flat replay kernel (:mod:`repro.pfs.flat`) maps a whole trace
through a file view at once instead of one dataclass-heavy
``map_request``/``merge_fragments`` pass per request.  This module
holds the shared machinery:

* :class:`MergedRuns` — the columnar result: per-extent *merged* runs
  (one contiguous server-object range each, exactly what
  :func:`merge_fragments` would produce) stored as parallel lists with
  ``starts`` boundaries, plus the pre-merge fragment count;
* :func:`periodic_merged_runs` — the NumPy kernel for round-robin
  striping.  Both fixed and varied striping are periodic: server ``j``
  owns the window ``[a_j, a_j + w_j)`` of every ``cycle``-byte period,
  so a contiguous extent produces **at most one merged run per
  server**, whose length and object offset follow from the same
  cumulative-window closed form as :func:`repro.layouts.extents`;
* :func:`merged_runs_of` — dispatch: a layout's vectorized
  ``merged_extent_runs`` kernel when it has one, otherwise the exact
  per-extent object path (``map_extent`` + :func:`merge_fragments`);
* :func:`merge_fragments` — the order-preserving coalescer (moved here
  from :mod:`repro.pfs.system`, which re-exports it), rewritten to
  build one :class:`~repro.layouts.base.SubRequest` per *merged run*
  instead of one per absorbed fragment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..exceptions import LayoutError
from .base import SubRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .base import Layout

__all__ = [
    "MergedRuns",
    "RunsBuilder",
    "merge_fragments",
    "merged_runs_of",
    "periodic_merged_runs",
    "runs_from_fragments",
]


def merge_fragments(fragments: Iterable[SubRequest]) -> list[SubRequest]:
    """Coalesce fragments that are contiguous on the same server object.

    A PFS client sends *one* sub-request per server covering all the
    stripes it needs there (list I/O); under round-robin striping those
    stripes are contiguous in the server object even though they
    interleave logically, so the merged run is what the server's disk
    actually sees.  Merging is order-preserving per server and requires
    contiguity in the *server object's* address space; the merged run
    keeps the logical offset of its first stripe.  Output is sorted by
    logical offset.
    """
    servers: list[int] = []
    objs: list[str] = []
    offsets: list[int] = []
    lengths: list[int] = []
    logicals: list[int] = []
    last_of: dict[tuple[int, str], int] = {}
    in_order = True
    for frag in fragments:
        key = (frag.server, frag.obj)
        i = last_of.get(key, -1)
        if i >= 0 and offsets[i] + lengths[i] == frag.offset:
            lengths[i] += frag.length
            continue
        if logicals and frag.logical_offset < logicals[-1]:
            in_order = False
        last_of[key] = len(offsets)
        servers.append(frag.server)
        objs.append(frag.obj)
        offsets.append(frag.offset)
        lengths.append(frag.length)
        logicals.append(frag.logical_offset)
    order: Iterable[int]
    if in_order:
        order = range(len(offsets))
    else:
        order = sorted(range(len(offsets)), key=logicals.__getitem__)
    return [
        SubRequest(
            server=servers[i],
            obj=objs[i],
            offset=offsets[i],
            length=lengths[i],
            logical_offset=logicals[i],
        )
        for i in order
    ]


@dataclass
class MergedRuns:
    """Columnar merged sub-requests for a batch of extents.

    Run ``j`` is one contiguous range of a server object; the runs of
    extent ``k`` occupy ``[starts[k], starts[k+1])`` and are sorted by
    ``first_logicals`` (the logical offset of the run's first byte) —
    exactly the fragments :func:`merge_fragments` would return for the
    same extent, as columns instead of dataclasses.  ``n_fragments``
    counts the *pre-merge* fragments across the whole batch (what
    ``map_extent`` would have produced), preserving the redirector's
    overhead accounting.
    """

    servers: list[int]
    objs: list[str]
    offsets: list[int]
    lengths: list[int]
    first_logicals: list[int]
    starts: list[int]
    n_fragments: int

    @property
    def n_extents(self) -> int:
        return len(self.starts) - 1

    def subrequests(self, k: int) -> list[SubRequest]:
        """Extent ``k``'s merged runs as :class:`SubRequest` objects."""
        lo, hi = self.starts[k], self.starts[k + 1]
        return [
            SubRequest(
                server=self.servers[j],
                obj=self.objs[j],
                offset=self.offsets[j],
                length=self.lengths[j],
                logical_offset=self.first_logicals[j],
            )
            for j in range(lo, hi)
        ]


def runs_from_fragments(
    fragments: Sequence[SubRequest], *, already_merged: bool = False
) -> MergedRuns:
    """A single-extent :class:`MergedRuns` from an explicit fragment list."""
    merged = list(fragments) if already_merged else merge_fragments(fragments)
    return MergedRuns(
        servers=[f.server for f in merged],
        objs=[f.obj for f in merged],
        offsets=[f.offset for f in merged],
        lengths=[f.length for f in merged],
        first_logicals=[f.logical_offset for f in merged],
        starts=[0, len(merged)],
        n_fragments=len(fragments),
    )


class RunsBuilder:
    """Assemble per-item runs — possibly produced out of order by
    grouped batch kernels — into one item-ordered :class:`MergedRuns`.

    ``place`` points item ``i`` at extent ``k`` of a source
    :class:`MergedRuns` (with an optional rebase added to the logical
    offsets, for region/DRT coordinate shifts); unplaced items come out
    with zero runs.  Pre-merge fragment totals are accumulated
    separately via :meth:`add_fragments` because group kernels only
    know them per batch.
    """

    def __init__(self, n_items: int) -> None:
        self._slots: list[tuple[MergedRuns, int, int, int] | None] = [None] * n_items
        self._n_fragments = 0

    def place(self, item: int, source: MergedRuns, k: int, base: int = 0) -> None:
        self._slots[item] = (source, source.starts[k], source.starts[k + 1], base)

    def place_fragments(self, item: int, fragments: Sequence[SubRequest]) -> None:
        """Object-path escape hatch: raw fragments for one item
        (merged here; also counts them as pre-merge fragments)."""
        runs = runs_from_fragments(fragments)
        self._slots[item] = (runs, 0, len(runs.servers), 0)
        self._n_fragments += runs.n_fragments

    def add_fragments(self, count: int) -> None:
        self._n_fragments += count

    def build(self) -> MergedRuns:
        servers: list[int] = []
        objs: list[str] = []
        offsets: list[int] = []
        lengths: list[int] = []
        firsts: list[int] = []
        starts: list[int] = [0]
        for slot in self._slots:
            if slot is not None:
                src, lo, hi, base = slot
                servers.extend(src.servers[lo:hi])
                objs.extend(src.objs[lo:hi])
                offsets.extend(src.offsets[lo:hi])
                lengths.extend(src.lengths[lo:hi])
                if base:
                    firsts.extend(x + base for x in src.first_logicals[lo:hi])
                else:
                    firsts.extend(src.first_logicals[lo:hi])
            starts.append(len(servers))
        return MergedRuns(
            servers=servers,
            objs=objs,
            offsets=offsets,
            lengths=lengths,
            first_logicals=firsts,
            starts=starts,
            n_fragments=self._n_fragments,
        )


def periodic_merged_runs(
    offsets: Sequence[int] | np.ndarray,
    lengths: Sequence[int] | np.ndarray,
    *,
    window_starts: np.ndarray,
    window_widths: np.ndarray,
    window_servers: np.ndarray,
    cycle: int,
    obj: str,
) -> MergedRuns:
    """Vectorized merged-run mapping for periodic round-robin striping.

    Server window ``j`` occupies ``[a_j, a_j + w_j)`` of every
    ``cycle``-byte period (fixed striping: ``a_j = j*stripe``,
    ``w_j = stripe``; varied striping: the H windows then the S
    windows).  For a contiguous extent every touched window yields one
    merged run, because the extent covers a suffix of its first window
    instance, every full instance between, and a prefix of its last —
    ranges that are contiguous in the server object.  Hence, with
    ``cum_j(y)`` = bytes of ``[0, y)`` landing in window ``j`` (the
    :func:`repro.layouts.extents.bytes_in_window` closed form):

    * run length  = ``cum_j(end) - cum_j(offset)``;
    * run object offset = ``cum_j(offset)``;
    * run first logical byte = ``offset`` if ``offset`` lies in the
      window, else ``offset + ((a_j - offset) mod cycle)``;
    * pre-merge fragment count = windows-touched
      (:func:`repro.layouts.extents.windows_touched`).

    Runs per extent are emitted in ascending first-logical order — the
    exact output order of ``merge_fragments(map_extent(...))``.
    """
    if cycle <= 0:
        raise LayoutError(f"cycle must be > 0, got {cycle}")
    off = np.asarray(offsets, dtype=np.int64).reshape(-1)
    lng = np.asarray(lengths, dtype=np.int64).reshape(-1)
    if off.shape != lng.shape:
        raise LayoutError(
            f"offsets ({off.size}) and lengths ({lng.size}) must match"
        )
    n = off.size
    if n == 0:
        return MergedRuns([], [], [], [], [], [0], 0)
    if int(off.min()) < 0 or int(lng.min()) < 0:
        raise LayoutError("offset and length must be non-negative")
    a = window_starts[None, :]
    w = window_widths[None, :]
    lo = off[:, None]
    hi = (off + lng)[:, None]
    full_hi, rem_hi = np.divmod(hi, cycle)
    full_lo, rem_lo = np.divmod(lo, cycle)
    cum_hi = full_hi * w + np.clip(rem_hi - a, 0, w)
    cum_lo = full_lo * w + np.clip(rem_lo - a, 0, w)
    run_len = cum_hi - cum_lo
    first = lo + np.where(
        (rem_lo >= a) & (rem_lo < a + w), 0, (a - rem_lo) % cycle
    )
    mask = run_len > 0
    counts = mask.sum(axis=1)
    total = int(counts.sum())
    # order each extent's runs by first logical byte (unique per run)
    sort_key = np.where(mask, first, np.iinfo(np.int64).max)
    order = np.argsort(sort_key, axis=1, kind="stable")
    row_starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=row_starts[1:])
    rows = np.repeat(np.arange(n), counts)
    cols = order[rows, np.arange(total) - row_starts[rows]]
    # pre-merge fragment count == distinct window instances intersected
    k_max = (hi - a - 1) // cycle
    k_lo = -((-(lo - a - w + 1)) // cycle)  # ceil division
    touched = np.where(mask, k_max - k_lo + 1, 0)
    return MergedRuns(
        servers=window_servers[cols].tolist(),
        objs=[obj] * total,
        offsets=cum_lo[rows, cols].tolist(),
        lengths=run_len[rows, cols].tolist(),
        first_logicals=first[rows, cols].tolist(),
        starts=row_starts.tolist(),
        n_fragments=int(touched.sum()),
    )


def generic_merged_runs(
    map_extent: Callable[[int, int], list[SubRequest]],
    offsets: Sequence[int],
    lengths: Sequence[int],
) -> MergedRuns:
    """Exact per-extent fallback: ``map_extent`` + :func:`merge_fragments`."""
    servers: list[int] = []
    objs: list[str] = []
    offs: list[int] = []
    lens: list[int] = []
    firsts: list[int] = []
    starts: list[int] = [0]
    n_fragments = 0
    for offset, length in zip(offsets, lengths):
        fragments = map_extent(int(offset), int(length))
        n_fragments += len(fragments)
        for frag in merge_fragments(fragments):
            servers.append(frag.server)
            objs.append(frag.obj)
            offs.append(frag.offset)
            lens.append(frag.length)
            firsts.append(frag.logical_offset)
        starts.append(len(servers))
    return MergedRuns(
        servers=servers,
        objs=objs,
        offsets=offs,
        lengths=lens,
        first_logicals=firsts,
        starts=starts,
        n_fragments=n_fragments,
    )


def merged_runs_of(
    layout: "Layout", offsets: Sequence[int], lengths: Sequence[int]
) -> MergedRuns:
    """Batch-map extents through ``layout`` into merged runs.

    Uses the layout's vectorized ``merged_extent_runs`` kernel when it
    provides one (fixed/varied/region striping), otherwise the exact
    object path.  Both produce identical runs — property-tested in
    ``tests/layouts/test_batch.py``.
    """
    fast = layout.merged_extent_runs(offsets, lengths)
    if fast is not None:
        return fast
    return generic_merged_runs(layout.map_extent, offsets, lengths)

"""Closed-form per-server extent accounting for varied striping.

The RSSD stripe search (Algorithm 2) evaluates the cost model for
hundreds of ``<h, s>`` candidates over every request in a region.
Enumerating fragments for each combination would be quadratic in
practice, so the cost model instead uses the *closed-form* functions
here: how many bytes of a logical extent land on each server, and how
many distinct stripe windows (hence positioning startups) it touches —
in O(M + N) per request with no fragment lists.

Correctness is cross-checked against the explicit fragment mapper in
property tests (``tests/layouts/test_extents.py``).
"""

from __future__ import annotations

import numpy as np

from ..contracts import twin_of

__all__ = [
    "bytes_in_window",
    "windows_touched",
    "per_server_bytes",
    "per_server_bytes_batch",
    "per_server_bytes_grid",
    "max_server_bytes_grid",
]


def bytes_in_window(offset: int, length: int, start: int, width: int, cycle: int) -> int:
    """Bytes of ``[offset, offset+length)`` whose position mod ``cycle``
    falls in ``[start, start+width)``.

    This counts the bytes of a logical extent that belong to one
    server's periodic stripe window.
    """
    if width <= 0 or length <= 0:
        return 0
    if cycle <= 0:
        raise ValueError(f"cycle must be > 0, got {cycle}")

    def cumulative(y: int) -> int:
        # bytes in [0, y) whose (pos mod cycle) lies in [start, start+width)
        full, rem = divmod(y, cycle)
        return full * width + min(max(rem - start, 0), width)

    return cumulative(offset + length) - cumulative(offset)


def windows_touched(offset: int, length: int, start: int, width: int, cycle: int) -> int:
    """Number of distinct periodic windows the extent intersects.

    Window ``k`` occupies ``[k*cycle + start, k*cycle + start + width)``.
    Each touched window is one contiguous fragment on that server, i.e.
    one potential positioning startup.
    """
    if width <= 0 or length <= 0:
        return 0
    if cycle <= 0:
        raise ValueError(f"cycle must be > 0, got {cycle}")
    end = offset + length
    # Window k intersects iff  k*cycle + start < end  and
    # k*cycle + start + width > offset, i.e.
    #   k <= floor((end - start - 1) / cycle)   and
    #   k >= ceil((offset - start - width + 1) / cycle).
    k_max = (end - start - 1) // cycle
    k_lo = -((-(offset - start - width + 1)) // cycle)  # ceil division
    if k_max < k_lo:
        return 0
    return k_max - k_lo + 1


def per_server_bytes(
    offset: int, length: int, M: int, N: int, h: int, s: int
) -> tuple[np.ndarray, np.ndarray]:
    """Bytes of an extent on each HServer and SServer under ``<h, s>``.

    Returns ``(h_bytes, s_bytes)`` with shapes ``(M,)`` and ``(N,)``.
    Servers with stripe 0 receive 0 bytes.
    """
    h_eff = h if M > 0 else 0
    s_eff = s if N > 0 else 0
    cycle = M * h_eff + N * s_eff
    h_bytes = np.zeros(M, dtype=np.int64)
    s_bytes = np.zeros(N, dtype=np.int64)
    if cycle == 0 or length <= 0:
        return h_bytes, s_bytes
    for i in range(M):
        h_bytes[i] = bytes_in_window(offset, length, i * h_eff, h_eff, cycle)
    base = M * h_eff
    for j in range(N):
        s_bytes[j] = bytes_in_window(offset, length, base + j * s_eff, s_eff, cycle)
    return h_bytes, s_bytes


def per_server_bytes_batch(
    offsets: np.ndarray, lengths: np.ndarray, M: int, N: int, h: int, s: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`per_server_bytes` over many extents.

    ``offsets`` and ``lengths`` are 1-D integer arrays of equal shape;
    the result is ``(h_bytes, s_bytes)`` with shapes ``(K, M)`` and
    ``(K, N)`` for ``K`` extents.  This is the kernel the RSSD search
    calls once per ``<h, s>`` candidate.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if offsets.shape != lengths.shape or offsets.ndim != 1:
        raise ValueError("offsets and lengths must be equal-shape 1-D arrays")
    K = offsets.shape[0]
    h_eff = h if M > 0 else 0
    s_eff = s if N > 0 else 0
    cycle = M * h_eff + N * s_eff
    h_bytes = np.zeros((K, M), dtype=np.int64)
    s_bytes = np.zeros((K, N), dtype=np.int64)
    if cycle == 0 or K == 0:
        return h_bytes, s_bytes

    ends = offsets + lengths

    def cumulative(y: np.ndarray, start: int, width: int) -> np.ndarray:
        full, rem = np.divmod(y, cycle)
        return full * width + np.clip(rem - start, 0, width)

    if h_eff > 0:
        for i in range(M):
            a = i * h_eff
            h_bytes[:, i] = cumulative(ends, a, h_eff) - cumulative(offsets, a, h_eff)
    if s_eff > 0:
        base = M * h_eff
        for j in range(N):
            a = base + j * s_eff
            s_bytes[:, j] = cumulative(ends, a, s_eff) - cumulative(offsets, a, s_eff)
    # zero out degenerate (length <= 0) rows
    empty = lengths <= 0
    if empty.any():
        h_bytes[empty] = 0
        s_bytes[empty] = 0
    return h_bytes, s_bytes


@twin_of(
    "repro.layouts.extents:per_server_bytes_batch",
    param_map={"h": "h_arr", "s": "s_arr"},
    harness="extents_grid",
)
def per_server_bytes_grid(
    offsets: np.ndarray,
    lengths: np.ndarray,
    M: int,
    N: int,
    h_arr: np.ndarray,
    s_arr: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`per_server_bytes_batch` broadcast over a *grid* of candidates.

    ``h_arr`` and ``s_arr`` are equal-shape 1-D integer arrays of ``G``
    candidate stripe pairs; the result is ``(h_bytes, s_bytes)`` with
    shapes ``(G, K, M)`` and ``(G, K, N)``.  This is the kernel of the
    vectorized RSSD search: the whole candidate grid is mapped in one
    numpy evaluation instead of one :func:`per_server_bytes_batch` call
    per pair.  All arithmetic is int64 and identical per element to the
    scalar-candidate path, so byte counts are exactly equal.

    Callers are expected to chunk over ``G`` — the temporaries are
    ``O(G * K * (M + N))``.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    h_arr = np.asarray(h_arr, dtype=np.int64)
    s_arr = np.asarray(s_arr, dtype=np.int64)
    if offsets.shape != lengths.shape or offsets.ndim != 1:
        raise ValueError("offsets and lengths must be equal-shape 1-D arrays")
    if h_arr.shape != s_arr.shape or h_arr.ndim != 1:
        raise ValueError("h_arr and s_arr must be equal-shape 1-D arrays")
    G, K = h_arr.shape[0], offsets.shape[0]
    h_eff = h_arr if M > 0 else np.zeros_like(h_arr)
    s_eff = s_arr if N > 0 else np.zeros_like(s_arr)
    cycle = M * h_eff + N * s_eff  # (G,)
    h_bytes = np.zeros((G, K, M), dtype=np.int64)
    s_bytes = np.zeros((G, K, N), dtype=np.int64)
    if G == 0 or K == 0 or not (cycle > 0).any():
        return h_bytes, s_bytes

    # dead candidates (cycle == 0) have zero-width windows everywhere,
    # so any positive stand-in cycle leaves their byte counts at 0
    cyc = np.where(cycle > 0, cycle, 1)[:, None]  # (G, 1)
    # the stripe-cycle decomposition of both extent endpoints is shared
    # by every server, so hoist it out of the per-server loops
    full_e, rem_e = np.divmod((offsets + lengths)[None, :], cyc)  # (G, K)
    full_o, rem_o = np.divmod(offsets[None, :], cyc)

    if M > 0:
        w = h_eff[:, None]
        base_e = full_e * w
        base_o = full_o * w
        for i in range(M):
            a = i * w
            h_bytes[:, :, i] = (base_e + np.clip(rem_e - a, 0, w)) - (
                base_o + np.clip(rem_o - a, 0, w)
            )
    if N > 0:
        start0 = (M * h_eff)[:, None]
        w = s_eff[:, None]
        base_e = full_e * w
        base_o = full_o * w
        for j in range(N):
            a = start0 + j * w
            s_bytes[:, :, j] = (base_e + np.clip(rem_e - a, 0, w)) - (
                base_o + np.clip(rem_o - a, 0, w)
            )
    empty = lengths <= 0
    if empty.any():
        h_bytes[:, empty, :] = 0
        s_bytes[:, empty, :] = 0
    return h_bytes, s_bytes


@twin_of(
    "repro.layouts.extents:per_server_bytes_batch",
    kind="reduction",
    param_map={"h": "h_arr", "s": "s_arr"},
    harness="extents_max_grid",
)
def max_server_bytes_grid(
    offsets: np.ndarray,
    lengths: np.ndarray,
    M: int,
    N: int,
    h_arr: np.ndarray,
    s_arr: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-class *maximum* per-server byte count over a candidate grid.

    Returns ``(h_max, s_max)`` of shape ``(G, K)`` — for each candidate
    pair and request, the byte count of the most-loaded HServer and
    SServer.  Equal to ``per_server_bytes_grid(...)[0].max(axis=2)``
    (and ``[1]`` likewise) but fused: the per-server counts are folded
    into a running maximum, so no ``(G, K, M)`` tensor is ever
    materialized.  Integer arithmetic throughout — exactly the scalar
    path's values.

    This is the kernel of the vectorized *batch* cost path, where the
    per-class completion bound only depends on the most-loaded server a
    request touches.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    h_arr = np.asarray(h_arr, dtype=np.int64)
    s_arr = np.asarray(s_arr, dtype=np.int64)
    if offsets.shape != lengths.shape or offsets.ndim != 1:
        raise ValueError("offsets and lengths must be equal-shape 1-D arrays")
    if h_arr.shape != s_arr.shape or h_arr.ndim != 1:
        raise ValueError("h_arr and s_arr must be equal-shape 1-D arrays")
    G, K = h_arr.shape[0], offsets.shape[0]
    h_eff = h_arr if M > 0 else np.zeros_like(h_arr)
    s_eff = s_arr if N > 0 else np.zeros_like(s_arr)
    cycle = M * h_eff + N * s_eff
    h_max = np.zeros((G, K), dtype=np.int64)
    s_max = np.zeros((G, K), dtype=np.int64)
    if G == 0 or K == 0 or not (cycle > 0).any():
        return h_max, s_max

    cyc = np.where(cycle > 0, cycle, 1)[:, None]
    full_e, rem_e = np.divmod((offsets + lengths)[None, :], cyc)
    full_o, rem_o = np.divmod(offsets[None, :], cyc)
    # degenerate (length <= 0) extents yield non-positive counts, which
    # the zero-initialized running max already clamps away

    if M > 0:
        w = h_eff[:, None]
        base = full_e * w - full_o * w
        for i in range(M):
            a = i * w
            np.maximum(
                h_max,
                base + np.clip(rem_e - a, 0, w) - np.clip(rem_o - a, 0, w),
                out=h_max,
            )
    if N > 0:
        start0 = (M * h_eff)[:, None]
        w = s_eff[:, None]
        base = full_e * w - full_o * w
        for j in range(N):
            a = start0 + j * w
            np.maximum(
                s_max,
                base + np.clip(rem_e - a, 0, w) - np.clip(rem_o - a, 0, w),
                out=s_max,
            )
    return h_max, s_max

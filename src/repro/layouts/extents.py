"""Closed-form per-server extent accounting for varied striping.

The RSSD stripe search (Algorithm 2) evaluates the cost model for
hundreds of ``<h, s>`` candidates over every request in a region.
Enumerating fragments for each combination would be quadratic in
practice, so the cost model instead uses the *closed-form* functions
here: how many bytes of a logical extent land on each server, and how
many distinct stripe windows (hence positioning startups) it touches —
in O(M + N) per request with no fragment lists.

Correctness is cross-checked against the explicit fragment mapper in
property tests (``tests/layouts/test_extents.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bytes_in_window",
    "windows_touched",
    "per_server_bytes",
    "per_server_bytes_batch",
]


def bytes_in_window(offset: int, length: int, start: int, width: int, cycle: int) -> int:
    """Bytes of ``[offset, offset+length)`` whose position mod ``cycle``
    falls in ``[start, start+width)``.

    This counts the bytes of a logical extent that belong to one
    server's periodic stripe window.
    """
    if width <= 0 or length <= 0:
        return 0
    if cycle <= 0:
        raise ValueError(f"cycle must be > 0, got {cycle}")

    def cumulative(y: int) -> int:
        # bytes in [0, y) whose (pos mod cycle) lies in [start, start+width)
        full, rem = divmod(y, cycle)
        return full * width + min(max(rem - start, 0), width)

    return cumulative(offset + length) - cumulative(offset)


def windows_touched(offset: int, length: int, start: int, width: int, cycle: int) -> int:
    """Number of distinct periodic windows the extent intersects.

    Window ``k`` occupies ``[k*cycle + start, k*cycle + start + width)``.
    Each touched window is one contiguous fragment on that server, i.e.
    one potential positioning startup.
    """
    if width <= 0 or length <= 0:
        return 0
    if cycle <= 0:
        raise ValueError(f"cycle must be > 0, got {cycle}")
    end = offset + length
    # Window k intersects iff  k*cycle + start < end  and
    # k*cycle + start + width > offset, i.e.
    #   k <= floor((end - start - 1) / cycle)   and
    #   k >= ceil((offset - start - width + 1) / cycle).
    k_max = (end - start - 1) // cycle
    k_lo = -((-(offset - start - width + 1)) // cycle)  # ceil division
    if k_max < k_lo:
        return 0
    return k_max - k_lo + 1


def per_server_bytes(
    offset: int, length: int, M: int, N: int, h: int, s: int
) -> tuple[np.ndarray, np.ndarray]:
    """Bytes of an extent on each HServer and SServer under ``<h, s>``.

    Returns ``(h_bytes, s_bytes)`` with shapes ``(M,)`` and ``(N,)``.
    Servers with stripe 0 receive 0 bytes.
    """
    h_eff = h if M > 0 else 0
    s_eff = s if N > 0 else 0
    cycle = M * h_eff + N * s_eff
    h_bytes = np.zeros(M, dtype=np.int64)
    s_bytes = np.zeros(N, dtype=np.int64)
    if cycle == 0 or length <= 0:
        return h_bytes, s_bytes
    for i in range(M):
        h_bytes[i] = bytes_in_window(offset, length, i * h_eff, h_eff, cycle)
    base = M * h_eff
    for j in range(N):
        s_bytes[j] = bytes_in_window(offset, length, base + j * s_eff, s_eff, cycle)
    return h_bytes, s_bytes


def per_server_bytes_batch(
    offsets: np.ndarray, lengths: np.ndarray, M: int, N: int, h: int, s: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`per_server_bytes` over many extents.

    ``offsets`` and ``lengths`` are 1-D integer arrays of equal shape;
    the result is ``(h_bytes, s_bytes)`` with shapes ``(K, M)`` and
    ``(K, N)`` for ``K`` extents.  This is the kernel the RSSD search
    calls once per ``<h, s>`` candidate.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if offsets.shape != lengths.shape or offsets.ndim != 1:
        raise ValueError("offsets and lengths must be equal-shape 1-D arrays")
    K = offsets.shape[0]
    h_eff = h if M > 0 else 0
    s_eff = s if N > 0 else 0
    cycle = M * h_eff + N * s_eff
    h_bytes = np.zeros((K, M), dtype=np.int64)
    s_bytes = np.zeros((K, N), dtype=np.int64)
    if cycle == 0 or K == 0:
        return h_bytes, s_bytes

    ends = offsets + lengths

    def cumulative(y: np.ndarray, start: int, width: int) -> np.ndarray:
        full, rem = np.divmod(y, cycle)
        return full * width + np.clip(rem - start, 0, width)

    if h_eff > 0:
        for i in range(M):
            a = i * h_eff
            h_bytes[:, i] = cumulative(ends, a, h_eff) - cumulative(offsets, a, h_eff)
    if s_eff > 0:
        base = M * h_eff
        for j in range(N):
            a = base + j * s_eff
            s_bytes[:, j] = cumulative(ends, a, s_eff) - cumulative(offsets, a, s_eff)
    # zero out degenerate (length <= 0) rows
    empty = lengths <= 0
    if empty.any():
        h_bytes[empty] = 0
        s_bytes[empty] = 0
    return h_bytes, s_bytes

"""Region-partitioned layouts: a different stripe pair per file region.

HARL (Fig. 2) divides a file's logical space into consecutive regions
and gives each one its own :class:`~repro.layouts.varied.VariedStripeLayout`.
MHA's reordered region files each carry a single varied layout, but the
*original* file view used before reordering is also region-shaped, so
both schemes share this composition.

Each region maps into its own storage object (named
``f"{obj}/r{index}"``), matching the implementation note in §III-E that
"each region is implemented by a physical file in the same file
system".
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from ..exceptions import LayoutError
from .base import Layout, SubRequest

__all__ = ["Region", "RegionLayout"]


@dataclass(frozen=True)
class Region:
    """One logical region ``[start, end)`` with its own layout.

    ``layout`` maps *region-local* offsets (0-based within the region)
    onto servers.
    """

    start: int
    end: int
    layout: Layout

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise LayoutError(
                f"invalid region bounds [{self.start}, {self.end})"
            )

    @property
    def size(self) -> int:
        return self.end - self.start


class RegionLayout(Layout):
    """A file layout assembled from consecutive regions.

    Regions must be sorted, non-overlapping and gap-free from offset 0;
    extents beyond the last region fall into an ``overflow`` layout
    (the last region's layout pattern continued), so the file can grow.
    """

    def __init__(self, regions: Sequence[Region], obj: str = "file") -> None:
        if not regions:
            raise LayoutError("RegionLayout needs at least one region")
        cursor = 0
        for idx, region in enumerate(regions):
            if region.start != cursor:
                raise LayoutError(
                    f"region {idx} starts at {region.start}, expected {cursor}"
                )
            cursor = region.end
        self._regions = tuple(regions)
        self._starts = [r.start for r in self._regions]
        self.obj = obj

    @property
    def regions(self) -> Sequence[Region]:
        return self._regions

    @property
    def servers(self) -> Sequence[int]:
        seen: list[int] = []
        for region in self._regions:
            for srv in region.layout.servers:
                if srv not in seen:
                    seen.append(srv)
        return tuple(seen)

    @property
    def span(self) -> int:
        """Total bytes covered by explicit regions."""
        return self._regions[-1].end

    def region_at(self, offset: int) -> tuple[int, Region]:
        """The (index, region) containing logical ``offset``.

        Offsets past the last region clamp to the last region, whose
        layout pattern extends indefinitely (region-local offsets keep
        growing), mirroring how a PFS keeps striping a growing file.
        """
        if offset < 0:
            raise LayoutError(f"offset must be >= 0, got {offset}")
        idx = bisect_right(self._starts, offset) - 1
        return idx, self._regions[idx]

    def map_extent(self, offset: int, length: int) -> list[SubRequest]:
        if offset < 0 or length < 0:
            raise LayoutError("offset and length must be non-negative")
        fragments: list[SubRequest] = []
        cursor = offset
        end = offset + length
        while cursor < end:
            idx, region = self.region_at(cursor)
            if idx == len(self._regions) - 1:
                region_end = end  # last region extends indefinitely
            else:
                region_end = min(region.end, end)
            take = region_end - cursor
            local = cursor - region.start
            for frag in region.layout.map_extent(local, take):
                fragments.append(
                    SubRequest(
                        server=frag.server,
                        obj=frag.obj,
                        offset=frag.offset,
                        length=frag.length,
                        logical_offset=region.start + frag.logical_offset,
                    )
                )
            cursor = region_end
        return fragments

    def __repr__(self) -> str:
        return f"RegionLayout({len(self._regions)} regions, obj={self.obj!r})"

"""Region-partitioned layouts: a different stripe pair per file region.

HARL (Fig. 2) divides a file's logical space into consecutive regions
and gives each one its own :class:`~repro.layouts.varied.VariedStripeLayout`.
MHA's reordered region files each carry a single varied layout, but the
*original* file view used before reordering is also region-shaped, so
both schemes share this composition.

Each region maps into its own storage object (named
``f"{obj}/r{index}"``), matching the implementation note in §III-E that
"each region is implemented by a physical file in the same file
system".
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from ..exceptions import LayoutError
from .base import Layout, SubRequest
from .batch import MergedRuns, merged_runs_of

__all__ = ["Region", "RegionLayout"]


@dataclass(frozen=True)
class Region:
    """One logical region ``[start, end)`` with its own layout.

    ``layout`` maps *region-local* offsets (0-based within the region)
    onto servers.
    """

    start: int
    end: int
    layout: Layout

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise LayoutError(
                f"invalid region bounds [{self.start}, {self.end})"
            )

    @property
    def size(self) -> int:
        return self.end - self.start


class RegionLayout(Layout):
    """A file layout assembled from consecutive regions.

    Regions must be sorted, non-overlapping and gap-free from offset 0;
    extents beyond the last region fall into an ``overflow`` layout
    (the last region's layout pattern continued), so the file can grow.
    """

    def __init__(self, regions: Sequence[Region], obj: str = "file") -> None:
        if not regions:
            raise LayoutError("RegionLayout needs at least one region")
        cursor = 0
        for idx, region in enumerate(regions):
            if region.start != cursor:
                raise LayoutError(
                    f"region {idx} starts at {region.start}, expected {cursor}"
                )
            cursor = region.end
        self._regions = tuple(regions)
        self._starts = [r.start for r in self._regions]
        self.obj = obj

    @property
    def regions(self) -> Sequence[Region]:
        return self._regions

    @property
    def servers(self) -> Sequence[int]:
        seen: list[int] = []
        for region in self._regions:
            for srv in region.layout.servers:
                if srv not in seen:
                    seen.append(srv)
        return tuple(seen)

    @property
    def span(self) -> int:
        """Total bytes covered by explicit regions."""
        return self._regions[-1].end

    def region_at(self, offset: int) -> tuple[int, Region]:
        """The (index, region) containing logical ``offset``.

        Offsets past the last region clamp to the last region, whose
        layout pattern extends indefinitely (region-local offsets keep
        growing), mirroring how a PFS keeps striping a growing file.
        """
        if offset < 0:
            raise LayoutError(f"offset must be >= 0, got {offset}")
        idx = bisect_right(self._starts, offset) - 1
        return idx, self._regions[idx]

    def map_extent(self, offset: int, length: int) -> list[SubRequest]:
        if offset < 0 or length < 0:
            raise LayoutError("offset and length must be non-negative")
        fragments: list[SubRequest] = []
        cursor = offset
        end = offset + length
        while cursor < end:
            idx, region = self.region_at(cursor)
            if idx == len(self._regions) - 1:
                region_end = end  # last region extends indefinitely
            else:
                region_end = min(region.end, end)
            take = region_end - cursor
            local = cursor - region.start
            for frag in region.layout.map_extent(local, take):
                fragments.append(
                    SubRequest(
                        server=frag.server,
                        obj=frag.obj,
                        offset=frag.offset,
                        length=frag.length,
                        logical_offset=region.start + frag.logical_offset,
                    )
                )
            cursor = region_end
        return fragments

    def merged_extent_runs(
        self, offsets: Sequence[int], lengths: Sequence[int]
    ) -> MergedRuns | None:
        """Batch kernel: split extents at region boundaries, batch each
        region's pieces through its sublayout, reassemble per extent.

        Pieces of one extent cover ascending logical ranges and each
        piece's runs come out first-logical-sorted, so concatenating
        pieces in split order keeps the extent's runs sorted.  Requires
        every region to use a distinct storage object — otherwise runs
        could merge *across* regions and the exact per-extent object
        path must be used instead (``None`` is returned).
        """
        region_objs = [region.layout.obj for region in self._regions]
        if len(set(region_objs)) != len(region_objs):
            return None
        n = len(offsets)
        last = len(self._regions) - 1
        # per extent: (region index, position in that region's batch)
        pieces: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        per_region: dict[int, tuple[list[int], list[int]]] = {}
        for k in range(n):
            offset = int(offsets[k])
            length = int(lengths[k])
            if offset < 0 or length < 0:
                raise LayoutError("offset and length must be non-negative")
            cursor = offset
            end = offset + length
            while cursor < end:
                idx, region = self.region_at(cursor)
                region_end = end if idx == last else min(region.end, end)
                batch = per_region.setdefault(idx, ([], []))
                pieces[k].append((idx, len(batch[0])))
                batch[0].append(cursor - region.start)
                batch[1].append(region_end - cursor)
                cursor = region_end
        runs_by_region: dict[int, MergedRuns] = {}
        n_fragments = 0
        for idx, (local_offsets, local_lengths) in per_region.items():
            runs = merged_runs_of(
                self._regions[idx].layout, local_offsets, local_lengths
            )
            runs_by_region[idx] = runs
            n_fragments += runs.n_fragments
        servers: list[int] = []
        objs: list[str] = []
        offs: list[int] = []
        lens: list[int] = []
        firsts: list[int] = []
        starts: list[int] = [0]
        for k in range(n):
            for idx, j in pieces[k]:
                runs = runs_by_region[idx]
                lo, hi = runs.starts[j], runs.starts[j + 1]
                base = self._regions[idx].start
                servers.extend(runs.servers[lo:hi])
                objs.extend(runs.objs[lo:hi])
                offs.extend(runs.offsets[lo:hi])
                lens.extend(runs.lengths[lo:hi])
                if base:
                    firsts.extend(x + base for x in runs.first_logicals[lo:hi])
                else:
                    firsts.extend(runs.first_logicals[lo:hi])
            starts.append(len(servers))
        return MergedRuns(
            servers=servers,
            objs=objs,
            offsets=offs,
            lengths=lens,
            first_logicals=firsts,
            starts=starts,
            n_fragments=n_fragments,
        )

    def __repr__(self) -> str:
        return f"RegionLayout({len(self._regions)} regions, obj={self.obj!r})"

"""I/O tracing substrate (the paper's IOSIG role)."""

from .analysis import (
    Phase,
    TraceStats,
    burst_clusters,
    burst_ids_of,
    concurrency_of,
    split_phases,
    trace_statistics,
)
from .collector import IOCollector
from .record import Trace, TraceRecord
from .tracefile import load_trace, load_trace_dir, save_trace, save_trace_per_rank

__all__ = [
    "Trace",
    "TraceRecord",
    "IOCollector",
    "Phase",
    "TraceStats",
    "split_phases",
    "concurrency_of",
    "burst_clusters",
    "burst_ids_of",
    "trace_statistics",
    "save_trace",
    "load_trace",
    "save_trace_per_rank",
    "load_trace_dir",
]

"""I/O tracing substrate (the paper's IOSIG role)."""

from .analysis import (
    Phase,
    TraceStats,
    burst_clusters,
    burst_ids_of,
    concurrency_of,
    split_phases,
    trace_statistics,
)
from .collector import IOCollector
from .columnar import (
    TRACE_DTYPE,
    ColumnarTrace,
    PhaseSlices,
    as_columnar_trace,
    burst_ids_columnar,
    concurrency_columnar,
    split_phases_columnar,
)
from .record import Trace, TraceRecord
from .tracefile import (
    load_trace,
    load_trace_dir,
    load_trace_mmap,
    save_trace,
    save_trace_columnar,
    save_trace_per_rank,
)

__all__ = [
    "Trace",
    "TraceRecord",
    "IOCollector",
    "Phase",
    "TraceStats",
    "split_phases",
    "concurrency_of",
    "burst_clusters",
    "burst_ids_of",
    "trace_statistics",
    "save_trace",
    "load_trace",
    "save_trace_per_rank",
    "load_trace_dir",
    "TRACE_DTYPE",
    "ColumnarTrace",
    "PhaseSlices",
    "as_columnar_trace",
    "split_phases_columnar",
    "concurrency_columnar",
    "burst_ids_columnar",
    "save_trace_columnar",
    "load_trace_mmap",
]

"""Trace records — the unit of I/O profiling data.

The paper's collector (IOSIG) records, per file operation: process ID,
MPI rank, file descriptor, request type, file offset, request size and
time stamp (§III-C).  :class:`TraceRecord` carries exactly those
fields (plus the file name, which IOSIG keeps in its per-file trace
naming).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

from ..devices.base import READ, WRITE
from ..exceptions import TraceError

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One file operation observed by the collector.

    Ordering is by ``(offset, timestamp, rank)`` so that a sorted trace
    is "in ascending order in terms of offsets" as §III-C requires for
    the downstream phases.
    """

    offset: int
    timestamp: float
    rank: int
    pid: int = 0
    fd: int = 0
    file: str = "file"
    op: str = READ
    size: int = 0

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise TraceError(f"offset must be >= 0, got {self.offset}")
        if self.size <= 0:
            raise TraceError(f"size must be > 0, got {self.size}")
        if self.op not in (READ, WRITE):
            raise TraceError(f"op must be 'read' or 'write', got {self.op!r}")
        if self.timestamp < 0:
            raise TraceError(f"timestamp must be >= 0, got {self.timestamp}")

    @property
    def end(self) -> int:
        """One past the last byte the request touches."""
        return self.offset + self.size

    def shifted(self, delta: int) -> "TraceRecord":
        """Copy with the offset moved by ``delta`` bytes."""
        return replace(self, offset=self.offset + delta)


class Trace(Sequence[TraceRecord]):
    """An immutable sequence of trace records with common queries."""

    def __init__(self, records: Iterable[TraceRecord]) -> None:
        self._records: tuple[TraceRecord, ...] = tuple(records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return Trace(self._records[index])
        return self._records[index]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._records == other._records

    def __hash__(self) -> int:
        return hash(self._records)

    def sorted_by_offset(self) -> "Trace":
        """Records in ascending offset order (§III-C ordering)."""
        return Trace(sorted(self._records))

    def sorted_by_time(self) -> "Trace":
        """Records in issue order.

        The key is the full ``(timestamp, rank, offset, size)`` tuple so
        the ordering is specified, not an accident of sort stability —
        the columnar ``time_order`` argsort mirrors exactly this key.
        """
        return Trace(
            sorted(
                self._records,
                key=lambda r: (r.timestamp, r.rank, r.offset, r.size),
            )
        )

    def for_file(self, file: str) -> "Trace":
        """Only the records touching ``file``."""
        return Trace(r for r in self._records if r.file == file)

    def partition_by_file(self) -> dict[str, "Trace"]:
        """One-pass file → sub-trace partition, first-appearance key order.

        Equivalent to ``{f: trace.for_file(f) for f in trace.files()}``
        but a single scan instead of O(files × records).
        """
        groups: dict[str, list[TraceRecord]] = {}
        for r in self._records:
            groups.setdefault(r.file, []).append(r)
        return {file: Trace(recs) for file, recs in groups.items()}

    def files(self) -> tuple[str, ...]:
        """Distinct file names, in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.file, None)
        return tuple(seen)

    def ranks(self) -> tuple[int, ...]:
        """Distinct ranks, ascending."""
        return tuple(sorted({r.rank for r in self._records}))

    def total_bytes(self) -> int:
        """Sum of request sizes."""
        return sum(r.size for r in self._records)

    def extent(self) -> tuple[int, int]:
        """Smallest ``[lo, hi)`` covering every request (0,0 if empty)."""
        if not self._records:
            return (0, 0)
        lo = min(r.offset for r in self._records)
        hi = max(r.end for r in self._records)
        return (lo, hi)

    def max_size(self) -> int:
        """Largest request size (``r_max`` in Algorithm 2); 0 if empty."""
        return max((r.size for r in self._records), default=0)

    def __repr__(self) -> str:
        return f"Trace({len(self._records)} records)"

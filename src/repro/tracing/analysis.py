"""Trace analysis: I/O phases and request concurrency.

MHA's similarity features are request **size** and request
**concurrency**, where concurrency is "the number of requests that are
simultaneously issued to the file" (§III-D).  From a timestamped trace
we recover that number by segmenting the trace into *I/O phases*
(bursts separated by a time gap, the standard trace-analysis heuristic
the paper's HPC workloads exhibit between compute phases) and counting
the requests issued within each phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .record import Trace, TraceRecord

__all__ = ["Phase", "split_phases", "concurrency_of", "trace_statistics", "TraceStats"]


@dataclass(frozen=True)
class Phase:
    """A burst of requests issued close together in time."""

    start_time: float
    end_time: float
    records: tuple[TraceRecord, ...]

    @property
    def concurrency(self) -> int:
        """Requests simultaneously in flight during this phase."""
        return len(self.records)

    @property
    def distinct_ranks(self) -> int:
        return len({r.rank for r in self.records})


def split_phases(trace: Trace, gap: float = 0.5) -> list[Phase]:
    """Segment a trace into phases at timestamp gaps larger than ``gap``.

    Records are first time-ordered.  ``gap`` is in the trace's own time
    unit (simulated seconds for collector-produced traces).
    """
    if gap <= 0:
        raise ValueError(f"gap must be > 0, got {gap}")
    ordered = list(trace.sorted_by_time())
    if not ordered:
        return []
    phases: list[Phase] = []
    current: list[TraceRecord] = [ordered[0]]
    for record in ordered[1:]:
        if record.timestamp - current[-1].timestamp > gap:
            phases.append(
                Phase(current[0].timestamp, current[-1].timestamp, tuple(current))
            )
            current = [record]
        else:
            current.append(record)
    phases.append(Phase(current[0].timestamp, current[-1].timestamp, tuple(current)))
    return phases


def _phase_spatial_threshold(ordered: list[TraceRecord]) -> int:
    """Adaptive split distance for one phase's offset-sorted records.

    A phase whose requests drive *different parts of the file with
    different process counts* (the paper's §I heterogeneity, exercised
    by Fig. 9) shows two gap populations: near-zero gaps inside each
    dense part and huge gaps between parts.  Splitting at
    ``16 * median_gap + 4 * max_request_size`` separates those without
    splitting phases whose requests are spread any *other* way:

    * uniformly spread (one request per process area) — every gap sits
      at the median, far below 16x it;
    * randomly shuffled over the file — the largest neighbour gap of an
      (approximately exponential) gap population stays well under 16x
      the median for realistic phase sizes;
    * dense tilings — gaps are zero and the ``4 * max_size`` term keeps
      the threshold above incidental holes.
    """
    gaps = [
        max(0, nxt.offset - cur.end)
        for cur, nxt in zip(ordered, ordered[1:])
    ]
    if not gaps:
        return 0
    gaps.sort()
    median = gaps[len(gaps) // 2]
    max_size = max(r.size for r in ordered)
    return 16 * median + 4 * max_size


def burst_clusters(
    trace: Trace, gap: float = 0.5, spatial: bool | int = False
) -> list[list[TraceRecord]]:
    """The trace's *bursts*: groups of requests issued simultaneously.

    With ``spatial=False`` a burst is simply an I/O phase (the paper's
    literal "number of requests that are simultaneously issued to the
    file").  With ``spatial=True`` each phase is additionally clustered
    by file location using an adaptive gap threshold (see
    :func:`_phase_spatial_threshold`); an integer value uses that fixed
    byte threshold instead.  Spatial clustering recovers the
    *per-location* concurrency MHA needs when different file parts see
    different process counts (Fig. 9).
    """
    clusters: list[list[TraceRecord]] = []
    for phase in split_phases(trace, gap=gap):
        if spatial is False:
            clusters.append(list(phase.records))
            continue
        ordered = sorted(phase.records, key=lambda r: (r.offset, r.rank))
        threshold = (
            _phase_spatial_threshold(ordered) if spatial is True else int(spatial)
        )
        cluster: list[TraceRecord] = [ordered[0]]
        clusters.append(cluster)
        for record in ordered[1:]:
            if record.offset - cluster[-1].end > threshold:
                cluster = [record]
                clusters.append(cluster)
            else:
                cluster.append(record)
    return clusters


def concurrency_of(
    trace: Trace, gap: float = 0.5, spatial: bool | int = False
) -> dict[TraceRecord, int]:
    """Per-record concurrency: the size of the record's burst.

    Records that compare equal (identical fields) share a phase by
    construction and therefore a single entry.  See
    :func:`burst_clusters` for the burst definition.
    """
    mapping: dict[TraceRecord, int] = {}
    for members in burst_clusters(trace, gap=gap, spatial=spatial):
        for record in members:
            mapping[record] = len(members)
    return mapping


def burst_ids_of(
    trace: Trace, gap: float = 0.5, spatial: bool | int = False
) -> dict[TraceRecord, int]:
    """Per-record burst identifier (dense ints, one per burst).

    The layout determinator uses burst ids to evaluate the cost model
    against the trace's *actual* simultaneous request groups rather
    than a statistical approximation of them.
    """
    mapping: dict[TraceRecord, int] = {}
    for idx, members in enumerate(burst_clusters(trace, gap=gap, spatial=spatial)):
        for record in members:
            mapping[record] = idx
    return mapping


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (used in reports and sanity tests)."""

    count: int
    total_bytes: int
    read_fraction: float
    mean_size: float
    max_size: int
    min_size: int
    distinct_sizes: int
    distinct_ranks: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.count} requests, {self.total_bytes} bytes, "
            f"{self.read_fraction:.0%} reads, sizes "
            f"[{self.min_size}, {self.max_size}] mean {self.mean_size:.0f}"
        )


def trace_statistics(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for a trace (zeros when empty)."""
    if len(trace) == 0:
        return TraceStats(0, 0, 0.0, 0.0, 0, 0, 0, 0)
    sizes = np.array([r.size for r in trace], dtype=np.int64)
    reads = sum(1 for r in trace if r.op == "read")
    return TraceStats(
        count=len(trace),
        total_bytes=int(sizes.sum()),
        read_fraction=reads / len(trace),
        mean_size=float(sizes.mean()),
        max_size=int(sizes.max()),
        min_size=int(sizes.min()),
        distinct_sizes=int(np.unique(sizes).size),
        distinct_ranks=len(trace.ranks()),
    )

"""Columnar traces: the structured-array spine of the offline pipeline.

The record-walking path (:class:`~repro.tracing.record.Trace` over
:class:`~repro.tracing.record.TraceRecord` dataclasses) is the
readable reference, but at millions of requests the per-object
overhead dominates the whole §III-C workflow — ingest, phase
splitting, burst clustering, Algorithm 1 feature extraction.  This
module carries the same trace as one NumPy structured array
(:data:`TRACE_DTYPE`) with interned file-name codes, plus vectorized
twins of the hot analysis functions:

* :func:`split_phases_columnar`  — :func:`~repro.tracing.analysis.split_phases`
* :func:`burst_ids_columnar`     — :func:`~repro.tracing.analysis.burst_ids_of`
* :func:`concurrency_columnar`   — :func:`~repro.tracing.analysis.concurrency_of`

Every twin is registered in :mod:`repro.contracts` with
:func:`~repro.contracts.twin_of`, so the RL1xx static rules and the
generated hypothesis differential suites police bit-identity against
the record path.  The subtle part of that identity is *duplicate
records*: the reference functions return ``dict[TraceRecord, int]``
mappings, so identical records collapse onto one entry and the **last**
burst to touch the record wins.  The columnar twins reproduce exactly
that dict-update semantics (:func:`concurrency_and_burst_ids` /
:func:`identity_classes`) instead of the naive per-index value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..contracts import twin_of
from ..devices.base import READ, WRITE
from ..exceptions import TraceError
from .record import Trace, TraceRecord

__all__ = [
    "TRACE_DTYPE",
    "OP_NAMES",
    "ColumnarTrace",
    "PhaseSlices",
    "split_phases_columnar",
    "burst_ids_columnar",
    "concurrency_columnar",
    "concurrency_and_burst_ids",
    "identity_classes",
    "as_columnar_trace",
]

#: op-code interning: index into this tuple is the on-array ``op`` code
OP_NAMES: tuple[str, str] = (READ, WRITE)
_OP_CODES: dict[str, int] = {READ: 0, WRITE: 1}

#: one trace record as a structured-array row — §III-C's collector
#: fields (pid, rank, fd, type, offset, size, timestamp) plus the
#: interned file-name code.  Explicitly little-endian so the
#: memory-mapped on-disk format (:mod:`repro.tracing.tracefile`) is
#: byte-stable across hosts.
TRACE_DTYPE = np.dtype(
    [
        ("offset", "<i8"),
        ("timestamp", "<f8"),
        ("rank", "<i4"),
        ("pid", "<i4"),
        ("fd", "<i4"),
        ("file", "<i4"),
        ("op", "u1"),
        ("size", "<i8"),
    ]
)

#: the fields of a record's dataclass ordering (``TraceRecord`` is
#: ``order=True`` over this exact field sequence)
_ORDER_FIELDS = ("offset", "timestamp", "rank", "pid", "fd", "file", "op", "size")


class ColumnarTrace:
    """An immutable trace held as one structured array.

    ``data`` is a 1-D :data:`TRACE_DTYPE` array (possibly memory-mapped
    from disk); ``interned_files`` maps each ``file`` code to its name.
    The class mirrors :class:`~repro.tracing.record.Trace`'s query
    surface (``files``/``ranks``/``total_bytes``/``extent``/
    ``max_size``/``for_file``/``sorted_by_offset``/``sorted_by_time``)
    with vectorized implementations, and adds the batch accessors the
    flat replay kernel consumes.  Treat both the array and the instance
    as immutable.
    """

    __slots__ = ("_data", "_files")

    def __init__(
        self,
        data: np.ndarray,
        files: Sequence[str] = (),
        *,
        validate: bool = True,
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype != TRACE_DTYPE:
            raise TraceError(
                f"columnar trace dtype must be TRACE_DTYPE, got {arr.dtype}"
            )
        if arr.ndim != 1:
            raise TraceError(f"columnar trace must be 1-D, got shape {arr.shape}")
        self._data = arr
        self._files = tuple(files)
        if validate:
            self._validate()

    def _validate(self) -> None:
        if len(set(self._files)) != len(self._files):
            raise TraceError("interned file names must be distinct")
        d = self._data
        if d.size == 0:
            return
        code = d["file"]
        if int(code.min()) < 0 or int(code.max()) >= len(self._files):
            raise TraceError("file code out of range of the interned name table")
        if int(d["offset"].min()) < 0:
            raise TraceError("offset must be >= 0")
        if int(d["size"].min()) <= 0:
            raise TraceError("size must be > 0")
        if float(d["timestamp"].min()) < 0:
            raise TraceError("timestamp must be >= 0")
        if int(d["op"].max()) > 1:
            raise TraceError("op code must be 0 (read) or 1 (write)")

    # ------------------------------------------------------------ construct

    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "ColumnarTrace":
        """Batch-ingest already-validated :class:`TraceRecord` objects."""
        recs = records if isinstance(records, (list, tuple, Trace)) else list(records)
        data = np.empty(len(recs), dtype=TRACE_DTYPE)
        codes: dict[str, int] = {}
        for i, r in enumerate(recs):
            code = codes.setdefault(r.file, len(codes))
            data[i] = (
                r.offset,
                r.timestamp,
                r.rank,
                r.pid,
                r.fd,
                code,
                _OP_CODES[r.op],
                r.size,
            )
        return cls(data, tuple(codes), validate=False)

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Columnar copy of a record trace (same record order)."""
        return cls.from_records(trace)

    @classmethod
    def from_columns(
        cls,
        *,
        offsets: Sequence[int] | np.ndarray,
        timestamps: Sequence[float] | np.ndarray,
        ranks: Sequence[int] | np.ndarray,
        sizes: Sequence[int] | np.ndarray,
        ops: str | Sequence[int] | np.ndarray = READ,
        files: str | tuple[Sequence[int] | np.ndarray, Sequence[str]] = "file",
        pids: Sequence[int] | np.ndarray | None = None,
        fds: Sequence[int] | np.ndarray | None = None,
    ) -> "ColumnarTrace":
        """The ingest fast path: build a trace from parallel columns.

        ``ops`` is one op name for the whole trace or a per-record code
        array (0 = read, 1 = write); ``files`` is one file name or a
        ``(codes, names)`` pair interning per-record file codes.
        ``pids``/``fds`` default to 0, mirroring ``TraceRecord``.
        """
        off = np.asarray(offsets, dtype=np.int64).reshape(-1)
        n = off.size
        data = np.empty(n, dtype=TRACE_DTYPE)
        data["offset"] = off
        data["timestamp"] = np.asarray(timestamps, dtype=np.float64).reshape(-1)
        data["rank"] = np.asarray(ranks, dtype=np.int32).reshape(-1)
        data["size"] = np.asarray(sizes, dtype=np.int64).reshape(-1)
        if isinstance(ops, str):
            if ops not in _OP_CODES:
                raise TraceError(f"op must be 'read' or 'write', got {ops!r}")
            data["op"] = _OP_CODES[ops]
        else:
            data["op"] = np.asarray(ops, dtype=np.uint8).reshape(-1)
        if isinstance(files, str):
            data["file"] = 0
            names: tuple[str, ...] = (files,)
        else:
            codes, name_seq = files
            data["file"] = np.asarray(codes, dtype=np.int32).reshape(-1)
            names = tuple(name_seq)
        data["pid"] = (
            np.asarray(pids, dtype=np.int32).reshape(-1) if pids is not None else 0
        )
        data["fd"] = (
            np.asarray(fds, dtype=np.int32).reshape(-1) if fds is not None else 0
        )
        return cls(data, names)

    # -------------------------------------------------------------- queries

    @property
    def data(self) -> np.ndarray:
        """The backing structured array (do not mutate)."""
        return self._data

    @property
    def interned_files(self) -> tuple[str, ...]:
        """Code → file-name table (insertion order, may hold unused names)."""
        return self._files

    def __len__(self) -> int:
        return int(self._data.size)

    def record(self, i: int) -> TraceRecord:
        """Materialize record ``i`` (slow path — per-record objects)."""
        row = self._data[i]
        return TraceRecord(
            offset=int(row["offset"]),
            timestamp=float(row["timestamp"]),
            rank=int(row["rank"]),
            pid=int(row["pid"]),
            fd=int(row["fd"]),
            file=self._files[int(row["file"])],
            op=OP_NAMES[int(row["op"])],
            size=int(row["size"]),
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        return (self.record(i) for i in range(len(self)))

    def to_trace(self) -> Trace:
        """Materialize the full record trace (same order)."""
        d = self._data
        offs = d["offset"].tolist()
        times = d["timestamp"].tolist()
        ranks = d["rank"].tolist()
        pids = d["pid"].tolist()
        fds = d["fd"].tolist()
        codes = d["file"].tolist()
        op_codes = d["op"].tolist()
        sizes = d["size"].tolist()
        names = self._files
        return Trace(
            TraceRecord(
                offset=offs[i],
                timestamp=times[i],
                rank=ranks[i],
                pid=pids[i],
                fd=fds[i],
                file=names[codes[i]],
                op=OP_NAMES[op_codes[i]],
                size=sizes[i],
            )
            for i in range(len(offs))
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarTrace):
            return NotImplemented
        if len(self) != len(other):
            return False
        a, b = self._data, other._data
        for field in _ORDER_FIELDS:
            if field == "file":
                continue
            if not np.array_equal(a[field], b[field]):
                return False
        # interning may differ; compare per-record names semantically
        mine = [self._files[c] for c in a["file"].tolist()]
        theirs = [other._files[c] for c in b["file"].tolist()]
        return mine == theirs

    __hash__ = None  # type: ignore[assignment]

    def files(self) -> tuple[str, ...]:
        """Distinct file names, in first-appearance order."""
        if len(self) == 0:
            return ()
        codes = self._data["file"]
        _, first = np.unique(codes, return_index=True)
        first.sort()
        return tuple(self._files[int(codes[i])] for i in first.tolist())

    def ranks(self) -> tuple[int, ...]:
        """Distinct ranks, ascending."""
        return tuple(np.unique(self._data["rank"]).tolist())

    def total_bytes(self) -> int:
        return int(self._data["size"].sum())

    def read_bytes(self) -> int:
        d = self._data
        return int(d["size"][d["op"] == _OP_CODES[READ]].sum())

    def write_bytes(self) -> int:
        d = self._data
        return int(d["size"][d["op"] == _OP_CODES[WRITE]].sum())

    def extent(self) -> tuple[int, int]:
        if len(self) == 0:
            return (0, 0)
        d = self._data
        return (int(d["offset"].min()), int((d["offset"] + d["size"]).max()))

    def max_size(self) -> int:
        if len(self) == 0:
            return 0
        return int(self._data["size"].max())

    # ------------------------------------------------------------- reorders

    def take(self, indices: np.ndarray) -> "ColumnarTrace":
        """Row subset/permutation (copies the selected rows)."""
        return ColumnarTrace(self._data[indices], self._files, validate=False)

    def time_order(self) -> np.ndarray:
        """Stable argsort by ``(timestamp, rank, offset, size)`` — the
        :meth:`Trace.sorted_by_time` ordering, as a permutation."""
        d = self._data
        return _refined_order(d["timestamp"], d["rank"], d["offset"], d["size"])

    def sorted_by_time(self) -> "ColumnarTrace":
        """Records in issue order (mirrors :meth:`Trace.sorted_by_time`)."""
        return self.take(self.time_order())

    def offset_order(self) -> np.ndarray:
        """Argsort by the full record ordering (``TraceRecord``'s
        ``order=True`` field tuple), file names compared as strings."""
        d = self._data
        if len(self._files) > 1:
            name_rank = np.empty(len(self._files), dtype=np.int64)
            for pos, idx in enumerate(
                sorted(range(len(self._files)), key=self._files.__getitem__)
            ):
                name_rank[idx] = pos
            file_key = name_rank[d["file"]]
        else:
            file_key = d["file"]
        return _refined_order(
            d["offset"],
            d["timestamp"],
            d["rank"],
            d["pid"],
            d["fd"],
            file_key,
            d["op"],
            d["size"],
        )

    def sorted_by_offset(self) -> "ColumnarTrace":
        """Records in ascending offset order (§III-C ordering)."""
        return self.take(self.offset_order())

    def for_file(self, file: str) -> "ColumnarTrace":
        """Only the records touching ``file``."""
        try:
            code = self._files.index(file)
        except ValueError:
            return ColumnarTrace(
                np.empty(0, dtype=TRACE_DTYPE), self._files, validate=False
            )
        return self.take(np.flatnonzero(self._data["file"] == code))

    def file_partition(self) -> dict[str, np.ndarray]:
        """One-pass file → row-indices partition.

        Keys appear in first-appearance order (matching :meth:`files`);
        each value is the ascending index array of that file's records.
        Built with one stable argsort — no per-file rescan.
        """
        if len(self) == 0:
            return {}
        codes = self._data["file"]
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        uniq, starts = np.unique(sorted_codes, return_index=True)
        bounds = np.append(starts, codes.size)
        by_code = {
            int(uniq[j]): order[bounds[j] : bounds[j + 1]]
            for j in range(uniq.size)
        }
        first_seen = {code: int(idx[0]) for code, idx in by_code.items()}
        return {
            self._files[code]: by_code[code]
            for code in sorted(by_code, key=first_seen.__getitem__)
        }

    def __repr__(self) -> str:
        return f"ColumnarTrace({len(self)} records, {len(self._files)} files)"


def as_columnar_trace(trace: "Trace | ColumnarTrace") -> ColumnarTrace:
    """Coerce either trace representation to columnar (no-op if already)."""
    if isinstance(trace, ColumnarTrace):
        return trace
    return ColumnarTrace.from_trace(trace)


def _refined_order(primary: np.ndarray, *tiebreaks: np.ndarray) -> np.ndarray:
    """Stable argsort by ``(primary, *tiebreaks)``.

    Bit-identical to ``np.lexsort((*reversed(tiebreaks), primary))``
    but pays for one stable argsort on ``primary`` plus a full lexsort
    restricted to the rows whose primary key is tied — a fraction of a
    k-key lexsort (k stable sorts) when ``primary`` is nearly unique,
    which timestamps and offsets are on real traces.
    """
    order = np.argsort(primary, kind="stable")
    if not tiebreaks or order.size < 2:
        return order
    ps = primary[order]
    tied = ps[1:] == ps[:-1]
    if not tied.any():
        return order
    # a sorted position is inside a tied run iff it ties with either
    # neighbour; runs are contiguous, so re-sorting just those rows by
    # the full key tuple (primary included) slots each run back into
    # place without disturbing the untied rows
    in_run = np.empty(order.size, dtype=bool)
    in_run[0] = tied[0]
    in_run[-1] = tied[-1]
    in_run[1:-1] = tied[:-1] | tied[1:]
    idx = order[in_run]
    keys = (primary,) + tiebreaks
    sub = np.lexsort(tuple(k[idx] for k in reversed(keys)))
    order[in_run] = idx[sub]
    return order


# ------------------------------------------------------------------ analysis


@dataclass(frozen=True)
class PhaseSlices:
    """Vectorized phase segmentation.

    ``order`` is the time-sorted index permutation and phase ``p``
    covers the original-trace rows ``order[starts[p]:starts[p+1]]``;
    ``times`` holds the time-sorted timestamps, so phase ``p`` spans
    ``[times[starts[p]], times[starts[p+1] - 1]]`` — exactly the
    ``start_time``/``end_time`` of the reference
    :class:`~repro.tracing.analysis.Phase`.
    """

    order: np.ndarray
    starts: np.ndarray
    times: np.ndarray

    @property
    def n_phases(self) -> int:
        return int(self.starts.size) - 1

    def counts(self) -> np.ndarray:
        """Per-phase record count (the phase concurrency)."""
        return np.diff(self.starts)

    def indices(self, p: int) -> np.ndarray:
        """Original-trace row indices of phase ``p`` (issue order)."""
        return self.order[self.starts[p] : self.starts[p + 1]]

    def start_time(self, p: int) -> float:
        return float(self.times[self.starts[p]])

    def end_time(self, p: int) -> float:
        return float(self.times[self.starts[p + 1] - 1])


@twin_of(
    "repro.tracing.analysis:split_phases",
    kind="reduction",
    harness="trace_phases",
)
def split_phases_columnar(trace: ColumnarTrace, gap: float = 0.5) -> PhaseSlices:
    """Vectorized :func:`~repro.tracing.analysis.split_phases`.

    Returns the same segmentation as the reference — phase ``p``'s
    records are ``trace.record(i) for i in slices.indices(p)`` — as
    index slices instead of materialized :class:`Phase` tuples.
    """
    if gap <= 0:
        raise ValueError(f"gap must be > 0, got {gap}")
    order = trace.time_order()
    times = trace.data["timestamp"][order]
    if times.size == 0:
        return PhaseSlices(
            order=order.astype(np.intp),
            starts=np.zeros(1, dtype=np.intp),
            times=times,
        )
    breaks = np.flatnonzero(times[1:] - times[:-1] > gap) + 1
    starts = np.concatenate(([0], breaks, [times.size])).astype(np.intp)
    return PhaseSlices(order=order.astype(np.intp), starts=starts, times=times)


def _phase_thresholds(
    off_s: np.ndarray,
    end_s: np.ndarray,
    size_s: np.ndarray,
    pstarts: np.ndarray,
) -> np.ndarray:
    """Per-phase adaptive split distance, vectorized across phases.

    Mirrors :func:`repro.tracing.analysis._phase_spatial_threshold`:
    ``16 * median_gap + 4 * max_request_size`` with the upper median
    ``gaps_sorted[len(gaps) // 2]``, and 0 for single-record phases.
    """
    n = off_s.size
    n_ph = pstarts.size - 1
    counts = np.diff(pstarts)
    is_start = np.zeros(n, dtype=bool)
    is_start[pstarts[:-1]] = True
    prev_end = np.empty_like(end_s)
    prev_end[0] = 0
    prev_end[1:] = end_s[:-1]
    gaps = np.maximum(off_s - prev_end, 0)
    phase_id = np.cumsum(is_start) - 1
    inner = ~is_start
    gvals = gaps[inner]
    gphase = phase_id[inner]
    gmax = int(gvals.max()) if gvals.size else 0
    if gvals.size and (int(gphase[-1]) + 1) * (gmax + 1) < 2**62:
        # (phase, gap) packs into one int64 key: a single stable sort
        # instead of a two-key lexsort; equal keys need no tie-break
        # (only per-phase order statistics are read off the result)
        order_g = np.argsort(gphase * np.int64(gmax + 1) + gvals, kind="stable")
    else:
        order_g = np.lexsort((gvals, gphase))
    sorted_gaps = gvals[order_g]
    gcounts = counts - 1
    gstarts = np.concatenate(([0], np.cumsum(gcounts[:-1])))
    median = np.zeros(n_ph, dtype=np.int64)
    has = gcounts > 0
    median[has] = sorted_gaps[(gstarts + gcounts // 2)[has]]
    max_size = np.maximum.reduceat(size_s, pstarts[:-1])
    thresholds = 16 * median + 4 * max_size
    thresholds[~has] = 0
    return thresholds


def _burst_partition(
    trace: ColumnarTrace, gap: float, spatial: bool | int
) -> tuple[np.ndarray, np.ndarray]:
    """The burst iteration order + burst boundaries.

    ``(it_order, bstarts)``: walking ``it_order`` burst by burst (burst
    ``b`` is ``it_order[bstarts[b]:bstarts[b+1]]``) visits exactly the
    records of :func:`~repro.tracing.analysis.burst_clusters`'s output,
    cluster by cluster, member by member.
    """
    slices = split_phases_columnar(trace, gap=gap)
    order, pstarts = slices.order, slices.starts
    n = order.size
    if n == 0:
        return order, np.zeros(1, dtype=np.intp)
    if spatial is False:
        return order, pstarts
    d = trace.data
    off_t = d["offset"][order]
    rank_t = d["rank"][order]
    size_t = d["size"][order]
    is_start = np.zeros(n, dtype=bool)
    is_start[pstarts[:-1]] = True
    phase_id = np.cumsum(is_start) - 1
    # within-phase offset ordering: stable sort keeps the time order
    # for equal (offset, rank), matching the reference's sorted()
    off_max = int(off_t.max())
    if (int(phase_id[-1]) + 1) * (off_max + 1) < 2**62:
        # (phase, offset) packs into one int64 key
        composite = phase_id * np.int64(off_max + 1) + off_t
        perm = _refined_order(composite, rank_t)
    else:
        perm = np.lexsort((rank_t, off_t, phase_id))
    off_s = off_t[perm]
    size_s = size_t[perm]
    end_s = off_s + size_s
    it_order = order[perm]
    if spatial is True:
        thresholds = _phase_thresholds(off_s, end_s, size_s, pstarts)
        thr = np.repeat(thresholds, np.diff(pstarts))
    else:
        thr = np.full(n, int(spatial), dtype=np.int64)
    prev_end = np.empty_like(end_s)
    prev_end[0] = 0
    prev_end[1:] = end_s[:-1]
    new_cluster = is_start | (off_s - prev_end > thr)
    bstarts = np.append(np.flatnonzero(new_cluster), n).astype(np.intp)
    return it_order, bstarts


def identity_classes(trace: ColumnarTrace) -> tuple[np.ndarray, int]:
    """Duplicate-record equivalence classes.

    Returns ``(inverse, n_classes)`` where ``inverse[i]`` is the dense
    class id of record ``i`` and records compare equal exactly when
    every ``TraceRecord`` field matches (the dict-key semantics of the
    reference analysis functions).
    """
    n = len(trace)
    if n == 0:
        return np.zeros(0, dtype=np.int64), 0
    d = trace.data
    keys = tuple(d[f] for f in _ORDER_FIELDS)
    # any deterministic total order that puts equal rows next to each
    # other works here (class ids only need to be consistent, not
    # ranked), so lead with the near-unique timestamp column
    order = _refined_order(
        d["timestamp"], *(d[f] for f in _ORDER_FIELDS if f != "timestamp")
    )
    nxt, prv = order[1:], order[:-1]
    same = np.ones(n - 1, dtype=bool)
    for k in keys:
        same &= k[nxt] == k[prv]
    new_class = np.empty(n, dtype=bool)
    new_class[0] = True
    new_class[1:] = ~same
    class_of_sorted = np.cumsum(new_class) - 1
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = class_of_sorted
    return inverse, int(class_of_sorted[-1]) + 1


def concurrency_and_burst_ids(
    trace: ColumnarTrace, gap: float = 0.5, spatial: bool | int = False
) -> tuple[np.ndarray, np.ndarray]:
    """Per-record burst size and burst id, with dict-update collapse.

    One pass computes both arrays (index-aligned with the trace).  The
    reference functions key their result dicts by record value, so
    duplicate records all take the value of their *last* occurrence in
    cluster-iteration order; this reproduces that exactly.
    """
    n = len(trace)
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    it_order, bstarts = _burst_partition(trace, gap, spatial)
    counts = np.diff(bstarts).astype(np.int64)
    ids_by_pos = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    sizes_by_pos = np.repeat(counts, counts)
    pos_of = np.empty(n, dtype=np.int64)
    pos_of[it_order] = np.arange(n, dtype=np.int64)
    inverse, n_classes = identity_classes(trace)
    if n_classes == n:
        conc = np.empty(n, dtype=np.int64)
        bursts = np.empty(n, dtype=np.int64)
        conc[it_order] = sizes_by_pos
        bursts[it_order] = ids_by_pos
        return conc, bursts
    win_pos = np.full(n_classes, -1, dtype=np.int64)
    np.maximum.at(win_pos, inverse, pos_of)
    return sizes_by_pos[win_pos][inverse], ids_by_pos[win_pos][inverse]


@twin_of(
    "repro.tracing.analysis:concurrency_of",
    kind="reduction",
    harness="trace_concurrency",
)
def concurrency_columnar(
    trace: ColumnarTrace, gap: float = 0.5, spatial: bool | int = False
) -> np.ndarray:
    """Vectorized :func:`~repro.tracing.analysis.concurrency_of`.

    ``result[i]`` equals the reference dict's value for record ``i``
    (duplicates collapse onto their last burst, per dict-update order).
    """
    conc, _ = concurrency_and_burst_ids(trace, gap=gap, spatial=spatial)
    return conc


@twin_of(
    "repro.tracing.analysis:burst_ids_of",
    kind="reduction",
    harness="trace_bursts",
)
def burst_ids_columnar(
    trace: ColumnarTrace, gap: float = 0.5, spatial: bool | int = False
) -> np.ndarray:
    """Vectorized :func:`~repro.tracing.analysis.burst_ids_of` (same
    dict-update collapse semantics as :func:`concurrency_columnar`)."""
    _, bursts = concurrency_and_burst_ids(trace, gap=gap, spatial=spatial)
    return bursts


def collapse_by_last_group(
    values: np.ndarray,
    labels: np.ndarray,
    inverse: np.ndarray,
    n_classes: int,
) -> np.ndarray:
    """Cross-group dict-update collapse for per-record values.

    The pipeline's per-group ``dict.update`` loop lets a duplicate
    record in a *later* group overwrite the value an earlier group
    assigned (reachable only in the ``n <= k`` branch of Algorithm 1,
    where every request seeds its own group).  Given index-aligned
    ``values``, group ``labels`` and the :func:`identity_classes`
    mapping, every record takes its class's value from the
    highest-labelled group containing the class.
    """
    order = np.lexsort((labels, inverse))
    inv_sorted = inverse[order]
    last = np.flatnonzero(
        np.concatenate((inv_sorted[1:] != inv_sorted[:-1], [True]))
    )
    winner = order[last]  # one index per class, classes in id order
    return values[winner[inverse]]


# re-exported for Mapping-based callers that want a columnar view of the
# reference dicts (tests, docs examples)
def mapping_to_array(
    mapping: Mapping[TraceRecord, int], trace: Trace, default: int = 1
) -> np.ndarray:
    """Index-align a reference ``dict[TraceRecord, int]`` with a trace."""
    return np.array([mapping.get(r, default) for r in trace], dtype=np.int64)

"""Trace persistence — IOSIG writes "several trace files"; so do we.

The on-disk format is a plain CSV with a header line, one record per
row, chosen for longevity and diff-ability over pickles.  A trace can
be saved as a single file or split per rank like IOSIG does.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable

from ..exceptions import TraceError
from .record import Trace, TraceRecord

__all__ = ["save_trace", "load_trace", "save_trace_per_rank", "load_trace_dir"]

_FIELDS = ["pid", "rank", "fd", "file", "op", "offset", "size", "timestamp"]


def _write_rows(fh: io.TextIOBase, records: Iterable[TraceRecord]) -> None:
    writer = csv.writer(fh)
    writer.writerow(_FIELDS)
    for r in records:
        writer.writerow(
            [r.pid, r.rank, r.fd, r.file, r.op, r.offset, r.size, repr(r.timestamp)]
        )


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace to one CSV file."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        _write_rows(fh, trace)


def load_trace(path: str | Path) -> Trace:
    """Read a trace from a CSV file written by :func:`save_trace`."""
    path = Path(path)
    records: list[TraceRecord] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceError(f"{path}: empty trace file") from None
        if header != _FIELDS:
            raise TraceError(f"{path}: unexpected header {header!r}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(_FIELDS):
                raise TraceError(f"{path}:{lineno}: expected {len(_FIELDS)} fields")
            try:
                records.append(
                    TraceRecord(
                        pid=int(row[0]),
                        rank=int(row[1]),
                        fd=int(row[2]),
                        file=row[3],
                        op=row[4],
                        offset=int(row[5]),
                        size=int(row[6]),
                        timestamp=float(row[7]),
                    )
                )
            except (ValueError, TraceError) as exc:
                raise TraceError(f"{path}:{lineno}: bad record: {exc}") from exc
    return Trace(records)


def save_trace_per_rank(trace: Trace, directory: str | Path, stem: str = "trace") -> list[Path]:
    """Split a trace by rank into ``{stem}.rank{N}.csv`` files.

    Mirrors IOSIG's per-process trace files.  Returns the paths written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for rank in trace.ranks():
        sub = Trace(r for r in trace if r.rank == rank)
        path = directory / f"{stem}.rank{rank}.csv"
        save_trace(sub, path)
        paths.append(path)
    return paths


def load_trace_dir(directory: str | Path, stem: str = "trace") -> Trace:
    """Re-assemble a per-rank trace directory into one offset-sorted trace."""
    directory = Path(directory)
    records: list[TraceRecord] = []
    paths = sorted(directory.glob(f"{stem}.rank*.csv"))
    if not paths:
        raise TraceError(f"no {stem}.rank*.csv files under {directory}")
    for path in paths:
        records.extend(load_trace(path))
    return Trace(records).sorted_by_offset()

"""Trace persistence — IOSIG writes "several trace files"; so do we.

Two formats live here:

* **Text** (:func:`save_trace`/:func:`load_trace`): plain CSV with a
  header line, one record per row, chosen for longevity and
  diff-ability over pickles.  A trace can be saved as a single file or
  split per rank like IOSIG does.
* **Binary** (:func:`save_trace_columnar`/:func:`load_trace_mmap`): the
  columnar spine's on-disk twin — a little-endian header, the interned
  file-name table, then the raw :data:`~repro.tracing.columnar.TRACE_DTYPE`
  rows 64-byte aligned so :func:`numpy.memmap` can map them read-only.
  Million-request traces stream from the page cache instead of
  materializing ``TraceRecord`` objects.
"""

from __future__ import annotations

import csv
import io
import struct
from pathlib import Path
from typing import Iterable

import numpy as np

from ..contracts import twin_of
from ..exceptions import TraceError
from .columnar import TRACE_DTYPE, ColumnarTrace, as_columnar_trace
from .record import Trace, TraceRecord

__all__ = [
    "save_trace",
    "load_trace",
    "save_trace_per_rank",
    "load_trace_dir",
    "save_trace_columnar",
    "load_trace_mmap",
]

_FIELDS = ["pid", "rank", "fd", "file", "op", "offset", "size", "timestamp"]


def _write_rows(fh: io.TextIOBase, records: Iterable[TraceRecord]) -> None:
    writer = csv.writer(fh)
    writer.writerow(_FIELDS)
    for r in records:
        writer.writerow(
            [r.pid, r.rank, r.fd, r.file, r.op, r.offset, r.size, repr(r.timestamp)]
        )


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace to one CSV file."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        _write_rows(fh, trace)


def load_trace(path: str | Path) -> Trace:
    """Read a trace from a CSV file written by :func:`save_trace`."""
    path = Path(path)
    records: list[TraceRecord] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceError(f"{path}: empty trace file") from None
        if header != _FIELDS:
            raise TraceError(f"{path}: unexpected header {header!r}")
        for lineno, row in enumerate(reader, start=2):
            if len(row) != len(_FIELDS):
                raise TraceError(f"{path}:{lineno}: expected {len(_FIELDS)} fields")
            try:
                records.append(
                    TraceRecord(
                        pid=int(row[0]),
                        rank=int(row[1]),
                        fd=int(row[2]),
                        file=row[3],
                        op=row[4],
                        offset=int(row[5]),
                        size=int(row[6]),
                        timestamp=float(row[7]),
                    )
                )
            except (ValueError, TraceError) as exc:
                raise TraceError(f"{path}:{lineno}: bad record: {exc}") from exc
    return Trace(records)


def save_trace_per_rank(trace: Trace, directory: str | Path, stem: str = "trace") -> list[Path]:
    """Split a trace by rank into ``{stem}.rank{N}.csv`` files.

    Mirrors IOSIG's per-process trace files.  Returns the paths written.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for rank in trace.ranks():
        sub = Trace(r for r in trace if r.rank == rank)
        path = directory / f"{stem}.rank{rank}.csv"
        save_trace(sub, path)
        paths.append(path)
    return paths


def load_trace_dir(directory: str | Path, stem: str = "trace") -> Trace:
    """Re-assemble a per-rank trace directory into one offset-sorted trace."""
    directory = Path(directory)
    records: list[TraceRecord] = []
    paths = sorted(directory.glob(f"{stem}.rank*.csv"))
    if not paths:
        raise TraceError(f"no {stem}.rank*.csv files under {directory}")
    for path in paths:
        records.extend(load_trace(path))
    return Trace(records).sorted_by_offset()


# ------------------------------------------------------------------- binary

#: binary trace magic — "RTRC" + format version 1
_MAGIC = b"RTRC\x01\x00\x00\x00"
_HEADER = struct.Struct("<QQQ")  # n_records, n_files, names_blob_len
_ALIGN = 64


def _names_blob(names: Iterable[str]) -> bytes:
    out = bytearray()
    for name in names:
        raw = name.encode("utf-8")
        out += struct.pack("<I", len(raw))
        out += raw
    return bytes(out)


def _parse_names(blob: bytes, n_files: int, path: Path) -> tuple[str, ...]:
    names: list[str] = []
    pos = 0
    for _ in range(n_files):
        if pos + 4 > len(blob):
            raise TraceError(f"{path}: truncated file-name table")
        (length,) = struct.unpack_from("<I", blob, pos)
        pos += 4
        if pos + length > len(blob):
            raise TraceError(f"{path}: truncated file-name table")
        names.append(blob[pos : pos + length].decode("utf-8"))
        pos += length
    if pos != len(blob):
        raise TraceError(f"{path}: trailing bytes in file-name table")
    return tuple(names)


@twin_of(
    "repro.tracing.tracefile:save_trace",
    kind="reduction",
    harness="trace_roundtrip",
)
def save_trace_columnar(trace: "Trace | ColumnarTrace", path: str | Path) -> None:
    """Write a trace as the mmap-able binary columnar format.

    Layout: 8-byte magic, ``<QQQ`` header (record count, file count,
    name-table length), the length-prefixed utf-8 file-name table,
    zero padding to a 64-byte boundary, then the raw little-endian
    :data:`TRACE_DTYPE` rows.  The round trip through
    :func:`load_trace_mmap` preserves every record bit-for-bit, same
    as the text format's :func:`save_trace`/:func:`load_trace` pair.
    """
    col = as_columnar_trace(trace)
    path = Path(path)
    blob = _names_blob(col.interned_files)
    header = _MAGIC + _HEADER.pack(len(col), len(col.interned_files), len(blob))
    prefix_len = len(header) + len(blob)
    pad = (-prefix_len) % _ALIGN
    with path.open("wb") as fh:
        fh.write(header)
        fh.write(blob)
        fh.write(b"\x00" * pad)
        fh.write(col.data.tobytes())


def load_trace_mmap(path: str | Path) -> ColumnarTrace:
    """Map a binary trace written by :func:`save_trace_columnar`.

    The record array is a read-only :func:`numpy.memmap` view over the
    file — million-request traces open without copying.  Empty traces
    come back as a regular empty array (``mmap`` cannot map 0 bytes).
    """
    path = Path(path)
    size = path.stat().st_size
    with path.open("rb") as fh:
        head = fh.read(len(_MAGIC) + _HEADER.size)
        if len(head) != len(_MAGIC) + _HEADER.size or head[: len(_MAGIC)] != _MAGIC:
            raise TraceError(f"{path}: not a binary columnar trace")
        n_records, n_files, blob_len = _HEADER.unpack(head[len(_MAGIC) :])
        blob = fh.read(blob_len)
        if len(blob) != blob_len:
            raise TraceError(f"{path}: truncated file-name table")
    names = _parse_names(blob, n_files, path)
    prefix_len = len(head) + blob_len
    data_start = prefix_len + ((-prefix_len) % _ALIGN)
    expected = data_start + n_records * TRACE_DTYPE.itemsize
    if size != expected:
        raise TraceError(
            f"{path}: size mismatch (expected {expected} bytes, found {size})"
        )
    if n_records == 0:
        return ColumnarTrace(np.empty(0, dtype=TRACE_DTYPE), names)
    data = np.memmap(path, dtype=TRACE_DTYPE, mode="r", offset=data_start, shape=(n_records,))
    return ColumnarTrace(data, names)

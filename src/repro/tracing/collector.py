"""The I/O Collector — the tracing phase of the MHA workflow.

Plays the role of IOSIG (§III-C): a pluggable observer that the
simulated MPI-IO layer notifies on every file operation.  It assigns
timestamps from the simulated clock (or a caller-supplied clock
function) and can emit its records as a sorted :class:`Trace`.
"""

from __future__ import annotations

from typing import Callable

from ..devices.base import OpType
from .record import Trace, TraceRecord

__all__ = ["IOCollector"]


class IOCollector:
    """Accumulates :class:`TraceRecord` instances during a profiled run.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time; defaults to
        a monotone counter so records are orderable even without a
        simulator attached.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._records: list[TraceRecord] = []
        self._auto_time = 0.0
        self._clock = clock
        self.enabled = True

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        self._auto_time += 1.0
        return self._auto_time

    def record(
        self,
        *,
        rank: int,
        op: OpType,
        offset: int,
        size: int,
        file: str = "file",
        pid: int | None = None,
        fd: int = 0,
        timestamp: float | None = None,
    ) -> TraceRecord:
        """Record one file operation (no-op when disabled)."""
        rec = TraceRecord(
            offset=offset,
            timestamp=self._now() if timestamp is None else timestamp,
            rank=rank,
            pid=rank if pid is None else pid,
            fd=fd,
            file=file,
            op=op,
            size=size,
        )
        if self.enabled:
            self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self._records.clear()
        self._auto_time = 0.0

    def trace(self, sort_by_offset: bool = True) -> Trace:
        """The collected records as a trace (offset-sorted by default,
        matching the §III-C post-processing)."""
        trace = Trace(self._records)
        return trace.sorted_by_offset() if sort_by_offset else trace

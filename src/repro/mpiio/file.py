"""MPI-IO-like file handles over the simulated PFS.

Mirrors the subset of the MPI-IO surface the paper modifies (§IV-B):
``MPI_File_read/write`` (here :meth:`MPIFile.read_at` /
:meth:`MPIFile.write_at`) are intercepted by the ADIO dispatch layer,
which consults the file view — the MHA redirector or a plain layout —
and forwards the operation to the proper servers, transparently to the
caller.  Operations return completions the rank program yields on
(synchronous I/O is "issue then immediately wait").
"""

from __future__ import annotations

from ..devices.base import READ, WRITE
from ..simulate import Completion
from .adio import dispatch

__all__ = ["MPIFile"]


class MPIFile:
    """One rank's handle on a logical file."""

    def __init__(self, job, rank: int, path: str, collect: bool = True) -> None:
        self._job = job
        self._rank = rank
        self.path = path
        self._collect = collect
        self._closed = False

    def _op(self, op: str, offset: int, size: int) -> Completion:
        if self._closed:
            raise ValueError(f"I/O on closed file {self.path!r}")
        if self._collect and self._job.collector is not None:
            self._job.collector.record(
                rank=self._rank,
                op=op,
                offset=offset,
                size=size,
                file=self.path,
                timestamp=self._job.sim.now,
            )
        return dispatch(self._job.pfs, self._job.view, self.path, op, offset, size)

    def read_at(self, offset: int, size: int) -> Completion:
        """Start a read; yield the result to wait for completion."""
        return self._op(READ, offset, size)

    def write_at(self, offset: int, size: int) -> Completion:
        """Start a write; yield the result to wait for completion."""
        return self._op(WRITE, offset, size)

    def _collective(self, op: str, offset: int, size: int) -> Completion:
        if self._closed:
            raise ValueError(f"I/O on closed file {self.path!r}")
        if self._collect and self._job.collector is not None:
            self._job.collector.record(
                rank=self._rank,
                op=op,
                offset=offset,
                size=size,
                file=self.path,
                timestamp=self._job.sim.now,
            )
        return self._job.collective(self._rank, self.path, op, offset, size)

    def read_at_all(self, offset: int, size: int) -> Completion:
        """Collective read (``MPI_File_read_at_all``): every rank of
        the job must call it; all participants resume together once
        the slowest portion completes."""
        return self._collective(READ, offset, size)

    def write_at_all(self, offset: int, size: int) -> Completion:
        """Collective write (``MPI_File_write_at_all``); see
        :meth:`read_at_all`."""
        return self._collective(WRITE, offset, size)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "MPIFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

"""The ADIO dispatch layer — where MHA hooks into the middleware.

In MPICH2, file operations funnel through ADIO before reaching the file
system driver; the paper's implementation modifies exactly this spot so
"the user requests can be atomically forwarded to the alternative file
servers" (§IV-B).  :func:`dispatch` is our equivalent: map the request
through the active file view (redirector or static layout) and issue
the fragments to the PFS.
"""

from __future__ import annotations

from ..devices.base import OpType
from ..pfs.replay import FileView
from ..pfs.system import HybridPFS
from ..simulate import Completion

__all__ = ["dispatch"]


def dispatch(
    pfs: HybridPFS,
    view: FileView,
    path: str,
    op: OpType,
    offset: int,
    size: int,
) -> Completion:
    """Resolve and issue one file operation; returns its completion."""
    fragments = view.map_request(path, offset, size)
    return pfs.issue(op, fragments)

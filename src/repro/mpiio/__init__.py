"""Simulated MPI-IO middleware (the MPICH2 role): ranks, files, ADIO."""

from .adio import dispatch
from .file import MPIFile
from .rank import MPIJob, MPIRank

__all__ = ["MPIJob", "MPIRank", "MPIFile", "dispatch"]

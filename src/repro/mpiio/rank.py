"""Simulated MPI ranks and jobs.

The paper implements MHA inside MPICH2's MPI-IO path; applications call
``MPI_File_read/write`` and never see the redirection.  This module
gives examples and tests the same programming surface: an
:class:`MPIJob` spawns one simulated process per rank, each running a
user-supplied *program* — a generator taking an :class:`MPIRank` handle
and yielding on I/O completions — against the shared PFS simulator.
"""

from __future__ import annotations

from typing import Callable, Generator

from ..pfs.replay import FileView
from ..pfs.system import HybridPFS
from ..simulate import Completion, Simulator
from ..tracing.collector import IOCollector

__all__ = ["MPIRank", "MPIJob"]

class MPIRank:
    """Per-rank handle passed to rank programs."""

    def __init__(self, job: "MPIJob", rank: int) -> None:
        self._job = job
        self.rank = rank

    @property
    def size(self) -> int:
        """Total ranks in the job (``MPI_Comm_size``)."""
        return self._job.size

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._job.pfs.sim.now

    def open(self, path: str, collect: bool = True):
        """Open a file through the MPI-IO layer.

        Returns an :class:`repro.mpiio.file.MPIFile` handle.
        """
        from .file import MPIFile

        return MPIFile(self._job, self.rank, path, collect=collect)


# a rank program is a generator: yield completions (or delays) to wait
RankProgram = Callable[[MPIRank], Generator]


class MPIJob:
    """A simulated MPI job over a hybrid PFS.

    Parameters
    ----------
    pfs:
        The file system simulator to run against.
    view:
        File view resolving requests to servers (a scheme's output).
    size:
        Number of ranks.
    collector:
        Optional trace collector; when present, every MPI-IO operation
        is recorded with simulated timestamps (the tracing phase).
    """

    def __init__(
        self,
        pfs: HybridPFS,
        view: FileView,
        size: int,
        collector: IOCollector | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"job size must be >= 1, got {size}")
        self.pfs = pfs
        self.view = view
        self.size = size
        self.collector = collector

    @property
    def sim(self) -> Simulator:
        return self.pfs.sim

    def run(self, program: RankProgram) -> float:
        """Run ``program`` on every rank to completion (SPMD).

        Returns the simulated makespan of the job.
        """
        start = self.sim.now
        self._collectives: dict[tuple, _Collective] = {}
        self._collective_seq: dict[tuple, int] = {}
        for rank in range(self.size):
            handle = MPIRank(self, rank)
            self.sim.spawn(program(handle), name=f"rank{rank}")
        self.sim.run()
        return self.sim.now - start

    def collective(
        self, rank: int, path: str, op: str, offset: int, size: int
    ) -> Completion:
        """Join a collective I/O operation (``MPI_File_*_at_all``).

        Each rank's *n*-th collective call on ``(path, op)`` joins the
        same operation; the I/O is issued once every rank has arrived,
        and the returned completion fires — for every participant —
        when the slowest rank's portion finishes.  That
        arrive-issue-complete structure is the implicit barrier of
        MPI-IO's collective calls.
        """
        if not hasattr(self, "_collectives"):
            self._collectives = {}
            self._collective_seq = {}
        seq_key = (rank, path, op)
        seq = self._collective_seq.get(seq_key, 0)
        self._collective_seq[seq_key] = seq + 1
        key = (path, op, seq)
        coll = self._collectives.get(key)
        if coll is None:
            coll = _Collective(self.size)
            self._collectives[key] = coll
        coll.portions.append((rank, offset, size))
        if len(coll.portions) == self.size:
            from .adio import dispatch

            completions = [
                dispatch(self.pfs, self.view, path, op, o, s)
                for _, o, s in coll.portions
            ]
            self.sim.all_of(completions).add_waiter(coll.done.fire)
        return coll.done


class _Collective:
    """Book-keeping for one in-flight collective operation."""

    __slots__ = ("expected", "portions", "done")

    def __init__(self, expected: int) -> None:
        self.expected = expected
        self.portions: list[tuple[int, int, int]] = []
        self.done = Completion()

"""FaultPlan: a declarative, seeded, per-server fault schedule.

A plan is a tuple of :mod:`~repro.faults.models` entries plus one seed.
Compilation is deterministic and *per-model* independent: model ``i``
draws from ``derive_rng(SeedDomain.FAULTS, i, base=seed)`` (see
:mod:`repro.determinism`), so adding or removing one model never
changes what the others draw, and no other subsystem can alias a fault
stream.  Plans are frozen and picklable —
:func:`repro.harness.experiment.compare_schemes` ships them to worker
processes — and round-trip through plain dicts for the chaos CLI.

Usage::

    plan = FaultPlan((TransientSlowdown(server=0, factor=4.0),
                      ServerOutage(server=1, at=10.0)))
    plan.attach(pfs)            # compile + set server.faults
    replay_trace(pfs, view, trace)

Attaching compiles *fresh* state every time (write-cliff counters and
flat-path cursors are mutable), so one plan can drive any number of
independent replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from ..config import DEFAULT_FAULT_SEED
from ..determinism import SeedDomain, derive_rng
from ..exceptions import ConfigurationError
from .models import FaultModel, ServerTimeline, model_from_dict, model_to_dict
from .state import ServerFaultState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pfs.system import HybridPFS

__all__ = ["FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """A declarative fault schedule: models + seed (see module doc)."""

    faults: tuple[FaultModel, ...] = ()
    seed: int = DEFAULT_FAULT_SEED

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def servers(self) -> tuple[int, ...]:
        """Distinct server indices the plan degrades, ascending."""
        return tuple(sorted({model.server for model in self.faults}))

    def compile(self, num_servers: int) -> dict[int, ServerFaultState]:
        """Compile per-server fault state for a ``num_servers`` cluster.

        Returns a fresh state object per faulted server — safe to call
        repeatedly; each replay gets untouched cursors/counters.
        """
        timelines: dict[int, ServerTimeline] = {}
        for index, model in enumerate(self.faults):
            if not 0 <= model.server < num_servers:
                raise ConfigurationError(
                    f"fault model {index} targets server {model.server}, but the "
                    f"cluster has servers 0..{num_servers - 1}"
                )
            rng = derive_rng(SeedDomain.FAULTS, index, base=self.seed)
            timeline = timelines.setdefault(model.server, ServerTimeline())
            model.apply(timeline, rng)
        return {server: tl.build() for server, tl in sorted(timelines.items())}

    def attach(self, pfs: "HybridPFS") -> "FaultPlan":
        """Compile and install the plan on ``pfs``'s servers.

        Servers the plan does not mention get ``faults = None`` (any
        previously attached plan is cleared).  Returns ``self`` for
        chaining.
        """
        states = self.compile(len(pfs.servers))
        for srv in pfs.servers:
            srv.faults = states.get(srv.index)
        return self

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-compatible representation."""
        return {
            "seed": self.seed,
            "faults": [model_to_dict(model) for model in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        faults: Sequence[Any] = payload.get("faults", [])
        return cls(
            faults=tuple(model_from_dict(item) for item in faults),
            seed=int(payload.get("seed", DEFAULT_FAULT_SEED)),
        )

    def describe(self) -> str:
        """One line per model, for CLI output."""
        if not self.faults:
            return "fault plan: (healthy)"
        lines = [f"fault plan (seed={self.seed}):"]
        for model in self.faults:
            params = ", ".join(
                f"{key}={value}"
                for key, value in model_to_dict(model).items()
                if key not in ("kind", "server")
            )
            lines.append(f"  server {model.server}: {model.kind} ({params})")
        return "\n".join(lines)

"""Deterministic fault injection for the simulated PFS.

Declarative, seeded fault models (:mod:`~repro.faults.models`) compile
through a :class:`~repro.faults.plan.FaultPlan` into per-server
timelines (:mod:`~repro.faults.state`) that both replay engines consult
bit-identically.  See ``docs/architecture.md``, "Fault injection &
straggler-aware dispatch".
"""

from .models import (
    BackgroundScrub,
    FaultModel,
    ServerOutage,
    TransientSlowdown,
    WriteCliff,
    model_from_dict,
    model_to_dict,
)
from .plan import FaultPlan
from .state import CliffState, Scrub, ServerFaultState, Window

__all__ = [
    "BackgroundScrub",
    "CliffState",
    "FaultModel",
    "FaultPlan",
    "ServerFaultState",
    "ServerOutage",
    "Scrub",
    "TransientSlowdown",
    "Window",
    "WriteCliff",
    "model_from_dict",
    "model_to_dict",
]

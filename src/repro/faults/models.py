"""Declarative fault models: what can go wrong with a data server.

Each model is a frozen dataclass naming one server and one degradation
mechanism; a :class:`~repro.faults.plan.FaultPlan` is just a tuple of
them plus a seed.  Models are *declarative* — they carry parameters,
not state — and compile into :class:`~repro.faults.state.ServerFaultState`
timelines via :meth:`apply` (randomized models draw from the seeded
generator the plan hands them, so compilation is deterministic).

The four mechanisms mirror the degradation taxonomy of the straggler
literature (PAPERS.md):

* :class:`TransientSlowdown` — random slow windows (GC pauses, noisy
  neighbours, thermal throttling);
* :class:`BackgroundScrub` — periodic dilation while a scrub/patrol
  pass runs;
* :class:`ServerOutage` — a blackout followed by a rebuilding phase
  served at reduced speed;
* :class:`WriteCliff` — SSD write performance collapsing once the
  device's fast cache fills, recovering after idle gaps.

All factors are service-time *multipliers* (>= 1 degrades), so faults
never change which bytes land where — only when.  The conservation
property tests in ``tests/test_robustness.py`` pin that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..units import MiB
from .state import CliffState, Scrub, ServerFaultState, Window

__all__ = [
    "BackgroundScrub",
    "FaultModel",
    "MODEL_KINDS",
    "ServerOutage",
    "ServerTimeline",
    "TransientSlowdown",
    "WriteCliff",
    "model_from_dict",
    "model_to_dict",
]


@dataclass
class ServerTimeline:
    """One server's accumulated contributions before compilation."""

    windows: list[Window] = field(default_factory=list)
    outages: list[tuple[float, float]] = field(default_factory=list)
    scrubs: list[Scrub] = field(default_factory=list)
    cliff: CliffState | None = None

    def build(self) -> ServerFaultState:
        return ServerFaultState(
            windows=self.windows,
            outages=self.outages,
            scrubs=self.scrubs,
            cliff=self.cliff,
        )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class TransientSlowdown:
    """``windows`` random slow intervals drawn over ``[0, horizon)``.

    Starts are uniform, durations exponential with mean
    ``mean_duration``; overlapping draws compose multiplicatively when
    the plan flattens them.
    """

    kind: ClassVar[str] = "slowdown"
    server: int
    factor: float = 3.0
    windows: int = 4
    mean_duration: float = 2.0
    horizon: float = 120.0

    def __post_init__(self) -> None:
        _require(self.server >= 0, "fault server index must be >= 0")
        _require(self.factor > 0, "slowdown factor must be > 0")
        _require(self.windows >= 0, "window count must be >= 0")
        _require(self.mean_duration > 0, "mean_duration must be > 0")
        _require(self.horizon > 0, "horizon must be > 0")

    def apply(self, timeline: ServerTimeline, rng: np.random.Generator) -> None:
        starts = rng.uniform(0.0, self.horizon, self.windows)
        durations = rng.exponential(self.mean_duration, self.windows)
        for start, duration in zip(starts.tolist(), durations.tolist()):
            timeline.windows.append(Window(start, start + duration, self.factor))


@dataclass(frozen=True)
class BackgroundScrub:
    """Periodic dilation: ``duty`` seconds at the start of each
    ``period``-second cycle (offset by ``phase``) run ``factor`` slow."""

    kind: ClassVar[str] = "scrub"
    server: int
    period: float = 30.0
    duty: float = 6.0
    factor: float = 1.8
    phase: float = 0.0

    def __post_init__(self) -> None:
        _require(self.server >= 0, "fault server index must be >= 0")
        _require(self.period > 0, "scrub period must be > 0")
        _require(0 <= self.duty <= self.period, "scrub duty must be in [0, period]")
        _require(self.factor > 0, "scrub factor must be > 0")

    def apply(self, timeline: ServerTimeline, rng: np.random.Generator) -> None:
        timeline.scrubs.append(Scrub(self.period, self.duty, self.factor, self.phase))


@dataclass(frozen=True)
class ServerOutage:
    """Fail-then-rebuild: down for ``duration`` seconds starting
    ``at``, then serving at ``rebuild_factor`` for
    ``rebuild_duration`` seconds while it catches up."""

    kind: ClassVar[str] = "outage"
    server: int
    at: float = 0.0
    duration: float = 5.0
    rebuild_duration: float = 10.0
    rebuild_factor: float = 2.5

    def __post_init__(self) -> None:
        _require(self.server >= 0, "fault server index must be >= 0")
        _require(self.at >= 0, "outage start must be >= 0")
        _require(self.duration > 0, "outage duration must be > 0")
        _require(self.rebuild_duration >= 0, "rebuild_duration must be >= 0")
        _require(self.rebuild_factor > 0, "rebuild_factor must be > 0")

    def apply(self, timeline: ServerTimeline, rng: np.random.Generator) -> None:
        end = self.at + self.duration
        timeline.outages.append((self.at, end))
        if self.rebuild_duration > 0:
            timeline.windows.append(
                Window(end, end + self.rebuild_duration, self.rebuild_factor)
            )


@dataclass(frozen=True)
class WriteCliff:
    """SSD write cliff: once ``capacity_bytes`` of writes accumulate
    without an idle gap of ``recovery_idle`` seconds, writes run
    ``factor`` slow until the device gets such a gap."""

    kind: ClassVar[str] = "write_cliff"
    server: int
    capacity_bytes: int = 8 * MiB
    factor: float = 3.0
    recovery_idle: float = 1.0

    def __post_init__(self) -> None:
        _require(self.server >= 0, "fault server index must be >= 0")
        _require(self.capacity_bytes > 0, "capacity_bytes must be > 0")
        _require(self.factor > 0, "write-cliff factor must be > 0")
        _require(self.recovery_idle > 0, "recovery_idle must be > 0")

    def apply(self, timeline: ServerTimeline, rng: np.random.Generator) -> None:
        if timeline.cliff is not None:
            raise ConfigurationError(
                f"server {self.server} declares more than one write-cliff model"
            )
        timeline.cliff = CliffState(
            capacity_bytes=self.capacity_bytes,
            factor=self.factor,
            recovery_idle=self.recovery_idle,
        )


FaultModel = Union[TransientSlowdown, BackgroundScrub, ServerOutage, WriteCliff]

#: kind string -> model class (the serialization registry)
MODEL_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (TransientSlowdown, BackgroundScrub, ServerOutage, WriteCliff)
}


def model_to_dict(model: FaultModel) -> dict[str, Any]:
    """Serialize one model to a plain JSON-compatible dict."""
    payload: dict[str, Any] = {"kind": model.kind}
    for f in fields(model):
        payload[f.name] = getattr(model, f.name)
    return payload


def model_from_dict(payload: dict[str, Any]) -> FaultModel:
    """Rebuild a model from :func:`model_to_dict` output."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = MODEL_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown fault kind {kind!r}; choose from {sorted(MODEL_KINDS)}"
        )
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"unknown field(s) {sorted(unknown)} for fault kind {kind!r}"
        )
    return cls(**data)

"""Compiled per-server fault state: the replay engines' fault hot path.

A :class:`~repro.faults.plan.FaultPlan` compiles each server's declared
faults into one :class:`ServerFaultState` holding three timeline
structures plus optional write-cliff state:

* **outages** — merged disjoint ``[start, end)`` blackout spans.  A
  sub-request whose service would start inside a span is deferred to
  the span's end (the server is down; its queue keeps building behind
  the deferred request, which is exactly what a crashed server does to
  clients that keep issuing).
* **segments** — disjoint ``[start, end)`` dilation windows, each with
  a multiplicative service-time factor (transient slowdowns compose by
  factor product where they overlap; rebuild phases after an outage
  contribute one window each).
* **scrubs** — periodic dilations, evaluated analytically: the factor
  applies while ``(t - phase) % period < duty``.
* **cliff** — SSD write-cliff bookkeeping (bytes written since the
  last long-enough idle gap; once past the device cache capacity,
  writes dilate).

The lookup has a reference path (:meth:`ServerFaultState.adjust`,
bisect per call) and a flat twin (:meth:`~ServerFaultState.adjust_flat`)
registered via :func:`~repro.contracts.twin_of`: per-server service
starts are non-decreasing in both replay engines (FIFO queue-tail
arithmetic), so the twin advances monotone cursors instead of
bisecting — amortized O(1) per sub-request.  Both paths compute the
final factor with the *same* helper in the same multiplication order,
so every float they produce is bit-identical.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..contracts import twin_of
from ..devices.base import OpType

__all__ = [
    "CliffState",
    "Scrub",
    "ServerFaultState",
    "Window",
    "flatten_windows",
    "merge_outages",
]


@dataclass(frozen=True)
class Window:
    """One finite service-time dilation: ``factor`` in ``[start, end)``."""

    start: float
    end: float
    factor: float


@dataclass(frozen=True)
class Scrub:
    """A periodic dilation (background scrub/patrol-read pass): the
    factor applies while ``(t - phase) % period < duty`` seconds."""

    period: float
    duty: float
    factor: float
    phase: float = 0.0


@dataclass
class CliffState:
    """SSD write-cliff bookkeeping.

    ``written`` accumulates write bytes; once it exceeds
    ``capacity_bytes`` (the device's fast cache / clean-block reserve),
    writes dilate by ``factor``.  An idle gap of at least
    ``recovery_idle`` seconds between consecutive services lets the
    device garbage-collect and resets the counter.
    """

    capacity_bytes: int
    factor: float
    recovery_idle: float
    written: int = 0


def merge_outages(spans: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Sort ``[start, end)`` spans and merge overlapping/touching ones."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(spans):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def flatten_windows(windows: Iterable[Window]) -> list[Window]:
    """Flatten possibly-overlapping windows into disjoint segments.

    Where windows overlap their factors *compose* (multiply) — two
    concurrent degradations both slow the server.  The product is taken
    in ``(start, end, factor)`` sort order so compilation is
    deterministic regardless of declaration order.  Gaps (no covering
    window) produce no segment.
    """
    ordered = sorted(
        (w for w in windows if w.end > w.start),
        key=lambda w: (w.start, w.end, w.factor),
    )
    points = sorted({w.start for w in ordered} | {w.end for w in ordered})
    segments: list[Window] = []
    for a, b in zip(points, points[1:]):
        factor = 1.0
        covering = 0
        for w in ordered:
            if w.start <= a and b <= w.end:
                factor *= w.factor
                covering += 1
        if covering:
            segments.append(Window(a, b, factor))
    return segments


class ServerFaultState:
    """One server's compiled fault timeline (see module docstring).

    Instances are built by :meth:`repro.faults.plan.FaultPlan.compile`
    and attached to :class:`~repro.pfs.server.DataServer` as
    ``server.faults``; the server consults :meth:`adjust` (event
    engine) or :meth:`adjust_flat` (flat kernel) per sub-request.
    """

    def __init__(
        self,
        windows: Iterable[Window] = (),
        outages: Iterable[tuple[float, float]] = (),
        scrubs: Sequence[Scrub] = (),
        cliff: CliffState | None = None,
    ) -> None:
        self._segments = flatten_windows(windows)
        self._segment_starts = [seg.start for seg in self._segments]
        self._outages = merge_outages(outages)
        self._outage_starts = [span[0] for span in self._outages]
        self._scrubs = tuple(scrubs)
        self.cliff = cliff
        # monotone cursors for adjust_flat; reset whenever a query
        # regresses so arbitrary call sequences stay correct
        self._outage_cursor = 0
        self._segment_cursor = 0
        self._last_candidate = float("-inf")
        self._last_start = float("-inf")

    def _factor_at(
        self,
        op: OpType,
        length: int,
        start: float,
        prev_tail: float,
        segment: Window | None,
    ) -> float:
        """Compose the duration factor at ``start`` — shared by both
        lookup paths so the multiplication order (segment, scrubs in
        declaration order, cliff) is identical bit for bit."""
        factor = 1.0
        if segment is not None:
            factor *= segment.factor
        for scrub in self._scrubs:
            if (start - scrub.phase) % scrub.period < scrub.duty:
                factor *= scrub.factor
        cliff = self.cliff
        if cliff is not None:
            if start - prev_tail >= cliff.recovery_idle:
                cliff.written = 0
            if op == "write":
                cliff.written += length
                if cliff.written > cliff.capacity_bytes:
                    factor *= cliff.factor
        return factor

    def adjust(
        self, op: OpType, length: int, candidate: float, prev_tail: float
    ) -> tuple[float, float]:
        """Reference lookup: ``(service_start, duration_factor)`` for a
        sub-request that would otherwise start at ``candidate``.

        ``prev_tail`` is the server queue's tail *before* this
        submission — the previous service's finish time — used for the
        write-cliff idle-gap recovery test.  Service that would begin
        inside an outage is deferred to the outage's end; the factor is
        evaluated at the (possibly deferred) start.
        """
        start = candidate
        i = bisect_right(self._outage_starts, candidate) - 1
        if i >= 0 and candidate < self._outages[i][1]:
            start = self._outages[i][1]
        segment = None
        j = bisect_right(self._segment_starts, start) - 1
        if j >= 0 and start < self._segments[j].end:
            segment = self._segments[j]
        return start, self._factor_at(op, length, start, prev_tail, segment)

    @twin_of(
        "repro.faults.state:ServerFaultState.adjust",
        harness="fault_adjust",
    )
    def adjust_flat(
        self, op: OpType, length: int, candidate: float, prev_tail: float
    ) -> tuple[float, float]:
        """Cursor twin of :meth:`adjust` for the flat replay kernel.

        Per-server candidates are non-decreasing under FIFO queue-tail
        arithmetic, so interval lookup is an amortized O(1) cursor
        advance instead of a bisect; a regressing query resets the
        cursors, keeping arbitrary sequences correct.  Returns the
        same floats as :meth:`adjust`, bit for bit.
        """
        if candidate < self._last_candidate:
            self._outage_cursor = 0
        self._last_candidate = candidate
        outages = self._outages
        i = self._outage_cursor
        n = len(outages)
        while i < n and outages[i][1] <= candidate:
            i += 1
        self._outage_cursor = i
        start = candidate
        if i < n and outages[i][0] <= candidate:
            start = outages[i][1]
        if start < self._last_start:
            self._segment_cursor = 0
        self._last_start = start
        segments = self._segments
        j = self._segment_cursor
        m = len(segments)
        while j < m and segments[j].end <= start:
            j += 1
        self._segment_cursor = j
        segment = None
        if j < m and segments[j].start <= start:
            segment = segments[j]
        return start, self._factor_at(op, length, start, prev_tail, segment)

"""Effect contracts: declared side-effect budgets for boundary functions.

The RL3xx rule family of ``tools/repro_lint`` *infers* a side-effect
summary for every function in ``src/`` by propagating a small effect
lattice over the interprocedural call graph (see
``tools/repro_lint/callgraph.py``).  Inference is sound-by-default:
a call the analyzer cannot resolve leaves the caller *unproven*, and
the purity rules (RL301–RL303) refuse to certify an unproven function.

:func:`effects` is the sanctioned escape hatch, mirroring the
:func:`repro.contracts.twin_of` pattern: a metadata-only decorator that
*pins* a function's effect contract.  A declared function becomes a
trust boundary — callers see exactly the declared set, no more and no
less — and the declaration itself is policed both ways by RL304
(an inferred effect missing from the declaration is a contract
violation; a declared effect the analyzer can positively rule out is a
stale declaration).

The vocabulary is the analyzer's lattice, ``PURE`` at the bottom::

                      {all seven effects}
            /      |      |      |      |      \\
    READS_CONFIG READS_ENV RNG TIME MUTATES_ARG MUTATES_GLOBAL IO
            \\      |      |      |      |      /
                          PURE  (= frozenset())

* ``READS_CONFIG``   — reads a ``repro.config`` value (deterministic,
  but an ambient input Eq. 2 purity tolerates and twins must mirror);
* ``READS_ENV``      — reads ``os.environ`` / ``os.getenv``;
* ``RNG``            — draws randomness outside the
  :mod:`repro.determinism` seed-lineage registry;
* ``TIME``           — reads a wall clock;
* ``MUTATES_ARG``    — writes into an argument object (``self``/``cls``
  excepted: controllers may keep internal state);
* ``MUTATES_GLOBAL`` — writes module-level state;
* ``IO``             — filesystem/stream/process/socket side effects
  (function-level imports count: first call differs from the rest).

The decorator is zero-cost at call time: it validates the names,
records the contract in the module registry and on the function as
``__effect_contract__``, and returns the function unchanged — so
pickling by reference, ``inspect`` signatures, and the mypy ratchet
all see the original function.
"""

from __future__ import annotations

from typing import Callable, Iterator, TypeVar

__all__ = [
    "EFFECT_NAMES",
    "EffectContract",
    "effects",
    "get_declared",
    "iter_declared",
]

F = TypeVar("F", bound=Callable[..., object])

#: the full effect vocabulary, in canonical (report) order
EFFECT_NAMES: tuple[str, ...] = (
    "READS_CONFIG",
    "READS_ENV",
    "RNG",
    "TIME",
    "MUTATES_ARG",
    "MUTATES_GLOBAL",
    "IO",
)


class EffectContract:
    """One pinned effect budget: a spec plus its declared effect set."""

    __slots__ = ("spec", "declared")

    def __init__(self, spec: str, declared: frozenset[str]) -> None:
        self.spec = spec
        self.declared = declared

    def __repr__(self) -> str:
        names = ", ".join(sorted(self.declared)) or "PURE"
        return f"EffectContract({self.spec}: {names})"


_REGISTRY: dict[str, EffectContract] = {}


def effects(*names: str) -> Callable[[F], F]:
    """Declare the decorated function's effect contract.

    ``@effects()`` with no arguments declares the function pure;
    ``@effects("READS_CONFIG", "IO")`` caps it at exactly those
    effects.  Names must come from :data:`EFFECT_NAMES` — anything
    else raises immediately at import time, so a typo cannot silently
    widen a contract.  The declaration is metadata only; the function
    is returned unchanged.
    """
    declared = frozenset(names)
    unknown = declared - set(EFFECT_NAMES)
    if unknown:
        raise ValueError(
            f"unknown effect name(s) {sorted(unknown)}; "
            f"choose from {EFFECT_NAMES}"
        )

    def decorate(fn: F) -> F:
        spec = f"{fn.__module__}:{fn.__qualname__}"
        contract = EffectContract(spec, declared)
        existing = _REGISTRY.get(spec)
        if existing is not None and existing.declared != declared:
            raise ValueError(f"conflicting effect contract for {spec}")
        _REGISTRY[spec] = contract
        setattr(fn, "__effect_contract__", contract)
        return fn

    return decorate


def get_declared(spec: str) -> frozenset[str]:
    """The declared effect set for ``spec`` (KeyError if undeclared)."""
    return _REGISTRY[spec].declared


def iter_declared() -> Iterator[EffectContract]:
    """All registered contracts, ordered by spec (deterministic)."""
    for spec in sorted(_REGISTRY):
        yield _REGISTRY[spec]

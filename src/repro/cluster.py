"""Cluster description: how many HServers/SServers, which devices, what link.

A :class:`ClusterSpec` is the single source of truth shared by the
PFS simulator (which instantiates servers from it) and the MHA cost
model (which reads its Table I parameters off it).  The default
matches the paper's testbed: six HServers, two SServers, eight compute
nodes, Gigabit Ethernet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .devices import HDD, SSD, Device
from .exceptions import ConfigurationError
from .network import GIGABIT_ETHERNET, Link

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """A hybrid-PFS cluster: ``M`` HServers + ``N`` SServers + clients.

    Server indices are assigned as ``0..M-1`` for HServers and
    ``M..M+N-1`` for SServers, the ordering every layout in this
    library uses.
    """

    num_hservers: int = 6
    num_sservers: int = 2
    num_clients: int = 8
    hdd: HDD = field(default_factory=HDD)
    ssd: SSD = field(default_factory=SSD)
    link: Link = GIGABIT_ETHERNET
    #: also model the compute nodes' NICs: ranks mapped round-robin
    #: onto the ``num_clients`` nodes contend for each node's link.
    #: Off by default — the paper's cost model (and therefore the
    #: calibrated figures) only consider the server side.
    model_client_nics: bool = False

    def __post_init__(self) -> None:
        if self.num_hservers < 0 or self.num_sservers < 0:
            raise ConfigurationError("server counts must be non-negative")
        if self.num_hservers + self.num_sservers == 0:
            raise ConfigurationError("cluster needs at least one data server")
        if self.num_clients <= 0:
            raise ConfigurationError("cluster needs at least one client")

    @property
    def M(self) -> int:
        """Number of HServers (Table I ``M``)."""
        return self.num_hservers

    @property
    def N(self) -> int:
        """Number of SServers (Table I ``N``)."""
        return self.num_sservers

    @property
    def num_servers(self) -> int:
        return self.num_hservers + self.num_sservers

    @property
    def hserver_ids(self) -> tuple[int, ...]:
        """Cluster indices of the HServers."""
        return tuple(range(self.num_hservers))

    @property
    def sserver_ids(self) -> tuple[int, ...]:
        """Cluster indices of the SServers."""
        return tuple(range(self.num_hservers, self.num_servers))

    @property
    def server_ids(self) -> tuple[int, ...]:
        return tuple(range(self.num_servers))

    def device_for(self, server: int) -> Device:
        """The device model backing cluster server ``server``."""
        if 0 <= server < self.num_hservers:
            return self.hdd
        if self.num_hservers <= server < self.num_servers:
            return self.ssd
        raise ConfigurationError(
            f"server index {server} out of range 0..{self.num_servers - 1}"
        )

    def is_hserver(self, server: int) -> bool:
        """Whether cluster index ``server`` is an HServer."""
        if not 0 <= server < self.num_servers:
            raise ConfigurationError(f"server index {server} out of range")
        return server < self.num_hservers

    def with_ratio(self, num_hservers: int, num_sservers: int) -> "ClusterSpec":
        """Copy with a different HServer:SServer ratio (Fig. 10 sweeps)."""
        return ClusterSpec(
            num_hservers=num_hservers,
            num_sservers=num_sservers,
            num_clients=self.num_clients,
            hdd=self.hdd,
            ssd=self.ssd,
            link=self.link,
            model_client_nics=self.model_client_nics,
        )

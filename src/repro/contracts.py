"""Twin contracts: the registry of fast-path / reference-path pairs.

PRs 1 and 4 introduced *performance twins* — a vectorized or event-free
fast path promising bit-identical results to a scalar reference path
(``batch_costs_grid`` vs :func:`~repro.core.cost_model.batch_costs`,
:func:`~repro.pfs.flat.replay_flat` vs the event engine, batched
mapping vs per-record mapping).  Those promises are *contracts*, and
this module makes them first-class: every fast-path entry point is
decorated with :func:`twin_of`, naming its reference and declaring
exactly how the two signatures relate.

The registry is consumed twice:

* **statically** — the RL1xx rule family of ``tools/repro_lint``
  resolves each pair across modules and checks signature parity,
  config-flag parity and registry completeness at the AST level, so a
  twin cannot silently grow a kwarg or a config branch the reference
  lacks (``python -m tools.repro_lint src tests``);
* **at runtime** — ``python -m tools.repro_lint gen-twin-tests``
  renders one hypothesis differential test module per registered pair
  into ``tests/contracts/`` (random workloads, exact-equality asserts,
  statistics parity), and CI fails if those modules go stale.

The decorator itself is zero-cost at call time: it records the
contract and returns the function unchanged (so pickling by reference,
``inspect`` signatures and the mypy strict ratchet all see the
original function).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence, TypeVar

__all__ = [
    "TwinContract",
    "twin_of",
    "get_contract",
    "iter_contracts",
    "load_all",
    "TWIN_MODULES",
    "TWIN_KINDS",
]

F = TypeVar("F", bound=Callable[..., object])

#: the contract kinds the analyzer and test generator understand
TWIN_KINDS = ("bit_identical", "reduction")

#: every module that registers a twin contract.  ``load_all`` imports
#: exactly this list; ``tests/contracts/test_generator.py`` asserts it
#: matches what the static analyzer discovers, so a new ``@twin_of``
#: site in an unlisted module fails the suite instead of silently
#: missing its generated differential test.
TWIN_MODULES = (
    "repro.core.cost_model",
    "repro.core.drt",
    "repro.core.features",
    "repro.core.pipeline",
    "repro.core.redirector",
    "repro.faults.state",
    "repro.layouts.extents",
    "repro.pfs.flat",
    "repro.pfs.server",
    "repro.pfs.system",
    "repro.schemes.base",
    "repro.simulate.resources",
    "repro.tracing.columnar",
    "repro.tracing.tracefile",
)


@dataclass(frozen=True)
class TwinContract:
    """One fast-path/reference-path equivalence promise.

    ``reference`` and ``twin`` are ``"module:qualname"`` specs.  The
    signature relation is declared explicitly so the static checker can
    verify it instead of guessing:

    * ``param_map`` — reference parameter renamed on the twin (the
      batch twins pluralize, e.g. ``{"offset": "offsets"}``; the grid
      twins take arrays, e.g. ``{"h": "h_arr"}``);
    * ``unsupported`` — reference parameters the twin deliberately
      lacks; they must match the runtime fallback condition that routes
      such calls to the reference path (e.g. ``replay_trace`` falls
      back to the event engine when ``collector``/``on_record`` is
      set);
    * ``twin_only`` — parameters only the twin has (e.g. the flat
      kernel's caller-maintained ``now`` clock);
    * ``fallback_flags`` — ``repro.config`` names that may legitimately
      be read by one side of the pair only (the engine-selection
      flags).
    """

    reference: str
    twin: str
    kind: str = "bit_identical"
    unsupported: tuple[str, ...] = ()
    twin_only: tuple[str, ...] = ()
    param_map: Mapping[str, str] = field(default_factory=dict)
    fallback_flags: tuple[str, ...] = ()
    #: name of the differential-test harness in
    #: ``tests/contracts/_harnesses.py`` that exercises this pair
    harness: str = ""

    def __post_init__(self) -> None:
        if self.kind not in TWIN_KINDS:
            raise ValueError(
                f"twin contract kind must be one of {TWIN_KINDS}, got {self.kind!r}"
            )
        for spec in (self.reference, self.twin):
            if spec.count(":") != 1 or not all(spec.split(":")):
                raise ValueError(
                    f"twin spec must look like 'module:qualname', got {spec!r}"
                )


_REGISTRY: dict[str, TwinContract] = {}


def twin_of(
    reference: str,
    *,
    kind: str = "bit_identical",
    unsupported: Sequence[str] = (),
    twin_only: Sequence[str] = (),
    param_map: Mapping[str, str] | None = None,
    fallback_flags: Sequence[str] = (),
    harness: str = "",
) -> Callable[[F], F]:
    """Register the decorated function as the fast-path twin of
    ``reference`` (a ``"module:qualname"`` spec).

    Returns the function unchanged; the contract is recorded in the
    module registry and on the function as ``__twin_contract__``.
    """

    def decorate(fn: F) -> F:
        twin_spec = f"{fn.__module__}:{fn.__qualname__}"
        contract = TwinContract(
            reference=reference,
            twin=twin_spec,
            kind=kind,
            unsupported=tuple(unsupported),
            twin_only=tuple(twin_only),
            param_map=dict(param_map or {}),
            fallback_flags=tuple(fallback_flags),
            harness=harness,
        )
        existing = _REGISTRY.get(twin_spec)
        if existing is not None and existing != contract:
            raise ValueError(f"conflicting twin contract for {twin_spec}")
        _REGISTRY[twin_spec] = contract
        setattr(fn, "__twin_contract__", contract)
        return fn

    return decorate


def get_contract(twin_spec: str) -> TwinContract:
    """The contract registered for ``twin_spec`` (KeyError if none)."""
    return _REGISTRY[twin_spec]


def iter_contracts() -> Iterator[TwinContract]:
    """All registered contracts, ordered by twin spec (deterministic)."""
    for twin_spec in sorted(_REGISTRY):
        yield _REGISTRY[twin_spec]


def load_all() -> None:
    """Import every twin-registering module, populating the registry.

    Decoration happens at import time, so tools that enumerate the
    registry (the differential-test generator, the registry-sync test)
    call this first.
    """
    for name in TWIN_MODULES:
        importlib.import_module(name)

"""Hybrid parallel file system simulator (the OrangeFS-testbed role)."""

from .mds import MetaDataServer
from .migration import MigrationMetrics, simulate_migration
from .replay import FileView, RunMetrics, replay_trace, run_workload
from .server import DataServer, ServerStats
from .storage import DataClient, ObjectStore, migrate
from .system import HybridPFS, merge_fragments

__all__ = [
    "DataServer",
    "ServerStats",
    "MetaDataServer",
    "HybridPFS",
    "merge_fragments",
    "FileView",
    "RunMetrics",
    "DataClient",
    "ObjectStore",
    "migrate",
    "MigrationMetrics",
    "simulate_migration",
    "replay_trace",
    "run_workload",
]

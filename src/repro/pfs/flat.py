"""The flat replay kernel: event-free trace replay over FIFO servers.

Every data server is a single FIFO channel, so a sub-request's finish
time is pure queue-tail arithmetic (``start = max(now, not_before,
tail)``) the moment it is submitted — no event heap, no generator
processes, no ``Completion``/``AllOf`` allocation per request.  The
kernel keeps one cursor per rank and drives a merge loop keyed by each
in-flight request's finish time; requests themselves are pre-mapped in
one batched pass through the view (:func:`mapped_runs`).

**Bit-identity with the event engine.**  The kernel calls the *same*
bound methods (``Device.startup_time`` / ``transfer_time``,
``Link.transfer_time``) in the same per-fragment order, and combines
them with the same ``max``/``+`` arithmetic, so every float it produces
equals the event engine's bit for bit.  Ordering decisions mirror the
event engine exactly:

* ranks issue their first records synchronously in sorted-rank order
  (event mode: ``spawn`` order);
* a request's completion is its *critical* fragment — the last
  submitted among those with the maximal finish time (event mode: the
  last child event popped fires the ``AllOf``), so the ready heap keyed
  by ``(finish, fragment_seq)`` pops in the event heap's order.  The
  fragment counter skips the seq numbers the event engine burns on NIC
  completions, which sit *between* consecutive fragments' seqs and
  therefore never change relative order;
* on completion: barrier bookkeeping first (resuming barrier-blocked
  ranks in blocking order, as ``Waitable.fire`` does), then the latency
  append, then the rank's next issue — the exact statement order of the
  event-mode rank generator.

The simulator clock is advanced once at the end via
:meth:`~repro.simulate.engine.Simulator.advance_to`, so sequential
replays sharing a :class:`~repro.pfs.system.HybridPFS` observe the same
clock either way.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..contracts import twin_of
from ..exceptions import SimulationError
from ..layouts.batch import MergedRuns, RunsBuilder
from ..tracing.columnar import OP_NAMES, ColumnarTrace
from ..tracing.record import TraceRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .replay import FileView
    from .system import HybridPFS

__all__ = ["mapped_runs", "replay_flat"]


def _runs_from_columns(view: "FileView", trace: ColumnarTrace) -> MergedRuns:
    """:func:`mapped_runs` over a columnar trace.

    The offset/size columns flow into the view's ``merged_runs`` batch
    API as the arrays they already are — no per-record values are
    materialized on the single-file fast path.
    """
    batch = getattr(view, "merged_runs", None)
    n = len(trace)
    d = trace.data
    if batch is None:
        builder = RunsBuilder(n)
        names = trace.interned_files
        offs = d["offset"].tolist()
        sizes = d["size"].tolist()
        codes = d["file"].tolist()
        for i in range(n):
            builder.place_fragments(
                i, view.map_request(names[codes[i]], offs[i], sizes[i])
            )
        return builder.build()
    partition = trace.file_partition()
    if len(partition) == 1:
        (file,) = partition
        runs: MergedRuns = batch(file, d["offset"], d["size"])
        return runs
    builder = RunsBuilder(n)
    for file, indices in partition.items():
        runs = batch(file, d["offset"][indices], d["size"][indices])
        builder.add_fragments(runs.n_fragments)
        for k, item in enumerate(indices.tolist()):
            builder.place(item, runs, k)
    return builder.build()


def mapped_runs(
    view: "FileView", records: "Sequence[TraceRecord] | ColumnarTrace"
) -> MergedRuns:
    """Map all records through ``view`` into columnar merged runs.

    Views exposing a ``merged_runs(file, offsets, lengths)`` batch API
    (:class:`~repro.schemes.base.LayoutView`, the MHA
    :class:`~repro.core.redirector.Redirector`) get one batched call
    per file; anything else falls back to per-record ``map_request``.
    Either way run ``k`` of the result equals what the event path's
    ``merge_fragments(view.map_request(...))`` produces for record
    ``k``.  A :class:`~repro.tracing.columnar.ColumnarTrace` hands its
    offset/size columns to the batch API without building records.
    """
    if isinstance(records, ColumnarTrace):
        return _runs_from_columns(view, records)
    batch = getattr(view, "merged_runs", None)
    if batch is None:
        builder = RunsBuilder(len(records))
        for i, record in enumerate(records):
            builder.place_fragments(
                i, view.map_request(record.file, record.offset, record.size)
            )
        return builder.build()
    by_file: dict[str, tuple[list[int], list[int], list[int]]] = {}
    for i, record in enumerate(records):
        group = by_file.get(record.file)
        if group is None:
            group = ([], [], [])
            by_file[record.file] = group
        group[0].append(i)
        group[1].append(record.offset)
        group[2].append(record.size)
    if len(by_file) == 1:
        # single-file trace: the batch result is already record-ordered
        (_, offsets, lengths), = by_file.values()
        file = next(iter(by_file))
        runs: MergedRuns = batch(file, offsets, lengths)
        return runs
    builder = RunsBuilder(len(records))
    for file, (items, offsets, lengths) in by_file.items():
        runs = batch(file, offsets, lengths)
        builder.add_fragments(runs.n_fragments)
        for k, item in enumerate(items):
            builder.place(item, runs, k)
    return builder.build()


#: heap sentinel marking an arrival wakeup (vs. a barrier phase >= 0
#: or the barrier-less completion marker -1)
_WAKEUP = -2


@twin_of(
    "repro.pfs.replay:_replay_event",
    unsupported=("collector", "on_record"),
    fallback_flags=("DEFAULT_REPLAY_ENGINE",),
    harness="replay",
)
def replay_flat(
    pfs: "HybridPFS",
    view: "FileView",
    ordered: "Sequence[TraceRecord] | ColumnarTrace",
    *,
    keep_latencies: bool = False,
    phase_of: Sequence[int] | None = None,
    phase_sizes: Sequence[int] | None = None,
    open_arrivals: bool = False,
) -> tuple[float, list[float], list[int]]:
    """Replay time-ordered ``ordered`` records without the event heap.

    ``phase_of``/``phase_sizes`` carry the barrier structure computed by
    :func:`repro.pfs.replay._phase_index` (both ``None`` when barriers
    are off).  ``open_arrivals`` switches from closed-loop replay (a
    rank issues its next record the instant the previous one completes)
    to open-loop: a record may additionally not issue before its trace
    timestamp, relative to the replay start — arrival waits go through
    the same ready heap as completions, with seq numbers allocated at
    the point the event engine would schedule its wakeup event, so
    same-instant ordering stays bit-identical.  Returns
    ``(foreground_end, latencies, latency_ranks)`` where
    ``latency_ranks[k]`` is the issuing rank of the request behind
    ``latencies[k]``; server/resource statistics accumulate on ``pfs``
    exactly as in event mode, and the simulator clock ends at the last
    completion time.
    """
    sim = pfs.sim
    start = sim.now
    runs = mapped_runs(view, ordered)
    if isinstance(ordered, ColumnarTrace):
        # stable argsort by rank == per-rank index rows in trace order
        rank_col = ordered.data["rank"]
        order = np.argsort(rank_col, kind="stable")
        uniq, bounds = np.unique(rank_col[order], return_index=True)
        ranks = uniq.tolist()
        edges = np.append(bounds, order.size)
        rows = [
            order[edges[r] : edges[r + 1]].tolist() for r in range(uniq.size)
        ]
        ops = [OP_NAMES[c] for c in ordered.data["op"].tolist()]
        arrivals = (
            (start + ordered.data["timestamp"]).tolist() if open_arrivals else []
        )
    else:
        by_rank: dict[int, list[int]] = {}
        for i, record in enumerate(ordered):
            by_rank.setdefault(record.rank, []).append(i)
        ranks = sorted(by_rank)
        rows = [by_rank[rank] for rank in ranks]
        ops = [record.op for record in ordered]
        arrivals = (
            [start + record.timestamp for record in ordered]
            if open_arrivals
            else []
        )
    n_ranks = len(rows)
    cursor = [0] * n_ranks
    issued_at = [start] * n_ranks
    submit = [srv.submit_flat for srv in pfs.servers]
    client_links = pfs.client_links
    nodes = (
        [client_links[rank % len(client_links)] for rank in ranks]
        if client_links is not None
        else None
    )
    link_time = pfs.spec.link.transfer_time
    srv_col = runs.servers
    obj_col = runs.objs
    off_col = runs.offsets
    len_col = runs.lengths
    starts_col = runs.starts
    use_barrier = phase_of is not None
    phases: list[int] = list(phase_of) if phase_of is not None else []
    remaining: list[int] = list(phase_sizes) if phase_sizes is not None else []
    fired = [False] * len(remaining)
    waiters: list[list[int]] = [[] for _ in remaining]
    frontier = 0
    foreground_end = start
    max_finish = start
    seq = 0
    latencies: list[float] = []
    latency_ranks: list[int] = []
    # in-flight requests: (critical finish, critical fragment seq, rank
    # position, barrier phase or -1) — pops in the event heap's order.
    # Arrival wakeups ride the same heap tagged ``_WAKEUP``.
    heap: list[tuple[float, int, int, int]] = []

    def issue_from(rp: int, now: float) -> None:
        nonlocal foreground_end, max_finish, seq
        row = rows[rp]
        c = cursor[rp]
        if c == len(row):
            if now > foreground_end:
                foreground_end = now
            return
        i = row[c]
        phase = -1
        if use_barrier:
            phase = phases[i]
            if phase > 0 and not fired[phase - 1]:
                waiters[phase - 1].append(rp)
                return
        if open_arrivals:
            arrival = arrivals[i]
            if arrival > now:
                # the event engine schedules one wakeup event here; burn
                # the matching seq so same-instant pops keep its order
                heappush(heap, (arrival, seq, rp, _WAKEUP))
                seq += 1
                return
        cursor[rp] = c + 1
        issued_at[rp] = now
        lo = starts_col[i]
        hi = starts_col[i + 1]
        if lo == hi:  # pragma: no cover - size > 0 always maps to a run
            if phase >= 0:
                record_complete(phase, now)
            if keep_latencies:
                latencies.append(0.0)
                latency_ranks.append(ranks[rp])
            issue_from(rp, now)
            return
        not_before = 0.0
        if nodes is not None:
            total = 0
            for j in range(lo, hi):
                total += len_col[j]
            not_before = nodes[rp].schedule_flat(now, link_time(total))
        op = ops[i]
        best = -1.0
        best_seq = -1
        for j in range(lo, hi):
            finish = submit[srv_col[j]](
                op, obj_col[j], off_col[j], len_col[j], now, not_before=not_before
            )
            if finish >= best:
                best = finish
                best_seq = seq
            seq += 1
        if best > max_finish:
            max_finish = best
        heappush(heap, (best, best_seq, rp, phase))

    def record_complete(phase: int, now: float) -> None:
        nonlocal frontier
        remaining[phase] -= 1
        while frontier < len(remaining) and remaining[frontier] == 0:
            if fired[frontier]:  # pragma: no cover - mirrors Waitable's guard
                raise SimulationError("barrier phase fired twice")
            fired[frontier] = True
            for rp in waiters[frontier]:
                issue_from(rp, now)
            frontier += 1

    for rp in range(n_ranks):
        issue_from(rp, start)
    while heap:
        now, _, rp, phase = heappop(heap)
        if phase == _WAKEUP:
            issue_from(rp, now)
            continue
        if phase >= 0:
            record_complete(phase, now)
        if keep_latencies:
            latencies.append(now - issued_at[rp])
            latency_ranks.append(ranks[rp])
        issue_from(rp, now)
    sim.advance_to(max_finish)
    return foreground_end, latencies, latency_ranks

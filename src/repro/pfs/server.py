"""Data server model: one storage device behind one network link.

Each server serves sub-requests through a single FIFO channel whose
service time is ``device_service + network_transfer`` — the same
serialization the paper's cost model assumes (``p·α + bytes·(t + β)``),
but queued dynamically so contention between processes emerges instead
of being approximated.

Sequential-access detection: the server tracks the tails of a bounded
number of *access streams* (an OS block layer's readahead/plugging and
a disk's NCQ recognize several interleaved sequential streams, but only
so many); a sub-request that extends a tracked stream pays the device's
(cheaper) sequential startup, anything else pays a full positioning
startup and starts a new stream, evicting the least-recently-extended
one when the tracker is full.  This is what makes large/contiguous
requests faster per byte ("the increasingly amortized disk seek time",
§V-B) and what degrades bandwidth as the process count grows past the
per-server stream capacity ("the contention among processes becomes
more severe", §V-B Fig. 9/11).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..contracts import twin_of
from ..devices.base import Device, OpType
from ..network.link import Link
from ..simulate import Completion, FIFOResource, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.state import ServerFaultState

__all__ = ["DataServer", "ServerStats"]


@dataclass
class ServerStats:
    """Per-server accounting for the run metrics (Fig. 8's bars)."""

    bytes_read: int = 0
    bytes_written: int = 0
    sub_requests: int = 0
    seeks: int = 0
    sequential_hits: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


class DataServer:
    """A PFS data server: one FIFO service channel per server.

    A sub-request occupies the server for
    ``startup / device.channels + bytes·β_op + latency + bytes·t``
    seconds — exactly the ``α + bytes·(t + β)`` structure of the
    paper's cost model (the per-request *average* startup a calibration
    measures is the raw device startup amortized over its internal
    channels, since concurrent startups overlap on flash), but queued
    dynamically so contention between processes emerges instead of
    being approximated.

    ``stream_capacity`` is the number of concurrent sequential streams
    the server can keep recognizing (see module docstring).
    """

    #: default number of sequential streams a server tracks
    DEFAULT_STREAM_CAPACITY = 16

    def __init__(
        self,
        sim: Simulator,
        index: int,
        device: Device,
        link: Link,
        name: str | None = None,
        stream_capacity: int = DEFAULT_STREAM_CAPACITY,
    ) -> None:
        if stream_capacity < 0:
            raise ValueError("stream_capacity must be >= 0")
        self.sim = sim
        self.index = index
        self.device = device
        self.link = link
        self.name = name if name is not None else f"server{index}"
        self.stream_capacity = stream_capacity
        self.channel = FIFOResource(sim, name=self.name, capacity=1)
        self.stats = ServerStats()
        #: service-time multiplier for fault/straggler injection: 1.0 is
        #: healthy, 2.0 services everything at half speed, etc.
        self.slowdown = 1.0
        #: compiled fault timeline (:class:`repro.faults.state.ServerFaultState`),
        #: installed by :meth:`repro.faults.plan.FaultPlan.attach`; ``None``
        #: is a healthy server and costs one attribute check per submit
        self.faults: ServerFaultState | None = None
        #: per-sub-request service latencies (finish - submit time); a
        #: replay with ``keep_latencies=True`` installs a fresh list and
        #: harvests it into the run metrics, ``None`` disables logging
        self.latency_log: list[float] | None = None
        # stream tails: (obj, next_offset) -> None, in LRU order
        self._streams: OrderedDict[tuple[str, int], None] = OrderedDict()

    def _check_sequential(self, obj: str, offset: int, length: int) -> bool:
        """Consume/extend a stream tail; returns sequentiality."""
        if self.stream_capacity == 0:
            return False
        key = (obj, offset)
        sequential = key in self._streams
        if sequential:
            del self._streams[key]
        self._streams[(obj, offset + length)] = None
        self._streams.move_to_end((obj, offset + length))
        while len(self._streams) > self.stream_capacity:
            self._streams.popitem(last=False)
        return sequential

    def submit(
        self, op: OpType, obj: str, offset: int, length: int, not_before: float = 0.0
    ) -> Completion:
        """Enqueue one sub-request; completion fires when it finishes.

        ``not_before`` lower-bounds the service start (used when an
        upstream stage — e.g. the issuing client's NIC — must finish
        first).
        """
        if self.slowdown <= 0:
            raise ValueError(f"slowdown must be > 0, got {self.slowdown}")
        sequential = self._check_sequential(obj, offset, length)
        startup = self.device.startup_time(op, sequential) / self.device.channels
        base = (
            startup
            + self.device.transfer_time(op, length)
            + self.link.transfer_time(length)
        )
        faults = self.faults
        if faults is None:
            duration = self.slowdown * base
        else:
            # the service start is fully determined at submission (FIFO
            # queue-tail arithmetic), so the fault timeline is consulted
            # synchronously: outages defer the start, dilations scale the
            # duration.  ``not_before=start`` reproduces the deferred
            # start exactly inside ``channel.schedule``'s own max().
            now = self.sim.now
            tail = min(self.channel._tails)
            start, factor = faults.adjust(
                op, length, max(now, not_before, tail), tail
            )
            duration = self.slowdown * (factor * base)
            not_before = start
        tag = (op, obj, offset, length)
        if sequential:
            self.stats.sequential_hits += 1
        else:
            self.stats.seeks += 1
        self.stats.sub_requests += 1
        if op == "read":
            self.stats.bytes_read += length
        else:
            self.stats.bytes_written += length
        record, done = self.channel.schedule(duration, not_before=not_before, tag=tag)
        if self.latency_log is not None:
            self.latency_log.append(record.finish - self.sim.now)
        return done

    @twin_of(
        "repro.pfs.server:DataServer.submit",
        twin_only=("now",),
        harness="server_submit",
    )
    def submit_flat(
        self,
        op: OpType,
        obj: str,
        offset: int,
        length: int,
        now: float,
        not_before: float = 0.0,
    ) -> float:
        """Event-free twin of :meth:`submit` for the flat replay kernel.

        Same sequential-stream update, same duration arithmetic, same
        statistics — but the finish time is computed synchronously via
        :meth:`FIFOResource.schedule_flat` (the server is a single FIFO
        channel, so it is fully determined at submission) instead of
        scheduling a completion event.  ``now`` is the caller's clock.
        """
        if self.slowdown <= 0:
            raise ValueError(f"slowdown must be > 0, got {self.slowdown}")
        sequential = self._check_sequential(obj, offset, length)
        startup = self.device.startup_time(op, sequential) / self.device.channels
        base = (
            startup
            + self.device.transfer_time(op, length)
            + self.link.transfer_time(length)
        )
        stats = self.stats
        if sequential:
            stats.sequential_hits += 1
        else:
            stats.seeks += 1
        stats.sub_requests += 1
        if op == "read":
            stats.bytes_read += length
        else:
            stats.bytes_written += length
        channel = self.channel
        faults = self.faults
        if channel.capacity == 1 and not channel.keep_records:
            # single-channel fast path: same arithmetic as schedule_flat,
            # minus the call, channel scan, and tag allocation
            tails = channel._tails
            tail = tails[0]
            if faults is None:
                duration = self.slowdown * base
                start = max(now, not_before, tail)
            else:
                start, factor = faults.adjust_flat(
                    op, length, max(now, not_before, tail), tail
                )
                duration = self.slowdown * (factor * base)
            finish = start + duration
            tails[0] = finish
            channel.busy_time += duration
            channel.served += 1
            if self.latency_log is not None:
                self.latency_log.append(finish - now)
            return finish
        if faults is None:
            duration = self.slowdown * base
        else:
            tail = min(channel._tails)
            start, factor = faults.adjust_flat(
                op, length, max(now, not_before, tail), tail
            )
            duration = self.slowdown * (factor * base)
            not_before = start
        finish = channel.schedule_flat(
            now, duration, not_before=not_before, tag=(op, obj, offset, length)
        )
        if self.latency_log is not None:
            self.latency_log.append(finish - now)
        return finish

    @property
    def busy_time(self) -> float:
        """Seconds of service performed — the server's I/O time."""
        return self.channel.busy_time

    def reset_stats(self) -> None:
        self.stats = ServerStats()
        self.channel.reset_stats()
        self.latency_log = None

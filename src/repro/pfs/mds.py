"""Metadata server (MDS) model.

§III-G: "Upon receiving a file request, a client first contacts the MDS
to get the file's meta-data ... the MDS looks up the RST according to
the request's offset and length".  For bandwidth-dominated workloads
this lookup is cheap; the model charges a configurable per-lookup
latency (default reflects one round trip on the cluster interconnect)
so metadata pressure appears in the simulation without dominating it.
"""

from __future__ import annotations

from ..core.rst import RST, StripePair
from ..network.link import Link
from ..simulate import Completion, FIFOResource, Simulator

__all__ = ["MetaDataServer"]


class MetaDataServer:
    """Serves RST lookups with a small FIFO-queued latency."""

    def __init__(
        self,
        sim: Simulator,
        rst: RST | None = None,
        link: Link | None = None,
        lookup_latency: float | None = None,
    ) -> None:
        self.sim = sim
        self.rst = rst if rst is not None else RST()
        if lookup_latency is None:
            lookup_latency = 2 * (link.latency if link is not None else 0.05e-3)
        self.lookup_latency = lookup_latency
        self.channel = FIFOResource(sim, name="mds")
        self.lookups = 0

    def lookup(self, region: str) -> tuple[Completion, StripePair | None]:
        """Queue one metadata lookup; returns (completion, stripe pair)."""
        self.lookups += 1
        pair = self.rst.get(region) if region in self.rst else None
        return self.channel.submit(self.lookup_latency, tag=region), pair

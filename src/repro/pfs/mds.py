"""Metadata server (MDS) model.

§III-G: "Upon receiving a file request, a client first contacts the MDS
to get the file's meta-data ... the MDS looks up the RST according to
the request's offset and length".  For bandwidth-dominated workloads
this lookup is cheap; the model charges a configurable per-lookup
latency (default reflects one round trip on the cluster interconnect)
so metadata pressure appears in the simulation without dominating it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.rst import RST, StripePair
from ..exceptions import ConfigurationError
from ..network.link import Link
from ..simulate import Completion, FIFOResource, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.drt import DRT

__all__ = ["MetaDataServer"]


class MetaDataServer:
    """Serves RST lookups with a small FIFO-queued latency.

    Multi-tenant deployments register per-tenant *namespaces*: each
    tenant's region-stripe table (and optionally its data-reordering
    table) lives under its tenant id, so one tenant's region names can
    never shadow another's.  Lookups without a tenant keep hitting the
    legacy global table, so single-application experiments are
    untouched.
    """

    def __init__(
        self,
        sim: Simulator,
        rst: RST | None = None,
        link: Link | None = None,
        lookup_latency: float | None = None,
    ) -> None:
        self.sim = sim
        self.rst = rst if rst is not None else RST()
        if lookup_latency is None:
            lookup_latency = 2 * (link.latency if link is not None else 0.05e-3)
        self.lookup_latency = lookup_latency
        self.channel = FIFOResource(sim, name="mds")
        self.lookups = 0
        self._rst_namespaces: dict[int, RST] = {}
        self._drt_namespaces: dict[int, "DRT"] = {}

    def register_namespace(
        self, tenant: int, rst: RST | None = None, drt: "DRT | None" = None
    ) -> None:
        """Attach tenant ``tenant``'s RST (and optionally DRT)."""
        if tenant in self._rst_namespaces:
            raise ConfigurationError(f"tenant {tenant} namespace already registered")
        self._rst_namespaces[tenant] = rst if rst is not None else RST()
        if drt is not None:
            self._drt_namespaces[tenant] = drt

    def namespaces(self) -> tuple[int, ...]:
        """Registered tenant ids, ascending."""
        return tuple(sorted(self._rst_namespaces))

    def rst_for(self, tenant: int) -> RST:
        """Tenant ``tenant``'s region-stripe table."""
        try:
            return self._rst_namespaces[tenant]
        except KeyError:
            raise ConfigurationError(
                f"no namespace registered for tenant {tenant}"
            ) from None

    def drt_for(self, tenant: int) -> "DRT | None":
        """Tenant ``tenant``'s data-reordering table, if registered."""
        self.rst_for(tenant)  # raises on unknown tenants
        return self._drt_namespaces.get(tenant)

    def lookup(
        self, region: str, tenant: int | None = None
    ) -> tuple[Completion, StripePair | None]:
        """Queue one metadata lookup; returns (completion, stripe pair).

        ``tenant`` scopes the lookup to that tenant's namespace;
        ``None`` consults the legacy global table.
        """
        self.lookups += 1
        table = self.rst if tenant is None else self.rst_for(tenant)
        pair = table.get(region) if region in table else None
        return self.channel.submit(self.lookup_latency, tag=region), pair

"""Trace replay: drive the PFS simulator with an application's requests.

The paper's trace-driven experiments (§V-D) "replay the data accesses
of the application according to the I/O trace": every rank issues its
own requests synchronously (next request starts when the previous
completes — the applications use synchronous read/write), and ranks
run concurrently.  The replay engine reproduces exactly that, mapping
each request through a *file view* — any object with
``map_request(file, offset, length) -> list[SubRequest]``, i.e. a
static layout table (DEF/AAL/HARL) or the MHA redirector.

Two engines produce the same replay:

* ``"flat"`` (the default, :mod:`repro.pfs.flat`) — an event-free merge
  loop over per-rank cursors that computes every completion time as
  queue-tail arithmetic.  Bit-identical metrics, ~an order of magnitude
  faster;
* ``"event"`` — one generator process per rank on the discrete-event
  engine.  Required (and selected automatically) whenever a replay
  needs per-record hooks (``on_record``/``collector``), servers with
  multi-channel queues, or a simulator with events already in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Collection,
    Iterator,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np

from ..cluster import ClusterSpec
from ..config import DEFAULT_REPLAY_ENGINE
from ..layouts.base import SubRequest
from ..simulate import Simulator, Waitable
from ..tracing.collector import IOCollector
from ..tracing.columnar import ColumnarTrace
from ..tracing.record import Trace, TraceRecord
from .flat import replay_flat
from .system import HybridPFS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.plan import FaultPlan

__all__ = ["FileView", "RunMetrics", "replay_trace", "run_workload"]


@runtime_checkable
class FileView(Protocol):
    """Anything that can resolve a file request into server fragments."""

    def map_request(self, file: str, offset: int, length: int) -> list[SubRequest]:
        """Fragments of ``[offset, offset+length)`` of ``file``."""
        ...  # pragma: no cover - protocol


@dataclass
class RunMetrics:
    """Everything a replay measures."""

    makespan: float
    total_bytes: int
    requests: int
    per_server_busy: list[float]
    per_server_bytes: list[int]
    read_bytes: int
    write_bytes: int
    latencies: list[float] = field(default_factory=list)
    #: issuing rank of each kept latency sample (parallel to
    #: ``latencies``); the multi-tenant service namespaces ranks per
    #: tenant, so this is what per-tenant tail percentiles group by
    latency_ranks: list[int] = field(default_factory=list)
    #: per-server sub-request service latencies (finish - submit), by
    #: cluster index; populated only when the replay kept latencies —
    #: the per-server tail columns of the chaos reports read these
    per_server_latencies: list[list[float]] = field(default_factory=list)
    # cached ascending view of ``latencies`` for percentile queries;
    # rebuilt when the list length changes, droppable explicitly via
    # :meth:`invalidate_latency_cache` after in-place mutation
    _sorted_latencies: list[float] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    # same caching discipline, per server index
    _sorted_server_latencies: dict[int, list[float]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def bandwidth(self) -> float:
        """Aggregate bandwidth in bytes/second (the figures' metric)."""
        if self.makespan <= 0:
            return 0.0
        return self.total_bytes / self.makespan

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def invalidate_latency_cache(self) -> None:
        """Drop the sorted-latency caches (call after mutating
        ``latencies``/``per_server_latencies`` in place without
        changing their lengths)."""
        self._sorted_latencies = None
        self._sorted_server_latencies.clear()

    def _sorted_view(self) -> list[float]:
        cached = self._sorted_latencies
        if cached is None or len(cached) != len(self.latencies):
            cached = sorted(self.latencies)
            self._sorted_latencies = cached
        return cached

    def latency_percentile(self, q: float) -> float:
        """Request-latency percentile (``q`` in [0, 100]).

        Requires the replay to have been run with
        ``keep_latencies=True``; returns 0.0 otherwise.  The sorted
        view is cached, so repeated percentile queries (p50/p99 per
        figure row) cost one sort total.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self.latencies:
            return 0.0
        ordered = self._sorted_view()
        rank = min(len(ordered) - 1, int(round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def server_latency_percentile(self, server: int, q: float) -> float:
        """Per-server sub-request latency percentile (``q`` in [0, 100]).

        ``server`` is the cluster index.  Requires the replay to have
        kept latencies; returns 0.0 when the server saw no traffic (or
        none were kept).  Sorted views are cached per server, the same
        discipline as :meth:`latency_percentile`.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not 0 <= server < len(self.per_server_latencies):
            if not self.per_server_latencies:
                return 0.0
            raise IndexError(
                f"server {server} out of range 0..{len(self.per_server_latencies) - 1}"
            )
        raw = self.per_server_latencies[server]
        if not raw:
            return 0.0
        cached = self._sorted_server_latencies.get(server)
        if cached is None or len(cached) != len(raw):
            cached = sorted(raw)
            self._sorted_server_latencies[server] = cached
        rank = min(len(cached) - 1, int(round(q / 100 * (len(cached) - 1))))
        return cached[rank]

    def group_latencies(self, ranks: "Collection[int]") -> list[float]:
        """The kept latency samples of requests issued by ``ranks``.

        Requires the replay to have kept latencies; the returned list
        is in completion order, same as :attr:`latencies`.  The
        multi-tenant service passes a tenant's (namespaced) rank set
        here to compute per-tenant tails.
        """
        wanted = ranks if isinstance(ranks, (set, frozenset)) else frozenset(ranks)
        return [
            lat
            for lat, rank in zip(self.latencies, self.latency_ranks)
            if rank in wanted
        ]

    def group_latency_percentile(self, ranks: "Collection[int]", q: float) -> float:
        """Request-latency percentile over one rank group (tenant).

        Same rank convention as :meth:`latency_percentile`; returns 0.0
        when the group has no kept samples.  Not cached — tenant groups
        are queried a handful of times each, unlike the global tails.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        samples = sorted(self.group_latencies(ranks))
        if not samples:
            return 0.0
        rank = min(len(samples) - 1, int(round(q / 100 * (len(samples) - 1))))
        return samples[rank]

    @property
    def p50_latency(self) -> float:
        """Median request latency (0.0 unless latencies were kept)."""
        return self.latency_percentile(50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile request latency (0.0 unless kept)."""
        return self.latency_percentile(95)

    @property
    def p99_latency(self) -> float:
        """99th-percentile request latency (tail; 0.0 unless kept)."""
        return self.latency_percentile(99)

    @property
    def p999_latency(self) -> float:
        """99.9th-percentile request latency (0.0 unless kept)."""
        return self.latency_percentile(99.9)

    def load_imbalance(self) -> float:
        """Max/min per-server I/O time over servers that did any work.

        1.0 means perfectly even (the paper's Fig. 8 normalizes to the
        minimum for the same reason).
        """
        active = [t for t in self.per_server_busy if t > 0]
        if len(active) < 2:
            return 1.0
        return max(active) / min(active)


def _phase_index(
    ordered: "Sequence[TraceRecord] | ColumnarTrace", barrier_gap: float
) -> tuple[list[int], list[int]]:
    """Bucket time-ordered records into barrier phases, by *index*.

    A new phase opens wherever consecutive timestamps jump by more than
    ``barrier_gap``.  Keying by position (not by record value) keeps
    duplicated records — identical rank/offset/size/timestamp entries,
    legal in a trace — in their own phase slots.  Returns
    ``(phase_of, phase_sizes)`` with ``phase_of[i]`` the phase of
    ``ordered[i]``.  Columnar traces take a vectorized branch with the
    same boundaries (``t[i] - t[i-1] > gap`` on float64 either way).
    """
    if isinstance(ordered, ColumnarTrace):
        times = ordered.data["timestamp"]
        if times.size == 0:
            return [], []
        new_phase = np.empty(times.size, dtype=bool)
        new_phase[0] = True
        new_phase[1:] = times[1:] - times[:-1] > barrier_gap
        phase_arr = np.cumsum(new_phase) - 1
        return phase_arr.tolist(), np.bincount(phase_arr).tolist()
    phase_of: list[int] = []
    sizes: list[int] = []
    prev_t: float | None = None
    for record in ordered:
        if prev_t is None or record.timestamp - prev_t > barrier_gap:
            sizes.append(0)
        prev_t = record.timestamp
        phase_of.append(len(sizes) - 1)
        sizes[-1] += 1
    return phase_of, sizes


def _arrival_gate(sim: Simulator, at: float) -> Waitable:
    """A waitable firing at absolute simulated time ``at`` (one event)."""
    gate = Waitable()
    sim.schedule_at(at, gate.fire)
    return gate


def _replay_event(
    pfs: HybridPFS,
    view: FileView,
    ordered: Sequence[TraceRecord],
    *,
    keep_latencies: bool,
    collector: IOCollector | None,
    on_record: Callable[[TraceRecord], None] | None,
    phase_of: list[int] | None,
    phase_sizes: list[int] | None,
    open_arrivals: bool = False,
) -> tuple[float, list[float], list[int]]:
    """The generator-process replay path (one process per rank)."""
    sim = pfs.sim
    start_time = sim.now
    latencies: list[float] = []
    latency_ranks: list[int] = []
    # optional view protocols: op-aware dispatch (a dispatcher that
    # treats writes and reads differently and orders its own pre-merged
    # runs, e.g. straggler-aware write redirection) and completion-time
    # latency feedback
    dispatch = getattr(view, "dispatch_request", None)
    observer = getattr(view, "observe_latency", None)
    by_rank: dict[int, list[int]] = {}
    for i, record in enumerate(ordered):
        by_rank.setdefault(record.rank, []).append(i)
    foreground_end = [start_time]

    use_barrier = phase_of is not None
    remaining: list[int] = list(phase_sizes) if phase_sizes is not None else []
    phases: list[int] = phase_of if phase_of is not None else []
    phase_done: list[Waitable] = [Waitable() for _ in remaining]
    frontier = [0]  # first phase not yet known complete

    def record_complete(phase: int) -> None:
        remaining[phase] -= 1
        while frontier[0] < len(remaining) and remaining[frontier[0]] == 0:
            phase_done[frontier[0]].fire()
            frontier[0] += 1

    def rank_process(indices: list[int]) -> Iterator[Waitable]:
        for i in indices:
            record = ordered[i]
            if use_barrier:
                p = phases[i]
                if p > 0 and not phase_done[p - 1].fired:
                    yield phase_done[p - 1]
            if open_arrivals:
                arrival = start_time + record.timestamp
                if arrival > sim.now:
                    yield _arrival_gate(sim, arrival)
            issued = sim.now
            if on_record is not None:
                on_record(record)
            if collector is not None:
                collector.record(
                    rank=record.rank,
                    op=record.op,
                    offset=record.offset,
                    size=record.size,
                    file=record.file,
                    timestamp=issued,
                )
            if dispatch is not None:
                runs = dispatch(record.op, record.file, record.offset, record.size)
                yield pfs.issue_merged(
                    record.op, runs, rank=record.rank, observer=observer
                )
            else:
                fragments = view.map_request(record.file, record.offset, record.size)
                yield pfs.issue(
                    record.op, fragments, rank=record.rank, observer=observer
                )
            if use_barrier:
                record_complete(phases[i])
            if keep_latencies:
                latencies.append(sim.now - issued)
                latency_ranks.append(record.rank)
        foreground_end[0] = max(foreground_end[0], sim.now)

    for rank in sorted(by_rank):
        sim.spawn(rank_process(by_rank[rank]), name=f"rank{rank}")
    sim.run()
    return foreground_end[0], latencies, latency_ranks


def replay_trace(
    pfs: HybridPFS,
    view: FileView,
    trace: "Trace | ColumnarTrace",
    *,
    keep_latencies: bool = False,
    collector: IOCollector | None = None,
    on_record: Callable[[TraceRecord], None] | None = None,
    barrier_gap: float | None = None,
    engine: str | None = None,
    fault_plan: "FaultPlan | None" = None,
    open_arrivals: bool = False,
) -> RunMetrics:
    """Replay ``trace`` against ``pfs`` through ``view``.

    Each rank's records are issued in timestamp order, one at a time;
    ranks proceed independently and contend on the servers.  Returns
    the metrics of this replay (server stats are reset first, so a
    shared :class:`HybridPFS` can host several sequential replays).

    ``on_record`` is called with each trace record at its simulated
    issue time, *before* the request is mapped — the hook point for
    online observers (the relayout controller of :mod:`repro.online`
    watches live traffic and spawns background migrations through it).
    Because the view is consulted after the hook, a hook that swaps or
    mutates the view affects the very record it was called for.
    ``metrics.makespan`` covers only the foreground requests: processes
    the hook spawned may keep the simulator running past it.

    ``barrier_gap`` emulates MPI collective I/O: records are bucketed
    into phases wherever consecutive trace timestamps jump by more
    than the gap (the :data:`~repro.workloads.base.PHASE_GAP`
    structure of the workload generators), and no rank may issue a
    phase-``p`` record before every record of earlier phases has
    completed.  ``None`` (the default) keeps ranks fully independent.

    ``engine`` picks ``"flat"`` or ``"event"``
    (:data:`~repro.config.DEFAULT_REPLAY_ENGINE` when ``None``).  The
    flat kernel requires a pure replay — it is skipped, falling back to
    the event engine, when an ``on_record``/``collector`` hook is set,
    when the simulator already has pending events (e.g. background
    migrations in flight), when any server queue has more than one
    channel, or when the view declares ``requires_event_engine`` (a
    feedback dispatcher — e.g. the straggler-aware view — whose mapping
    depends on completion-time observations the flat kernel's pre-pass
    cannot provide).

    ``fault_plan`` attaches a compiled
    :class:`~repro.faults.plan.FaultPlan` to ``pfs`` before the replay
    (``None`` leaves whatever is already attached untouched).  Faults
    only defer/dilate service — both engines consult the same compiled
    timelines and stay bit-identical.

    ``open_arrivals`` switches to open-loop replay: in addition to the
    closed-loop rule (a rank's next record issues when its previous one
    completes), no record may issue before ``replay start +
    record.timestamp`` — the trace timestamps become an arrival
    process.  This is how the multi-tenant service
    (:mod:`repro.tenancy`) replays independently-arriving tenant
    streams; both engines implement it bit-identically.
    """
    if engine is None:
        engine = DEFAULT_REPLAY_ENGINE
    if engine not in ("flat", "event"):
        raise ValueError(f"unknown replay engine {engine!r}")
    if fault_plan is not None:
        fault_plan.attach(pfs)
    pfs.reset_stats()
    if keep_latencies:
        for srv in pfs.servers:
            srv.latency_log = []
    sim = pfs.sim
    start_time = sim.now
    ordered = trace.sorted_by_time()
    phase_of: list[int] | None = None
    phase_sizes: list[int] | None = None
    if barrier_gap is not None:
        phase_of, phase_sizes = _phase_index(ordered, barrier_gap)
    use_flat = (
        engine == "flat"
        and on_record is None
        and collector is None
        and sim.pending() == 0
        and not getattr(view, "requires_event_engine", False)
        and all(srv.channel.capacity == 1 for srv in pfs.servers)
    )
    if use_flat:
        foreground_end, latencies, latency_ranks = replay_flat(
            pfs,
            view,
            ordered,
            keep_latencies=keep_latencies,
            phase_of=phase_of,
            phase_sizes=phase_sizes,
            open_arrivals=open_arrivals,
        )
    else:
        # the event engine's hooks and dispatchers consume records, so
        # a columnar trace materializes only on this fallback path
        event_ordered = (
            ordered.to_trace() if isinstance(ordered, ColumnarTrace) else ordered
        )
        foreground_end, latencies, latency_ranks = _replay_event(
            pfs,
            view,
            event_ordered,
            keep_latencies=keep_latencies,
            collector=collector,
            on_record=on_record,
            phase_of=phase_of,
            phase_sizes=phase_sizes,
            open_arrivals=open_arrivals,
        )

    if isinstance(trace, ColumnarTrace):
        read_bytes = trace.read_bytes()
        write_bytes = trace.write_bytes()
    else:
        read_bytes = sum(r.size for r in trace if r.op == "read")
        write_bytes = sum(r.size for r in trace if r.op == "write")
    per_server_latencies: list[list[float]] = []
    if keep_latencies:
        per_server_latencies = [
            srv.latency_log if srv.latency_log is not None else []
            for srv in pfs.servers
        ]
    return RunMetrics(
        makespan=foreground_end - start_time,
        total_bytes=trace.total_bytes(),
        requests=len(trace),
        per_server_busy=pfs.per_server_busy(),
        per_server_bytes=pfs.per_server_bytes(),
        read_bytes=read_bytes,
        write_bytes=write_bytes,
        latencies=latencies,
        latency_ranks=latency_ranks,
        per_server_latencies=per_server_latencies,
    )


def run_workload(
    spec: ClusterSpec,
    view: FileView,
    trace: "Trace | ColumnarTrace",
    *,
    keep_latencies: bool = False,
    engine: str | None = None,
    fault_plan: "FaultPlan | None" = None,
    open_arrivals: bool = False,
) -> RunMetrics:
    """Convenience: fresh simulator + PFS, one replay, return metrics."""
    pfs = HybridPFS(spec)
    return replay_trace(
        pfs,
        view,
        trace,
        keep_latencies=keep_latencies,
        engine=engine,
        fault_plan=fault_plan,
        open_arrivals=open_arrivals,
    )

"""Byte-accurate storage: the functional (data) half of the PFS.

The replay engine answers *how long* I/O takes; this module answers
*whether the bytes are right*.  Each server holds an
:class:`ObjectStore` of sparse byte objects; a :class:`DataClient`
moves real payloads through any layout or file view, splitting and
reassembling per-server fragments exactly as a PFS client does.  The
placement phase's data migration is :func:`migrate`: copy every DRT
extent from the original file's layout into its region's layout.

This is what makes redirection *testable end to end*: write a dataset
through the original layout, run the MHA pipeline, migrate, then read
through the redirector — the bytes must be identical.  (Timing and
data are deliberately orthogonal: the replay engine simulates queueing
without payloads, the data client moves payloads without a clock.
Combine them as needed.)
"""

from __future__ import annotations

from typing import Sequence

from ..core.drt import DRT
from ..exceptions import SimulationError
from ..layouts.base import Layout, SubRequest, check_tiling

__all__ = ["ObjectStore", "DataClient", "migrate"]


class ObjectStore:
    """Sparse byte objects on one server; unwritten bytes read as zero."""

    def __init__(self) -> None:
        self._objects: dict[str, bytearray] = {}

    def write(self, obj: str, offset: int, data: bytes) -> None:
        """Store ``data`` at ``offset`` of object ``obj`` (grows it)."""
        if offset < 0:
            raise SimulationError(f"offset must be >= 0, got {offset}")
        buf = self._objects.setdefault(obj, bytearray())
        end = offset + len(data)
        if len(buf) < end:
            buf.extend(b"\x00" * (end - len(buf)))
        buf[offset:end] = data

    def read(self, obj: str, offset: int, length: int) -> bytes:
        """Fetch ``length`` bytes at ``offset`` (zero-filled past EOF)."""
        if offset < 0 or length < 0:
            raise SimulationError("offset and length must be >= 0")
        buf = self._objects.get(obj, b"")
        chunk = bytes(buf[offset : offset + length])
        if len(chunk) < length:
            chunk += b"\x00" * (length - len(chunk))
        return chunk

    def size(self, obj: str) -> int:
        """Highest written byte of ``obj`` (0 if never written)."""
        return len(self._objects.get(obj, b""))

    def objects(self) -> tuple[str, ...]:
        """Names of the objects this store holds."""
        return tuple(self._objects)

    def used_bytes(self) -> int:
        """Total stored bytes across objects."""
        return sum(len(b) for b in self._objects.values())


class DataClient:
    """Moves payloads through layouts/views over per-server stores."""

    def __init__(self, num_servers: int) -> None:
        if num_servers <= 0:
            raise SimulationError("num_servers must be >= 1")
        self.stores = [ObjectStore() for _ in range(num_servers)]

    # -- fragment-level plumbing -----------------------------------------

    def _store(self, server: int) -> ObjectStore:
        try:
            return self.stores[server]
        except IndexError:
            raise SimulationError(
                f"server {server} out of range 0..{len(self.stores) - 1}"
            ) from None

    def write_fragments(
        self, fragments: Sequence[SubRequest], base: int, data: bytes
    ) -> None:
        """Scatter ``data`` (logical offset ``base``) per fragment."""
        for frag in fragments:
            lo = frag.logical_offset - base
            self._store(frag.server).write(
                frag.obj, frag.offset, data[lo : lo + frag.length]
            )

    def read_fragments(self, fragments: Sequence[SubRequest], base: int, length: int) -> bytes:
        """Gather fragments back into one logical buffer."""
        out = bytearray(length)
        for frag in fragments:
            lo = frag.logical_offset - base
            out[lo : lo + frag.length] = self._store(frag.server).read(
                frag.obj, frag.offset, frag.length
            )
        return bytes(out)

    # -- layout- and view-level API ---------------------------------------

    def write_layout(self, layout: Layout, offset: int, data: bytes) -> None:
        """Write through a single layout (no redirection)."""
        fragments = layout.map_extent(offset, len(data))
        check_tiling(offset, len(data), fragments)
        self.write_fragments(fragments, offset, data)

    def read_layout(self, layout: Layout, offset: int, length: int) -> bytes:
        """Read through a single layout (no redirection)."""
        fragments = layout.map_extent(offset, length)
        check_tiling(offset, length, fragments)
        return self.read_fragments(fragments, offset, length)

    def write(self, view, file: str, offset: int, data: bytes) -> None:
        """Write through a file view (static layout or MHA redirector)."""
        fragments = view.map_request(file, offset, len(data))
        check_tiling(offset, len(data), fragments)
        self.write_fragments(fragments, offset, data)

    def read(self, view, file: str, offset: int, length: int) -> bytes:
        """Read through a file view (static layout or MHA redirector)."""
        fragments = view.map_request(file, offset, length)
        check_tiling(offset, length, fragments)
        return self.read_fragments(fragments, offset, length)

    def used_bytes(self) -> int:
        """Total bytes stored across every server."""
        return sum(store.used_bytes() for store in self.stores)


def migrate(
    client: DataClient,
    drt: DRT,
    source_layouts: dict[str, Layout],
    target_layouts: dict[str, Layout],
) -> int:
    """Execute the placement phase's data movement.

    For every DRT entry, read the original extent through the source
    file's layout and write it at the region offset through the
    region's layout.  Entries are processed in ascending original
    offset (one sequential sweep of each source file).  Returns the
    number of bytes copied.
    """
    moved = 0
    for entry in drt:
        try:
            source = source_layouts[entry.o_file]
        except KeyError:
            raise SimulationError(
                f"no source layout for original file {entry.o_file!r}"
            ) from None
        try:
            target = target_layouts[entry.r_file]
        except KeyError:
            raise SimulationError(
                f"no target layout for region {entry.r_file!r}"
            ) from None
        data = client.read_layout(source, entry.o_offset, entry.length)
        client.write_layout(target, entry.r_offset, data)
        moved += entry.length
    return moved

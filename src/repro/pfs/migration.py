"""Simulated execution of the placement phase's data migration.

:func:`repro.core.placer.estimate_migration_time` gives a closed-form
upper bound; this module *measures* the one-off migration on the
discrete-event simulator instead: one migrator process per original
file sweeps its DRT extents in offset order, reading each extent
through the original layout and writing it through its region layout
(the write starts when the read completes; different files migrate in
parallel, exactly how an off-line copy tool would run).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterSpec
from ..core.pipeline import MHAPlan
from .system import HybridPFS

__all__ = ["MigrationMetrics", "simulate_migration"]


@dataclass(frozen=True)
class MigrationMetrics:
    """Outcome of a simulated migration."""

    makespan: float
    bytes_moved: int
    extents: int

    @property
    def bandwidth(self) -> float:
        """Effective copy bandwidth in bytes/second."""
        if self.makespan <= 0:
            return 0.0
        return self.bytes_moved / self.makespan


def simulate_migration(spec: ClusterSpec, plan: MHAPlan) -> MigrationMetrics:
    """Run the plan's migration on a fresh simulator; returns metrics."""
    pfs = HybridPFS(spec)
    sim = pfs.sim
    by_file: dict[str, list] = {}
    for entry in plan.drt:
        by_file.setdefault(entry.o_file, []).append(entry)

    total = 0
    count = 0

    def migrator(entries):
        for entry in entries:
            source = plan.original_layouts[entry.o_file]
            target = plan.region_layouts[entry.r_file]
            read_frags = source.map_extent(entry.o_offset, entry.length)
            yield pfs.issue("read", read_frags)
            write_frags = target.map_extent(entry.r_offset, entry.length)
            yield pfs.issue("write", write_frags)

    for o_file, entries in sorted(by_file.items()):
        entries.sort(key=lambda e: e.o_offset)
        total += sum(e.length for e in entries)
        count += len(entries)
        sim.spawn(migrator(entries), name=f"migrate:{o_file}")
    sim.run()
    return MigrationMetrics(makespan=sim.now, bytes_moved=total, extents=count)

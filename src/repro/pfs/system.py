"""The hybrid parallel file system: servers assembled from a cluster spec.

:class:`HybridPFS` owns the simulator, the data servers (HServers with
HDDs first, SServers with SSDs after, matching the cluster index
convention) and the MDS.  Clients interact with it through
:meth:`issue`: hand over the per-server fragments of one request and
receive a completion that fires when the slowest fragment finishes —
the defining latency semantics of striped parallel I/O.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from ..cluster import ClusterSpec
from ..contracts import twin_of
from ..devices.base import OpType
from ..exceptions import SimulationError
from ..layouts.base import SubRequest
from ..layouts.batch import merge_fragments
from ..simulate import Completion, FIFOResource, Simulator
from .mds import MetaDataServer
from .server import DataServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulate.resources import ServiceRecord

__all__ = ["HybridPFS", "merge_fragments"]


def _observation(
    observer: Callable[[int, float, float], None], server: int
) -> "Callable[[ServiceRecord], None]":
    """A completion waiter reporting ``(server, latency, finish)``.

    The fired value is the channel's ``ServiceRecord``; its ``arrival``
    is the submission time, so ``finish - arrival`` is the client-side
    sub-request latency (queueing + NIC wait + service).
    """

    def _fire(record: "ServiceRecord") -> None:
        observer(server, record.finish - record.arrival, record.finish)

    return _fire


class HybridPFS:
    """A simulated hybrid parallel file system."""

    def __init__(self, spec: ClusterSpec, sim: Simulator | None = None) -> None:
        self.spec = spec
        self.sim = sim if sim is not None else Simulator()
        self.servers: list[DataServer] = []
        for idx in spec.hserver_ids:
            self.servers.append(
                DataServer(self.sim, idx, spec.hdd, spec.link, name=f"h{idx}")
            )
        for idx in spec.sserver_ids:
            self.servers.append(
                DataServer(self.sim, idx, spec.ssd, spec.link, name=f"s{idx}")
            )
        self.mds = MetaDataServer(self.sim, link=spec.link)
        # compute-node NICs (optional): one serialized link per node
        self.client_links: list[FIFOResource] | None = None
        if spec.model_client_nics:
            self.client_links = [
                FIFOResource(self.sim, name=f"client{i}.nic")
                for i in range(spec.num_clients)
            ]

    def server(self, index: int) -> DataServer:
        """The data server at cluster index ``index``."""
        try:
            return self.servers[index]
        except IndexError:
            raise SimulationError(
                f"server index {index} out of range 0..{len(self.servers) - 1}"
            ) from None

    def issue(
        self,
        op: OpType,
        fragments: Sequence[SubRequest],
        rank: int | None = None,
        observer: Callable[[int, float, float], None] | None = None,
    ) -> Completion:
        """Issue one file request given its mapped fragments.

        Fragments are merged per server object, enqueued on their
        servers, and the returned completion fires when the **slowest**
        sub-request completes.  When client-NIC modelling is enabled
        and ``rank`` is given, the issuing compute node's link first
        serializes the request's payload (ranks map round-robin onto
        the cluster's client nodes), so co-located ranks contend.

        ``observer`` is the client-side latency feedback hook: it is
        called as ``observer(server, latency, finish)`` once per merged
        sub-request *when that sub-request completes* (so a dispatcher
        only ever learns from the past — the straggler-aware view's
        EWMAs update through this).
        """
        return self.issue_merged(
            op, merge_fragments(fragments), rank=rank, observer=observer
        )

    def issue_merged(
        self,
        op: OpType,
        merged: Sequence[SubRequest],
        rank: int | None = None,
        observer: Callable[[int, float, float], None] | None = None,
    ) -> Completion:
        """:meth:`issue` for runs that are already merged.

        Dispatch-ordering views (``dispatch_request``) hand over runs in
        their own issue order; :func:`merge_fragments` would re-sort
        them by logical offset, so this entry point submits them
        verbatim.  Callers must pass non-overlapping per-server runs —
        exactly what ``merge_fragments`` (in any order) produces.
        """
        if not merged:
            done = Completion()
            done.fire(None)
            return done
        not_before = 0.0
        if self.client_links is not None and rank is not None:
            node = self.client_links[rank % len(self.client_links)]
            total = sum(f.length for f in merged)
            record, _ = node.schedule(self.spec.link.transfer_time(total))
            not_before = record.finish
        completions = []
        for f in merged:
            done = self.server(f.server).submit(
                op, f.obj, f.offset, f.length, not_before=not_before
            )
            if observer is not None:
                done.add_waiter(_observation(observer, f.server))
            completions.append(done)
        return self.sim.all_of(completions)

    @twin_of(
        "repro.pfs.system:HybridPFS.issue",
        twin_only=("now",),
        harness="pfs_issue",
    )
    def issue_flat(
        self,
        op: OpType,
        fragments: Sequence[SubRequest],
        rank: int | None = None,
        observer: Callable[[int, float, float], None] | None = None,
        now: float | None = None,
    ) -> float:
        """Event-free :meth:`issue`: the request's finish time, directly.

        With one FIFO channel per server a sub-request's finish time is
        pure queue-tail arithmetic, so no completion/event machinery is
        needed — the same merged runs are scheduled through
        ``submit_flat``/``schedule_flat`` and the slowest finish time is
        returned.  ``now`` is the issue time (defaults to the sim
        clock); an empty request completes immediately at ``now``.

        ``observer`` receives the same ``(server, latency, finish)``
        observations as :meth:`issue`, but synchronously at submission
        (finish times are already known); feedback dispatchers that
        must not see the future set ``requires_event_engine`` on their
        view instead, which routes their replays to the event engine.
        """
        if now is None:
            now = self.sim.now
        merged = merge_fragments(fragments)
        if not merged:
            return now
        not_before = 0.0
        if self.client_links is not None and rank is not None:
            node = self.client_links[rank % len(self.client_links)]
            total = sum(f.length for f in merged)
            not_before = node.schedule_flat(
                now, self.spec.link.transfer_time(total)
            )
        finish = now
        for f in merged:
            done = self.server(f.server).submit_flat(
                op, f.obj, f.offset, f.length, now, not_before=not_before
            )
            if observer is not None:
                observer(f.server, done - now, done)
            if done > finish:
                finish = done
        return finish

    # -- statistics ------------------------------------------------------

    def per_server_busy(self) -> list[float]:
        """Each server's accumulated I/O (service) time, by index."""
        return [srv.busy_time for srv in self.servers]

    def per_server_bytes(self) -> list[int]:
        """Bytes moved per server, by index."""
        return [srv.stats.total_bytes for srv in self.servers]

    def reset_stats(self) -> None:
        for srv in self.servers:
            srv.reset_stats()

"""Tolerance-based float comparison helpers.

Costs, centroids, and timestamps go through enough floating-point
arithmetic that exact ``==`` is a latent bug: a feature spread of
``1e-17`` is "zero" for normalisation purposes, but ``spread == 0.0``
misses it and the next line divides by it.  repro-lint's RL005 rule
bans exact float equality in ``src/``; these helpers are the sanctioned
replacements.

The default absolute tolerance is deliberately generous (``1e-12``)
relative to the quantities compared here — seconds of service time and
bytes-as-floats — both of which are far above ``1e-9`` when they are
meaningfully non-zero.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ABS_TOL", "REL_TOL", "isclose", "near_zero", "replace_near_zero"]

#: absolute tolerance for "equal" / "zero" decisions on model floats
ABS_TOL: float = 1e-12
#: relative tolerance for "equal" decisions on model floats
REL_TOL: float = 1e-9


def isclose(a: float, b: float, *, rel: float = REL_TOL, abs_: float = ABS_TOL) -> bool:
    """Scalar tolerance comparison (wraps :func:`math.isclose`)."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_)


def near_zero(values: "np.ndarray | float", *, tol: float = ABS_TOL) -> "np.ndarray":
    """Elementwise ``|x| <= tol`` mask (scalars give a 0-d array)."""
    return np.less_equal(np.abs(values), tol)


def replace_near_zero(
    values: "np.ndarray", replacement: float, *, tol: float = ABS_TOL
) -> "np.ndarray":
    """A copy of ``values`` with near-zero entries set to ``replacement``.

    The normalisation-guard idiom: ``replace_near_zero(spread, 1.0)``
    maps constant axes to a unit normaliser so they contribute zero
    distance instead of dividing by (almost) zero.
    """
    return np.where(near_zero(values, tol=tol), replacement, values)

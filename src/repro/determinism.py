"""Central seed lineage: every RNG stream is derived, never improvised.

The reproduction's headline guarantees — bit-identical sharded vs
serial builds, flat vs event replay, double-run ``serve``/``chaos``
digests — all reduce to one discipline: every random stream must be
(a) derived from a *named* root seed, (b) independent of every other
stream, and (c) re-derivable inside any worker process from a plain
picklable spec.  Before this module, each subsystem improvised its own
derivation (``default_rng([seed, index])`` list-seeding in ``faults/``,
``workloads/arrivals.py``, …), and nothing prevented two subsystems
from landing on the same lineage.

:func:`derive_seed` replaces the ad-hoc derivations with one collision-
free construction: a SHA-256 over the :class:`SeedDomain` tag, the
root ``base`` seed, and the integer ``indices``.  Distinct
``(domain, base, indices)`` tuples map to distinct 64-bit seeds unless
SHA-256 itself collides, so streams from different domains (or
different indices within one domain) can never alias the way two
``[seed, k]`` lists with an overlapping prefix could.
:func:`derive_rng` is the companion constructor — the only sanctioned
way to build a generator in the seeded subsystems, enforced statically
by repro-lint's RL201.

Runtime sanitizer
-----------------

``REPRO_SANITIZE=1`` arms a recording hook: every :func:`derive_seed`
call appends its lineage to a process-local :class:`Ledger`, and every
generator built by :func:`derive_rng` counts its draws against that
lineage.  :func:`repro.core.parallel.parallel_map` merges worker
ledgers back into the parent, so a sharded run's ledger is comparable
to a serial run's.  ``REPRO_SANITIZE_OUT=<path>`` writes the ledger as
JSON at interpreter exit; ``python -m tools.repro_lint sanitize-report
a.json b.json`` diffs two ledgers and fails on any lineage collision or
draw-count divergence — the dynamic complement to RL201/RL202's
conservative static proof.
"""

from __future__ import annotations

import atexit
import enum
import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, cast

import numpy as np

__all__ = [
    "Ledger",
    "LedgerEntry",
    "SANITIZE_ENV_VAR",
    "SANITIZE_OUT_ENV_VAR",
    "SeedDomain",
    "derive_rng",
    "derive_seed",
    "ledger",
    "reset_ledger",
    "sanitize_enabled",
    "write_ledger",
]

#: set to ``1`` to record seed lineages and draw counts
SANITIZE_ENV_VAR = "REPRO_SANITIZE"
#: path the armed ledger is written to at interpreter exit
SANITIZE_OUT_ENV_VAR = "REPRO_SANITIZE_OUT"


class SeedDomain(enum.Enum):
    """One tag per independent family of RNG consumers.

    The tag string is hashed into every seed the domain derives, so two
    domains can never produce overlapping streams.  Tags are frozen
    vocabulary: renaming one changes every stream it feeds (and every
    digest downstream), so add new domains instead of repurposing old
    ones, and give every *call site* its own ``(domain, index-arity)``
    lineage — repro-lint's RL202 rejects two call sites sharing one.
    """

    #: trace subsampling in the planning pipeline (AAL stripe search)
    SAMPLE = "sample"
    #: fault-plan compilation; index = model position in the plan
    FAULTS = "faults"
    #: tenant Poisson arrival rewrites; index = tenant/stream id
    ARRIVALS = "arrivals"
    #: IOR request-slot shuffling
    IOR = "workload.ior"
    #: Cholesky panel-size schedule
    CHOLESKY = "workload.cholesky"


def derive_seed(domain: SeedDomain, *indices: int, base: int = 0) -> int:
    """A 64-bit seed, unique per ``(domain, base, indices)`` lineage.

    SHA-256 over the domain tag, the root ``base`` seed, and the
    indices, each length-delimited so ``(1, 23)`` and ``(12, 3)`` can
    never serialize alike.  Collision-free by construction: distinct
    lineages produce distinct seeds up to SHA-256 collisions.
    """
    hasher = hashlib.sha256()
    payload = "|".join([domain.value, str(int(base)), *map(str, map(int, indices))])
    hasher.update(payload.encode("ascii"))
    seed = int.from_bytes(hasher.digest()[:8], "big")
    if sanitize_enabled():
        _LEDGER.record(domain.value, tuple(int(i) for i in indices), int(base), seed)
    return seed


def derive_rng(
    domain: SeedDomain, *indices: int, base: int = 0
) -> np.random.Generator:
    """The sanctioned generator constructor for seeded subsystems.

    Equivalent to ``np.random.default_rng(derive_seed(...))``; under
    ``REPRO_SANITIZE=1`` the generator is wrapped so every draw is
    counted against its lineage in the process ledger.
    """
    seed = derive_seed(domain, *indices, base=base)
    rng = np.random.default_rng(seed)
    if sanitize_enabled():
        key = _lineage_key(
            domain.value, tuple(int(i) for i in indices), int(base)
        )
        return cast(np.random.Generator, _TracingGenerator(rng, key))
    return rng


def sanitize_enabled() -> bool:
    """Whether the recording hook is armed (``REPRO_SANITIZE=1``)."""
    return os.environ.get(SANITIZE_ENV_VAR, "").strip() == "1"


# -- the ledger -----------------------------------------------------------


def _lineage_key(domain: str, indices: tuple[int, ...], base: int) -> str:
    return "|".join([domain, str(base), *map(str, indices)])


@dataclass
class LedgerEntry:
    """One lineage's record: the derived seed and its draw traffic."""

    seed: int
    #: times the lineage was derived (re-derivation in workers is normal)
    derivations: int = 0
    #: generator method calls charged to this lineage
    draws: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "seed": self.seed,
            "derivations": self.derivations,
            "draws": self.draws,
        }


class Ledger:
    """Thread-safe map of lineage key -> :class:`LedgerEntry`."""

    def __init__(self) -> None:
        self._entries: dict[str, LedgerEntry] = {}
        self._lock = threading.Lock()

    def record(
        self, domain: str, indices: tuple[int, ...], base: int, seed: int
    ) -> None:
        key = _lineage_key(domain, indices, base)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = LedgerEntry(seed=seed)
            entry.derivations += 1

    def count_draw(self, key: str) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.draws += 1

    def merge(self, entries: dict[str, dict[str, int]]) -> None:
        """Fold a worker's serialized ledger into this one."""
        with self._lock:
            for key, payload in entries.items():
                entry = self._entries.get(key)
                if entry is None:
                    self._entries[key] = LedgerEntry(
                        seed=int(payload["seed"]),
                        derivations=int(payload.get("derivations", 0)),
                        draws=int(payload.get("draws", 0)),
                    )
                else:
                    entry.derivations += int(payload.get("derivations", 0))
                    entry.draws += int(payload.get("draws", 0))

    def snapshot(self) -> dict[str, dict[str, int]]:
        """A JSON-ready copy of every entry, keys sorted."""
        with self._lock:
            return {
                key: self._entries[key].to_dict()
                for key in sorted(self._entries)
            }

    def collisions(self) -> list[tuple[str, str]]:
        """Pairs of distinct lineages that derived the same seed."""
        with self._lock:
            by_seed: dict[int, str] = {}
            found: list[tuple[str, str]] = []
            for key in sorted(self._entries):
                seed = self._entries[key].seed
                if seed in by_seed:
                    found.append((by_seed[seed], key))
                else:
                    by_seed[seed] = key
            return found

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_LEDGER = Ledger()


def ledger() -> Ledger:
    """The process-local ledger (shared by workers' merge-backs)."""
    return _LEDGER


def reset_ledger() -> None:
    """Drop every recorded lineage (tests; per-item worker capture)."""
    _LEDGER.clear()


def write_ledger(path: str) -> None:
    """Serialize the ledger to ``path`` as JSON (sorted, stable)."""
    payload = {
        "version": 1,
        "entries": _LEDGER.snapshot(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


@dataclass
class _TracingGenerator:
    """Draw-counting proxy around ``np.random.Generator``.

    Forwards every attribute; callable attributes (the draw methods)
    are wrapped to charge one draw per call to the lineage key.  Only
    constructed under ``REPRO_SANITIZE=1``, so the seeded subsystems
    pay nothing in normal runs.
    """

    _rng: np.random.Generator
    _key: str = field(default="")

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._rng, name)
        if callable(attr):
            def traced(*args: Any, **kwargs: Any) -> Any:
                _LEDGER.count_draw(self._key)
                return attr(*args, **kwargs)

            return traced
        return attr


def _flush_at_exit() -> None:  # pragma: no cover - exercised via subprocess
    out = os.environ.get(SANITIZE_OUT_ENV_VAR, "").strip()
    if sanitize_enabled() and out:
        write_ledger(out)


atexit.register(_flush_at_exit)

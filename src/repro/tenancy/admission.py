"""Admission control: at most ``max_active`` tenants in flight.

A thousand tenants arriving in one burst would melt any real cluster's
metadata path before a single byte moved; admission control is what a
service front end does about it.  This one is the classic k-slot
queue, made deterministic: tenants are considered in id order, each
occupies a slot from its (possibly delayed) admission until its
*estimated* completion — native span plus demand over the cluster's
nominal capacity — and a tenant whose slots are all busy is shifted,
whole, to the earliest slot release.  The shift is a uniform
translation of the tenant's arrival stream, so its internal order and
pacing are untouched (which keeps premapped per-file request runs
valid downstream).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Sequence

from ..exceptions import ConfigurationError

__all__ = ["admission_offsets"]


def admission_offsets(
    first_arrivals: Sequence[float],
    last_arrivals: Sequence[float],
    demands: Sequence[int],
    capacity: float,
    max_active: int,
) -> list[float]:
    """Per-tenant start delays under a ``max_active``-slot front end.

    ``first_arrivals``/``last_arrivals`` bound tenant ``i``'s native
    stream; ``demands[i]`` is its total bytes.  Returns one
    non-negative offset per tenant: add it to every arrival of that
    tenant.  ``max_active`` of at least the tenant count admits
    everyone immediately (all offsets zero).
    """
    if max_active < 1:
        raise ConfigurationError(f"max_active must be >= 1, got {max_active}")
    if capacity <= 0.0:
        raise ConfigurationError(f"capacity must be > 0, got {capacity}")
    n = len(first_arrivals)
    if not n == len(last_arrivals) == len(demands):
        raise ConfigurationError("per-tenant inputs must have equal length")
    slots: list[float] = []  # estimated release times of busy slots
    offsets: list[float] = []
    for i in range(n):
        if len(slots) < max_active:
            free = 0.0
        else:
            free = heappop(slots)
        admit = first_arrivals[i] if first_arrivals[i] > free else free
        offset = admit - first_arrivals[i]
        span = last_arrivals[i] - first_arrivals[i]
        heappush(slots, admit + span + demands[i] / capacity)
        offsets.append(offset)
    return offsets

"""The multi-tenant cluster service: build shards, merge, replay once.

:func:`serve_scenario` is the top of the tenancy stack — the
``python -m repro.harness serve`` entry point.  The pipeline:

1. **Fleet** — :func:`~repro.tenancy.spec.make_tenants` (or an
   explicit tuple of :class:`~repro.tenancy.spec.TenantSpec`),
   validated at config time (shares sum ≤ 1, dense ids).
2. **Sharded builds** — :func:`~repro.tenancy.shard.build_tenants`
   fans one pure task per tenant across processes: trace generation,
   seeded Poisson arrival rewrite, namespacing, scheme build, columnar
   premapping, SServer-quota enforcement.  ``MergedRuns`` is the
   exchange format back to the coordinator.
3. **Deterministic merge** — admission control
   (:func:`~repro.tenancy.admission.admission_offsets`), per-tenant
   token-bucket shaping at ``share × nominal`` rate, and SCFQ weighted
   fair queueing (:func:`~repro.tenancy.qos.wfq_emission`) assign
   every record a strictly increasing emission timestamp.  Each stage
   preserves within-tenant order, so the shards' premapped per-file
   runs stay valid.
4. **One coupled replay** — a single :class:`~repro.pfs.system.HybridPFS`
   (per-tenant RST namespaces registered on its MDS) replays the merged
   trace open-loop; cross-tenant interference happens where it
   physically lives, in the shared server queues.
5. **Attribution** — ``RunMetrics.latency_ranks`` plus the disjoint
   rank windows turn the shared latency stream back into per-tenant
   p50/p95/p99 tails.

Every stage is deterministic, so :meth:`ServeReport.digest` is a
stable SHA-256 over the full result surface — CI's ``serve-smoke``
job replays the scenario twice and diffs the digests, and the
sharded-vs-serial equivalence is property-tested in
``tests/tenancy/``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from ..cluster import ClusterSpec
from ..config import DEFAULT_ARRIVAL_SEED
from ..core.rst import RST, StripePair
from ..exceptions import ConfigurationError
from ..harness.report import (
    FigureResult,
    bandwidth_mib,
    latency_ms,
    quantile_label,
    to_csv,
)
from ..layouts.batch import MergedRuns
from ..pfs.replay import RunMetrics, replay_trace
from ..tracing.columnar import as_columnar_trace
from ..pfs.system import HybridPFS
from ..tracing.record import Trace
from ..units import MiB
from .admission import admission_offsets
from .namespace import RANK_STRIDE, tenant_of_rank
from .qos import nominal_bandwidth, token_bucket_release, wfq_emission
from .shard import TenantBuild, build_tenants
from .spec import TenantSpec, make_tenants, validate_tenants
from .view import TenantRoutingView

__all__ = ["SERVE_QUANTILES", "ServeReport", "TenantMetrics", "serve_scenario"]

#: per-tenant tail quantiles the serve report tabulates
SERVE_QUANTILES: tuple[float, ...] = (50.0, 95.0, 99.0)


def _percentile(ordered: list[float], q: float) -> float:
    """Rank-rounding percentile over pre-sorted samples (0.0 if empty)."""
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[idx]


@dataclass(frozen=True)
class TenantMetrics:
    """One tenant's slice of the shared replay."""

    tenant: int
    klass: str
    requests: int
    completed: int
    bytes: int
    demoted: bool
    admission_delay: float
    p50: float
    p95: float
    p99: float


@dataclass
class ServeReport:
    """The full result surface of one serve scenario."""

    label: str
    num_tenants: int
    max_active: int
    makespan: float
    total_requests: int
    total_bytes: int
    figures: list[FigureResult] = field(default_factory=list)
    tenants: list[TenantMetrics] = field(default_factory=list)
    metrics: RunMetrics | None = None

    def describe(self) -> str:
        head = (
            f"{self.label}: {self.num_tenants} tenants, "
            f"{self.total_requests} requests, "
            f"{self.total_bytes / MiB:.1f} MiB in {self.makespan:.2f}s"
        )
        return "\n\n".join([head] + [str(figure) for figure in self.figures])

    def digest(self) -> str:
        """SHA-256 over the full-precision CSV of every figure plus the
        per-tenant tail table — two runs must match byte for byte."""
        hasher = hashlib.sha256()
        for figure in self.figures:
            hasher.update(f"{figure.figure}|{figure.title}|{figure.unit}\n".encode())
            hasher.update(to_csv(figure).encode())
        for t in self.tenants:
            hasher.update(
                f"{t.tenant},{t.klass},{t.requests},{t.completed},{t.bytes},"
                f"{int(t.demoted)},{t.admission_delay!r},"
                f"{t.p50!r},{t.p95!r},{t.p99!r}\n".encode()
            )
        return hasher.hexdigest()


def _merge_emission(
    builds: list[TenantBuild],
    tenants: tuple[TenantSpec, ...],
    capacity: float,
    max_active: int,
) -> tuple[Trace, list[float]]:
    """Admission + shaping + WFQ: the merged, re-stamped trace."""
    arrivals = [[r.timestamp for r in b.records] for b in builds]
    sizes = [[r.size for r in b.records] for b in builds]
    offsets = admission_offsets(
        [a[0] if a else 0.0 for a in arrivals],
        [a[-1] if a else 0.0 for a in arrivals],
        [b.total_bytes for b in builds],
        capacity,
        max_active,
    )
    releases: list[list[float]] = []
    for spec_t, stream, size_row, offset in zip(tenants, arrivals, sizes, offsets):
        shifted = [t + offset for t in stream]
        burst = 2.0 * max(size_row) if size_row else 0.0
        releases.append(
            token_bucket_release(
                shifted, size_row, spec_t.share * capacity, burst
            )
        )
    order = wfq_emission(
        releases, sizes, [t.weight for t in tenants], capacity
    )
    stamped = [
        replace(builds[i].records[k], timestamp=start) for i, k, start in order
    ]
    return Trace(stamped), offsets


def serve_scenario(
    spec: ClusterSpec | None = None,
    tenants: int | tuple[TenantSpec, ...] = 1000,
    *,
    hot_fraction: float = 0.8,
    max_active: int = 64,
    n_jobs: int | None = 1,
    engine: str | None = None,
    arrival_seed: int = DEFAULT_ARRIVAL_SEED,
    rank_stride: int = RANK_STRIDE,
    label: str = "serve",
    columnar: bool = False,
) -> ServeReport:
    """Serve a tenant fleet on one shared hybrid PFS; tabulate fairness.

    ``tenants`` is a fleet size (expanded by
    :func:`~repro.tenancy.spec.make_tenants` with ``hot_fraction``) or
    an explicit tuple of specs.  ``max_active`` bounds concurrently
    admitted tenants; ``n_jobs`` shards the build phase across
    processes (results are bit-identical at any job count).
    ``columnar`` replays the merged fleet trace through the columnar
    spine; the report digest is identical either way.
    """
    spec = spec if spec is not None else ClusterSpec()
    if isinstance(tenants, int):
        fleet = make_tenants(tenants, hot_fraction=hot_fraction)
    else:
        fleet = tuple(tenants)
        validate_tenants(fleet)
    builds = build_tenants(
        spec, fleet, n_jobs=n_jobs, arrival_seed=arrival_seed, rank_stride=rank_stride
    )
    capacity = nominal_bandwidth(spec)
    merged, offsets = _merge_emission(builds, fleet, capacity, max_active)

    runs_by_file: dict[str, MergedRuns] = {}
    requests_by_file: dict[str, tuple[tuple[int, int], ...]] = {}
    for build in builds:
        for file, runs in build.runs_by_file.items():
            if file in runs_by_file:
                raise ConfigurationError(
                    f"file {file!r} premapped by two tenants — namespace leak"
                )
            runs_by_file[file] = runs
            requests_by_file[file] = build.requests_by_file[file]
    view = TenantRoutingView(runs_by_file, requests_by_file)

    pfs = HybridPFS(spec)
    for build in builds:
        rst = RST()
        for region, h, s in build.rst_entries:
            rst.set(region, StripePair(h, s))
        pfs.mds.register_namespace(build.tenant, rst)
    metrics = replay_trace(
        pfs,
        view,
        as_columnar_trace(merged) if columnar else merged,
        keep_latencies=True,
        open_arrivals=True,
        engine=engine,
    )

    per_tenant: dict[int, list[float]] = {}
    for latency, rank in zip(metrics.latencies, metrics.latency_ranks):
        per_tenant.setdefault(tenant_of_rank(rank, rank_stride), []).append(latency)

    report = ServeReport(
        label=label,
        num_tenants=len(fleet),
        max_active=max_active,
        makespan=metrics.makespan,
        total_requests=sum(b.requests for b in builds),
        total_bytes=sum(b.total_bytes for b in builds),
        metrics=metrics,
    )
    for build, tenant_spec, offset in zip(builds, fleet, offsets):
        ordered = sorted(per_tenant.get(build.tenant, []))
        report.tenants.append(
            TenantMetrics(
                tenant=build.tenant,
                klass=build.klass,
                requests=build.requests,
                completed=len(ordered),
                bytes=build.total_bytes,
                demoted=build.demoted,
                admission_delay=offset,
                p50=_percentile(ordered, 50.0),
                p95=_percentile(ordered, 95.0),
                p99=_percentile(ordered, 99.0),
            )
        )
    report.figures.extend(_figures(report, fleet, label))
    return report


def _figures(
    report: ServeReport, fleet: tuple[TenantSpec, ...], label: str
) -> list[FigureResult]:
    """Per-class bandwidth, tails, fairness, and tenant-tail spread."""
    classes = ("hot", "tail")
    by_class: dict[str, list[TenantMetrics]] = {c: [] for c in classes}
    for t in report.tenants:
        by_class[t.klass].append(t)

    bw = FigureResult(
        figure=f"{label}-bw",
        title="delivered bandwidth by tenant class",
        unit="MiB/s",
    )
    span = report.makespan
    for klass in classes:
        delivered = sum(t.bytes for t in by_class[klass])
        bw.add(klass, "delivered", bandwidth_mib(delivered / span if span > 0 else 0.0))
    bw.add("all", "delivered", bandwidth_mib(report.total_bytes / span if span > 0 else 0.0))

    tails = FigureResult(
        figure=f"{label}-tails",
        title="request latency tails by tenant class",
        unit="ms",
    )
    all_latencies = (
        sorted(report.metrics.latencies) if report.metrics is not None else []
    )
    pooled: dict[str, list[float]] = {c: [] for c in classes}
    if report.metrics is not None:
        klass_of = {t.tenant: t.klass for t in report.tenants}
        for latency, rank in zip(
            report.metrics.latencies, report.metrics.latency_ranks
        ):
            tenant = tenant_of_rank(rank, RANK_STRIDE)
            pooled[klass_of[tenant]].append(latency)
    for klass in classes:
        ordered = sorted(pooled[klass])
        for q in SERVE_QUANTILES:
            tails.add(klass, quantile_label(q), latency_ms(_percentile(ordered, q)))
    for q in SERVE_QUANTILES:
        tails.add("all", quantile_label(q), latency_ms(_percentile(all_latencies, q)))

    fairness = FigureResult(
        figure=f"{label}-fairness",
        title="delivered-bytes share vs configured weight share",
        unit="share",
    )
    total_weight = sum(t.weight for t in fleet)
    weight_by_class: dict[str, float] = {c: 0.0 for c in classes}
    for t in fleet:
        weight_by_class[t.klass] += t.weight
    for klass in classes:
        delivered = sum(t.bytes for t in by_class[klass])
        fairness.add(
            klass,
            "bytes",
            delivered / report.total_bytes if report.total_bytes else 0.0,
        )
        fairness.add(klass, "weight", weight_by_class[klass] / total_weight)

    spread = FigureResult(
        figure=f"{label}-tenants",
        title="spread of per-tenant p99 latency",
        unit="ms",
    )
    for klass in classes:
        p99s = sorted(t.p99 for t in by_class[klass])
        if not p99s:
            continue
        spread.add("min", klass, latency_ms(p99s[0]))
        spread.add("p50", klass, latency_ms(_percentile(p99s, 50.0)))
        spread.add("p90", klass, latency_ms(_percentile(p99s, 90.0)))
        spread.add("max", klass, latency_ms(p99s[-1]))

    admission = FigureResult(
        figure=f"{label}-admission",
        title="admission queueing delay by tenant class",
        unit="s",
    )
    for klass in classes:
        delays = [t.admission_delay for t in by_class[klass]]
        if not delays:
            continue
        admission.add(klass, "mean", sum(delays) / len(delays))
        admission.add(klass, "max", max(delays))

    return [bw, tails, fairness, spread, admission]

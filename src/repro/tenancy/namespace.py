"""Per-tenant namespaces: disjoint file names and rank ranges.

The shared replay couples tenants only where the paper says they
couple — in the server queues.  Everything *named* stays disjoint:
tenant ``k``'s files are prefixed ``t0042/`` and its ranks live in the
window ``[k * RANK_STRIDE, (k+1) * RANK_STRIDE)``.  Disjoint files
make per-tenant layout views composable into one routing view (a file
belongs to exactly one tenant, so premapped per-file request runs
remain valid after the global merge); disjoint ranks make per-tenant
latency attribution a single integer division over
``RunMetrics.latency_ranks``.
"""

from __future__ import annotations

from dataclasses import replace

from ..exceptions import ConfigurationError
from ..tracing.record import Trace, TraceRecord

__all__ = [
    "RANK_STRIDE",
    "namespace_trace",
    "rank_base",
    "tenant_file",
    "tenant_of_file",
    "tenant_of_rank",
]

#: global ranks per tenant window; generators use a handful of ranks,
#: so this bounds tenant process counts, not cluster size
RANK_STRIDE = 16


def tenant_file(tenant: int, file: str) -> str:
    """``file`` inside tenant ``tenant``'s namespace."""
    return f"t{tenant:04d}/{file}"


def tenant_of_file(file: str) -> int | None:
    """The owning tenant of a namespaced file, or ``None``."""
    head, sep, _ = file.partition("/")
    if not sep or len(head) < 2 or head[0] != "t" or not head[1:].isdigit():
        return None
    return int(head[1:])


def rank_base(tenant: int, stride: int = RANK_STRIDE) -> int:
    """First global rank of tenant ``tenant``'s window."""
    return tenant * stride


def tenant_of_rank(rank: int, stride: int = RANK_STRIDE) -> int:
    """The tenant owning global rank ``rank``."""
    return rank // stride


def namespace_trace(
    trace: Trace, tenant: int, *, stride: int = RANK_STRIDE
) -> Trace:
    """Rewrite a tenant-local trace into the global namespace.

    Files gain the tenant prefix; ranks (and pids) shift into the
    tenant's window.  Local ranks must fit the window — a generator
    using more than ``stride`` ranks is a configuration error, not a
    silent collision.
    """
    base = rank_base(tenant, stride)
    records: list[TraceRecord] = []
    for record in trace:
        if not 0 <= record.rank < stride:
            raise ConfigurationError(
                f"tenant {tenant} local rank {record.rank} outside the "
                f"0..{stride - 1} namespace window"
            )
        records.append(
            replace(
                record,
                rank=base + record.rank,
                pid=base + record.rank,
                file=tenant_file(tenant, record.file),
            )
        )
    return Trace(records)

"""Sharded tenant builds: one picklable task per tenant.

Everything a tenant needs before the shared replay — generating its
trace, rewriting it onto its seeded arrival process, namespacing it,
building its layout scheme, premapping every request into columnar
:class:`~repro.layouts.batch.MergedRuns`, and enforcing its SServer
quota — reads only that tenant's own inputs.  So the build phase
shards perfectly: :func:`build_tenants` fans
:func:`build_tenant` out over processes via
:func:`repro.core.parallel.parallel_map`, and because each task is
pure and deterministic and ``parallel_map`` preserves item order, the
sharded result is bit-identical to the serial one (property-tested in
``tests/tenancy/``).

The SServer quota is enforced here, at build time, the way a real
deployment would: if a tenant's premapped placement puts more than
``sserver_quota`` of its bytes on SServers, its scheme is rebuilt
against the HDD-only sub-cluster (HServers occupy cluster indices
``0..M-1``, so layouts built on ``spec.with_ratio(M, 0)`` are valid —
and all-HDD — in the full cluster) and the build is flagged
``demoted``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterSpec
from ..config import DEFAULT_ARRIVAL_SEED
from ..core.parallel import parallel_map
from ..effects import effects
from ..layouts.batch import MergedRuns
from ..schemes.registry import make_scheme
from ..tracing.record import Trace, TraceRecord
from ..workloads.arrivals import OpenArrivalWorkload
from .namespace import RANK_STRIDE, namespace_trace
from .spec import TenantSpec, tenant_op, tenant_workload, validate_tenants

__all__ = ["TenantBuild", "TenantBuildTask", "build_tenant", "build_tenants"]


@dataclass(frozen=True)
class TenantBuildTask:
    """The picklable unit of work one shard executes."""

    spec: ClusterSpec
    tenant: TenantSpec
    arrival_seed: int = DEFAULT_ARRIVAL_SEED
    rank_stride: int = RANK_STRIDE


@dataclass
class TenantBuild:
    """One tenant's shard output — the merge phase's exchange format.

    ``records`` are the tenant's namespaced, arrival-stamped trace in
    time order; ``runs_by_file`` / ``requests_by_file`` are its
    premapped per-file columnar runs and the matching request
    sequences; ``rst_entries`` are its region-stripe decisions for the
    MDS namespace (empty for schemes without an RST).
    """

    tenant: int
    klass: str
    records: tuple[TraceRecord, ...]
    runs_by_file: dict[str, MergedRuns]
    requests_by_file: dict[str, tuple[tuple[int, int], ...]]
    rst_entries: tuple[tuple[str, int, int], ...]
    total_bytes: int
    ssd_bytes: int
    demoted: bool

    @property
    def requests(self) -> int:
        return len(self.records)


def _premap(
    spec: ClusterSpec, scheme_name: str, trace: Trace
) -> tuple[
    dict[str, MergedRuns],
    dict[str, tuple[tuple[int, int], ...]],
    tuple[tuple[str, int, int], ...],
    int,
]:
    """Build the scheme, batch-map every request, report SSD bytes."""
    scheme = make_scheme(scheme_name)
    view = scheme.build(spec, trace)
    by_file: dict[str, list[tuple[int, int]]] = {}
    for record in trace:
        by_file.setdefault(record.file, []).append((record.offset, record.size))
    runs_by_file: dict[str, MergedRuns] = {}
    requests_by_file: dict[str, tuple[tuple[int, int], ...]] = {}
    ssd_bytes = 0
    sserver_floor = spec.num_hservers
    for file, pairs in by_file.items():
        runs = view.merged_runs(
            file, [p[0] for p in pairs], [p[1] for p in pairs]
        )
        runs_by_file[file] = runs
        requests_by_file[file] = tuple(pairs)
        for server, length in zip(runs.servers, runs.lengths):
            if server >= sserver_floor:
                ssd_bytes += length
    plan = getattr(scheme, "plan", None)
    rst_entries: tuple[tuple[str, int, int], ...] = ()
    if plan is not None and getattr(plan, "rst", None) is not None:
        rst_entries = tuple(
            (region, pair.h, pair.s) for region, pair in plan.rst
        )
    return runs_by_file, requests_by_file, rst_entries, ssd_bytes


@effects("READS_CONFIG", "IO")
def build_tenant(task: TenantBuildTask) -> TenantBuild:
    """One tenant's full shard pipeline (module-level: picklable)."""
    tenant = task.tenant
    workload = OpenArrivalWorkload(
        tenant_workload(tenant),
        rate=tenant.rate,
        start=tenant.start,
        jitter=tenant.jitter,
        seed=task.arrival_seed,
        stream=tenant.tenant,
    )
    trace = namespace_trace(
        workload.trace(tenant_op(tenant)), tenant.tenant, stride=task.rank_stride
    )
    runs, requests, rst_entries, ssd_bytes = _premap(
        task.spec, tenant.scheme, trace
    )
    total_bytes = trace.total_bytes()
    demoted = False
    if (
        tenant.sserver_quota is not None
        and task.spec.num_hservers > 0
        and task.spec.num_sservers > 0
        and total_bytes > 0
        and ssd_bytes > tenant.sserver_quota * total_bytes
    ):
        hdd_only = task.spec.with_ratio(task.spec.num_hservers, 0)
        runs, requests, rst_entries, ssd_bytes = _premap(
            hdd_only, tenant.scheme, trace
        )
        demoted = True
    return TenantBuild(
        tenant=tenant.tenant,
        klass=tenant.klass,
        records=tuple(trace),
        runs_by_file=runs,
        requests_by_file=requests,
        rst_entries=rst_entries,
        total_bytes=total_bytes,
        ssd_bytes=ssd_bytes,
        demoted=demoted,
    )


def build_tenants(
    spec: ClusterSpec,
    tenants: tuple[TenantSpec, ...],
    *,
    n_jobs: int | None = 1,
    arrival_seed: int = DEFAULT_ARRIVAL_SEED,
    rank_stride: int = RANK_STRIDE,
) -> list[TenantBuild]:
    """Build every tenant, possibly across processes, in tenant order.

    ``n_jobs=1`` (the default) stays serial; ``None`` defers to
    ``REPRO_JOBS``/CPU count.  Results are identical either way.
    """
    validate_tenants(tenants)
    tasks = [
        TenantBuildTask(
            spec=spec,
            tenant=tenant,
            arrival_seed=arrival_seed,
            rank_stride=rank_stride,
        )
        for tenant in tenants
    ]
    return parallel_map(
        build_tenant,
        tasks,
        n_jobs=n_jobs,
        labels=[f"tenant{t.tenant:04d}" for t in tenants],
    )

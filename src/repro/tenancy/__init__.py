"""Multi-tenant cluster service: admission, fairness/QoS, sharded replay.

The tenancy layer turns the single-application simulator into a
service: N tenants (each a :mod:`repro.workloads` instance on its own
seeded arrival process) share one hybrid PFS, with per-tenant RST
namespaces on the MDS, admission control, token-bucket bandwidth
shares, SServer capacity quotas, and SCFQ weighted fair queueing in
the dispatch front end.  Builds shard across processes
(:func:`~repro.tenancy.shard.build_tenants`); the replay itself is one
shared deterministic pass.  Start at
:func:`~repro.tenancy.service.serve_scenario` or
``python -m repro.harness serve``.
"""

from .admission import admission_offsets
from .namespace import (
    RANK_STRIDE,
    namespace_trace,
    rank_base,
    tenant_file,
    tenant_of_file,
    tenant_of_rank,
)
from .qos import nominal_bandwidth, token_bucket_release, wfq_emission
from .service import SERVE_QUANTILES, ServeReport, TenantMetrics, serve_scenario
from .shard import TenantBuild, TenantBuildTask, build_tenant, build_tenants
from .spec import (
    SERVE_SCHEMES,
    TENANT_CLASSES,
    TenantSpec,
    make_tenants,
    tenant_workload,
    validate_tenants,
)
from .view import TenantRoutingView

__all__ = [
    "RANK_STRIDE",
    "SERVE_QUANTILES",
    "SERVE_SCHEMES",
    "TENANT_CLASSES",
    "ServeReport",
    "TenantBuild",
    "TenantBuildTask",
    "TenantMetrics",
    "TenantRoutingView",
    "TenantSpec",
    "admission_offsets",
    "build_tenant",
    "build_tenants",
    "make_tenants",
    "namespace_trace",
    "nominal_bandwidth",
    "rank_base",
    "serve_scenario",
    "tenant_file",
    "tenant_of_file",
    "tenant_of_rank",
    "tenant_workload",
    "token_bucket_release",
    "validate_tenants",
    "wfq_emission",
]

"""Tenant descriptions: who shares the cluster, and on what terms.

A :class:`TenantSpec` is the frozen, picklable unit of multi-tenant
configuration: which workload *class* the tenant runs, which layout
scheme serves it, and its QoS terms — a weighted-fair-queueing
``weight``, a shaped bandwidth ``share``, and an optional SServer
capacity ``sserver_quota``.  :func:`make_tenants` generates the
standard serve mix (Oe's K5 cloud study: mostly small hot working sets
plus long sequential tails) deterministically from a tenant count and
hot fraction — no RNG is involved in the mix itself, so two
invocations always describe the same fleet; per-tenant *traffic*
randomness comes later from the seeded arrival rewrite
(:mod:`repro.workloads.arrivals`), keyed by tenant index.

:func:`validate_tenants` is the config-time gate: tenant ids unique
and dense, weights positive, shares in ``(0, 1]`` **summing to at most
1** (the shaper hands out fractions of one cluster), quotas in
``[0, 1]``, and schemes restricted to the static/flat-eligible
families (the serve loop replays every tenant through one shared flat
kernel; feedback schemes like SAW need the event engine and per-run
state that cannot be premapped per shard).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..units import KiB, MiB
from ..workloads.base import Workload
from ..workloads.checkpoint import CheckpointWorkload
from ..workloads.ior import IORWorkload

__all__ = [
    "SERVE_SCHEMES",
    "TENANT_CLASSES",
    "TenantSpec",
    "make_tenants",
    "tenant_workload",
    "validate_tenants",
]

#: the workload classes :func:`tenant_workload` understands
TENANT_CLASSES: tuple[str, ...] = ("hot", "tail")

#: schemes a tenant may request: static views (or the MHA redirector),
#: all flat-engine eligible and premappable per shard
SERVE_SCHEMES: tuple[str, ...] = ("DEF", "AAL", "HARL", "MHA")

#: share sums within this of 1.0 still validate (float accumulation)
_SHARE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: workload class, layout scheme, and QoS terms.

    ``rate`` is the tenant's open-arrival rate (requests per simulated
    second); ``start``/``jitter`` place its first arrival.  ``share``
    is the fraction of the cluster's nominal bandwidth its token-bucket
    shaper releases; ``weight`` is its fair-queueing weight;
    ``sserver_quota`` caps the fraction of the tenant's bytes that may
    land on SServers (``None`` = unlimited, ``0`` = HDD only).
    """

    tenant: int
    klass: str = "hot"
    scheme: str = "DEF"
    weight: float = 1.0
    share: float = 1.0
    sserver_quota: float | None = None
    rate: float = 200.0
    start: float = 0.0
    jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.tenant < 0:
            raise ConfigurationError(f"tenant id must be >= 0, got {self.tenant}")
        if self.klass not in TENANT_CLASSES:
            raise ConfigurationError(
                f"unknown tenant class {self.klass!r}; choose from {TENANT_CLASSES}"
            )
        if self.scheme.upper() not in SERVE_SCHEMES:
            raise ConfigurationError(
                f"tenant scheme {self.scheme!r} not servable; "
                f"choose from {SERVE_SCHEMES}"
            )
        if self.weight <= 0.0:
            raise ConfigurationError(f"weight must be > 0, got {self.weight}")
        if not 0.0 < self.share <= 1.0:
            raise ConfigurationError(
                f"share must be in (0, 1], got {self.share}"
            )
        if self.sserver_quota is not None and not 0.0 <= self.sserver_quota <= 1.0:
            raise ConfigurationError(
                f"sserver_quota must be in [0, 1], got {self.sserver_quota}"
            )
        if self.rate <= 0.0:
            raise ConfigurationError(f"rate must be > 0, got {self.rate}")
        if self.start < 0.0 or self.jitter < 0.0:
            raise ConfigurationError("start and jitter must be >= 0")


def validate_tenants(tenants: tuple[TenantSpec, ...] | list[TenantSpec]) -> None:
    """Config-time fleet validation (fails fast, before any build)."""
    if not tenants:
        raise ConfigurationError("need at least one tenant")
    ids = [t.tenant for t in tenants]
    if len(set(ids)) != len(ids):
        raise ConfigurationError("tenant ids must be unique")
    if sorted(ids) != list(range(len(ids))):
        raise ConfigurationError(
            f"tenant ids must be dense 0..{len(ids) - 1} (they key the "
            "rank namespace and the arrival streams)"
        )
    total_share = math.fsum(t.share for t in tenants)
    if total_share > 1.0 + _SHARE_TOLERANCE:
        raise ConfigurationError(
            f"tenant shares sum to {total_share:.6f} > 1; the shaper "
            "hands out fractions of one cluster"
        )


def tenant_workload(spec: TenantSpec) -> Workload:
    """The (closed) workload generator behind one tenant.

    ``hot`` tenants model K5's dominant population: a couple of ranks
    re-reading a small randomly-addressed working set.  ``tail``
    tenants model the long sequential minority: checkpoint-style bulk
    writes with a restart read-back.  Both are deliberately tiny per
    tenant — the serve scenario multiplies them by thousands.
    """
    if spec.klass == "hot":
        return IORWorkload(
            num_processes=2,
            request_sizes=[16 * KiB, 64 * KiB],
            total_size=512 * KiB,
            randomize_offsets=True,
            file="hot.dat",
        )
    return CheckpointWorkload(
        num_processes=2,
        checkpoints=2,
        header_size=4 * KiB,
        payload_size=1 * MiB,
        restart=True,
        file="ckpt.dat",
    )


def tenant_op(spec: TenantSpec) -> str | None:
    """The op the tenant's generator is driven with.

    Hot tenants replay a pure read stream; tail tenants replay the
    full checkpoint mix (writes plus the restart read-back), so the
    shared SServers see both directions of traffic.
    """
    return "read" if spec.klass == "hot" else None


def make_tenants(
    count: int,
    *,
    hot_fraction: float = 0.8,
    hot_scheme: str = "DEF",
    tail_scheme: str = "AAL",
    tail_quota: float | None = 0.2,
    rate: float = 200.0,
    jitter: float = 2.0,
) -> tuple[TenantSpec, ...]:
    """The standard serve fleet: ``count`` tenants, mostly hot.

    Tenant ``k`` is hot iff ``(k * hot_fraction) % 1`` wraps — i.e.
    hot/tail tenants interleave at the requested ratio with no RNG.
    Hot tenants get weight 1 and unlimited SServer use (small working
    sets belong on SSD); tail tenants get weight 2 (they move more
    bytes per request) and ``tail_quota`` capping their SServer
    footprint.  Shares split the cluster evenly, summing to exactly
    ``count`` × ``1/count`` ≤ 1.
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigurationError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    share = 1.0 / count
    tenants: list[TenantSpec] = []
    acc = 0.0
    for k in range(count):
        acc += hot_fraction
        if acc >= 1.0 - _SHARE_TOLERANCE:
            acc -= 1.0
            klass, scheme, weight, quota = "hot", hot_scheme, 1.0, None
        else:
            klass, scheme, weight, quota = "tail", tail_scheme, 2.0, tail_quota
        tenants.append(
            TenantSpec(
                tenant=k,
                klass=klass,
                scheme=scheme,
                weight=weight,
                share=share,
                sserver_quota=quota,
                rate=rate,
                jitter=jitter,
            )
        )
    fleet = tuple(tenants)
    validate_tenants(fleet)
    return fleet

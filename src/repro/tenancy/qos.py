"""Fairness/QoS arithmetic: capacity, shaping, and fair queueing.

Three pure, deterministic kernels the admission front end composes:

* :func:`nominal_bandwidth` — the cluster's aggregate service capacity
  estimate (per-server device rate capped by the server's link), the
  denominator every share is a fraction of;
* :func:`token_bucket_release` — per-tenant traffic shaping: a bucket
  filling at ``rate`` bytes/s (capped at ``burst``) releases each
  request when it can pay its size, FIFO per tenant, so a tenant's
  dispatch rate never exceeds its share no matter how bursty its
  arrival process is;
* :func:`wfq_emission` — self-clocked fair queueing (SCFQ, Golestani)
  across tenants: request ``k`` of tenant ``i`` gets finish tag
  ``F = max(F_prev(i), V) + size / weight(i)`` when it becomes
  eligible, the dispatcher always emits the smallest tag, and the
  virtual clock ``V`` tracks the tag in service.  Emission is
  serialized at the cluster capacity, which makes emission start times
  **strictly increasing** — the property that lets the merged trace be
  time-sorted without disturbing any tenant's internal order.

Everything here is plain float arithmetic over sorted lists — no RNG,
no simulator — so shaping and scheduling decisions are identical on
every run and on every worker process.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Sequence

from ..cluster import ClusterSpec
from ..exceptions import ConfigurationError
from ..units import MiB

__all__ = ["nominal_bandwidth", "token_bucket_release", "wfq_emission"]


def nominal_bandwidth(spec: ClusterSpec, op: str = "write") -> float:
    """Aggregate service capacity estimate in bytes/second.

    Each server contributes the smaller of its device's streaming rate
    (probed with a 1 MiB transfer, so device startup costs are
    excluded) and its network link's rate.  An estimate, not a bound —
    shares shape *dispatch*, the replay still decides actual service.
    """
    total = 0.0
    for server in spec.server_ids:
        device_rate = MiB / spec.device_for(server).transfer_time(op, MiB)
        total += min(device_rate, spec.link.bandwidth)
    return total


def token_bucket_release(
    arrivals: Sequence[float],
    sizes: Sequence[int],
    rate: float,
    burst: float,
) -> list[float]:
    """Release times of a FIFO stream through a token bucket.

    The bucket starts full at ``burst`` tokens (bytes) and refills at
    ``rate`` bytes/s.  Request ``k`` releases at the first instant at
    or after ``max(arrival[k], release[k-1])`` when the bucket holds
    its size — going into deficit for requests larger than ``burst``
    (they wait for the full refill rather than being rejected).
    Release times are non-decreasing and never precede arrivals.
    """
    if rate <= 0.0:
        raise ConfigurationError(f"shaping rate must be > 0, got {rate}")
    if burst < 0.0:
        raise ConfigurationError(f"burst must be >= 0, got {burst}")
    if len(arrivals) != len(sizes):
        raise ConfigurationError("arrivals and sizes must have equal length")
    release: list[float] = []
    tokens = burst
    clock = 0.0
    prev = 0.0
    for arrival, size in zip(arrivals, sizes):
        eligible = arrival if arrival > prev else prev
        tokens = min(burst, tokens + (eligible - clock) * rate)
        if tokens >= size:
            out = eligible
            tokens -= size
        else:
            out = eligible + (size - tokens) / rate
            tokens = 0.0
        release.append(out)
        clock = out
        prev = out
    return release


def wfq_emission(
    releases: Sequence[Sequence[float]],
    sizes: Sequence[Sequence[int]],
    weights: Sequence[float],
    capacity: float,
) -> list[tuple[int, int, float]]:
    """SCFQ dispatch order and emission start times across tenants.

    ``releases[i]``/``sizes[i]`` are tenant ``i``'s shaped stream (both
    non-decreasing in time, FIFO per tenant).  Returns one
    ``(tenant, k, emit_start)`` triple per request in emission order;
    start times are strictly increasing (each emission occupies
    ``size / capacity`` seconds of the dispatcher), and each tenant's
    own requests stay in order.  Ties in finish tags break by
    ``(tenant, k)`` — fully deterministic.
    """
    if capacity <= 0.0:
        raise ConfigurationError(f"capacity must be > 0, got {capacity}")
    if not len(releases) == len(sizes) == len(weights):
        raise ConfigurationError("per-tenant inputs must have equal length")
    events: list[tuple[float, int, int]] = []
    for i, stream in enumerate(releases):
        if len(stream) != len(sizes[i]):
            raise ConfigurationError(
                f"tenant {i}: releases and sizes must have equal length"
            )
        for k, when in enumerate(stream):
            events.append((when, i, k))
    events.sort()
    total = len(events)
    out: list[tuple[int, int, float]] = []
    ready: list[tuple[float, int, int, float]] = []  # (tag, tenant, k, release)
    finish = [0.0] * len(releases)
    virtual = 0.0
    free = 0.0
    cursor = 0
    while len(out) < total:
        if ready:
            threshold = free
        else:
            # dispatcher idle: jump to the next release
            threshold = max(free, events[cursor][0])
        while cursor < total and events[cursor][0] <= threshold:
            when, i, k = events[cursor]
            cursor += 1
            base = finish[i] if finish[i] > virtual else virtual
            tag = base + sizes[i][k] / weights[i]
            finish[i] = tag
            heappush(ready, (tag, i, k, when))
        tag, i, k, when = heappop(ready)
        virtual = tag
        start = free if free > when else when
        out.append((i, k, start))
        free = start + sizes[i][k] / capacity
    return out

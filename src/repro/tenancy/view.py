"""The composite routing view: premapped per-file runs, one cluster.

Each tenant's layout view is built (and its requests premapped into
columnar :class:`~repro.layouts.batch.MergedRuns`) inside its own
build shard; the shared replay then needs *one* file-view object over
all tenants.  :class:`TenantRoutingView` is that object.  It never
recomputes a mapping: per-file runs arrive precomputed, and the view
just hands them back — valid because tenant namespaces make every file
belong to exactly one tenant, and because every stage of the front end
(admission shift, token-bucket shaping, SCFQ dispatch) preserves each
tenant's internal record order, so the merged trace's per-file request
sequence equals the premapped one.  Both engine entry points verify
that equality instead of assuming it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..exceptions import LayoutError
from ..layouts.base import SubRequest
from ..layouts.batch import MergedRuns

__all__ = ["TenantRoutingView"]


class TenantRoutingView:
    """Serve premapped per-file merged runs to either replay engine.

    ``runs_by_file`` maps each namespaced file to the MergedRuns of its
    requests *in trace record order*; ``requests_by_file`` carries the
    matching ``(offset, length)`` sequence for verification.  The flat
    kernel calls :meth:`merged_runs` once per file and gets the stored
    columns back after an order check.  The event engine calls
    :meth:`map_request` record by record in *simulation* order (ranks
    interleave however the queues play out), so that path is served by
    an order-free ``(offset, length) -> extent`` index instead — valid
    because a layout mapping is a pure function of the request, so
    identical requests share identical runs.
    """

    def __init__(
        self,
        runs_by_file: Mapping[str, MergedRuns],
        requests_by_file: Mapping[str, Sequence[tuple[int, int]]],
    ) -> None:
        if set(runs_by_file) != set(requests_by_file):
            raise LayoutError("runs and request sequences must cover the same files")
        self._runs = dict(runs_by_file)
        self._requests = {
            file: tuple(pairs) for file, pairs in requests_by_file.items()
        }
        for file, runs in self._runs.items():
            if runs.n_extents != len(self._requests[file]):
                raise LayoutError(
                    f"file {file!r}: {runs.n_extents} premapped extents for "
                    f"{len(self._requests[file])} requests"
                )
        self._extent_of: dict[str, dict[tuple[int, int], int]] = {}
        for file, pairs in self._requests.items():
            index = self._extent_of[file] = {}
            for k, pair in enumerate(pairs):
                index.setdefault(pair, k)

    def files(self) -> tuple[str, ...]:
        return tuple(self._runs)

    def merged_runs(
        self, file: str, offsets: Sequence[int], lengths: Sequence[int]
    ) -> MergedRuns:
        """The premapped columnar runs for one file's full batch."""
        runs = self._runs.get(file)
        if runs is None:
            raise LayoutError(f"no premapped runs for file {file!r}")
        expected = self._requests[file]
        if len(offsets) != len(expected) or any(
            (off, length) != pair
            for off, length, pair in zip(offsets, lengths, expected)
        ):
            raise LayoutError(
                f"file {file!r}: replayed request batch diverged from the "
                "premapped sequence (front end reordered a tenant's records?)"
            )
        return runs

    def map_request(self, file: str, offset: int, length: int) -> list[SubRequest]:
        """Order-free per-record mapping (event-engine path)."""
        runs = self._runs.get(file)
        if runs is None:
            raise LayoutError(f"no premapped runs for file {file!r}")
        k = self._extent_of[file].get((offset, length))
        if k is None:
            raise LayoutError(
                f"file {file!r}: request ({offset}, {length}) was never premapped"
            )
        return runs.subrequests(k)

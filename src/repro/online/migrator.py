"""Live migration: background copy + epoch-based double-buffered swap.

The off-line workflow stops the world: migrate everything, then serve.
The online controller cannot — foreground traffic keeps arriving — so
an admitted relayout runs as background I/O on the same simulated
cluster, interleaved with the foreground replay, and the request path
flips from the old plan to the new one **per region**, atomically, the
instant that region's bytes finish copying:

* :class:`EpochRedirector` double-buffers two plans.  Requests are
  translated through the *new* plan's DRT; extents whose target region
  has already flipped are served from the new layout, every other byte
  range is delegated to the old plan's mapping (which may itself be a
  region of the previous epoch or an original-layout fall-through).
  Flipping a region is one set-insert at one simulated instant — the
  "epoch swap" — so no request ever sees a half-migrated region.
* :class:`LiveMigrationScheduler` spawns one migrator process per
  region on the shared simulator.  Each process sweeps the region's
  DRT extents in offset order, reading every extent through the old
  mapping (wherever the bytes currently live) and writing it through
  the new region layout, then flips the region.  A **bandwidth
  throttle** paces each migrator: after copying an extent of ``L``
  bytes, the next extent may not start before ``L / throttle``
  seconds after the previous one began, capping the background rate
  so foreground traffic keeps most of the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.pipeline import MHAPlan
from ..core.redirector import RedirectorStats
from ..exceptions import ConfigurationError
from ..layouts.base import SubRequest
from ..pfs.system import HybridPFS

__all__ = ["EpochRedirector", "LiveMigrationScheduler", "MigrationReport"]


class EpochRedirector:
    """A double-buffered file view that flips to a new plan per region.

    Starts as a transparent proxy for ``plan``'s redirector.  A call to
    :meth:`begin_epoch` installs a candidate plan; regions then flip
    one by one via :meth:`flip` as their copies complete, and
    :meth:`commit` retires the epoch once every region has flipped.
    Old-plan mappings stay reachable after commit: bytes the new plan
    never reordered keep resolving through the previous epoch's chain
    (new DRT -> old plan -> original layout), so a partially re-planned
    namespace keeps working forever.
    """

    def __init__(self, plan: MHAPlan) -> None:
        self.active_plan = plan
        self._old_view = plan.redirector
        self.new_plan: MHAPlan | None = None
        self.flipped: set[str] = set()
        self.stats = RedirectorStats()
        self.epochs = 0

    @property
    def migrating(self) -> bool:
        """Whether an epoch is currently in flight."""
        return self.new_plan is not None

    def begin_epoch(self, new_plan: MHAPlan) -> None:
        """Install a candidate plan; nothing serves from it until flips."""
        if self.new_plan is not None:
            raise ConfigurationError("an epoch is already in flight")
        self.new_plan = new_plan
        self.flipped = set()

    def flip(self, region: str) -> None:
        """Atomically route ``region``'s extents to the new layout."""
        if self.new_plan is None:
            raise ConfigurationError("no epoch in flight")
        if region not in self.new_plan.region_layouts:
            raise ConfigurationError(f"unknown region {region!r}")
        self.flipped.add(region)

    def commit(self) -> None:
        """Retire the in-flight epoch: the new plan becomes active.

        The old view is kept as the fall-through chain for extents the
        new DRT does not map.
        """
        if self.new_plan is None:
            raise ConfigurationError("no epoch in flight")
        self.flipped = set(self.new_plan.region_layouts)
        self._old_view = _ChainedView(self.new_plan, self.flipped, self._old_view)
        self.active_plan = self.new_plan
        self.new_plan = None
        self.epochs += 1

    def map_request(self, file: str, offset: int, length: int) -> list[SubRequest]:
        """Resolve a request through the current epoch state."""
        self.stats.requests += 1
        if self.new_plan is None:
            fragments = self._old_view.map_request(file, offset, length)
        else:
            fragments = _map_epoch(
                self.new_plan, self.flipped, self._old_view, file, offset, length
            )
        self.stats.fragments += len(fragments)
        return fragments


class _ChainedView:
    """A committed epoch: a plan plus the previous epoch as fall-through."""

    def __init__(self, plan: MHAPlan, flipped: set[str], old_view) -> None:
        self._plan = plan
        self._flipped = flipped
        self._old_view = old_view

    def map_request(self, file: str, offset: int, length: int) -> list[SubRequest]:
        return _map_epoch(
            self._plan, self._flipped, self._old_view, file, offset, length
        )


def _map_epoch(
    new_plan: MHAPlan,
    flipped: set[str],
    old_view,
    file: str,
    offset: int,
    length: int,
) -> list[SubRequest]:
    """Translate via the new DRT; un-flipped or unmapped extents fall
    back to the old view for exactly their byte range."""
    fragments: list[SubRequest] = []
    for extent in new_plan.drt.translate(file, offset, length):
        if extent.mapped and extent.file in flipped:
            layout = new_plan.region_layouts[extent.file]
            base = extent.logical_offset - extent.offset
            for frag in layout.map_extent(extent.offset, extent.length):
                fragments.append(
                    SubRequest(
                        server=frag.server,
                        obj=frag.obj,
                        offset=frag.offset,
                        length=frag.length,
                        logical_offset=base + frag.logical_offset,
                    )
                )
        else:
            fragments.extend(
                old_view.map_request(file, extent.logical_offset, extent.length)
            )
    return fragments


@dataclass
class MigrationReport:
    """What one live migration did, as measured on the simulator."""

    bytes_moved: int = 0
    extents: int = 0
    regions: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    flip_times: dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    @property
    def complete(self) -> bool:
        return self.regions > 0 and len(self.flip_times) == self.regions


class LiveMigrationScheduler:
    """Runs an admitted relayout as throttled background I/O.

    Parameters
    ----------
    pfs:
        The shared (already running) simulated file system.
    epoch:
        The :class:`EpochRedirector` serving foreground traffic; the
        scheduler flips its regions as they finish and commits the
        epoch when the last one does.
    throttle:
        Background bandwidth cap per migrator process, in bytes/second
        (``None`` = unthrottled).
    """

    def __init__(
        self,
        pfs: HybridPFS,
        epoch: EpochRedirector,
        throttle: float | None = None,
    ) -> None:
        if throttle is not None and throttle <= 0:
            raise ConfigurationError(f"throttle must be > 0, got {throttle}")
        self.pfs = pfs
        self.epoch = epoch
        self.throttle = throttle
        self.report = MigrationReport()
        self._pending_regions = 0
        self.on_commit = None

    def start(self, new_plan: MHAPlan, migration_entries: list) -> MigrationReport:
        """Begin the epoch and spawn one migrator process per region.

        ``migration_entries`` are the DRT entries to copy (the replan
        outcome's :attr:`~repro.online.replanner.ReplanOutcome.migration_entries`).
        Reads go through the epoch's *old* view — wherever each byte
        currently lives — and writes through the new region layout.
        Regions with nothing to copy flip immediately.
        """
        sim = self.pfs.sim
        old_view = self.epoch._old_view
        self.epoch.begin_epoch(new_plan)
        by_region: dict[str, list] = {}
        for entry in migration_entries:
            by_region.setdefault(entry.r_file, []).append(entry)

        report = self.report = MigrationReport(
            regions=len(by_region), started_at=sim.now
        )
        self._pending_regions = len(by_region)
        if not by_region:
            self._finish_all()
            return report

        for region, entries in sorted(by_region.items()):
            entries.sort(key=lambda e: e.o_offset)
            report.extents += len(entries)
            sim.spawn(
                self._migrate_region(region, entries, old_view, new_plan),
                name=f"relayout:{region}",
            )
        return report

    def _migrate_region(self, region, entries, old_view, new_plan):
        sim = self.pfs.sim
        layout = new_plan.region_layouts[region]
        for entry in entries:
            extent_start = sim.now
            read_frags = old_view.map_request(
                entry.o_file, entry.o_offset, entry.length
            )
            yield self.pfs.issue("read", read_frags)
            write_frags = layout.map_extent(entry.r_offset, entry.length)
            yield self.pfs.issue("write", write_frags)
            self.report.bytes_moved += entry.length
            if self.throttle is not None:
                pace = entry.length / self.throttle
                remaining = (extent_start + pace) - sim.now
                if remaining > 0:
                    yield remaining
        self.epoch.flip(region)
        self.report.flip_times[region] = sim.now
        self._pending_regions -= 1
        if self._pending_regions == 0:
            self._finish_all()

    def _finish_all(self) -> None:
        self.report.finished_at = self.pfs.sim.now
        self.epoch.commit()
        if self.on_commit is not None:
            self.on_commit(self.report)

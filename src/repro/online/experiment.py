"""Online experiments: live replay with the controller in the loop.

:func:`run_online` replays a trace on the simulated cluster while the
relayout controller watches every record; admitted relayouts execute as
background migrations on the *same* simulator, so foreground requests
and migration I/O contend for the same servers — the measurement the
off-line experiments cannot make.

:func:`phase_shift_experiment` is the canonical scenario: an
application is profiled and laid out for a checkpoint pattern, then its
access pattern shifts to an IOR-style mixed-size pattern over the same
file.  The live stream replays the new pattern twice: the first pass
fills the controller's window and trips the drift detector, the second
pass is served *while* the admitted relayout migrates underneath it.
The report compares against two offline anchors — the same traffic with
no adaptation, and a stop-the-world re-migration — and checks that the
post-swap mapping is byte-identical to an off-line MHA plan built
directly on the second phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cluster import ClusterSpec
from ..core.pipeline import MHAPipeline
from ..pfs.replay import RunMetrics, replay_trace
from ..pfs.system import HybridPFS
from ..tracing.record import Trace
from ..units import KiB, MiB
from ..workloads.base import PHASE_GAP
from ..workloads.checkpoint import CheckpointWorkload
from ..workloads.ior import IORWorkload
from .controller import ControllerConfig, RelayoutController
from .gate import GateDecision
from .migrator import EpochRedirector, LiveMigrationScheduler, MigrationReport

__all__ = ["OnlineRunReport", "run_online", "phase_shift_experiment"]


@dataclass
class OnlineRunReport:
    """Everything one online run measured."""

    foreground: RunMetrics
    total_makespan: float
    migrations: list[MigrationReport] = field(default_factory=list)
    drift_checks: int = 0
    replans_admitted: int = 0
    replans_rejected: int = 0
    decisions: list[GateDecision] = field(default_factory=list)
    #: foreground makespan of the same trace under the initial plan
    #: with no adaptation (0 when not measured)
    baseline_makespan: float = 0.0
    #: pause-the-application alternative: first-pass replay + exclusive
    #: migration + second-pass replay, end to end (0 when not measured)
    stop_the_world_makespan: float = 0.0
    #: fraction of checked records whose post-swap mapping matched the
    #: offline plan (1.0 == byte-identical; -1 when not checked)
    offline_match_fraction: float = -1.0

    @property
    def bytes_moved(self) -> int:
        return sum(m.bytes_moved for m in self.migrations)

    @property
    def foreground_slowdown(self) -> float:
        """Foreground makespan over the no-adaptation baseline."""
        if self.baseline_makespan <= 0:
            return 1.0
        return self.foreground.makespan / self.baseline_makespan

    def describe(self) -> str:
        lines = [
            "online relayout run:",
            f"  foreground makespan  {self.foreground.makespan:.4f}s"
            + (
                f"  ({self.foreground_slowdown:.2f}x of no-migration baseline)"
                if self.baseline_makespan > 0
                else ""
            ),
            f"  total makespan       {self.total_makespan:.4f}s",
            f"  drift checks         {self.drift_checks}",
            f"  replans              {self.replans_admitted} admitted, "
            f"{self.replans_rejected} rejected",
            f"  bytes moved          {self.bytes_moved}",
        ]
        if self.stop_the_world_makespan > 0:
            lines.append(
                f"  stop-the-world       {self.stop_the_world_makespan:.4f}s "
                f"(live is {self.total_makespan / self.stop_the_world_makespan:.2f}x)"
            )
        if self.offline_match_fraction >= 0:
            lines.append(
                f"  post-swap vs offline {self.offline_match_fraction:.0%} identical"
            )
        for decision in self.decisions:
            lines.append(f"  gate: {decision}")
        return "\n".join(lines)


def run_online(
    spec: ClusterSpec,
    controller: RelayoutController,
    trace: Trace,
    *,
    throttle: float | None = None,
    keep_latencies: bool = False,
    barrier_gap: float | None = None,
) -> tuple[OnlineRunReport, EpochRedirector]:
    """Replay ``trace`` live through the controller's epoch view.

    Foreground ranks replay on a fresh simulated cluster; every record
    passes through :meth:`RelayoutController.observe` at its issue
    time, and each admitted action immediately starts a throttled
    background migration on the same cluster.  The epoch view flips
    per region as copies complete and the controller commits when the
    epoch does.  Returns the report and the (post-run) epoch view.

    ``barrier_gap`` (see :func:`repro.pfs.replay.replay_trace`) makes
    the replay collective: ranks synchronize at trace phase
    boundaries, so the controller observes whole phases instead of a
    rank-skewed interleaving — required when a drift check's window
    must line up with a phase of the workload.
    """
    pfs = HybridPFS(spec)
    epoch = EpochRedirector(controller.active_plan)
    migrations: list[MigrationReport] = []

    def on_record(record) -> None:
        action = controller.observe(record)
        if action is None:
            return
        scheduler = LiveMigrationScheduler(pfs, epoch, throttle=throttle)

        def on_commit(report, action=action) -> None:
            controller.commit(action)
            migrations.append(report)

        scheduler.on_commit = on_commit
        scheduler.start(action.plan, action.migration_entries)

    metrics = replay_trace(
        pfs,
        epoch,
        trace,
        keep_latencies=keep_latencies,
        on_record=on_record,
        barrier_gap=barrier_gap,
    )
    report = OnlineRunReport(
        foreground=metrics,
        total_makespan=pfs.sim.now,
        migrations=migrations,
        drift_checks=controller.drift_checks,
        replans_admitted=controller.replans_admitted,
        replans_rejected=controller.replans_rejected,
        decisions=list(controller.decisions),
    )
    return report, epoch


def phase_shift_experiment(
    spec: ClusterSpec | None = None,
    *,
    file: str = "app.dat",
    checkpoint_processes: int = 4,
    checkpoints: int = 4,
    payload_size: int = 256 * KiB,
    ior_processes: int = 8,
    ior_sizes: tuple[int, ...] = (16 * KiB, 64 * KiB),
    ior_total: int = 4 * MiB,
    passes: int = 3,
    throttle: float | None = None,
    horizon: float = 3600.0,
    drift_threshold: float = 0.5,
    seed: int = 1,
) -> OnlineRunReport:
    """Checkpoint -> IOR phase change served by the online controller.

    The profile run is a checkpoint/restart pattern; the layout MHA
    builds for it then faces a mixed-size IOR pattern over the same
    byte range, replayed twice.  Reports foreground slowdown during
    migration, admitted/rejected replans, bytes moved, the
    stop-the-world comparison, and the byte-identity of the post-swap
    mapping against an off-line plan of the new phase.

    The default ``seed`` picks a phase-B slot shuffle whose drifted
    pattern genuinely profits from a relayout, so the canonical run
    demonstrates an admitted replan end to end (some shuffles of the
    same byte volume are already served well by the checkpoint layout,
    and the gate correctly rejects those — ``seed=0`` under the
    ``repro.determinism`` streams is one).
    """
    spec = spec or ClusterSpec()
    pipeline = MHAPipeline(spec, seed=seed)

    # Phase A: profile + initial layout (the paper's off-line workflow).
    phase_a = CheckpointWorkload(
        num_processes=checkpoint_processes,
        checkpoints=checkpoints,
        payload_size=payload_size,
        file=file,
    ).trace()
    initial_plan = pipeline.plan(phase_a)

    # Phase B: the shifted pattern, replayed ``passes`` times over the
    # same file (pass 1 trips the detector, the rest run over/after the
    # migration).
    if passes < 2:
        raise ValueError(f"passes must be >= 2, got {passes}")
    phase_b = IORWorkload(
        num_processes=ior_processes,
        request_sizes=list(ior_sizes),
        total_size=ior_total,
        seed=seed,
        file=file,
    ).trace("write")
    span = max(r.timestamp for r in phase_b) + PHASE_GAP
    later_passes = Trace(
        replace(r, timestamp=r.timestamp + i * span)
        for i in range(1, passes)
        for r in phase_b
    )
    live = Trace(list(phase_b) + list(later_passes))

    config = ControllerConfig(
        window=len(phase_b),
        check_interval=len(phase_b),
        drift_threshold=drift_threshold,
        horizon=horizon,
        # exact re-searches so the post-swap mapping is bit-comparable
        # to the off-line plan of the same records
        reuse_tolerance=0.0,
    )
    controller = RelayoutController(pipeline, initial_plan, config)
    # Collective replay: ranks barrier at workload phase boundaries, so
    # the drift check at the end of pass 1 sees exactly pass 1.
    barrier_gap = PHASE_GAP / 2
    report, epoch = run_online(
        spec, controller, live, throttle=throttle, barrier_gap=barrier_gap
    )

    # Anchor 1: the same live stream under the initial plan, untouched.
    report.baseline_makespan = replay_trace(
        HybridPFS(spec), initial_plan.redirector, live, barrier_gap=barrier_gap
    ).makespan

    # Anchor 2: stop the world — serve pass 1 on the old plan, migrate
    # with the cluster otherwise idle, then serve pass 2 on the new plan.
    offline_plan = MHAPipeline(spec, seed=seed).plan(phase_b)
    stw = HybridPFS(spec)
    first = replay_trace(
        stw, initial_plan.redirector, phase_b, barrier_gap=barrier_gap
    )
    stw_epoch = EpochRedirector(initial_plan)
    migrator = LiveMigrationScheduler(stw, stw_epoch, throttle=throttle)
    entries = [
        e
        for f in offline_plan.reorder_plans
        for e in offline_plan.drt.entries_for(f)
    ]
    migrator.start(offline_plan, entries)
    stw.sim.run()
    migration_span = migrator.report.makespan
    second = replay_trace(
        stw, offline_plan.redirector, later_passes, barrier_gap=barrier_gap
    )
    report.stop_the_world_makespan = first.makespan + migration_span + second.makespan

    # Byte-identity: the committed mapping vs the off-line plan.
    if report.replans_admitted:
        matches = sum(
            epoch.map_request(r.file, r.offset, r.size)
            == offline_plan.redirector.map_request(r.file, r.offset, r.size)
            for r in phase_b
        )
        report.offline_match_fraction = matches / len(phase_b)
    return report

"""Drift detection: does live traffic still match the active plan?

Every region of an MHA plan was sized for one cluster of similar
requests — the grouping centroid (Algorithm 1) recorded when the plan
was built.  A region has **drifted** when the live feature point its
sketch accumulated sits too far from that centroid: the stripe pair the
RSSD search chose was optimal for traffic that no longer arrives.

Distances are *relative* per axis rather than the literal Eq. 1
normalization: Eq. 1 divides by the spread of the whole feature
population, which the off-line pipeline has and a streaming observer
does not (the population is the future).  Dividing each axis deviation
by the centroid coordinate itself gives a scale-free stand-in — a
threshold of 0.5 means "sizes or concurrency moved ~50 % away from
what this region was built for" regardless of whether the region serves
1 KB headers or 64 MB dumps.

A second, independent signal is the **unmapped fraction**: bytes the
active DRT cannot translate fall through to the original layout, so a
workload that starts touching never-reordered ranges degrades without
moving any region's centroid.  Files whose unmapped share exceeds the
threshold are flagged wholesale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.pipeline import MHAPlan
from ..exceptions import ConfigurationError
from .sketch import StreamingSketch

__all__ = ["DriftReport", "DriftDetector", "plan_centroids", "relative_distance"]


def plan_centroids(plan: MHAPlan) -> dict[str, tuple[float, float]]:
    """Per-region ``(size, concurrency)`` centroid of an MHA plan.

    Region *r* of file *f* holds the requests of grouping group
    ``r.group``, so its centroid is ``groupings[f].centers[r.group]``.
    Plans restored from persisted metadata
    (:func:`repro.core.pipeline.load_plan`) carry no groupings and
    yield an empty map — the detector then falls back to the unmapped
    signal only.
    """
    centroids: dict[str, tuple[float, float]] = {}
    for file, reorder in plan.reorder_plans.items():
        grouping = plan.groupings.get(file)
        if grouping is None:
            continue
        for region in reorder.regions:
            if region.group < grouping.centers.shape[0]:
                center = grouping.centers[region.group]
                centroids[region.name] = (float(center[0]), float(center[1]))
    return centroids


def relative_distance(
    point: tuple[float, float], center: tuple[float, float]
) -> float:
    """Scale-free distance between a live feature point and a centroid.

    Each axis deviation is normalized by the centroid coordinate
    (floored at 1.0 so a zero-concurrency axis cannot divide by zero);
    the result is the Euclidean norm of the two relative deviations.
    """
    ds = (point[0] - center[0]) / max(abs(center[0]), 1.0)
    dc = (point[1] - center[1]) / max(abs(center[1]), 1.0)
    return math.hypot(ds, dc)


@dataclass
class DriftReport:
    """Everything one drift check concluded."""

    drifted_regions: list[str] = field(default_factory=list)
    drifted_files: list[str] = field(default_factory=list)
    distances: dict[str, float] = field(default_factory=dict)
    unmapped_fractions: dict[str, float] = field(default_factory=dict)

    @property
    def drifted(self) -> bool:
        return bool(self.drifted_files)

    def __str__(self) -> str:
        if not self.drifted:
            return "no drift"
        parts = [f"files={','.join(self.drifted_files)}"]
        if self.drifted_regions:
            parts.append(f"regions={','.join(self.drifted_regions)}")
        return "drift: " + " ".join(parts)


class DriftDetector:
    """Compares a :class:`StreamingSketch` against the active plan.

    Parameters
    ----------
    threshold:
        Relative feature distance above which a region counts as
        drifted.
    min_samples:
        Regions with fewer windowed samples are never flagged —
        protects against judging a region on one stray request.
    unmapped_threshold:
        Per-file unmapped byte fraction above which the whole file is
        flagged.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        min_samples: int = 8,
        unmapped_threshold: float = 0.25,
    ) -> None:
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        if min_samples <= 0:
            raise ConfigurationError(f"min_samples must be >= 1, got {min_samples}")
        if not 0.0 < unmapped_threshold <= 1.0:
            raise ConfigurationError(
                f"unmapped_threshold must be in (0, 1], got {unmapped_threshold}"
            )
        self.threshold = threshold
        self.min_samples = min_samples
        self.unmapped_threshold = unmapped_threshold

    def check(self, sketch: StreamingSketch, plan: MHAPlan) -> DriftReport:
        """One drift check; flags drifted regions and their files."""
        report = DriftReport()
        centroids = plan_centroids(plan)
        drifted_files: set[str] = set()
        for region, region_sketch in sorted(sketch.regions.items()):
            center = centroids.get(region)
            if center is None or region_sketch.n < self.min_samples:
                continue
            distance = relative_distance(region_sketch.feature_point(), center)
            report.distances[region] = distance
            if distance > self.threshold:
                report.drifted_regions.append(region)
                drifted_files.add(_region_file(plan, region))
        for file in sketch.files():
            fraction = sketch.unmapped_fraction(file)
            report.unmapped_fractions[file] = fraction
            traffic = sketch.traffic[file]
            observed = traffic.mapped_bytes + traffic.unmapped_bytes
            if fraction > self.unmapped_threshold and observed > 0:
                drifted_files.add(file)
        report.drifted_files = sorted(drifted_files)
        return report


def _region_file(plan: MHAPlan, region: str) -> str:
    """The original file a region belongs to."""
    for file, reorder in plan.reorder_plans.items():
        if any(r.name == region for r in reorder.regions):
            return file
    # regions are named "{file}.region{g}" by convention
    return region.rsplit(".region", 1)[0]

"""Streaming feature sketch: windowed + EWMA per-region traffic stats.

The off-line pipeline sees a complete trace and can run the full §III-D
feature analysis; the online controller sees one record at a time and
must keep its view of "what each region is currently serving" cheap and
bounded.  Two estimators run side by side, per region:

* a **window** (``collections.deque(maxlen=...)``) of the most recent
  ``(size, concurrency)`` samples — the drift detector's primary
  evidence, because it forgets old traffic at a predictable rate;
* an **EWMA** of the same features — a smoothed long-horizon summary
  used for reporting and for damping one-burst blips.

Concurrency cannot be known at arrival time (a burst's size is only
known once the burst ends), so the sketch buffers the current burst per
file and attributes the whole burst when a record arrives more than
``gap`` after the previous one — the same phase rule as
:func:`repro.tracing.analysis.split_phases`, applied incrementally.
Within a closed burst, per-record concurrency comes from the *same*
:func:`~repro.tracing.analysis.concurrency_of` analysis the off-line
pipeline uses (including spatial sub-clustering), so a steady workload
produces exactly the features its plan's centroids were built from.

Each sample is attributed to the region that holds the largest share of
the request's bytes under the *active* plan's DRT; bytes the DRT does
not map at all are tallied per file as **unmapped traffic** — a rising
unmapped fraction means the application started touching byte ranges
the active plan never reordered, which is drift no centroid comparison
can see.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.pipeline import MHAPlan
from ..exceptions import ConfigurationError
from ..tracing.analysis import concurrency_of
from ..tracing.record import Trace, TraceRecord

__all__ = ["RegionSketch", "StreamingSketch", "DEFAULT_WINDOW", "DEFAULT_EWMA_ALPHA"]

#: default per-region sample window
DEFAULT_WINDOW = 256
#: default EWMA smoothing factor (weight of the newest sample)
DEFAULT_EWMA_ALPHA = 0.05


@dataclass
class RegionSketch:
    """Windowed + EWMA ``(size, concurrency)`` stats for one region."""

    window: int = DEFAULT_WINDOW
    alpha: float = DEFAULT_EWMA_ALPHA
    samples: deque = field(default_factory=deque)
    ewma_size: float = 0.0
    ewma_concurrency: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")
        self.samples = deque(self.samples, maxlen=self.window)

    def update(self, size: int, concurrency: int) -> None:
        """Fold one attributed sample into both estimators."""
        self.samples.append((size, concurrency))
        if self.count == 0:
            self.ewma_size = float(size)
            self.ewma_concurrency = float(concurrency)
        else:
            self.ewma_size += self.alpha * (size - self.ewma_size)
            self.ewma_concurrency += self.alpha * (concurrency - self.ewma_concurrency)
        self.count += 1

    @property
    def n(self) -> int:
        """Samples currently in the window."""
        return len(self.samples)

    def feature_point(self) -> tuple[float, float]:
        """Windowed mean ``(size, concurrency)`` — the live feature point."""
        if not self.samples:
            return (0.0, 0.0)
        n = len(self.samples)
        return (
            sum(s for s, _ in self.samples) / n,
            sum(c for _, c in self.samples) / n,
        )


@dataclass
class FileTraffic:
    """Per-file mapped/unmapped byte tallies over the sketch's lifetime."""

    mapped_bytes: int = 0
    unmapped_bytes: int = 0

    @property
    def unmapped_fraction(self) -> float:
        total = self.mapped_bytes + self.unmapped_bytes
        if total == 0:
            return 0.0
        return self.unmapped_bytes / total


class StreamingSketch:
    """Incremental per-region traffic statistics against an active plan.

    Parameters
    ----------
    window:
        Per-region sample window length.
    alpha:
        EWMA smoothing factor.
    gap:
        Burst-closing time gap (same meaning as the off-line analysis
        gap: records further apart belong to different phases).
    spatial:
        Spatial burst sub-clustering, forwarded to
        :func:`~repro.tracing.analysis.concurrency_of` when a burst
        closes; match the planning pipeline's setting so live features
        are commensurable with the plan's centroids.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        alpha: float = DEFAULT_EWMA_ALPHA,
        gap: float = 0.5,
        spatial: bool | int = True,
    ) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = window
        self.alpha = alpha
        self.gap = gap
        self.spatial = spatial
        self.regions: dict[str, RegionSketch] = {}
        self.traffic: dict[str, FileTraffic] = {}
        self._pending: dict[str, list[TraceRecord]] = {}
        self.observed = 0

    # -- ingestion -------------------------------------------------------

    def observe(self, record: TraceRecord, plan: MHAPlan) -> None:
        """Feed one live record; bursts are attributed when they close."""
        self.observed += 1
        pending = self._pending.setdefault(record.file, [])
        if pending and record.timestamp - pending[-1].timestamp > self.gap:
            self._close_burst(record.file, pending, plan)
            pending = self._pending[record.file] = []
        pending.append(record)

    def flush(self, plan: MHAPlan) -> None:
        """Attribute every still-open burst (end-of-stream finalization).

        Destructive: the open bursts are closed *as seen*, so a flush in
        the middle of a burst fragments it and under-counts concurrency.
        Periodic drift checks must use :meth:`snapshot` instead.
        """
        for file, pending in list(self._pending.items()):
            if pending:
                self._close_burst(file, pending, plan)
                self._pending[file] = []

    def snapshot(self, plan: MHAPlan) -> "StreamingSketch":
        """A copy with every open burst attributed, live state untouched.

        A drift check can fire while a burst is still accumulating; if
        it flushed the live sketch it would split that burst at the
        check boundary and attribute a partial concurrency (e.g. an
        8-wide burst checked after 2 records reads as concurrency 2).
        Reading a snapshot instead leaves the burst open, so it is
        attributed exactly once, whole, when it really closes.
        """
        snap = StreamingSketch(
            window=self.window, alpha=self.alpha, gap=self.gap, spatial=self.spatial
        )
        snap.observed = self.observed
        snap.regions = {
            name: RegionSketch(
                window=rs.window,
                alpha=rs.alpha,
                samples=rs.samples,
                ewma_size=rs.ewma_size,
                ewma_concurrency=rs.ewma_concurrency,
                count=rs.count,
            )
            for name, rs in self.regions.items()
        }
        snap.traffic = {
            file: FileTraffic(t.mapped_bytes, t.unmapped_bytes)
            for file, t in self.traffic.items()
        }
        snap._pending = {file: list(p) for file, p in self._pending.items()}
        snap.flush(plan)
        return snap

    def _close_burst(
        self, file: str, burst: list[TraceRecord], plan: MHAPlan
    ) -> None:
        conc = concurrency_of(Trace(burst), gap=self.gap, spatial=self.spatial)
        traffic = self.traffic.setdefault(file, FileTraffic())
        for record in burst:
            region, mapped, unmapped = self._dominant_region(plan, record)
            traffic.mapped_bytes += mapped
            traffic.unmapped_bytes += unmapped
            if region is None:
                continue
            sketch = self.regions.get(region)
            if sketch is None:
                sketch = self.regions[region] = RegionSketch(
                    window=self.window, alpha=self.alpha
                )
            sketch.update(record.size, conc.get(record, 1))

    @staticmethod
    def _dominant_region(
        plan: MHAPlan, record: TraceRecord
    ) -> tuple[str | None, int, int]:
        """The region holding most of the record's bytes, plus the
        mapped/unmapped byte split of the whole request."""
        per_region: dict[str, int] = {}
        unmapped = 0
        for extent in plan.drt.translate(record.file, record.offset, record.size):
            if extent.mapped:
                per_region[extent.file] = per_region.get(extent.file, 0) + extent.length
            else:
                unmapped += extent.length
        mapped = record.size - unmapped
        if not per_region:
            return None, mapped, unmapped
        dominant = max(per_region, key=lambda name: (per_region[name], name))
        return dominant, mapped, unmapped

    # -- readout ---------------------------------------------------------

    def region_sketch(self, region: str) -> RegionSketch | None:
        return self.regions.get(region)

    def unmapped_fraction(self, file: str) -> float:
        traffic = self.traffic.get(file)
        return traffic.unmapped_fraction if traffic else 0.0

    def files(self) -> list[str]:
        """Files with any observed traffic."""
        return sorted(self.traffic)

    def reset(self) -> None:
        """Drop all state — called after a relayout commits, so the new
        plan's regions are judged only on traffic they served."""
        self.regions.clear()
        self.traffic.clear()
        self._pending.clear()
        self.observed = 0

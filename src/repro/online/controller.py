"""The closed-loop relayout controller.

Ties the subsystem together into the control loop the paper's future
work sketches and Wan et al. (SC 2021) motivate::

        live records
             |
             v
    +-----------------+     drift      +---------------------+
    | StreamingSketch | -------------> |    DriftDetector    |
    +-----------------+                +----------+----------+
             ^                                    | drifted files
             | reset on commit                    v
             |                         +---------------------+
    +-----------------+    reject      | IncrementalReplanner|
    | active MHAPlan  | <-----------+  +----------+----------+
    +-----------------+             |             | candidate plan
             ^                      |             v
             | commit (epoch swap)  +--[ CostBenefitGate ]
             |                                    | admit
    +-----------------------+                     v
    | LiveMigrationScheduler| <-------------------+
    +-----------------------+

The controller itself is I/O-free: :meth:`observe` consumes records
and, when a relayout clears the gate, returns a :class:`RelayoutAction`
describing *what* to migrate.  Callers decide *how*: the live runner
(:func:`repro.online.experiment.run_online`) hands the action to a
:class:`~repro.online.migrator.LiveMigrationScheduler` on its
simulator; unit tests can call :meth:`commit` directly for an
instantaneous (stop-the-world) swap.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.pipeline import MHAPipeline, MHAPlan
from ..exceptions import ConfigurationError
from ..tracing.record import Trace, TraceRecord
from .drift import DriftDetector, DriftReport
from .gate import CostBenefitGate, GateDecision
from .replanner import IncrementalReplanner, ReplanOutcome
from .sketch import StreamingSketch

__all__ = ["ControllerConfig", "RelayoutAction", "RelayoutController"]


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the control loop."""

    #: sliding window of recent records re-planning draws from
    window: int = 1024
    #: run a drift check every this many observed records
    check_interval: int = 256
    #: relative feature distance flagging a region as drifted
    drift_threshold: float = 0.5
    #: minimum windowed samples before a region can be flagged
    min_samples: int = 8
    #: per-file unmapped byte fraction flagging the whole file
    unmapped_threshold: float = 0.25
    #: seconds of future traffic the gate credits a relayout with
    horizon: float = 600.0
    #: safety multiplier on the migration estimate
    safety: float = 1.0
    #: centroid distance under which an old decision is reused unsearched
    reuse_tolerance: float = 0.05
    #: observed records to skip after a commit before checking again
    cooldown: int = 0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if self.check_interval <= 0:
            raise ConfigurationError(
                f"check_interval must be >= 1, got {self.check_interval}"
            )
        if self.cooldown < 0:
            raise ConfigurationError(f"cooldown must be >= 0, got {self.cooldown}")


@dataclass
class RelayoutAction:
    """An admitted relayout, ready for a migration scheduler."""

    outcome: ReplanOutcome
    decision: GateDecision
    drift: DriftReport

    @property
    def plan(self) -> MHAPlan:
        return self.outcome.plan

    @property
    def migration_entries(self) -> list:
        return self.outcome.migration_entries


class RelayoutController:
    """Drift-aware re-planning over a stream of live records.

    Parameters
    ----------
    pipeline:
        The off-line pipeline supplying parameters (and machinery) for
        re-planning.
    plan:
        The initially active plan (from the profiled first run).
    config:
        Control-loop knobs.
    """

    def __init__(
        self,
        pipeline: MHAPipeline,
        plan: MHAPlan,
        config: ControllerConfig | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.config = config or ControllerConfig()
        self.active_plan = plan
        cfg = self.config
        self.sketch = StreamingSketch(
            window=cfg.window, gap=pipeline.gap, spatial=pipeline.spatial
        )
        self.detector = DriftDetector(
            threshold=cfg.drift_threshold,
            min_samples=cfg.min_samples,
            unmapped_threshold=cfg.unmapped_threshold,
        )
        self.replanner = IncrementalReplanner(
            pipeline, reuse_tolerance=cfg.reuse_tolerance
        )
        self.gate = CostBenefitGate(
            pipeline.spec,
            horizon=cfg.horizon,
            safety=cfg.safety,
            gap=pipeline.gap,
            spatial=pipeline.spatial,
            original_stripe=pipeline.original_stripe,
        )
        self._window: deque[TraceRecord] = deque(maxlen=cfg.window)
        self._since_check = 0
        self._cooldown_left = 0
        #: a relayout currently executing (set by the caller via
        #: :meth:`observe`'s return / cleared in :meth:`commit`)
        self.in_flight: RelayoutAction | None = None
        # -- counters / logs
        self.drift_checks = 0
        self.replans_admitted = 0
        self.replans_rejected = 0
        self.decisions: list[GateDecision] = []
        self.reports: list[DriftReport] = []

    # -- the loop --------------------------------------------------------

    def observe(self, record: TraceRecord) -> RelayoutAction | None:
        """Feed one live record; returns an action when one is admitted.

        A returned action is marked in-flight: the caller either runs
        its migration and calls :meth:`commit` when the epoch swap
        completes, or calls :meth:`abort` to discard it.  No further
        relayout is considered while one is in flight.
        """
        self._window.append(record)
        self.sketch.observe(record, self.active_plan)
        self._since_check += 1
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        if self.in_flight is not None:
            return None
        if self._since_check < self.config.check_interval:
            return None
        self._since_check = 0
        return self._check()

    def _check(self) -> RelayoutAction | None:
        self.drift_checks += 1
        # read a snapshot: a check mid-burst must not fragment the burst
        # it interrupts (partial bursts read as low concurrency)
        snapshot = self.sketch.snapshot(self.active_plan)
        report = self.detector.check(snapshot, self.active_plan)
        self.reports.append(report)
        if not report.drifted:
            return None
        window = Trace(self._window)
        outcome = self.replanner.replan(window, self.active_plan, report)
        decision = self.gate.evaluate(
            self.active_plan, outcome.plan, window, outcome.migration_entries
        )
        self.decisions.append(decision)
        if not decision.admitted:
            self.replans_rejected += 1
            return None
        self.replans_admitted += 1
        action = RelayoutAction(outcome=outcome, decision=decision, drift=report)
        self.in_flight = action
        return action

    # -- lifecycle -------------------------------------------------------

    def commit(self, action: RelayoutAction) -> None:
        """The action's migration completed: its plan is now active.

        Resets the sketch (the new regions must be judged on their own
        traffic) and starts the configured cooldown.
        """
        if action is not self.in_flight:
            raise ConfigurationError("commit of an action that is not in flight")
        self.active_plan = action.plan
        self.in_flight = None
        self.sketch.reset()
        self._cooldown_left = self.config.cooldown
        self._since_check = 0

    def abort(self, action: RelayoutAction) -> None:
        """Discard an in-flight action without activating its plan."""
        if action is not self.in_flight:
            raise ConfigurationError("abort of an action that is not in flight")
        self.in_flight = None

    @classmethod
    def from_online(
        cls, pipeline: MHAPipeline, window: int = 1024, **kwargs
    ) -> "RelayoutController":
        """Adapter for :class:`repro.core.pipeline.OnlinePipeline` users.

        Builds a controller with an *empty* initial plan (everything
        falls through to the original layouts until the first admitted
        relayout), using the legacy sketch's ``(pipeline, window)``
        signature.
        """
        empty = pipeline.plan(Trace([]))
        config = ControllerConfig(window=window, **kwargs)
        return cls(pipeline, empty, config)

"""The cost/benefit gate: is this relayout worth its migration?

Wan et al. (SC 2021) frame online reorganization as an admission
problem: a new layout only pays if the I/O time it saves over its
remaining lifetime exceeds the one-off cost of moving the bytes.  The
gate evaluates both sides with the machinery the optimizer itself
uses:

* **benefit** — the Eq. 2 cost model
  (:func:`repro.core.cost_model.batch_costs`) prices every window
  request twice, once mapped through the old plan and once through the
  candidate plan; the difference is the modelled I/O time saved per
  window of traffic, extrapolated over a configurable ``horizon`` of
  future traffic (assuming the window's pattern persists — exactly the
  stationarity bet the off-line pipeline makes);
* **cost** — :func:`repro.core.placer.estimate_migration_time` bounds
  the background copy of every extent the replan wants to move.

A relayout is admitted when ``benefit(horizon) > safety ×
migration_time``.  Rejections are cheap by design: the drift detector
only sends a candidate here after re-planning, and a rejected
candidate leaves the active plan untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cluster import ClusterSpec
from ..core.cost_model import batch_costs
from ..core.drt import DRTEntry
from ..core.params import CostModelParams
from ..core.pipeline import DEFAULT_ORIGINAL_STRIPE, MHAPlan
from ..core.placer import estimate_migration_time
from ..exceptions import ConfigurationError
from ..tracing.analysis import concurrency_of
from ..tracing.record import Trace

__all__ = ["GateDecision", "CostBenefitGate", "modelled_trace_cost"]


def modelled_trace_cost(
    params: CostModelParams,
    plan: MHAPlan,
    trace: Trace,
    *,
    gap: float = 0.5,
    spatial: bool | int = True,
    original_stripe: int = DEFAULT_ORIGINAL_STRIPE,
) -> float:
    """Eq. 2 cost of serving ``trace`` through ``plan``, in seconds.

    Each record is translated through the plan's DRT; every fragment is
    priced at its region's ``<h, s>`` pair (fall-through extents at the
    original uniform stripe, i.e. ``<orig, orig>``), with the record's
    burst concurrency.  Fragments are batched per stripe pair so the
    whole window costs a handful of vectorized evaluations.
    """
    conc = concurrency_of(trace, gap=gap, spatial=spatial)
    by_pair: dict[tuple[int, int], list[tuple[int, int, bool, int]]] = {}
    for record in trace:
        c = conc.get(record, 1)
        for extent in plan.drt.translate(record.file, record.offset, record.size):
            if extent.mapped:
                pair = plan.rst.get(extent.file)
                h, s = pair.h, pair.s
            else:
                h, s = original_stripe, original_stripe
            by_pair.setdefault((h, s), []).append(
                (extent.offset, extent.length, record.op == "read", c)
            )
    total = 0.0
    for (h, s), rows in by_pair.items():
        offsets = np.array([r[0] for r in rows], dtype=np.int64)
        lengths = np.array([r[1] for r in rows], dtype=np.int64)
        is_read = np.array([r[2] for r in rows], dtype=bool)
        concurrency = np.array([r[3] for r in rows], dtype=np.int64)
        total += float(
            batch_costs(params, offsets, lengths, is_read, concurrency, h, s).sum()
        )
    return total


@dataclass(frozen=True)
class GateDecision:
    """One admission verdict, with the numbers behind it."""

    admitted: bool
    old_cost: float
    new_cost: float
    migration_time: float
    horizon: float
    window_span: float
    bytes_to_move: int

    @property
    def benefit_per_window(self) -> float:
        """Modelled seconds saved per window of traffic."""
        return self.old_cost - self.new_cost

    @property
    def projected_benefit(self) -> float:
        """Benefit extrapolated over the horizon."""
        if self.window_span <= 0:
            return self.benefit_per_window
        return self.benefit_per_window * (self.horizon / self.window_span)

    def __str__(self) -> str:
        verdict = "ADMIT" if self.admitted else "REJECT"
        return (
            f"{verdict}: saves {self.benefit_per_window:.4f}s/window "
            f"(projected {self.projected_benefit:.2f}s over {self.horizon:.0f}s) "
            f"vs migration {self.migration_time:.2f}s "
            f"for {self.bytes_to_move} bytes"
        )


class CostBenefitGate:
    """Admits a candidate plan only when projected payback beats cost.

    Parameters
    ----------
    spec:
        The cluster (for cost-model parameters and migration estimate).
    horizon:
        Seconds of future traffic the benefit is credited over — the
        relayout's assumed remaining lifetime.
    safety:
        Multiplier on the migration estimate; >1 demands the payback
        clear the cost with margin.
    gap / spatial / original_stripe:
        Forwarded to :func:`modelled_trace_cost`; match the planning
        pipeline's settings.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        horizon: float = 600.0,
        safety: float = 1.0,
        *,
        gap: float = 0.5,
        spatial: bool | int = True,
        original_stripe: int = DEFAULT_ORIGINAL_STRIPE,
    ) -> None:
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        if safety <= 0:
            raise ConfigurationError(f"safety must be > 0, got {safety}")
        self.spec = spec
        self.params = CostModelParams.from_cluster(spec)
        self.horizon = horizon
        self.safety = safety
        self.gap = gap
        self.spatial = spatial
        self.original_stripe = original_stripe

    def evaluate(
        self,
        old_plan: MHAPlan,
        new_plan: MHAPlan,
        window: Trace,
        migration_entries: Sequence[DRTEntry],
    ) -> GateDecision:
        """Price the candidate against the incumbent on the window."""
        old_cost = modelled_trace_cost(
            self.params,
            old_plan,
            window,
            gap=self.gap,
            spatial=self.spatial,
            original_stripe=self.original_stripe,
        )
        new_cost = modelled_trace_cost(
            self.params,
            new_plan,
            window,
            gap=self.gap,
            spatial=self.spatial,
            original_stripe=self.original_stripe,
        )
        migration_time = estimate_migration_time(self.spec, migration_entries)
        bytes_to_move = sum(entry.length for entry in migration_entries)

        span = _window_span(window)
        benefit = old_cost - new_cost
        projected = benefit * (self.horizon / span) if span > 0 else benefit
        admitted = benefit > 0 and projected > self.safety * migration_time
        return GateDecision(
            admitted=admitted,
            old_cost=old_cost,
            new_cost=new_cost,
            migration_time=migration_time,
            horizon=self.horizon,
            window_span=span,
            bytes_to_move=bytes_to_move,
        )


def _window_span(window: Trace) -> float:
    """Wall span of the window's timestamps (0 for < 2 records)."""
    if len(window) < 2:
        return 0.0
    times = [r.timestamp for r in window]
    return max(times) - min(times)

"""Incremental re-planning: rebuild only the drifted files.

A drift report names files whose regions no longer serve the traffic
they were built for.  The re-planner runs the off-line machinery —
grouping, reordering, the grid RSSD search — over the *recent window*
of those files only, and carries every un-drifted file's DRT entries,
layouts and stripe decisions into the new plan verbatim.  Region
searches fan out through :func:`repro.core.parallel.parallel_map`, the
same worker pool the off-line Determination phase uses.

One further saving: when a rebuilt region's centroid lands within
``reuse_tolerance`` (relative distance) of an **un-drifted** region of
the old plan, the old region's stripe decision is reused instead of
searching again — the pattern did not move, only the byte population
did.  Drifted regions never donate decisions; they are exactly the
ones whose pairs are suspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.determinator import StripeDecision, region_search_task
from ..core.drt import DRT
from ..core.parallel import parallel_map
from ..core.pipeline import MHAPipeline, MHAPlan
from ..core.placer import place_regions
from ..core.redirector import Redirector
from ..core.rst import RST
from ..layouts.base import Layout
from ..tracing.record import Trace
from .drift import DriftReport, plan_centroids, relative_distance

__all__ = ["ReplanOutcome", "IncrementalReplanner"]


@dataclass
class ReplanOutcome:
    """A candidate next plan plus what producing it cost."""

    plan: MHAPlan
    replanned_files: list[str]
    searched_regions: list[str] = field(default_factory=list)
    reused_regions: list[str] = field(default_factory=list)

    @property
    def migration_entries(self) -> list:
        """DRT entries the placement phase must copy — every extent of
        the rebuilt files (un-drifted files keep their bytes in place)."""
        entries = []
        for file in self.replanned_files:
            entries.extend(self.plan.drt.entries_for(file))
        return entries


class IncrementalReplanner:
    """Builds candidate plans for the drifted subset of the namespace.

    Parameters
    ----------
    pipeline:
        The off-line pipeline whose parameters (grouping cap, RSSD
        step, bound policy, seed, engine, worker count) the re-planner
        mirrors — a replan is the off-line optimization scoped down to
        the drifted files.
    reuse_tolerance:
        Centroid distance under which an un-drifted old region's
        decision is reused without a search; 0 disables reuse.
    """

    def __init__(self, pipeline: MHAPipeline, reuse_tolerance: float = 0.05) -> None:
        self.pipeline = pipeline
        self.reuse_tolerance = reuse_tolerance

    def replan(
        self, window: Trace, old_plan: MHAPlan, report: DriftReport
    ) -> ReplanOutcome:
        """Rebuild the drifted files from the window trace.

        Files in ``report.drifted_files`` are re-grouped, re-reordered
        and re-searched from their window records; every other file of
        the old plan is carried over unchanged (same DRT entries, same
        layouts, same decisions), so the resulting plan can serve the
        whole namespace the old one did.
        """
        drifted = [f for f in report.drifted_files if len(window.for_file(f))]
        drt = DRT()
        rst = RST()
        reorder_plans = dict(old_plan.reorder_plans)
        groupings = dict(old_plan.groupings)
        decisions: dict[str, StripeDecision] = {}
        original_layouts: dict[str, Layout] = dict(old_plan.original_layouts)

        # carry un-drifted files over verbatim
        carried_files = [f for f in old_plan.reorder_plans if f not in drifted]
        for file in carried_files:
            for entry in old_plan.drt.entries_for(file):
                drt.add(entry)
            for region in old_plan.reorder_plans[file].regions:
                if region.name in old_plan.rst:
                    rst.set(region.name, old_plan.rst.get(region.name))
                if region.name in old_plan.decisions:
                    decisions[region.name] = old_plan.decisions[region.name]

        # rebuild each drifted file from its window records
        old_centroids = plan_centroids(old_plan)
        undrifted_old = {
            name: center
            for name, center in old_centroids.items()
            if name not in report.drifted_regions
        }
        region_names: list[str] = []
        search_tasks: list[tuple] = []
        reused: list[str] = []
        for file in drifted:
            sub = window.for_file(file).sorted_by_offset()
            original_layouts.setdefault(
                file, self.pipeline._original_layout(file)
            )
            plan, grouping, names, tasks = self.pipeline.plan_file(file, sub, drt)
            reorder_plans[file] = plan
            groupings[file] = grouping
            for region, name, task in zip(plan.regions, names, tasks):
                pair = self._reusable_pair(
                    old_plan, undrifted_old, grouping, region.group
                )
                if pair is not None:
                    rst.set(name, pair)
                    reused.append(name)
                else:
                    region_names.append(name)
                    search_tasks.append(task)

        results = parallel_map(
            region_search_task,
            search_tasks,
            n_jobs=self.pipeline.n_jobs,
            labels=region_names,
        )
        for name, decision in zip(region_names, results):
            decisions[name] = decision
            rst.set(name, decision.pair)

        region_layouts = place_regions(self.pipeline.spec, rst)
        redirector = Redirector(drt, region_layouts, original_layouts)
        plan = MHAPlan(
            drt=drt,
            rst=rst,
            region_layouts=region_layouts,
            original_layouts=original_layouts,
            redirector=redirector,
            reorder_plans=reorder_plans,
            groupings=groupings,
            decisions=decisions,
        )
        return ReplanOutcome(
            plan=plan,
            replanned_files=drifted,
            searched_regions=region_names,
            reused_regions=reused,
        )

    def _reusable_pair(self, old_plan, undrifted_old, grouping, group):
        """An old decision to reuse for a new region, if its centroid
        matches an un-drifted old region's closely enough."""
        if self.reuse_tolerance <= 0 or not undrifted_old:
            return None
        center = grouping.centers[group]
        point = (float(center[0]), float(center[1]))
        best_name, best_distance = None, float("inf")
        for name, old_center in undrifted_old.items():
            distance = relative_distance(point, old_center)
            if distance < best_distance:
                best_name, best_distance = name, distance
        if best_name is not None and best_distance <= self.reuse_tolerance:
            if best_name in old_plan.rst:
                return old_plan.rst.get(best_name)
        return None

"""Closed-loop online relayout for the MHA scheme.

The off-line pipeline (trace -> reorder -> determine -> place ->
redirect) assumes the profiled pattern persists.  This package closes
the loop when it does not:

* :mod:`~repro.online.sketch` — streaming per-region feature sketch
  (windowed + EWMA request size and burst concurrency);
* :mod:`~repro.online.drift` — compares live features against the
  active plan's cluster centroids, flags only drifted regions;
* :mod:`~repro.online.replanner` — re-runs grouping + the grid RSSD
  search for the drifted files only, carrying everything else over;
* :mod:`~repro.online.gate` — Eq. 2 cost/benefit admission: relayout
  only when projected payback beats the migration estimate;
* :mod:`~repro.online.migrator` — background migration on the shared
  simulator with a bandwidth throttle and epoch-based per-region swap;
* :mod:`~repro.online.controller` — ties the above into
  :class:`RelayoutController`;
* :mod:`~repro.online.experiment` — live runners and the
  checkpoint -> IOR phase-shift experiment.
"""

from .controller import ControllerConfig, RelayoutAction, RelayoutController
from .drift import DriftDetector, DriftReport, plan_centroids, relative_distance
from .experiment import OnlineRunReport, phase_shift_experiment, run_online
from .gate import CostBenefitGate, GateDecision, modelled_trace_cost
from .migrator import EpochRedirector, LiveMigrationScheduler, MigrationReport
from .replanner import IncrementalReplanner, ReplanOutcome
from .sketch import FileTraffic, RegionSketch, StreamingSketch

__all__ = [
    "ControllerConfig",
    "RelayoutAction",
    "RelayoutController",
    "DriftDetector",
    "DriftReport",
    "plan_centroids",
    "relative_distance",
    "OnlineRunReport",
    "phase_shift_experiment",
    "run_online",
    "CostBenefitGate",
    "GateDecision",
    "modelled_trace_cost",
    "EpochRedirector",
    "LiveMigrationScheduler",
    "MigrationReport",
    "IncrementalReplanner",
    "ReplanOutcome",
    "FileTraffic",
    "RegionSketch",
    "StreamingSketch",
]

"""Exception hierarchy for the ``repro`` library.

Every exception the library raises intentionally derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "LayoutError",
    "TraceError",
    "SimulationError",
    "RedirectionError",
    "KVStoreError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class LayoutError(ReproError):
    """A layout cannot map a request (bad stripe sizes, empty server set...)."""


class TraceError(ReproError):
    """A trace file or trace record is malformed."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class RedirectionError(ReproError):
    """The redirector could not translate a request through the DRT."""


class KVStoreError(ReproError):
    """The persistent key-value store is corrupt or misused."""

"""Plan verification: prove an MHA plan is internally consistent.

The paper leans on the DRT for correctness ("DRT is updated each time a
data location has been changed ... which ensures data consistency
between the original files and the reordered regions", §III-E).  This
module makes that property checkable: :func:`verify_plan` audits a
built :class:`~repro.core.pipeline.MHAPlan` against the trace it was
built from and returns a structured report.  A clean report plus the
byte-level round-trip tests in ``tests/pfs/test_storage.py`` together
give the consistency guarantee the paper asserts.

Checks performed:

* **DRT geometry** — entries per original file are sorted, disjoint,
  and their targets stay inside their region file's packed size;
* **region packing** — each region's DRT targets tile ``[0, size)``
  exactly (every reordered byte has exactly one home, no holes);
* **RST coverage** — every region referenced by the DRT has a stripe
  pair and a placed layout, and vice versa;
* **resolvability** — every trace request translates through the DRT
  into extents that tile it, and maps through the redirector into
  fragments that tile it;
* **accounting** — migrated byte totals agree between the reorder
  plans and the DRT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..layouts.base import check_tiling
from ..tracing.record import Trace
from .drt import DRTEntry
from .intervals import IntervalSet
from .pipeline import MHAPlan

__all__ = ["PlanReport", "verify_plan"]


@dataclass
class PlanReport:
    """Outcome of a plan audit."""

    errors: list[str] = field(default_factory=list)
    #: informational counters gathered during the audit
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no check failed."""
        return not self.errors

    def fail(self, message: str) -> None:
        self.errors.append(message)

    def __str__(self) -> str:
        lines = ["plan OK" if self.ok else f"plan BROKEN ({len(self.errors)} errors)"]
        lines += [f"  error: {e}" for e in self.errors[:20]]
        if len(self.errors) > 20:
            lines.append(f"  ... and {len(self.errors) - 20} more")
        for key in sorted(self.stats):
            lines.append(f"  {key}: {self.stats[key]}")
        return "\n".join(lines)


def verify_plan(plan: MHAPlan, trace: Trace) -> PlanReport:
    """Audit ``plan`` against the trace it was built from."""
    report = PlanReport()
    _check_drt_geometry(plan, report)
    _check_region_packing(plan, report)
    _check_rst_coverage(plan, report)
    _check_resolvability(plan, trace, report)
    _check_accounting(plan, report)
    return report


def _check_drt_geometry(plan: MHAPlan, report: PlanReport) -> None:
    entries = list(plan.drt)
    report.stats["drt_entries"] = len(entries)
    by_file: dict[str, list[DRTEntry]] = {}
    for entry in entries:
        by_file.setdefault(entry.o_file, []).append(entry)
    for o_file, file_entries in by_file.items():
        ordered = plan.drt.entries_for(o_file)
        starts = [e.o_offset for e in ordered]
        if starts != sorted(starts):
            report.fail(f"DRT entries for {o_file!r} are not offset-sorted")
        for a, b in zip(ordered, ordered[1:]):
            if a.o_end > b.o_offset:
                report.fail(
                    f"DRT entries overlap in {o_file!r} at {b.o_offset}"
                )


def _check_region_packing(plan: MHAPlan, report: PlanReport) -> None:
    sizes = {
        region.name: region.size
        for file_plan in plan.reorder_plans.values()
        for region in file_plan.regions
    }
    if not sizes:
        # plan restored from persisted tables (load_plan): the packed
        # sizes are not stored, so derive each region's extent from its
        # DRT targets — the packing check then verifies hole-freeness
        for entry in plan.drt:
            end = entry.r_offset + entry.length
            if end > sizes.get(entry.r_file, 0):
                sizes[entry.r_file] = end
    targets: dict[str, IntervalSet] = {}
    for entry in plan.drt:
        spans = targets.setdefault(entry.r_file, IntervalSet())
        gaps = spans.add(entry.r_offset, entry.r_offset + entry.length)
        covered = sum(e - s for s, e in gaps)
        if covered != entry.length:
            report.fail(
                f"two DRT entries write the same bytes of {entry.r_file!r} "
                f"near offset {entry.r_offset}"
            )
    for region, spans in targets.items():
        size = sizes.get(region)
        if size is None:
            report.fail(f"DRT targets unknown region {region!r}")
            continue
        if spans.total() != size or not spans.covers(0, size):
            report.fail(
                f"region {region!r}: DRT targets cover {spans.total()} of "
                f"{size} bytes (holes or spill)"
            )
    report.stats["regions"] = len(sizes)


def _check_rst_coverage(plan: MHAPlan, report: PlanReport) -> None:
    drt_regions = {entry.r_file for entry in plan.drt}
    rst_regions = {name for name, _ in plan.rst}
    for region in drt_regions - rst_regions:
        report.fail(f"region {region!r} has DRT data but no RST stripe pair")
    for region in rst_regions - drt_regions:
        report.fail(f"RST lists region {region!r} that the DRT never targets")
    for region in rst_regions:
        if region not in plan.region_layouts:
            report.fail(f"region {region!r} has no placed layout")


def _check_resolvability(plan: MHAPlan, trace: Trace, report: PlanReport) -> None:
    fragments = 0
    for record in trace:
        extents = plan.drt.translate(record.file, record.offset, record.size)
        covered = sum(e.length for e in extents)
        if covered != record.size:
            report.fail(
                f"request {record.file}@{record.offset}+{record.size} "
                f"translates to {covered} bytes"
            )
            continue
        try:
            frags = plan.redirector.map_request(
                record.file, record.offset, record.size
            )
            check_tiling(record.offset, record.size, frags)
            fragments += len(frags)
        except Exception as exc:  # noqa: BLE001 - audit should collect, not raise
            report.fail(
                f"request {record.file}@{record.offset}+{record.size} "
                f"fails to map: {exc}"
            )
    report.stats["requests_checked"] = len(trace)
    report.stats["fragments"] = fragments


def _check_accounting(plan: MHAPlan, report: PlanReport) -> None:
    drt_bytes = sum(entry.length for entry in plan.drt)
    if plan.reorder_plans:  # not available on plans restored from disk
        plan_bytes = plan.migrated_bytes()
        if drt_bytes != plan_bytes:
            report.fail(
                f"migration accounting mismatch: DRT holds {drt_bytes} "
                f"bytes, reorder plans report {plan_bytes}"
            )
    report.stats["migrated_bytes"] = drt_bytes

"""The data-access cost model (Eq. 2 and its write counterpart).

For a read request ``r`` under stripe pair ``<h, s>`` the paper defines

.. math::

   T_R(r, h, s) = \\max\\{\\, p_i \\alpha_h + s_i (t + \\beta_h),\\;
                          p_j \\alpha_{sr} + s_j (t + \\beta_{sr})
                    \\mid i \\in \\mathcal{H}, j \\in \\mathcal{S} \\,\\}

where ``p_i``/``p_j`` are the numbers of processes whose sub-requests
land on server ``i``/``j`` and ``s_i``/``s_j`` the accumulated
sub-request sizes there.  Writes swap in ``α_sw``/``β_sw`` on the
SServers.  The request completes when the slowest involved server
finishes — the ``max``.

**Concurrency** (the paper's extension over HARL's model, §III-F): a
request issued in a burst of ``c`` similar concurrent requests shares
its servers with its burst-mates, so the time server ``i`` takes to
reach this request's data includes the burst's load there.  HPC bursts
*tile* the file — concurrent requests sit at distinct, size-aligned
offsets — so over a striping cycle of ``C = M·h + N·s`` bytes the
burst's ``c·l`` bytes split across servers proportionally to their
window widths, and the number of burst requests whose extent crosses
server ``i``'s window (each one a startup the server pays) is the
window count ``c·l·ceil(w_i/l) / C``.  On each server the request
itself touches,

``p_i = clip(c · l · ceil(w_i / l) / C,  1,  c)`` and
``s_i = max(bytes_i,  c · l · w_i / C)``.

(For small stripes every burst request touches every server and this
degenerates to ``p_i = c`` with the full burst share; for large
stripes it correctly credits the layout for spreading concurrent
requests across different servers.)  The same formulas with ``c = 1``
reduce exactly to the paper's per-request Eq. 2.

Implementation notes: per-server byte counts come from the closed-form
extent arithmetic in :mod:`repro.layouts.extents`, so evaluating a
whole region's requests for one ``<h, s>`` candidate is a handful of
vectorized numpy operations rather than fragment enumeration.
"""

from __future__ import annotations

import numpy as np

from ..contracts import twin_of
from ..devices.base import READ, WRITE
from ..layouts.extents import (
    max_server_bytes_grid,
    per_server_bytes_batch,
    per_server_bytes_grid,
)
from .params import CostModelParams

__all__ = [
    "request_cost",
    "batch_costs",
    "region_cost",
    "burst_costs",
    "batch_costs_grid",
    "burst_costs_grid",
]


def _effective_stripes(params: CostModelParams, h: int, s: int) -> tuple[int, int]:
    """Zero out stripes of absent server classes."""
    h_eff = h if params.M > 0 else 0
    s_eff = s if params.N > 0 else 0
    return h_eff, s_eff


def batch_costs(
    params: CostModelParams,
    offsets: np.ndarray,
    lengths: np.ndarray,
    is_read: np.ndarray,
    concurrency: np.ndarray,
    h: int,
    s: int,
) -> np.ndarray:
    """Per-request access costs for ``K`` requests under ``<h, s>``.

    Parameters
    ----------
    offsets, lengths:
        Integer arrays of shape ``(K,)`` — each request's ``o`` and ``l``.
    is_read:
        Boolean array of shape ``(K,)`` — the request types ``op``.
    concurrency:
        Integer array of shape ``(K,)`` — burst sizes (>= 1).
    h, s:
        Candidate stripe sizes in bytes.

    Returns the ``(K,)`` float array of :math:`T_R`/:math:`T_W` values.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    is_read = np.asarray(is_read, dtype=bool)
    concurrency = np.maximum(np.asarray(concurrency, dtype=np.int64), 1)
    h_eff, s_eff = _effective_stripes(params, h, s)

    h_bytes, s_bytes = per_server_bytes_batch(
        offsets, lengths, params.M, params.N, h_eff, s_eff
    )
    K = offsets.shape[0]
    costs = np.zeros(K, dtype=np.float64)
    conc_f = concurrency.astype(np.float64)
    # zero-length requests cost nothing; give them a harmless length of
    # 1 inside the arithmetic and mask them out at the end
    empty = lengths <= 0
    length_f = np.where(empty, 1, lengths).astype(np.float64)
    cycle = float(params.M * h_eff + params.N * s_eff)

    def class_time(
        width: int,
        own: np.ndarray,
        alpha: float | np.ndarray,
        beta: float | np.ndarray,
    ) -> np.ndarray:
        """Per-request completion bound from one server class.

        Two lower bounds are combined:

        * **own-server** — the servers this request touches must finish
          their burst load (``p`` rounded *up*: a server serves a whole
          sub-request or none, and the request tracks the most-loaded
          server it touches; the byte share inflates proportionally);
        * **burst-wide** — similar requests are issued in synchronized
          bursts, and the next burst cannot start before the slowest
          server of *this* burst drains, so whenever the burst loads a
          server of this class with at least one whole request the
          class's burst-drain time bounds the request too.  Without
          this term the search can game the summed objective with
          layouts where some requests dodge the slow servers while the
          burst still waits on them.
        """
        windows = np.ceil(width / length_f)
        p_raw = (conc_f * length_f * windows / cycle)[:, None]
        p_mean = np.clip(p_raw, 1.0, conc_f[:, None])
        p = np.ceil(p_mean - 1e-9)
        share = (conc_f * length_f * width / cycle)[:, None] * (p / p_mean)
        # a singleton "burst" has no mates: its load is exactly its own
        # bytes (keeps c == 1 identical to the paper's Eq. 2)
        share = share * (conc_f > 1)[:, None]
        involved = own > 0
        t_own = involved * (
            p * alpha + np.maximum(own, share) * (params.t + beta)
        )
        t_burst = (p_raw >= 1.0) * (conc_f > 1)[:, None] * (
            p * alpha + share * (params.t + beta)
        )
        return np.maximum(t_own, t_burst).max(axis=1)

    lam = params.net_latency
    if params.M > 0 and h_eff > 0:
        costs = np.maximum(
            costs,
            class_time(h_eff, h_bytes, params.alpha_h + lam, params.beta_h),
        )
    if params.N > 0 and s_eff > 0:
        beta = np.where(is_read, params.beta_sr, params.beta_sw)[:, None]
        alpha = np.where(is_read, params.alpha_sr, params.alpha_sw)[:, None]
        costs = np.maximum(
            costs, class_time(s_eff, s_bytes, alpha + lam, beta)
        )
    costs[empty] = 0.0
    return costs


def burst_costs(
    params: CostModelParams,
    offsets: np.ndarray,
    lengths: np.ndarray,
    is_read: np.ndarray,
    burst_ids: np.ndarray,
    h: int,
    s: int,
) -> np.ndarray:
    """Exact per-burst completion times under ``<h, s>``.

    This is the cost model evaluated against the trace's **actual**
    simultaneous request groups instead of the statistical burst
    approximation in :func:`batch_costs`: requests sharing a burst id
    were issued together, so each server's time for the burst is
    ``p_i·(α + λ) + Σ bytes·(t + β_op)`` with ``p_i`` the *counted*
    number of burst members touching it and the byte sum taken over the
    members' real extents — and the burst completes at the slowest
    server (Eq. 2's ``max``, lifted from one request to one burst).
    For a trace of singleton bursts this is exactly Eq. 2 per request.

    Returns one completion time per distinct burst id, ordered by
    ``np.unique(burst_ids)``.

    The per-server scatter-sum is a stable sort by burst id followed by
    ``np.add.reduceat`` along the request axis — the exact accumulation
    primitive (and order) of :func:`burst_costs_grid`, which is what
    keeps the scalar and grid search engines bit-identical.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    is_read = np.asarray(is_read, dtype=bool)
    burst_ids = np.asarray(burst_ids)
    h_eff, s_eff = _effective_stripes(params, h, s)
    h_bytes, s_bytes = per_server_bytes_batch(
        offsets, lengths, params.M, params.N, h_eff, s_eff
    )
    _, inverse = np.unique(burst_ids, return_inverse=True)
    B = int(inverse.max()) + 1 if inverse.size else 0
    lam = params.net_latency
    worst = np.zeros(B, dtype=np.float64)
    if B == 0:
        return worst
    # stable order by burst id; traces whose requests already arrive
    # burst-grouped (the common case after the determinator pre-sorts)
    # skip the gather copies entirely
    if np.all(inverse[:-1] <= inverse[1:]):
        sorted_already = True
        sorted_inverse = inverse
    else:
        sorted_already = False
        order = np.argsort(inverse, kind="stable")
        sorted_inverse = inverse[order]
    # np.unique guarantees every id in [0, B) occurs, so each segment
    # start exists and reduceat sees B non-empty segments
    seg_starts = np.searchsorted(sorted_inverse, np.arange(B))

    def segment_sum(vals: np.ndarray) -> np.ndarray:
        if not sorted_already:
            vals = vals[order]
        return np.add.reduceat(vals, seg_starts, axis=0)

    if params.M > 0 and h_eff > 0:
        loads = segment_sum(h_bytes * (params.t + params.beta_h))
        counts = segment_sum((h_bytes > 0).astype(np.float64))
        t_h = counts * (params.alpha_h + lam) + loads
        worst = np.maximum(worst, t_h.max(axis=1))
    if params.N > 0 and s_eff > 0:
        beta = np.where(is_read, params.beta_sr, params.beta_sw)[:, None]
        alpha = np.where(is_read, params.alpha_sr, params.alpha_sw)[:, None]
        loads = segment_sum(s_bytes * (params.t + beta))
        starts = segment_sum((s_bytes > 0) * (alpha + lam))
        t_s = starts + loads
        worst = np.maximum(worst, t_s.max(axis=1))
    return worst


@twin_of(
    "repro.core.cost_model:batch_costs",
    param_map={"h": "h_arr", "s": "s_arr"},
    harness="batch_costs_grid",
)
def batch_costs_grid(
    params: CostModelParams,
    offsets: np.ndarray,
    lengths: np.ndarray,
    is_read: np.ndarray,
    concurrency: np.ndarray,
    h_arr: np.ndarray,
    s_arr: np.ndarray,
) -> np.ndarray:
    """:func:`batch_costs` broadcast over ``G`` candidate pairs at once.

    ``h_arr`` / ``s_arr`` are 1-D arrays of candidate stripe sizes; the
    result has shape ``(G, K)`` and row ``g`` is bit-identical to
    ``batch_costs(params, ..., h_arr[g], s_arr[g])`` — every arithmetic
    operation is the same elementwise expression with one extra
    broadcast axis, so the vectorized RSSD search selects exactly the
    pair the scalar search would.

    Memory is ``O(G * K * (M + N))`` floats; callers evaluating large
    grids should chunk over the candidate axis (the determinator does).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    is_read = np.asarray(is_read, dtype=bool)
    concurrency = np.maximum(np.asarray(concurrency, dtype=np.int64), 1)
    h_arr = np.asarray(h_arr, dtype=np.int64)
    s_arr = np.asarray(s_arr, dtype=np.int64)
    h_eff = h_arr if params.M > 0 else np.zeros_like(h_arr)
    s_eff = s_arr if params.N > 0 else np.zeros_like(s_arr)

    h_own, s_own = max_server_bytes_grid(
        offsets, lengths, params.M, params.N, h_eff, s_eff
    )
    G, K = h_arr.shape[0], offsets.shape[0]
    costs = np.zeros((G, K), dtype=np.float64)
    if G == 0 or K == 0:
        return costs
    conc_f = concurrency.astype(np.float64)
    empty = lengths <= 0
    length_f = np.where(empty, 1, lengths).astype(np.float64)
    cycle = (params.M * h_eff + params.N * s_eff).astype(np.float64)
    # candidates with an empty cycle touch no server at all: every
    # width below is 0, so a stand-in cycle of 1 keeps their costs 0
    cyc_col = np.where(cycle > 0.0, cycle, 1.0)[:, None]  # (G, 1)
    cl = conc_f * length_f  # (K,)
    conc_gate = (conc_f > 1)[None, :]

    def class_time(
        width: np.ndarray,
        own_max: np.ndarray,
        alpha: float | np.ndarray,
        beta: float | np.ndarray,
    ) -> np.ndarray:
        """Grid form of the scalar path's per-class completion bound.

        ``width`` is the per-candidate stripe of this server class
        (shape ``(G,)``), ``own_max`` the ``(G, K)`` byte count of each
        request's most-loaded server in the class; the result is the
        ``(G, K)`` per-request bound.  Every term matches
        :func:`batch_costs` operand for operand, with one algebraic
        reduction: the scalar path computes the own-server bound per
        server and then maxes, but within one class all servers share
        ``p``, ``share``, ``α`` and ``β``, and the bound is monotone
        (exactly, in IEEE arithmetic — multiplication and addition by
        non-negative terms preserve order) in the byte count, so maxing
        the byte counts *first* yields the bit-same result while
        keeping every temporary at ``(G, K)`` instead of
        ``(G, K, M_class)``.
        """
        width_col = width.astype(np.float64)[:, None]  # (G, 1)
        windows = np.ceil(width_col / length_f[None, :])  # (G, K)
        p_raw = cl[None, :] * windows / cyc_col  # (G, K)
        p_mean = np.clip(p_raw, 1.0, conc_f[None, :])
        p = np.ceil(p_mean - 1e-9)
        share = (cl[None, :] * width_col / cyc_col) * (p / p_mean)
        share = share * conc_gate
        involved = own_max > 0
        t_own = involved * (p * alpha + np.maximum(own_max, share) * (params.t + beta))
        t_burst = (p_raw >= 1.0) * conc_gate * (p * alpha + share * (params.t + beta))
        return np.maximum(t_own, t_burst)

    lam = params.net_latency
    if params.M > 0:
        costs = np.maximum(
            costs,
            class_time(h_eff, h_own, params.alpha_h + lam, params.beta_h),
        )
    if params.N > 0:
        beta = np.where(is_read, params.beta_sr, params.beta_sw)[None, :]
        alpha = np.where(is_read, params.alpha_sr, params.alpha_sw)[None, :]
        costs = np.maximum(costs, class_time(s_eff, s_own, alpha + lam, beta))
    costs[:, empty] = 0.0
    return costs


@twin_of(
    "repro.core.cost_model:burst_costs",
    param_map={"h": "h_arr", "s": "s_arr"},
    harness="burst_costs_grid",
)
def burst_costs_grid(
    params: CostModelParams,
    offsets: np.ndarray,
    lengths: np.ndarray,
    is_read: np.ndarray,
    burst_ids: np.ndarray,
    h_arr: np.ndarray,
    s_arr: np.ndarray,
) -> np.ndarray:
    """:func:`burst_costs` broadcast over ``G`` candidate pairs at once.

    Returns shape ``(G, B)`` — row ``g`` is bit-identical to
    ``burst_costs(params, ..., h_arr[g], s_arr[g])``.  The scalar
    path's ``np.add.at`` scatter becomes a stable sort by burst id plus
    ``np.add.reduceat`` along the request axis: within a burst the
    requests keep their original order, and both primitives accumulate
    strictly left to right, so the per-server sums are the same floats.

    Memory is ``O(G * K * (M + N))``; chunk over candidates for large
    grids.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    is_read = np.asarray(is_read, dtype=bool)
    burst_ids = np.asarray(burst_ids)
    h_arr = np.asarray(h_arr, dtype=np.int64)
    s_arr = np.asarray(s_arr, dtype=np.int64)
    h_eff = h_arr if params.M > 0 else np.zeros_like(h_arr)
    s_eff = s_arr if params.N > 0 else np.zeros_like(s_arr)

    _, inverse = np.unique(burst_ids, return_inverse=True)
    G = h_arr.shape[0]
    B = int(inverse.max()) + 1 if inverse.size else 0
    worst = np.zeros((G, B), dtype=np.float64)
    if G == 0 or B == 0:
        return worst

    # the determinator pre-sorts its requests by burst id, so the
    # gather is usually a no-op; detect that and skip the large copies
    if np.all(inverse[:-1] <= inverse[1:]):
        sorted_already = True
        sorted_inverse = inverse
    else:
        sorted_already = False
        order = np.argsort(inverse, kind="stable")
        sorted_inverse = inverse[order]
    # np.unique guarantees every id in [0, B) occurs, so each segment
    # start exists and reduceat sees B non-empty segments
    seg_starts = np.searchsorted(sorted_inverse, np.arange(B))
    h_bytes, s_bytes = per_server_bytes_grid(
        offsets, lengths, params.M, params.N, h_eff, s_eff
    )
    lam = params.net_latency

    def segment_sum(vals: np.ndarray) -> np.ndarray:
        if not sorted_already:
            vals = vals[:, order, :]
        return np.add.reduceat(vals, seg_starts, axis=1)

    if params.M > 0:
        loads = segment_sum(h_bytes * (params.t + params.beta_h))
        counts = segment_sum((h_bytes > 0).astype(np.float64))
        t_h = counts * (params.alpha_h + lam) + loads
        worst = np.maximum(worst, t_h.max(axis=2))
    if params.N > 0:
        beta = np.where(is_read, params.beta_sr, params.beta_sw)[:, None]
        alpha = np.where(is_read, params.alpha_sr, params.alpha_sw)[:, None]
        loads = segment_sum(s_bytes * (params.t + beta[None, :, :]))
        starts = segment_sum((s_bytes > 0) * (alpha + lam)[None, :, :])
        t_s = starts + loads
        worst = np.maximum(worst, t_s.max(axis=2))
    return worst


def request_cost(
    params: CostModelParams,
    op: str,
    offset: int,
    length: int,
    h: int,
    s: int,
    concurrency: int = 1,
) -> float:
    """Scalar convenience wrapper: the cost of one request (Eq. 2)."""
    if op not in (READ, WRITE):
        raise ValueError(f"op must be 'read' or 'write', got {op!r}")
    costs = batch_costs(
        params,
        np.array([offset]),
        np.array([length]),
        np.array([op == READ]),
        np.array([concurrency]),
        h,
        s,
    )
    return float(costs[0])


def region_cost(
    params: CostModelParams,
    offsets: np.ndarray,
    lengths: np.ndarray,
    is_read: np.ndarray,
    concurrency: np.ndarray,
    h: int,
    s: int,
) -> float:
    """Total access cost of a region's requests (Algorithm 2's
    ``Reg_cost``): the sum of per-request costs under ``<h, s>``."""
    return float(
        batch_costs(params, offsets, lengths, is_read, concurrency, h, s).sum()
    )

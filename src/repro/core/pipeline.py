"""The five-phase MHA workflow (Fig. 6), end to end.

``trace -> [reordering] -> [determination] -> [placement] -> redirector``

:class:`MHAPipeline` is the off-line optimizer run between the
application's profiled first run and its subsequent runs: it consumes
the collector's trace and produces an :class:`MHAPlan` holding the DRT,
the RST, every region's layout and the runtime
:class:`~repro.core.redirector.Redirector`.

:class:`OnlinePipeline` is the paper's future-work extension — a
sliding-window variant that re-plans as new requests stream in, for
applications whose patterns are not predictable from one profiling run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..cluster import ClusterSpec
from ..config import DEFAULT_SAMPLE_SEED
from ..contracts import twin_of
from ..exceptions import ConfigurationError
from ..layouts.base import Layout
from ..layouts.fixed import FixedStripeLayout
from ..tracing.analysis import burst_ids_of, concurrency_of
from ..tracing.columnar import (
    ColumnarTrace,
    collapse_by_last_group,
    concurrency_and_burst_ids,
    identity_classes,
)
from ..tracing.record import Trace, TraceRecord
from ..units import KiB
from .determinator import (
    DEFAULT_STEP,
    RegionSearchTask,
    StripeDecision,
    region_search_task,
)
from .drt import DRT, DRTEntry
from .features import extract_features, extract_features_columnar
from .grouping import DEFAULT_MAX_GROUPS, GroupingResult, group_requests, suggest_k
from .intervals import IntervalSet
from .parallel import parallel_map
from .params import CostModelParams
from .placer import place_regions
from .redirector import Redirector
from .reorganizer import ReorderPlan, reorganize, reorganize_arrays
from .rst import RST

__all__ = ["MHAPlan", "MHAPipeline", "OnlinePipeline", "identity_redirector", "load_plan"]

#: stripe size of the original (pre-optimization) file layout — the PFS
#: default the application was deployed with
DEFAULT_ORIGINAL_STRIPE = 64 * KiB


@dataclass
class MHAPlan:
    """Everything the off-line optimization produced."""

    drt: DRT
    rst: RST
    region_layouts: dict[str, Layout]
    original_layouts: dict[str, Layout]
    redirector: Redirector
    reorder_plans: dict[str, ReorderPlan] = field(default_factory=dict)
    groupings: dict[str, GroupingResult] = field(default_factory=dict)
    decisions: dict[str, StripeDecision] = field(default_factory=dict)

    @property
    def num_regions(self) -> int:
        return len(self.region_layouts)

    def migrated_bytes(self) -> int:
        """Bytes the placement phase copies into region files."""
        return sum(p.migrated_bytes for p in self.reorder_plans.values())

    def describe(self) -> str:
        """Human-readable plan summary (regions and stripe pairs)."""
        lines = [f"MHA plan: {self.num_regions} regions, {len(self.drt)} DRT entries"]
        for region, pair in self.rst:
            decision = self.decisions.get(region)
            cost = f", cost={decision.cost:.4f}s" if decision else ""
            lines.append(f"  {region}: stripes {pair}{cost}")
        return "\n".join(lines)


class MHAPipeline:
    """Off-line MHA optimizer for a cluster.

    Parameters
    ----------
    spec:
        The hybrid cluster being laid out.
    max_groups:
        §III-D cap on the number of groups per file (metadata bound).
    k:
        Explicit group count; by default inferred from the number of
        distinct feature patterns, clamped to ``max_groups``.
    step:
        RSSD stripe-search granularity (Algorithm 2; default 4 KB).
    gap:
        Phase-detection time gap for concurrency analysis (trace time
        units).
    bound_policy:
        ``"adaptive"`` (MHA) or ``"average"`` (HARL-style bounds, for
        ablation).
    original_stripe:
        Stripe size of the pre-existing file layout, used for unmapped
        fall-through extents.
    drt_path / rst_path:
        Optional persistence locations (Berkeley-DB stand-in files).
    max_eval_requests / seed:
        Cost-evaluation sampling bound and RNG seed (determinism).
    n_jobs:
        Worker processes for the Determination phase.  Regions are
        independent, so their RSSD searches run concurrently through
        :func:`repro.core.parallel.parallel_map`; ``None`` defers to
        the ``REPRO_JOBS`` environment variable and then the CPU
        count.  Results are identical for any worker count.
    engine:
        RSSD search engine (``"grid"`` vectorized / ``"scalar"``
        reference loop); see
        :func:`repro.core.determinator.determine_stripes`.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        *,
        max_groups: int = DEFAULT_MAX_GROUPS,
        k: int | None = None,
        step: int = DEFAULT_STEP,
        gap: float = 0.5,
        spatial: bool | int = True,
        bound_policy: str = "adaptive",
        original_stripe: int = DEFAULT_ORIGINAL_STRIPE,
        drt_path: str | Path | None = None,
        rst_path: str | Path | None = None,
        max_eval_requests: int = 4096,
        seed: int = DEFAULT_SAMPLE_SEED,
        n_jobs: int | None = None,
        engine: str = "grid",
    ) -> None:
        if k is not None and k <= 0:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.spec = spec
        self.params = CostModelParams.from_cluster(spec)
        self.max_groups = max_groups
        self.k = k
        self.step = step
        self.gap = gap
        self.spatial = spatial
        self.bound_policy = bound_policy
        self.original_stripe = original_stripe
        self.drt_path = drt_path
        self.rst_path = rst_path
        self.max_eval_requests = max_eval_requests
        self.seed = seed
        self.n_jobs = n_jobs
        self.engine = engine

    def _original_layout(self, file: str) -> Layout:
        return FixedStripeLayout(
            servers=self.spec.server_ids, stripe=self.original_stripe, obj=file
        )

    def search_kwargs(self) -> dict[str, Any]:
        """The RSSD search options shared by every region task."""
        return dict(
            step=self.step,
            bound_policy=self.bound_policy,
            max_eval_requests=self.max_eval_requests,
            seed=self.seed,
            engine=self.engine,
        )

    def plan_file(
        self, file: str, sub: Trace, drt: DRT
    ) -> tuple[ReorderPlan, GroupingResult, list[str], list[RegionSearchTask]]:
        """Run grouping + reordering for one file; return its search tasks.

        ``sub`` must be the offset-sorted single-file trace.  DRT
        entries for the file's regions are appended to ``drt``.  The
        returned search tasks are the picklable
        :func:`~repro.core.determinator.region_search_task` tuples for
        the file's regions (one per name in the returned name list) —
        callers fan them out through
        :func:`repro.core.parallel.parallel_map`.  Factored out of
        :meth:`plan` so the online re-planner
        (:mod:`repro.online.replanner`) can rebuild a single drifted
        file with exactly the off-line semantics.
        """
        features = extract_features(sub, gap=self.gap, spatial=self.spatial)
        distinct = int(np.unique(features.points, axis=0).shape[0]) if len(sub) else 1
        k = self.k if self.k is not None else suggest_k(
            len(sub), distinct, self.max_groups
        )
        grouping = group_requests(features, k=k, seed=self.seed)
        # Per-group concurrency: once migrated, a region only ever
        # receives its own group's requests, so the burst size that
        # matters for its stripe decision is the number of
        # *same-group* requests issued simultaneously.  (Schemes
        # without grouping cannot make this distinction — that
        # sharper cost estimate is part of what reordering buys.)
        conc: dict[TraceRecord, int] = {}
        bursts: dict[TraceRecord, int] = {}
        next_burst = 0
        for g in range(grouping.k):
            members = Trace(sub[int(i)] for i in grouping.members(g))
            conc.update(
                concurrency_of(members, gap=self.gap, spatial=self.spatial)
            )
            ids = burst_ids_of(members, gap=self.gap, spatial=self.spatial)
            for record, local_id in ids.items():
                bursts[record] = next_burst + local_id
            next_burst += (max(ids.values()) + 1) if ids else 0
        plan = reorganize(
            sub, grouping, conc, o_file=file, drt=drt, bursts=bursts
        )
        region_names: list[str] = []
        search_tasks: list[RegionSearchTask] = []
        for region in plan.regions:
            offsets, lengths, is_read, concurrency, burst_ids = (
                region.request_arrays()
            )
            region_names.append(region.name)
            search_tasks.append((
                self.params,
                offsets,
                lengths,
                is_read,
                concurrency,
                burst_ids,
                self.search_kwargs(),
            ))
        return plan, grouping, region_names, search_tasks

    @twin_of(
        "repro.core.pipeline:MHAPipeline.plan_file",
        kind="bit_identical",
        harness="plan_file_columnar",
    )
    def plan_file_columnar(
        self, file: str, sub: ColumnarTrace, drt: DRT
    ) -> tuple[ReorderPlan, GroupingResult, list[str], list[RegionSearchTask]]:
        """:meth:`plan_file` over a columnar trace — no record objects.

        Identical outputs (plan, grouping, names, tasks): the feature
        matrix is the :func:`extract_features_columnar` twin's, the
        grouping runs the exact same array k-means, and the per-group
        concurrency/burst assignment reproduces the reference's
        dict-update semantics — including the cross-group collapse a
        duplicate record triggers when later groups overwrite earlier
        ones (reachable in the ``n <= k`` one-request-per-group branch).
        """
        features = extract_features_columnar(sub, gap=self.gap, spatial=self.spatial)
        distinct = int(np.unique(features.points, axis=0).shape[0]) if len(sub) else 1
        k = self.k if self.k is not None else suggest_k(
            len(sub), distinct, self.max_groups
        )
        grouping = group_requests(features, k=k, seed=self.seed)
        n = len(sub)
        conc_arr = np.ones(n, dtype=np.int64)
        burst_arr = np.full(n, -1, dtype=np.int64)
        next_burst = 0
        for g in range(grouping.k):
            member_indices = grouping.members(g)
            members = sub.take(member_indices)
            conc_g, ids_g = concurrency_and_burst_ids(
                members, gap=self.gap, spatial=self.spatial
            )
            conc_arr[member_indices] = conc_g
            burst_arr[member_indices] = next_burst + ids_g
            next_burst += int(ids_g.max()) + 1 if ids_g.size else 0
        inverse, n_classes = identity_classes(sub)
        if n_classes < n:
            # duplicate records spanning groups: the reference's dicts
            # keep the last group's value — collapse the same way
            conc_arr = collapse_by_last_group(
                conc_arr, grouping.labels, inverse, n_classes
            )
            burst_arr = collapse_by_last_group(
                burst_arr, grouping.labels, inverse, n_classes
            )
        plan = reorganize_arrays(
            sub, grouping, conc_arr, o_file=file, drt=drt, bursts=burst_arr
        )
        region_names: list[str] = []
        search_tasks: list[RegionSearchTask] = []
        for region in plan.regions:
            offsets, lengths, is_read, concurrency, burst_ids = (
                region.request_arrays()
            )
            region_names.append(region.name)
            search_tasks.append((
                self.params,
                offsets,
                lengths,
                is_read,
                concurrency,
                burst_ids,
                self.search_kwargs(),
            ))
        return plan, grouping, region_names, search_tasks

    def plan(self, trace: "Trace | ColumnarTrace") -> MHAPlan:
        """Run reordering + determination + placement over a trace.

        Accepts either trace representation; the columnar one runs the
        vectorized twins end-to-end and produces a bit-identical plan.
        Either way the per-file sub-traces come from a single-pass
        partition, not a per-file rescan of the whole trace.
        """
        drt = DRT(self.drt_path) if self.drt_path else DRT()
        rst = RST(self.rst_path) if self.rst_path else RST()
        reorder_plans: dict[str, ReorderPlan] = {}
        groupings: dict[str, GroupingResult] = {}
        decisions: dict[str, StripeDecision] = {}
        original_layouts: dict[str, Layout] = {}
        region_names: list[str] = []
        search_tasks: list[RegionSearchTask] = []

        if isinstance(trace, ColumnarTrace):
            for file, indices in trace.file_partition().items():
                sub_col = trace.take(indices).sorted_by_offset()
                original_layouts[file] = self._original_layout(file)
                plan, grouping, names, tasks = self.plan_file_columnar(
                    file, sub_col, drt
                )
                reorder_plans[file] = plan
                groupings[file] = grouping
                region_names.extend(names)
                search_tasks.extend(tasks)
        else:
            for file, sub_records in trace.partition_by_file().items():
                sub = sub_records.sorted_by_offset()
                original_layouts[file] = self._original_layout(file)
                plan, grouping, names, tasks = self.plan_file(file, sub, drt)
                reorder_plans[file] = plan
                groupings[file] = grouping
                region_names.extend(names)
                search_tasks.extend(tasks)

        # Determination: every region's RSSD search is independent, so
        # fan the accumulated searches (across all files) out to the
        # worker pool at once
        results = parallel_map(
            region_search_task,
            search_tasks,
            n_jobs=self.n_jobs,
            labels=region_names,
        )
        for name, decision in zip(region_names, results):
            decisions[name] = decision
            rst.set(name, decision.pair)

        region_layouts = place_regions(self.spec, rst)
        redirector = Redirector(drt, region_layouts, original_layouts)
        return MHAPlan(
            drt=drt,
            rst=rst,
            region_layouts=region_layouts,
            original_layouts=original_layouts,
            redirector=redirector,
            reorder_plans=reorder_plans,
            groupings=groupings,
            decisions=decisions,
        )


def load_plan(
    spec: ClusterSpec,
    drt_path: str | Path,
    rst_path: str | Path,
    original_stripe: int = DEFAULT_ORIGINAL_STRIPE,
) -> MHAPlan:
    """Restore a runtime-ready plan from persisted metadata tables.

    This is the application's *subsequent run* in the paper's workflow:
    no trace, no optimization — just load the DRT and RST files the
    off-line pipeline wrote, rebuild each region's layout from its
    stripe pair, and hand back a working redirector.  The analysis
    artifacts (groupings, reorder plans, decisions) are not persisted
    and come back empty.
    """
    drt = DRT(drt_path)
    rst = RST(rst_path)
    region_layouts = place_regions(spec, rst)
    original_layouts: dict[str, Layout] = {}
    for entry in drt:
        if entry.o_file not in original_layouts:
            original_layouts[entry.o_file] = FixedStripeLayout(
                servers=spec.server_ids, stripe=original_stripe, obj=entry.o_file
            )
    redirector = Redirector(drt, region_layouts, original_layouts)
    return MHAPlan(
        drt=drt,
        rst=rst,
        region_layouts=region_layouts,
        original_layouts=original_layouts,
        redirector=redirector,
    )


def identity_redirector(
    spec: ClusterSpec,
    trace: Trace,
    stripe: int = DEFAULT_ORIGINAL_STRIPE,
) -> Redirector:
    """A redirector whose DRT maps every accessed extent back to the
    original file at the same offset.

    This is the paper's Fig. 14 instrument: "We intentionally do not
    make data reordering so that I/O requests are redirected to the
    original I/O system" — the redirection machinery runs at full cost
    while the data placement is unchanged, isolating the lookup
    overhead.
    """
    drt = DRT()
    layouts: dict[str, Layout] = {}
    claimed: dict[str, IntervalSet] = {}
    for record in trace.sorted_by_offset():
        layouts.setdefault(
            record.file,
            FixedStripeLayout(spec.server_ids, stripe, obj=record.file),
        )
        spans = claimed.setdefault(record.file, IntervalSet())
        for start, end in spans.add(record.offset, record.end):
            drt.add(
                DRTEntry(
                    o_file=record.file,
                    o_offset=start,
                    length=end - start,
                    r_file=record.file,
                    r_offset=start,
                )
            )
    # region layouts == original layouts: data did not move
    return Redirector(drt, dict(layouts), dict(layouts))


class OnlinePipeline:
    """Sliding-window re-planning (the paper's dynamic future work).

    Feed runtime records through :meth:`observe`; once ``window``
    records have accumulated since the last plan, the off-line pipeline
    re-runs over the most recent ``window`` records.  The current plan
    is always available (``None`` until the first window fills).

    .. deprecated::
        This naive sketch re-runs the *full* off-line pipeline on a
        fixed cadence and swaps plans instantaneously, ignoring both
        drift and migration cost.  Use
        :class:`repro.online.RelayoutController` instead — it detects
        drifted regions, re-plans only those, admits a relayout only
        when the modelled payback beats the migration cost, and
        executes the migration as throttled background I/O with an
        epoch-based swap.  ``RelayoutController.from_online`` accepts
        the same ``(pipeline, window)`` arguments.
    """

    def __init__(self, pipeline: MHAPipeline, window: int = 1024) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.pipeline = pipeline
        self.window = window
        self._buffer: deque[TraceRecord] = deque(maxlen=window)
        self._since_plan = 0
        self.plan: MHAPlan | None = None
        self.replans = 0

    def observe(self, record: TraceRecord) -> MHAPlan | None:
        """Add one runtime record; returns a fresh plan when one is built."""
        self._buffer.append(record)
        self._since_plan += 1
        if self._since_plan >= self.window:
            self.plan = self.pipeline.plan(Trace(self._buffer))
            self._since_plan = 0
            self.replans += 1
            return self.plan
        return None

"""Table I — the parameters of the data-access cost model.

Every symbol from the paper's Table I appears here with its exact
meaning:

====== =============================================
symbol meaning
====== =============================================
o      offset of the file request           (per request)
l      size of the file request             (per request)
op     type of the file request             (per request)
M      number of HServers
N      number of SServers
t      unit data network transfer time
α_h    average storage startup time on HServer
β_h    unit data transfer time on HServer
α_sr   average read startup time on SServer
β_sr   unit data read transfer time on SServer
α_sw   average write startup time on SServer
β_sw   unit data write transfer time on SServer
h      stripe size on HServer               (decision variable)
s      stripe size on SServer               (decision variable)
====== =============================================

The per-request symbols live in trace records; the decision variables
are what RSSD searches over; everything else is a
:class:`CostModelParams`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterSpec
from ..devices.base import READ, WRITE
from ..exceptions import ConfigurationError

__all__ = ["CostModelParams"]


@dataclass(frozen=True)
class CostModelParams:
    """The server-and-network half of Table I."""

    M: int
    N: int
    t: float
    alpha_h: float
    beta_h: float
    alpha_sr: float
    beta_sr: float
    alpha_sw: float
    beta_sw: float
    #: per-message network latency (one request-response on the link);
    #: not in Table I, but the simulated network charges it, so the
    #: model folds it into each per-process startup
    net_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.M < 0 or self.N < 0 or self.M + self.N == 0:
            raise ConfigurationError(
                f"need at least one server: M={self.M}, N={self.N}"
            )
        for name in ("t", "alpha_h", "beta_h", "alpha_sr", "beta_sr",
                     "alpha_sw", "beta_sw", "net_latency"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    @classmethod
    def from_cluster(cls, spec: ClusterSpec) -> "CostModelParams":
        """Read the parameters off a cluster description.

        On the paper's testbed these come from a calibration profile of
        the servers; our device models expose them directly (see
        :mod:`repro.devices.calibrate` for the fitted-from-measurements
        path).  The SSD startups are divided by the device's channel
        count: the calibration workload runs many requests
        concurrently, and flash internal parallelism overlaps their
        startups, so the *average* per-request startup a profile
        measures is the raw value amortized over the channels.
        """
        return cls(
            M=spec.num_hservers,
            N=spec.num_sservers,
            t=spec.link.unit_transfer_time,
            alpha_h=spec.hdd.alpha(READ) / spec.hdd.channels,
            beta_h=spec.hdd.beta(READ),
            alpha_sr=spec.ssd.alpha(READ) / spec.ssd.channels,
            beta_sr=spec.ssd.beta(READ),
            alpha_sw=spec.ssd.alpha(WRITE) / spec.ssd.channels,
            beta_sw=spec.ssd.beta(WRITE),
            net_latency=spec.link.latency,
        )

    def sserver_alpha(self, op: str) -> float:
        """``α_sr`` or ``α_sw`` depending on the operation type."""
        if op == READ:
            return self.alpha_sr
        if op == WRITE:
            return self.alpha_sw
        raise ConfigurationError(f"unknown op {op!r}")

    def sserver_beta(self, op: str) -> float:
        """``β_sr`` or ``β_sw`` depending on the operation type."""
        if op == READ:
            return self.beta_sr
        if op == WRITE:
            return self.beta_sw
        raise ConfigurationError(f"unknown op {op!r}")

"""Request feature extraction for similar-access detection.

§III-D: each request is a point ``(x, y)`` in a two-dimensional
Euclidean space — ``x`` the request size, ``y`` the request concurrency
— and distances are normalized per axis by the spread of the projected
points (Eq. 1), "to enable different dimensions to have a uniform
compared space".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import twin_of
from ..numerics import replace_near_zero
from ..tracing.analysis import concurrency_of
from ..tracing.columnar import ColumnarTrace, concurrency_columnar
from ..tracing.record import Trace

__all__ = [
    "FeatureSet",
    "extract_features",
    "extract_features_columnar",
    "normalized_distances",
]


@dataclass(frozen=True)
class FeatureSet:
    """Feature matrix for a trace: one ``(size, concurrency)`` row per request.

    ``points`` has shape ``(n, 2)`` with float dtype; ``spread`` holds
    the per-axis ``max - min`` normalizers of Eq. 1 (1.0 where the axis
    is constant, so constant axes contribute zero distance without
    dividing by zero).
    """

    points: np.ndarray
    spread: np.ndarray

    def __post_init__(self) -> None:
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError(f"points must be (n, 2), got {self.points.shape}")
        if self.spread.shape != (2,):
            raise ValueError(f"spread must be (2,), got {self.spread.shape}")

    def __len__(self) -> int:
        return self.points.shape[0]

    def normalized(self) -> np.ndarray:
        """Points scaled into the uniform compared space of Eq. 1."""
        return self.points / self.spread


def extract_features(
    trace: Trace, gap: float = 0.5, spatial: bool | int = False
) -> FeatureSet:
    """Build the ``(size, concurrency)`` feature matrix for a trace.

    Concurrency comes from phase analysis of the timestamps
    (:func:`repro.tracing.analysis.concurrency_of`); requests in the
    same I/O burst (and, when ``spatial`` is enabled, the same file
    neighbourhood) share a concurrency value.
    """
    n = len(trace)
    points = np.zeros((n, 2), dtype=np.float64)
    if n:
        conc = concurrency_of(trace, gap=gap, spatial=spatial)
        for row, record in enumerate(trace):
            points[row, 0] = record.size
            points[row, 1] = conc[record]
    spread = _spread(points)
    return FeatureSet(points=points, spread=spread)


@twin_of(
    "repro.core.features:extract_features",
    kind="bit_identical",
    harness="features_columnar",
)
def extract_features_columnar(
    trace: ColumnarTrace, gap: float = 0.5, spatial: bool | int = False
) -> FeatureSet:
    """Columnar :func:`extract_features` — same matrix, no record loop.

    Sizes are exact integers and concurrency values are exact integer
    counts, so the float64 feature matrix is bit-identical to the
    record path's, spread included.
    """
    n = len(trace)
    points = np.zeros((n, 2), dtype=np.float64)
    if n:
        points[:, 0] = trace.data["size"]
        points[:, 1] = concurrency_columnar(trace, gap=gap, spatial=spatial)
    spread = _spread(points)
    return FeatureSet(points=points, spread=spread)


def _spread(points: np.ndarray) -> np.ndarray:
    """Per-axis ``max - min``, with (near-)constant axes mapped to 1.0.

    Tolerance-based: an axis whose spread is ``1e-17`` is constant for
    normalisation purposes, and exact ``== 0.0`` would miss it and then
    divide by it.
    """
    if points.shape[0] == 0:
        return np.ones(2)
    spread = points.max(axis=0) - points.min(axis=0)
    return replace_near_zero(spread, 1.0)


def normalized_distances(features: FeatureSet, centers: np.ndarray) -> np.ndarray:
    """Eq. 1 distances from every point to every center.

    ``centers`` has shape ``(k, 2)`` in raw feature units; the result is
    ``(n, k)``.
    """
    if centers.ndim != 2 or centers.shape[1] != 2:
        raise ValueError(f"centers must be (k, 2), got {centers.shape}")
    scaled_points = features.normalized()[:, None, :]
    scaled_centers = (centers / features.spread)[None, :, :]
    return np.sqrt(((scaled_points - scaled_centers) ** 2).sum(axis=2))

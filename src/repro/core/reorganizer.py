"""The Data Reorganizer — MHA's reordering phase (§III-E).

Given a trace and a request grouping, the reorganizer:

1. walks each group's requests **ordered by their offsets within the
   original file** and appends each request's not-yet-claimed bytes to
   the group's region, so "a later data block is moved to be adjacent
   to the first data block it is similar to";
2. emits a :class:`~repro.core.drt.DRTEntry` per migrated extent,
   producing the complete Data Reordering Table;
3. re-expresses every request in region coordinates (the
   :class:`RegionRequest` lists), which is what the Layout Determinator
   evaluates the cost model over — the whole point of reordering is
   that those post-migration offsets are contiguous per pattern.

Bytes accessed by requests from several groups are claimed by the first
group that reaches them (earlier groups hold requests the clustering
deemed denser/first); later requests still find them through the DRT,
just in a foreign region.  Bytes never accessed stay in the original
file and fall through the redirector unmapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..devices.base import READ
from ..exceptions import ConfigurationError
from ..tracing.columnar import OP_NAMES, ColumnarTrace
from ..tracing.record import Trace, TraceRecord
from .drt import DRT, DRTEntry
from .grouping import GroupingResult
from .intervals import IntervalSet

__all__ = [
    "RegionRequest",
    "RegionPlan",
    "ReorderPlan",
    "reorganize",
    "reorganize_arrays",
]


@dataclass(frozen=True)
class RegionRequest:
    """A request (fragment) expressed in region-local coordinates.

    ``burst`` identifies the simultaneous request group the original
    record belonged to (see
    :func:`repro.tracing.analysis.burst_ids_of`); fragments of records
    issued together share an id, letting the determinator evaluate the
    exact burst completion times.
    """

    offset: int
    length: int
    op: str
    concurrency: int
    burst: int = -1

    @property
    def is_read(self) -> bool:
        return self.op == READ


@dataclass
class RegionPlan:
    """One reordered region: its identity, size, and resident requests."""

    name: str
    group: int
    size: int = 0
    requests: list[RegionRequest] = field(default_factory=list)

    def request_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The determinator's input:
        (offsets, lengths, is_read, concurrency, burst_ids)."""
        k = len(self.requests)
        offsets = np.empty(k, dtype=np.int64)
        lengths = np.empty(k, dtype=np.int64)
        is_read = np.empty(k, dtype=bool)
        conc = np.empty(k, dtype=np.int64)
        bursts = np.empty(k, dtype=np.int64)
        for i, r in enumerate(self.requests):
            offsets[i] = r.offset
            lengths[i] = r.length
            is_read[i] = r.is_read
            conc[i] = r.concurrency
            bursts[i] = r.burst if r.burst >= 0 else -(i + 1)  # singleton
        return offsets, lengths, is_read, conc, bursts

    def max_request(self) -> int:
        """Largest resident request fragment (``r_max`` for RSSD)."""
        return max((r.length for r in self.requests), default=0)


@dataclass
class ReorderPlan:
    """Everything the reordering phase produces for one original file."""

    o_file: str
    regions: list[RegionPlan]
    drt: DRT
    #: bytes that were migrated (the placement phase must copy these)
    migrated_bytes: int = 0

    def region_names(self) -> list[str]:
        return [r.name for r in self.regions]


def region_name(o_file: str, group: int) -> str:
    """Naming convention for region files: ``{original}.region{g}``."""
    return f"{o_file}.region{group}"


def reorganize(
    trace: Trace,
    grouping: GroupingResult,
    concurrency: Mapping[TraceRecord, int],
    o_file: str | None = None,
    drt: DRT | None = None,
    bursts: Mapping[TraceRecord, int] | None = None,
) -> ReorderPlan:
    """Build regions + DRT from a grouped trace.

    Parameters
    ----------
    trace:
        The requests being reordered, in the exact order the grouping
        labels refer to (``grouping.labels[i]`` labels ``trace[i]``).
        Must touch a single file.
    grouping:
        Output of :func:`repro.core.grouping.group_requests`.
    concurrency:
        Per-record concurrency mapping from
        :func:`repro.tracing.analysis.concurrency_of`.
    o_file:
        Original file name; defaults to the trace's single file.
    drt:
        An existing (possibly persistent) DRT to fill; a fresh
        in-memory one is created when omitted.
    bursts:
        Optional per-record burst ids
        (:func:`repro.tracing.analysis.burst_ids_of`); carried onto the
        region requests for exact burst-level cost evaluation.
    """
    if len(grouping.labels) != len(trace):
        raise ConfigurationError(
            f"grouping labels ({len(grouping.labels)}) do not match trace "
            f"({len(trace)} records)"
        )
    files = trace.files()
    if len(files) > 1:
        raise ConfigurationError(
            f"reorganize expects a single-file trace, got files {files}"
        )
    if o_file is None:
        o_file = files[0] if files else "file"
    if drt is None:
        drt = DRT()

    claimed = IntervalSet()
    regions = [
        RegionPlan(name=region_name(o_file, g), group=g)
        for g in range(grouping.k)
    ]
    migrated = 0

    # Phase 1 — claim bytes group by group, offset order inside a group.
    for region in regions:
        member_indices = grouping.members(region.group)
        members = sorted((trace[int(i)] for i in member_indices),
                         key=lambda r: (r.offset, r.timestamp))
        for record in members:
            for gap_start, gap_end in claimed.add(record.offset, record.end):
                entry = DRTEntry(
                    o_file=o_file,
                    o_offset=gap_start,
                    length=gap_end - gap_start,
                    r_file=region.name,
                    r_offset=region.size,
                )
                drt.add(entry)
                region.size += entry.length
                migrated += entry.length

    # Phase 2 — express every request in region coordinates via the DRT.
    by_name = {r.name: r for r in regions}
    for record in trace:
        conc = concurrency.get(record, 1)
        burst = bursts.get(record, -1) if bursts else -1
        # accumulate this record's fragments per region, merging extents
        # that stay contiguous within the same region
        pending: dict[str, RegionRequest] = {}
        for extent in drt.translate(o_file, record.offset, record.size):
            if not extent.mapped:
                continue  # cannot happen here: every byte was claimed above
            prev = pending.get(extent.file)
            if prev is not None and prev.offset + prev.length == extent.offset:
                pending[extent.file] = RegionRequest(
                    offset=prev.offset,
                    length=prev.length + extent.length,
                    op=record.op,
                    concurrency=conc,
                    burst=burst,
                )
            else:
                if prev is not None:
                    by_name[extent.file].requests.append(prev)
                pending[extent.file] = RegionRequest(
                    offset=extent.offset,
                    length=extent.length,
                    op=record.op,
                    concurrency=conc,
                    burst=burst,
                )
        for name, fragment in pending.items():
            by_name[name].requests.append(fragment)

    # drop regions that ended up empty (possible when another group
    # claimed every byte the group touched)
    regions = [r for r in regions if r.size > 0 or r.requests]
    return ReorderPlan(o_file=o_file, regions=regions, drt=drt, migrated_bytes=migrated)


def reorganize_arrays(
    trace: ColumnarTrace,
    grouping: GroupingResult,
    concurrency: np.ndarray,
    o_file: str | None = None,
    drt: DRT | None = None,
    bursts: np.ndarray | None = None,
) -> ReorderPlan:
    """:func:`reorganize` over a columnar trace — same plan, no records.

    ``concurrency``/``bursts`` are index-aligned per-request arrays
    (the columnar stand-ins for the reference's record-keyed mappings).
    The output :class:`ReorderPlan` — regions, requests, DRT entries,
    migrated bytes — is identical to the record path's, and phase 2
    goes through :meth:`~repro.core.drt.DRT.translate_many`, whose
    twin contract guarantees identical cache accounting too.
    """
    if len(grouping.labels) != len(trace):
        raise ConfigurationError(
            f"grouping labels ({len(grouping.labels)}) do not match trace "
            f"({len(trace)} records)"
        )
    files = trace.files()
    if len(files) > 1:
        raise ConfigurationError(
            f"reorganize expects a single-file trace, got files {files}"
        )
    if o_file is None:
        o_file = files[0] if files else "file"
    if drt is None:
        drt = DRT()

    d = trace.data
    off = d["offset"]
    ts = d["timestamp"]
    off_list = off.tolist()
    size_list = d["size"].tolist()
    op_list = d["op"].tolist()

    claimed = IntervalSet()
    regions = [
        RegionPlan(name=region_name(o_file, g), group=g)
        for g in range(grouping.k)
    ]
    migrated = 0

    # Phase 1 — claim bytes group by group, offset order inside a group.
    # np.lexsort is stable, matching the reference's sorted() on the
    # (offset, timestamp) key over ascending member indices.
    for region in regions:
        member_indices = grouping.members(region.group)
        order = np.lexsort((ts[member_indices], off[member_indices]))
        for i in member_indices[order].tolist():
            start = off_list[i]
            for gap_start, gap_end in claimed.add(start, start + size_list[i]):
                entry = DRTEntry(
                    o_file=o_file,
                    o_offset=gap_start,
                    length=gap_end - gap_start,
                    r_file=region.name,
                    r_offset=region.size,
                )
                drt.add(entry)
                region.size += entry.length
                migrated += entry.length

    # Phase 2 — express every request in region coordinates via the DRT.
    by_name = {r.name: r for r in regions}
    conc_list = concurrency.tolist()
    burst_list = bursts.tolist() if bursts is not None else None
    translated = drt.translate_many(o_file, off, d["size"])
    for k, extents in enumerate(translated):
        op = OP_NAMES[op_list[k]]
        conc = conc_list[k]
        burst = burst_list[k] if burst_list is not None else -1
        pending: dict[str, RegionRequest] = {}
        for extent in extents:
            if not extent.mapped:
                continue  # cannot happen here: every byte was claimed above
            prev = pending.get(extent.file)
            if prev is not None and prev.offset + prev.length == extent.offset:
                pending[extent.file] = RegionRequest(
                    offset=prev.offset,
                    length=prev.length + extent.length,
                    op=op,
                    concurrency=conc,
                    burst=burst,
                )
            else:
                if prev is not None:
                    by_name[extent.file].requests.append(prev)
                pending[extent.file] = RegionRequest(
                    offset=extent.offset,
                    length=extent.length,
                    op=op,
                    concurrency=conc,
                    burst=burst,
                )
        for name, fragment in pending.items():
            by_name[name].requests.append(fragment)

    regions = [r for r in regions if r.size > 0 or r.requests]
    return ReorderPlan(o_file=o_file, regions=regions, drt=drt, migrated_bytes=migrated)

"""The paper's contribution: the MHA layout optimizer.

Cost model (Eq. 2 / Table I), request grouping (Algorithm 1), data
reordering + DRT, stripe-size determination (Algorithm 2 / RSSD) + RST,
placement, runtime redirection, and the five-phase pipeline tying them
together.
"""

from .cost_model import batch_costs, region_cost, request_cost
from .determinator import (
    DEFAULT_STEP,
    StripeDecision,
    determine_stripes,
    search_bounds,
)
from .drt import DRT, DRTEntry, ENTRY_NUMERIC_BYTES, TranslatedExtent
from .features import FeatureSet, extract_features, normalized_distances
from .grouping import (
    DEFAULT_MAX_GROUPS,
    GroupingResult,
    group_requests,
    suggest_k,
)
from .intervals import IntervalSet
from .params import CostModelParams
from .pipeline import (
    MHAPipeline,
    MHAPlan,
    OnlinePipeline,
    identity_redirector,
    load_plan,
)
from .placer import (
    MigrationStep,
    build_region_layout,
    estimate_migration_time,
    migration_schedule,
    place_regions,
)
from .redirector import Redirector, RedirectorStats
from .reorganizer import RegionPlan, RegionRequest, ReorderPlan, reorganize
from .rst import RST, StripePair
from .verify import PlanReport, verify_plan

__all__ = [
    "CostModelParams",
    "batch_costs",
    "request_cost",
    "region_cost",
    "FeatureSet",
    "extract_features",
    "normalized_distances",
    "GroupingResult",
    "group_requests",
    "suggest_k",
    "DEFAULT_MAX_GROUPS",
    "IntervalSet",
    "DRT",
    "DRTEntry",
    "TranslatedExtent",
    "ENTRY_NUMERIC_BYTES",
    "RST",
    "StripePair",
    "RegionPlan",
    "RegionRequest",
    "ReorderPlan",
    "reorganize",
    "StripeDecision",
    "determine_stripes",
    "search_bounds",
    "DEFAULT_STEP",
    "build_region_layout",
    "place_regions",
    "MigrationStep",
    "migration_schedule",
    "estimate_migration_time",
    "Redirector",
    "RedirectorStats",
    "MHAPipeline",
    "MHAPlan",
    "OnlinePipeline",
    "identity_redirector",
    "load_plan",
    "PlanReport",
    "verify_plan",
]

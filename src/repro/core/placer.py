"""The Placer — MHA's placement phase (§III-G).

Turns RST stripe decisions into concrete
:class:`~repro.layouts.varied.VariedStripeLayout` objects, one per
region, over the cluster's HServers/SServers.  Also exposes the data
*migration schedule*: which bytes must be copied from the original file
to each region file before the optimized layout serves traffic (the
"subsequent runs of the application" in the paper's workflow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cluster import ClusterSpec
from ..layouts.base import Layout
from ..layouts.varied import VariedStripeLayout
from ..units import KiB
from .drt import DRT, DRTEntry
from .params import CostModelParams
from .rst import RST, StripePair

__all__ = ["build_region_layout", "place_regions", "MigrationStep", "migration_schedule"]


def build_region_layout(spec: ClusterSpec, pair: StripePair, obj: str) -> Layout:
    """A varied-stripe layout for one region under the cluster spec."""
    return VariedStripeLayout(
        hservers=spec.hserver_ids,
        sservers=spec.sserver_ids,
        h=pair.h,
        s=pair.s,
        obj=obj,
    )


def place_regions(spec: ClusterSpec, rst: RST) -> dict[str, Layout]:
    """Instantiate the layout of every region recorded in the RST."""
    return {
        region: build_region_layout(spec, pair, obj=region)
        for region, pair in rst
    }


@dataclass(frozen=True)
class MigrationStep:
    """One copy operation of the placement phase: original -> region."""

    entry: DRTEntry

    @property
    def bytes(self) -> int:
        return self.entry.length

    def __str__(self) -> str:
        e = self.entry
        return (
            f"copy {e.length}B {e.o_file}@{e.o_offset} -> "
            f"{e.r_file}@{e.r_offset}"
        )


def migration_schedule(drt: DRT) -> list[MigrationStep]:
    """The placement phase's copy list, in original-offset order.

    Copying in ascending original offset turns the read side of the
    migration into one sequential sweep of the original file — the
    cheapest order on HDD-resident data.
    """
    return [MigrationStep(entry) for entry in drt]


def estimate_migration_time(
    spec: ClusterSpec,
    drt: DRT | Sequence[DRTEntry],
    original_stripe: int = 64 * KiB,
) -> float:
    """Rough one-off cost of the placement phase's data movement.

    The paper runs migration off-line, once, between the profiled run
    and the production runs; this estimate quantifies "once".  Model:
    the sweep reads every migrated byte off the original layout's
    servers and writes it to the region servers; both sides move the
    same bytes, the copy pipeline is bound by the slower (read) side,
    and each DRT extent costs one average startup on each side.

    Deliberately coarse — an upper-bound sanity figure for reports, not
    a simulation (use :func:`repro.pfs.storage.migrate` with a replay
    for that).
    """
    params = CostModelParams.from_cluster(spec)
    total_bytes = sum(entry.length for entry in drt)
    extents = len(drt)
    if total_bytes == 0:
        return 0.0
    # read side: bytes come off the original striping, which spreads
    # them over every server; the HServers are the slow majority
    servers = max(spec.num_servers, 1)
    per_server = total_bytes / servers
    read_side = per_server * (params.t + params.beta_h) + (
        extents / servers
    ) * (params.alpha_h + params.net_latency)
    # write side: regions also span the cluster; SServer writes are
    # cheaper, so the read side dominates — add the write startups only
    write_side = (extents / servers) * (params.alpha_sw + params.net_latency)
    return read_side + write_side

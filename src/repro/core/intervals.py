"""Disjoint byte-interval bookkeeping for the Data Reorganizer.

When the reorganizer walks a group's requests it must know which bytes
of the original file are *already claimed* by an earlier region (a byte
can live in exactly one reordered location).  :class:`IntervalSet`
tracks claimed half-open intervals ``[start, end)`` and reports, for a
new claim, exactly the sub-intervals that were previously unclaimed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

__all__ = ["IntervalSet"]


class IntervalSet:
    """A set of disjoint, sorted half-open integer intervals."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []

    def __len__(self) -> int:
        return len(self._starts)

    def total(self) -> int:
        """Total bytes covered."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def intervals(self) -> list[tuple[int, int]]:
        """The covered intervals as ``(start, end)`` pairs, sorted."""
        return list(zip(self._starts, self._ends))

    def gaps_in(self, start: int, end: int) -> list[tuple[int, int]]:
        """Sub-intervals of ``[start, end)`` not currently covered."""
        if start < 0 or end < start:
            raise ValueError(f"bad interval [{start}, {end})")
        if start == end:
            return []
        gaps: list[tuple[int, int]] = []
        cursor = start
        # first interval possibly overlapping: the one before the
        # insertion point of `start` among ends
        idx = bisect_right(self._ends, start)
        while cursor < end and idx < len(self._starts):
            s, e = self._starts[idx], self._ends[idx]
            if s >= end:
                break
            if s > cursor:
                gaps.append((cursor, min(s, end)))
            cursor = max(cursor, e)
            idx += 1
        if cursor < end:
            gaps.append((cursor, end))
        return gaps

    def covers(self, start: int, end: int) -> bool:
        """Whether ``[start, end)`` is fully covered."""
        return not self.gaps_in(start, end)

    def add(self, start: int, end: int) -> list[tuple[int, int]]:
        """Claim ``[start, end)``; returns the newly covered gaps.

        Adjacent/overlapping intervals are coalesced, keeping the
        internal lists small for long sequential claims.
        """
        gaps = self.gaps_in(start, end)
        if start == end:
            return gaps
        # locate the span of existing intervals that merge with [start, end)
        lo = bisect_left(self._ends, start)
        hi = bisect_right(self._starts, end)
        if lo < hi:
            new_start = min(start, self._starts[lo])
            new_end = max(end, self._ends[hi - 1])
            del self._starts[lo:hi]
            del self._ends[lo:hi]
            self._starts.insert(lo, new_start)
            self._ends.insert(lo, new_end)
        else:
            insort(self._starts, start)
            self._ends.insert(self._starts.index(start), end)
        return gaps

    def __contains__(self, point: int) -> bool:
        idx = bisect_right(self._starts, point) - 1
        return idx >= 0 and point < self._ends[idx]

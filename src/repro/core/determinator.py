"""The Layout Determinator — Algorithm 2 (RSSD, Region Stripe Size
Determination).

For each region, iterate candidate stripe pairs ``<h, s>``:

* ``h`` runs from 0 to an upper bound ``B_h`` in ``step`` (4 KB)
  increments — ``h == 0`` is the extreme configuration that places data
  only on SServers;
* ``s`` runs from ``h + step`` to ``B_s`` — SServers never get smaller
  stripes than HServers, "to avoid load imbalance among heterogeneous
  servers";
* each pair's ``Reg_cost`` is the summed cost-model time of every
  request in the region (reads through :math:`T_R`, writes through
  :math:`T_W`), and the cheapest pair wins.

**Bound policies** (the paper's §III-F refinement over HARL):

* ``"adaptive"`` (MHA): when the region's largest request ``r_max`` is
  smaller than ``(M + N) * 64KB`` the bounds are ``B_h = B_s = r_max``
  (search widely, the space is small anyway); otherwise
  ``B_h = r_max / M`` and ``B_s = r_max / N`` (push large requests to
  span all servers, prune the rest of the space).
* ``"average"`` (HARL): both bounds are the region's *average* request
  size, the earlier work's policy MHA improves on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..config import DEFAULT_SAMPLE_SEED
from ..exceptions import ConfigurationError
from ..units import KiB
from .cost_model import batch_costs, batch_costs_grid, burst_costs, burst_costs_grid
from .params import CostModelParams
from .rst import StripePair

__all__ = [
    "StripeDecision",
    "determine_stripes",
    "search_bounds",
    "region_search_task",
    "RegionSearchTask",
]

#: the picklable work unit :func:`region_search_task` consumes:
#: ``(params, offsets, lengths, is_read, concurrency, burst_ids, kwargs)``
RegionSearchTask = tuple[
    CostModelParams,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    np.ndarray,
    "np.ndarray | None",
    dict[str, Any],
]

#: Algorithm 2's default step (user-configurable)
DEFAULT_STEP = 4 * KiB

#: soft cap on the number of float64 elements a single grid-engine
#: temporary may hold (``chunk * K * (M + N)``); the candidate axis is
#: chunked to stay under it.  8 Mi elements ~ 64 MB of float64.
GRID_CHUNK_ELEMS = 8 * 1024 * 1024
#: per-server unit of Algorithm 2's bound threshold (line 3).  The
#: paper uses the PFS default stripe, 64 KB; our calibrated cluster
#: model has a higher startup share per sub-request, which moves the
#: point where striping a request over every server stops paying off,
#: so the default here is one notch higher.  Pass ``threshold_unit``
#: to :func:`search_bounds` / ``determine_stripes`` to restore the
#: paper's literal constant.
BOUND_THRESHOLD_UNIT = 128 * KiB


@dataclass(frozen=True)
class StripeDecision:
    """The outcome of one RSSD search."""

    pair: StripePair
    cost: float
    candidates: int
    bound_h: int
    bound_s: int

    @property
    def h(self) -> int:
        return self.pair.h

    @property
    def s(self) -> int:
        return self.pair.s


def search_bounds(
    params: CostModelParams,
    r_max: int,
    mean_size: float,
    step: int,
    policy: str,
    threshold_unit: int = BOUND_THRESHOLD_UNIT,
) -> tuple[int, int]:
    """Upper bounds ``(B_h, B_s)`` for the stripe search."""
    if policy == "adaptive":
        if r_max < (params.M + params.N) * threshold_unit:
            b_h = b_s = r_max
        else:
            b_h = r_max // max(params.M, 1)
            b_s = r_max // max(params.N, 1)
    elif policy == "average":
        b_h = b_s = int(mean_size)
    else:
        raise ConfigurationError(
            f"unknown bound policy {policy!r}; expected 'adaptive' or 'average'"
        )
    # guarantee a non-empty candidate set even for tiny requests
    b_s = max(b_s, step)
    b_h = max(b_h, 0)
    return b_h, b_s


def _dedupe(
    offsets: np.ndarray,
    lengths: np.ndarray,
    is_read: np.ndarray,
    concurrency: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Collapse identical (offset, length, op, concurrency) requests.

    Regular HPC patterns repeat the same request tuple many times; the
    cost model is deterministic per tuple, so evaluating each distinct
    tuple once and weighting by multiplicity computes the exact same
    ``Reg_cost`` far faster.
    """
    stacked = np.stack(
        [offsets, lengths, is_read.astype(np.int64), concurrency], axis=1
    )
    uniq, counts = np.unique(stacked, axis=0, return_counts=True)
    return (
        uniq[:, 0],
        uniq[:, 1],
        uniq[:, 2].astype(bool),
        uniq[:, 3],
        counts.astype(np.float64),
    )


def determine_stripes(
    params: CostModelParams,
    offsets: np.ndarray,
    lengths: np.ndarray,
    is_read: np.ndarray,
    concurrency: np.ndarray,
    step: int = DEFAULT_STEP,
    bound_policy: str = "adaptive",
    max_eval_requests: int = 4096,
    seed: int = DEFAULT_SAMPLE_SEED,
    allow_h_zero: bool = True,
    allow_equal_stripes: bool = True,
    max_axis_candidates: int = 64,
    threshold_unit: int = BOUND_THRESHOLD_UNIT,
    burst_ids: np.ndarray | None = None,
    engine: str = "grid",
) -> StripeDecision:
    """Run RSSD over one region's requests.

    With ``burst_ids`` (one id per request; requests sharing an id were
    issued simultaneously) the search evaluates the **exact** burst
    completion times of :func:`repro.core.cost_model.burst_costs` and
    ``Reg_cost`` is their sum — for singleton bursts this is literally
    Algorithm 2 summing Eq. 2 over the requests.  Without ids, the
    statistical burst approximation of ``batch_costs`` is used with the
    per-request ``concurrency`` values.

    ``max_eval_requests`` bounds the number of *distinct* request
    tuples (or, in burst mode, the number of bursts) evaluated per
    candidate pair: beyond it, a seeded uniform sample (with
    re-weighting) approximates ``Reg_cost``.  Since a region holds
    requests the grouping deemed similar, sampling error is small; set
    it very large to force the exact search.

    ``allow_h_zero`` enables Algorithm 2's extreme configuration
    (placing a region only on SServers).

    ``allow_equal_stripes`` additionally admits ``s == h`` candidates.
    Algorithm 2's inner loop starts at ``s = h + step`` as a pruning
    heuristic ("to avoid load imbalance among heterogeneous servers"),
    but when a region's requests match the stripe size exactly the
    balanced point ``s == h`` can be optimal, so the default search
    includes it; pass ``False`` for the paper's literal loop.

    ``max_axis_candidates`` bounds each axis of the search grid: for
    multi-megabyte ``r_max`` the 4 KB grid would hold thousands of
    values per axis, so the effective step is coarsened (in multiples
    of ``step``) to keep at most this many candidates per axis — the
    "finer step = more precise but more calculation" trade-off the
    paper leaves to the user (§III-F).

    ``engine`` selects the search implementation: ``"grid"`` (default)
    evaluates the whole ``<h, s>`` candidate grid in a few chunked
    numpy broadcasts (:func:`repro.core.cost_model.batch_costs_grid` /
    :func:`~repro.core.cost_model.burst_costs_grid`), while
    ``"scalar"`` is the literal Algorithm 2 loop evaluating one
    candidate at a time.  Both walk the identical candidate sequence
    and produce bit-identical costs, so they return the same winning
    pair; the scalar path is kept as the reference implementation and
    for the equivalence tests.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    is_read = np.asarray(is_read, dtype=bool)
    concurrency = np.asarray(concurrency, dtype=np.int64)
    if not (offsets.shape == lengths.shape == is_read.shape == concurrency.shape):
        raise ConfigurationError("request arrays must share one shape")
    if offsets.size == 0:
        raise ConfigurationError("cannot determine stripes for an empty region")
    if step <= 0:
        raise ConfigurationError(f"step must be > 0, got {step}")
    if (lengths <= 0).any():
        raise ConfigurationError("request lengths must be positive")

    r_max = int(lengths.max())
    mean_size = float(lengths.mean())
    b_h, b_s = search_bounds(
        params, r_max, mean_size, step, bound_policy, threshold_unit
    )

    if burst_ids is not None:
        burst_ids = np.asarray(burst_ids)
        if burst_ids.shape != offsets.shape:
            raise ConfigurationError("burst_ids must match the request arrays")
        uniq = np.unique(burst_ids)
        weight_scale = 1.0
        if uniq.size > max_eval_requests:
            rng = np.random.default_rng(seed)
            chosen = rng.choice(uniq, size=max_eval_requests, replace=False)
            mask = np.isin(burst_ids, chosen)
            offsets, lengths, is_read, burst_ids = (
                offsets[mask], lengths[mask], is_read[mask], burst_ids[mask],
            )
            weight_scale = uniq.size / max_eval_requests

        # group requests by burst id up front (stable, so within-burst
        # order — and therefore accumulation order — is preserved);
        # every per-candidate evaluation then skips the gather step
        if not np.all(burst_ids[:-1] <= burst_ids[1:]):
            order = np.argsort(burst_ids, kind="stable")
            offsets, lengths, is_read, burst_ids = (
                offsets[order], lengths[order], is_read[order], burst_ids[order],
            )

        def evaluate(h: int, s: int) -> float:
            return float(
                burst_costs(params, offsets, lengths, is_read, burst_ids, h, s).sum()
                * weight_scale
            )

        def evaluate_grid(h_arr: np.ndarray, s_arr: np.ndarray) -> np.ndarray:
            per_burst = burst_costs_grid(
                params, offsets, lengths, is_read, burst_ids, h_arr, s_arr
            )
            return per_burst.sum(axis=1) * weight_scale

        n_eval = offsets.shape[0]

    else:
        offs, lens, reads, conc, weights = _dedupe(
            offsets, lengths, is_read, concurrency
        )
        if offs.shape[0] > max_eval_requests:
            rng = np.random.default_rng(seed)
            pick = rng.choice(offs.shape[0], size=max_eval_requests, replace=False)
            scale = weights.sum() / weights[pick].sum()
            offs, lens, reads, conc = (
                offs[pick], lens[pick], reads[pick], conc[pick],
            )
            weights = weights[pick] * scale

        def evaluate(h: int, s: int) -> float:
            return _weighted_cost(params, offs, lens, reads, conc, weights, h, s)

        def evaluate_grid(h_arr: np.ndarray, s_arr: np.ndarray) -> np.ndarray:
            costs = batch_costs_grid(params, offs, lens, reads, conc, h_arr, s_arr)
            return (costs * weights).sum(axis=1)

        n_eval = offs.shape[0]

    best_pair: StripePair | None = None
    best_cost = np.inf
    if engine not in ("grid", "scalar"):
        raise ConfigurationError(
            f"unknown search engine {engine!r}; expected 'grid' or 'scalar'"
        )
    if max_axis_candidates <= 0:
        raise ConfigurationError("max_axis_candidates must be >= 1")
    # coarsen the grid (in multiples of `step`) for very large bounds
    h_step = step * max(1, -(-(b_h // step) // max_axis_candidates))
    s_step = step * max(1, -(-(b_s // step) // max_axis_candidates))

    # enumerate the candidate sequence once, in Algorithm 2's loop
    # order — both engines walk exactly this list, which (with their
    # bit-identical costs) pins down identical tie-breaking
    h_start = 0 if allow_h_zero else h_step
    if params.N == 0:
        # degenerate homogeneous cluster: only HServer stripes exist
        pairs = [(h, 0) for h in range(h_step, b_h + h_step, h_step)]
    else:
        h_values = list(range(h_start, b_h + 1, h_step)) if params.M > 0 else [0]
        if params.M > 0 and not h_values:
            h_values = [h_start]  # bound below one step: smallest legal h only
        pairs = []
        for h in h_values:
            s_start = max(h, s_step) if allow_equal_stripes else h + s_step
            pairs.extend((h, s) for s in range(s_start, b_s + 1, s_step))
    candidates = len(pairs)

    if pairs and engine == "grid":
        h_arr = np.array([p[0] for p in pairs], dtype=np.int64)
        s_arr = np.array([p[1] for p in pairs], dtype=np.int64)
        costs = np.empty(len(pairs), dtype=np.float64)
        # chunk the candidate axis so the (chunk, K, M + N) cost-model
        # temporaries stay within a fixed memory budget
        chunk = max(1, GRID_CHUNK_ELEMS // max(1, n_eval * (params.M + params.N)))
        for lo in range(0, len(pairs), chunk):
            hi = lo + chunk
            costs[lo:hi] = evaluate_grid(h_arr[lo:hi], s_arr[lo:hi])
        idx = int(np.argmin(costs))  # first minimum, like the loop's strict <
        best_cost = float(costs[idx])
        best_pair = StripePair(*pairs[idx])
    elif pairs:
        for h, s in pairs:
            cost = evaluate(h, s)
            if cost < best_cost:
                best_cost, best_pair = cost, StripePair(h, s)

    if best_pair is None:
        # every candidate was pruned (e.g. b_s <= step with large h
        # bounds); fall back to the smallest legal pair
        if params.N == 0:
            best_pair = StripePair(step, 0)
        elif allow_h_zero:
            best_pair = StripePair(0, step)
        else:
            best_pair = StripePair(step, 2 * step)
        best_cost = evaluate(best_pair.h, best_pair.s)
        candidates += 1

    return StripeDecision(
        pair=best_pair,
        cost=float(best_cost),
        candidates=candidates,
        bound_h=b_h,
        bound_s=b_s,
    )


def region_search_task(task: RegionSearchTask) -> StripeDecision:
    """Picklable worker for process-parallel region searches.

    ``task`` is ``(params, offsets, lengths, is_read, concurrency,
    burst_ids, kwargs)``; the result is the region's
    :class:`StripeDecision`.  Both :class:`repro.core.pipeline.MHAPipeline`
    and :class:`repro.schemes.harl.HARLScheme` ship these tuples through
    :func:`repro.core.parallel.parallel_map`.
    """
    params, offsets, lengths, is_read, concurrency, burst_ids, kwargs = task
    return determine_stripes(
        params, offsets, lengths, is_read, concurrency,
        burst_ids=burst_ids, **kwargs,
    )


def _weighted_cost(
    params: CostModelParams,
    offsets: np.ndarray,
    lengths: np.ndarray,
    is_read: np.ndarray,
    concurrency: np.ndarray,
    weights: np.ndarray,
    h: int,
    s: int,
) -> float:
    costs = batch_costs(params, offsets, lengths, is_read, concurrency, h, s)
    return float((costs * weights).sum())

"""The I/O Redirector — MHA's runtime phase (§III-G, §IV-B).

On every file request the redirector (1) determines the requested
regions from the offset/size, (2) looks the extents up in the DRT, and
(3) forwards the operation to the target regions on the underlying
servers.  Extents the DRT does not map fall through to the original
file's layout, so a partially reordered file keeps working — and a DRT
that maps every extent back to the original file (an *identity* DRT)
reproduces the paper's redirection-overhead experiment (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..contracts import twin_of
from ..exceptions import RedirectionError
from ..layouts.base import Layout, SubRequest
from ..layouts.batch import MergedRuns, RunsBuilder, merged_runs_of
from .drt import DRT, TranslatedExtent

__all__ = ["Redirector", "RedirectorStats"]


@dataclass
class RedirectorStats:
    """Operation counters for overhead analysis (Fig. 14)."""

    requests: int = 0
    translated_extents: int = 0
    fallthrough_extents: int = 0
    fragments: int = 0

    def reset(self) -> None:
        self.requests = 0
        self.translated_extents = 0
        self.fallthrough_extents = 0
        self.fragments = 0


class Redirector:
    """Translates original-file requests into per-server fragments.

    Parameters
    ----------
    drt:
        The Data Reordering Table.
    region_layouts:
        Layout for each reordered region file (from the Placer).
    original_layouts:
        Layout for each *original* file, used for unmapped extents.
    """

    def __init__(
        self,
        drt: DRT,
        region_layouts: dict[str, Layout],
        original_layouts: dict[str, Layout],
    ) -> None:
        self._drt = drt
        self._regions = dict(region_layouts)
        self._originals = dict(original_layouts)
        self.stats = RedirectorStats()

    @property
    def drt(self) -> DRT:
        return self._drt

    def layout_for(self, file: str) -> Layout:
        """The fall-through layout of an original file."""
        try:
            return self._originals[file]
        except KeyError:
            raise RedirectionError(f"no original layout for file {file!r}") from None

    def _target_layout(self, file: str, extent: TranslatedExtent) -> Layout:
        """The layout serving one translated extent (counts its kind)."""
        if extent.mapped:
            self.stats.translated_extents += 1
            try:
                return self._regions[extent.file]
            except KeyError:
                raise RedirectionError(
                    f"DRT points to region {extent.file!r} with no layout"
                ) from None
        self.stats.fallthrough_extents += 1
        return self.layout_for(file)

    def _assemble(
        self, file: str, extents: Sequence[TranslatedExtent]
    ) -> list[SubRequest]:
        """Map translated extents through their layouts, rebasing the
        fragments into the original file's coordinate space."""
        fragments: list[SubRequest] = []
        for extent in extents:
            layout = self._target_layout(file, extent)
            base = extent.logical_offset - extent.offset
            for frag in layout.map_extent(extent.offset, extent.length):
                fragments.append(
                    SubRequest(
                        server=frag.server,
                        obj=frag.obj,
                        offset=frag.offset,
                        length=frag.length,
                        logical_offset=base + frag.logical_offset,
                    )
                )
        self.stats.fragments += len(fragments)
        return fragments

    def map_request(self, file: str, offset: int, length: int) -> list[SubRequest]:
        """Resolve a request into server fragments, via the DRT.

        Fragment ``logical_offset`` values are in the *original* file's
        coordinate space, so callers can verify tiling and reassemble
        data irrespective of where the bytes physically moved.
        """
        self.stats.requests += 1
        return self._assemble(file, self._drt.translate(file, offset, length))

    @twin_of(
        "repro.core.redirector:Redirector.map_request",
        param_map={"offset": "offsets", "length": "lengths"},
        harness="redirector_map",
    )
    def map_requests(
        self, file: str, offsets: Sequence[int], lengths: Sequence[int]
    ) -> list[list[SubRequest]]:
        """Batch :meth:`map_request` over parallel offset/length arrays.

        The DRT translation is batched; results and statistics are
        identical to calling :meth:`map_request` per record.
        """
        extents_per = self._drt.translate_many(file, offsets, lengths)
        self.stats.requests += len(extents_per)
        return [self._assemble(file, extents) for extents in extents_per]

    @twin_of(
        "repro.core.redirector:Redirector.map_request",
        kind="reduction",
        param_map={"offset": "offsets", "length": "lengths"},
        harness="redirector_runs",
    )
    def merged_runs(
        self, file: str, offsets: Sequence[int], lengths: Sequence[int]
    ) -> MergedRuns:
        """Batch-map requests straight to columnar *merged* runs.

        Records whose translation is a single extent — the common case
        once a file is fully reordered, and always the case for an
        identity DRT — are grouped per target layout and pushed through
        its vectorized kernel.  Multi-extent records take the exact
        object path.  Statistics totals match :meth:`map_request`.
        """
        extents_per = self._drt.translate_many(file, offsets, lengths)
        self.stats.requests += len(extents_per)
        builder = RunsBuilder(len(extents_per))
        groups: dict[
            int, tuple[Layout, list[int], list[int], list[int], list[int]]
        ] = {}
        for item, extents in enumerate(extents_per):
            if not extents:
                continue
            if len(extents) > 1:
                builder.place_fragments(item, self._assemble(file, extents))
                continue
            extent = extents[0]
            layout = self._target_layout(file, extent)
            group = groups.get(id(layout))
            if group is None:
                group = (layout, [], [], [], [])
                groups[id(layout)] = group
            group[1].append(item)
            group[2].append(extent.offset)
            group[3].append(extent.length)
            group[4].append(extent.logical_offset - extent.offset)
        for layout, items, offs, lens, bases in groups.values():
            runs = merged_runs_of(layout, offs, lens)
            self.stats.fragments += runs.n_fragments
            builder.add_fragments(runs.n_fragments)
            for k, item in enumerate(items):
                builder.place(item, runs, k, bases[k])
        return builder.build()

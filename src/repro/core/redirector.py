"""The I/O Redirector — MHA's runtime phase (§III-G, §IV-B).

On every file request the redirector (1) determines the requested
regions from the offset/size, (2) looks the extents up in the DRT, and
(3) forwards the operation to the target regions on the underlying
servers.  Extents the DRT does not map fall through to the original
file's layout, so a partially reordered file keeps working — and a DRT
that maps every extent back to the original file (an *identity* DRT)
reproduces the paper's redirection-overhead experiment (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import RedirectionError
from ..layouts.base import Layout, SubRequest
from .drt import DRT

__all__ = ["Redirector", "RedirectorStats"]


@dataclass
class RedirectorStats:
    """Operation counters for overhead analysis (Fig. 14)."""

    requests: int = 0
    translated_extents: int = 0
    fallthrough_extents: int = 0
    fragments: int = 0

    def reset(self) -> None:
        self.requests = 0
        self.translated_extents = 0
        self.fallthrough_extents = 0
        self.fragments = 0


class Redirector:
    """Translates original-file requests into per-server fragments.

    Parameters
    ----------
    drt:
        The Data Reordering Table.
    region_layouts:
        Layout for each reordered region file (from the Placer).
    original_layouts:
        Layout for each *original* file, used for unmapped extents.
    """

    def __init__(
        self,
        drt: DRT,
        region_layouts: dict[str, Layout],
        original_layouts: dict[str, Layout],
    ) -> None:
        self._drt = drt
        self._regions = dict(region_layouts)
        self._originals = dict(original_layouts)
        self.stats = RedirectorStats()

    @property
    def drt(self) -> DRT:
        return self._drt

    def layout_for(self, file: str) -> Layout:
        """The fall-through layout of an original file."""
        try:
            return self._originals[file]
        except KeyError:
            raise RedirectionError(f"no original layout for file {file!r}") from None

    def map_request(self, file: str, offset: int, length: int) -> list[SubRequest]:
        """Resolve a request into server fragments, via the DRT.

        Fragment ``logical_offset`` values are in the *original* file's
        coordinate space, so callers can verify tiling and reassemble
        data irrespective of where the bytes physically moved.
        """
        self.stats.requests += 1
        fragments: list[SubRequest] = []
        for extent in self._drt.translate(file, offset, length):
            if extent.mapped:
                self.stats.translated_extents += 1
                try:
                    layout = self._regions[extent.file]
                except KeyError:
                    raise RedirectionError(
                        f"DRT points to region {extent.file!r} with no layout"
                    ) from None
            else:
                self.stats.fallthrough_extents += 1
                layout = self.layout_for(file)
            base = extent.logical_offset - extent.offset
            for frag in layout.map_extent(extent.offset, extent.length):
                fragments.append(
                    SubRequest(
                        server=frag.server,
                        obj=frag.obj,
                        offset=frag.offset,
                        length=frag.length,
                        logical_offset=base + frag.logical_offset,
                    )
                )
        self.stats.fragments += len(fragments)
        return fragments

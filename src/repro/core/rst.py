"""The Region Stripe Table (RST).

§III-G: "such stripe pairs of all the regions are stored into a global
Region Stripe Table (RST), which is managed by a Meta-Data Server".
Each record maps a region (storage object / file name) to its optimized
``<h, s>`` stripe pair.  Like the DRT it is persisted through the
Berkeley-DB stand-in with synchronous write-through (§IV-A).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..exceptions import RedirectionError
from ..kvstore import HashDB

__all__ = ["StripePair", "RST"]

_VALUE = struct.Struct("<QQ")


@dataclass(frozen=True)
class StripePair:
    """An optimized ``<h, s>`` layout decision for one region."""

    h: int
    s: int

    def __post_init__(self) -> None:
        if self.h < 0 or self.s < 0:
            raise RedirectionError(f"stripe sizes must be >= 0: <{self.h}, {self.s}>")
        if self.h == 0 and self.s == 0:
            raise RedirectionError("stripe pair <0, 0> places no data")

    def __str__(self) -> str:
        return f"<{self.h}, {self.s}>"


class RST:
    """region/file name -> :class:`StripePair`, optionally persistent."""

    def __init__(self, path: str | Path | None = None, sync: bool = True) -> None:
        self._table: dict[str, StripePair] = {}
        self._db: HashDB | None = None
        if path is not None:
            self._db = HashDB(path, sync=sync)
            for key, value in self._db.items():
                h, s = _VALUE.unpack(value)
                self._table[key.decode()] = StripePair(h, s)

    def set(self, region: str, pair: StripePair) -> None:
        """Record (and persist) the stripe pair for ``region``."""
        self._table[region] = pair
        if self._db is not None:
            self._db.put(region.encode(), _VALUE.pack(pair.h, pair.s))

    def get(self, region: str) -> StripePair:
        """The stripe pair for ``region``; raises if unknown."""
        try:
            return self._table[region]
        except KeyError:
            raise RedirectionError(f"no RST entry for region {region!r}") from None

    def __contains__(self, region: str) -> bool:
        return region in self._table

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[tuple[str, StripePair]]:
        return iter(sorted(self._table.items()))

    def close(self) -> None:
        if self._db is not None:
            self._db.close()
            self._db = None

    def __enter__(self) -> "RST":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

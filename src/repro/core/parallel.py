"""Process-parallel execution of independent region searches.

The Determination phase is embarrassingly parallel: every region's RSSD
search reads only its own request arrays and the (immutable) cost-model
parameters.  This module provides the one executor abstraction the
pipeline and the search-based schemes share:

* :func:`resolve_jobs` turns an explicit ``n_jobs`` or the
  ``REPRO_JOBS`` environment variable into a worker count (default: all
  CPUs);
* :func:`parallel_map` maps a picklable function over items with a
  ``ProcessPoolExecutor``, preserving item order, and degrades to a
  plain serial loop when one worker is requested, when there is nothing
  to fan out, or when the platform cannot spawn worker processes
  (sandboxes without ``fork`` semaphores, for example) — results are
  identical either way, because every task is independent and
  deterministic;
* worker exceptions are re-raised as :class:`RegionSearchError` carrying
  the *region label* of the failing item, with the original exception
  chained, so a failure in one of hundreds of concurrent searches still
  says exactly which region broke;
* under ``REPRO_SANITIZE=1`` (see :mod:`repro.determinism`) every
  worker's seed-lineage/draw-count ledger is captured per item and
  merged back into the parent's, so a sharded run's ledger is
  byte-comparable to a serial run's — the ``sanitize-report`` CLI
  diffs the two.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import TypeVar

from ..determinism import ledger, reset_ledger, sanitize_enabled
from ..exceptions import ConfigurationError, ReproError

__all__ = ["RegionSearchError", "resolve_jobs", "parallel_map", "JOBS_ENV_VAR"]

#: environment variable consulted when ``n_jobs`` is not given
JOBS_ENV_VAR = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


class RegionSearchError(ReproError):
    """A parallel region task failed; ``label`` names the region."""

    def __init__(self, label: str, cause: BaseException) -> None:
        self.label = label
        super().__init__(
            f"region task {label!r} failed: {type(cause).__name__}: {cause}"
        )


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Resolve the worker count: explicit ``n_jobs``, else ``REPRO_JOBS``,
    else one worker per CPU.  Values must be >= 1."""
    if n_jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if env:
            try:
                n_jobs = int(env)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
                ) from exc
        else:
            n_jobs = os.cpu_count() or 1
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    return n_jobs


def _sanitized_call(
    fn: Callable[[T], R], item: T
) -> tuple[R, dict[str, dict[str, int]]]:
    """Worker-side shim under ``REPRO_SANITIZE=1``.

    Captures exactly the seed lineages and draw counts this one item
    produced (the worker ledger is reset first, because pool processes
    are reused across items) and ships them back with the result, so
    the parent's merged ledger is identical to a serial run's.
    """
    reset_ledger()
    result = fn(item)
    return result, ledger().snapshot()


def _run_serial(
    fn: Callable[[T], R], items: Sequence[T], labels: Sequence[str]
) -> list[R]:
    results: list[R] = []
    for item, label in zip(items, labels):
        try:
            results.append(fn(item))
        except Exception as exc:
            raise RegionSearchError(label, exc) from exc
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    n_jobs: int | None = None,
    labels: Sequence[str] | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, in order, possibly across processes.

    ``fn`` and the items must be picklable when more than one worker is
    used.  ``labels`` (same length as ``items``) name the items in
    error reports; they default to the item index.  The first failing
    item (in submission order) raises :class:`RegionSearchError` with
    its label and the worker's exception chained.
    """
    items = list(items)
    if labels is None:
        labels = [f"#{i}" for i in range(len(items))]
    labels = [str(lab) for lab in labels]
    if len(labels) != len(items):
        raise ConfigurationError(
            f"labels ({len(labels)}) must match items ({len(items)})"
        )
    jobs = resolve_jobs(n_jobs)
    if jobs == 1 or len(items) <= 1:
        return _run_serial(fn, items, labels)

    # Unpicklable work must never reach the pool: a task that fails to
    # pickle inside the executor's feeder thread leaves the pool's
    # management thread permanently stuck (it is joined again at
    # interpreter exit, hanging the whole process).  Validate up front
    # and run serially instead — same results, just one process.
    try:
        pickle.dumps(fn)
        for item in items:
            pickle.dumps(item)
    except Exception:
        return _run_serial(fn, items, labels)

    try:
        executor = ProcessPoolExecutor(max_workers=min(jobs, len(items)))
    except (OSError, ImportError, NotImplementedError):
        # platforms without working process pools (restricted sandboxes,
        # missing POSIX semaphores) run the same tasks serially
        return _run_serial(fn, items, labels)
    sanitizing = sanitize_enabled()
    submit_fn: Callable[[T], object] = (
        partial(_sanitized_call, fn) if sanitizing else fn
    )
    try:
        futures = [executor.submit(submit_fn, item) for item in items]
        results: list[R] = []
        for future, label in zip(futures, labels):
            try:
                outcome = future.result()
                if sanitizing:
                    result, entries = outcome  # type: ignore[misc]
                    ledger().merge(entries)
                    results.append(result)
                else:
                    results.append(outcome)  # type: ignore[arg-type]
            except (BrokenProcessPool, pickle.PicklingError):
                # pool infrastructure failed (not the task itself):
                # recompute everything serially — tasks are pure, so
                # the answer is the same
                return _run_serial(fn, items, labels)
            except Exception as exc:
                if isinstance(exc, RegionSearchError):
                    raise
                raise RegionSearchError(label, exc) from exc
        return results
    finally:
        executor.shutdown(wait=False, cancel_futures=True)

"""Algorithm 1 — Iterative Request Grouping.

A k-means-style refinement (the paper cites Hartigan & Wong) over the
normalized 2-D feature space of :mod:`repro.core.features`:

* if there are at most ``k`` requests, each center is a randomly
  selected request point (degenerate case of Algorithm 1's first
  branch; every request then forms its own group);
* otherwise, repeat (assign each point to the closest center, recompute
  centers as group means) until the centers stop changing **or three
  iterations have run** — the paper bounds the refinement at three
  passes to keep the off-line cost low;
* ``k`` is capped by ``max_groups`` so the number of regions (and hence
  DRT/RST metadata) stays bounded, per the §III-D tuning note.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from .features import FeatureSet, normalized_distances

__all__ = ["GroupingResult", "group_requests", "suggest_k"]

#: default bound on the number of groups, equal to the region count the
#: fixed-size division of HARL would produce on the paper's workloads
DEFAULT_MAX_GROUPS = 16


@dataclass(frozen=True)
class GroupingResult:
    """Outcome of Algorithm 1.

    ``labels[i]`` is the group index of request ``i`` (always in
    ``0..k-1`` with every group non-empty); ``centers`` are the final
    group centers in raw feature units; ``iterations`` counts refinement
    passes actually run.
    """

    labels: np.ndarray
    centers: np.ndarray
    iterations: int

    @property
    def k(self) -> int:
        """Number of (non-empty) groups."""
        return self.centers.shape[0]

    def members(self, group: int) -> np.ndarray:
        """Indices of the requests assigned to ``group``."""
        return np.flatnonzero(self.labels == group)

    def group_sizes(self) -> np.ndarray:
        """Request count per group."""
        return np.bincount(self.labels, minlength=self.k)


def _compact(labels: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Drop empty groups and renumber labels densely."""
    used = np.unique(labels)
    remap = {old: new for new, old in enumerate(used)}
    new_labels = np.array([remap[v] for v in labels], dtype=np.intp)
    return new_labels, centers[used]


def group_requests(
    features: FeatureSet,
    k: int,
    seed: int = 0,
    max_iterations: int = 3,
) -> GroupingResult:
    """Run Algorithm 1 on a feature set.

    Parameters
    ----------
    features:
        The ``(size, concurrency)`` points.
    k:
        Requested number of groups (before the non-empty compaction).
    seed:
        RNG seed for the random center initialization, making the whole
        pipeline deterministic.
    max_iterations:
        The paper's refinement bound (3).
    """
    if k <= 0:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    n = len(features)
    if n == 0:
        return GroupingResult(
            labels=np.zeros(0, dtype=np.intp),
            centers=np.zeros((0, 2)),
            iterations=0,
        )
    rng = np.random.default_rng(seed)
    points = features.points

    if n <= k:
        # Algorithm 1 line 2-5: with <= k requests every request point
        # can seed its own center; each request is its own group.
        order = rng.permutation(n)
        centers = points[order]
        labels = np.empty(n, dtype=np.intp)
        labels[order] = np.arange(n)
        return GroupingResult(labels=labels, centers=centers, iterations=0)

    # Distinct random request points as initial centers.  Choosing
    # duplicated points would create dead centers, so prefer unique
    # feature rows when enough exist.
    unique_points = np.unique(points, axis=0)
    if unique_points.shape[0] >= k:
        idx = rng.choice(unique_points.shape[0], size=k, replace=False)
        centers = unique_points[idx].astype(np.float64)
    else:
        idx = rng.choice(n, size=k, replace=False)
        centers = points[idx].astype(np.float64)

    labels = np.zeros(n, dtype=np.intp)
    iterations = 0
    for _ in range(max_iterations):
        distances = normalized_distances(features, centers)
        labels = distances.argmin(axis=1).astype(np.intp)
        new_centers = centers.copy()
        for g in range(centers.shape[0]):
            members = labels == g
            if members.any():
                new_centers[g] = points[members].mean(axis=0)
        iterations += 1
        if np.allclose(new_centers, centers):
            centers = new_centers
            break
        centers = new_centers

    labels, centers = _compact(labels, centers)
    return GroupingResult(labels=labels, centers=centers, iterations=iterations)


def suggest_k(n_requests: int, distinct_patterns: int, max_groups: int = DEFAULT_MAX_GROUPS) -> int:
    """Pick ``k`` bounded by the §III-D metadata cap.

    Uses the number of distinct feature patterns as the natural group
    count, clamped to ``[1, max_groups]`` and to the request count.
    """
    if max_groups <= 0:
        raise ConfigurationError(f"max_groups must be >= 1, got {max_groups}")
    if n_requests <= 0:
        return 1
    return max(1, min(distinct_patterns, max_groups, n_requests))

"""The Data Reordering Table (DRT).

§III-E: "Each entry in DRT includes five important variables. O_file
and O_offset are the file name and the offset of the data in the
original file, R_file and R_offset are the file name and the offset of
the data in the reordered region.  Length is the size of the data."

The table supports the two access paths the paper needs:

* the **Redirector**'s hot path — translate an original-file extent
  into region extents (range lookup, served from memory with an LRU
  list of hot entries, §IV-A);
* **durability** — every change is synchronously written through to a
  :class:`~repro.kvstore.hashdb.HashDB` file so the mapping survives
  power failures (§IV-A), and can be reloaded on the application's
  next run.

Entry encoding matches the paper's §V-E2 sizing: the numeric payload of
an entry (O_offset, Length, R_offset) packs into exactly ``6 * 4`` = 24
bytes.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..exceptions import RedirectionError
from ..kvstore import HashDB, LRUCache

__all__ = ["DRTEntry", "TranslatedExtent", "DRT", "ENTRY_NUMERIC_BYTES"]

#: bytes of numeric payload per entry — the paper's "6 * 4 B" (§V-E2)
ENTRY_NUMERIC_BYTES = 24

_VALUE = struct.Struct("<QQ")  # length, r_offset  (r_file appended as text)
_KEY = struct.Struct("<Q")  # o_offset (o_file prepended as text)


@dataclass(frozen=True, order=True)
class DRTEntry:
    """One reordering record: original extent -> region extent."""

    o_file: str
    o_offset: int
    length: int
    r_file: str
    r_offset: int

    def __post_init__(self) -> None:
        if self.o_offset < 0 or self.r_offset < 0:
            raise RedirectionError("DRT offsets must be non-negative")
        if self.length <= 0:
            raise RedirectionError(f"DRT length must be > 0, got {self.length}")

    @property
    def o_end(self) -> int:
        return self.o_offset + self.length


@dataclass(frozen=True)
class TranslatedExtent:
    """One fragment of a translated request.

    ``file``/``offset`` give the *current* location: the region file
    when ``mapped`` is True, or the original file when the extent was
    never reordered (``mapped`` False) and the request falls through to
    the original layout.
    """

    file: str
    offset: int
    length: int
    logical_offset: int
    mapped: bool


class DRT:
    """In-memory interval table with optional synchronous persistence."""

    def __init__(
        self,
        path: str | Path | None = None,
        cache_capacity: int = 4096,
        sync: bool = True,
    ) -> None:
        # per original file: parallel sorted lists of entry starts & entries
        self._starts: dict[str, list[int]] = {}
        self._entries: dict[str, list[DRTEntry]] = {}
        self._count = 0
        self._cache: LRUCache[tuple[str, int], DRTEntry] = LRUCache(cache_capacity)
        self._db: HashDB | None = None
        if path is not None:
            self._db = HashDB(path, sync=sync)
            for key, value in self._db.items():
                self._insert(self._decode(key, value), persist=False)

    # -- encoding -------------------------------------------------------

    @staticmethod
    def _encode_key(entry: DRTEntry) -> bytes:
        # fixed-width offset first, then the file name: the packed
        # integer routinely contains NUL bytes, so no separator could
        # safely delimit a name placed before it
        return _KEY.pack(entry.o_offset) + entry.o_file.encode()

    @staticmethod
    def _encode_value(entry: DRTEntry) -> bytes:
        return _VALUE.pack(entry.length, entry.r_offset) + entry.r_file.encode()

    @staticmethod
    def _decode(key: bytes, value: bytes) -> DRTEntry:
        (o_offset,) = _KEY.unpack(key[: _KEY.size])
        o_file = key[_KEY.size :].decode()
        length, r_offset = _VALUE.unpack(value[: _VALUE.size])
        r_file = value[_VALUE.size :].decode()
        return DRTEntry(
            o_file=o_file,
            o_offset=o_offset,
            length=length,
            r_file=r_file,
            r_offset=r_offset,
        )

    # -- mutation -------------------------------------------------------

    def _insert(self, entry: DRTEntry, persist: bool) -> None:
        starts = self._starts.setdefault(entry.o_file, [])
        entries = self._entries.setdefault(entry.o_file, [])
        idx = bisect_right(starts, entry.o_offset)
        if idx > 0 and entries[idx - 1].o_end > entry.o_offset:
            raise RedirectionError(
                f"DRT entries overlap at {entry.o_file}:{entry.o_offset}"
            )
        if idx < len(entries) and entry.o_end > entries[idx].o_offset:
            raise RedirectionError(
                f"DRT entries overlap at {entry.o_file}:{entry.o_offset}"
            )
        starts.insert(idx, entry.o_offset)
        entries.insert(idx, entry)
        self._count += 1
        if persist and self._db is not None:
            self._db.put(self._encode_key(entry), self._encode_value(entry))

    def add(self, entry: DRTEntry) -> None:
        """Insert an entry; synchronously persisted when backed by a file."""
        self._insert(entry, persist=True)

    # -- lookup ---------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[DRTEntry]:
        for file in sorted(self._entries):
            yield from self._entries[file]

    def entries_for(self, o_file: str) -> list[DRTEntry]:
        """All entries of one original file, offset-sorted."""
        return list(self._entries.get(o_file, ()))

    def entry_at(self, o_file: str, offset: int) -> DRTEntry | None:
        """The entry covering byte ``offset`` of ``o_file``, if any.

        Served through the hot-entry LRU list (§IV-A).
        """
        starts = self._starts.get(o_file)
        if not starts:
            return None
        idx = bisect_right(starts, offset) - 1
        if idx < 0:
            return None
        entry = self._entries[o_file][idx]
        cached = self._cache.get((o_file, entry.o_offset))
        if cached is None:
            self._cache.put((o_file, entry.o_offset), entry)
        if offset < entry.o_end:
            return entry
        return None

    def translate(self, o_file: str, offset: int, length: int) -> list[TranslatedExtent]:
        """Split ``[offset, offset+length)`` of the original file into
        current locations (region extents and unmapped fall-throughs).

        Fragments are returned in ascending ``logical_offset`` order and
        tile the request exactly.
        """
        if offset < 0 or length < 0:
            raise RedirectionError("offset and length must be non-negative")
        result: list[TranslatedExtent] = []
        starts = self._starts.get(o_file, [])
        entries = self._entries.get(o_file, [])
        cursor = offset
        end = offset + length
        idx = bisect_right(starts, cursor) - 1
        if idx < 0:
            idx = 0
        while cursor < end:
            entry = entries[idx] if idx < len(entries) else None
            if entry is not None and entry.o_end <= cursor:
                idx += 1
                continue
            if entry is None or entry.o_offset >= end:
                # no further mapping: the rest stays in the original file
                result.append(
                    TranslatedExtent(
                        file=o_file,
                        offset=cursor,
                        length=end - cursor,
                        logical_offset=cursor,
                        mapped=False,
                    )
                )
                break
            if cursor < entry.o_offset:
                take = entry.o_offset - cursor
                result.append(
                    TranslatedExtent(
                        file=o_file,
                        offset=cursor,
                        length=take,
                        logical_offset=cursor,
                        mapped=False,
                    )
                )
                cursor += take
            take = min(entry.o_end, end) - cursor
            result.append(
                TranslatedExtent(
                    file=entry.r_file,
                    offset=entry.r_offset + (cursor - entry.o_offset),
                    length=take,
                    logical_offset=cursor,
                    mapped=True,
                )
            )
            cursor += take
            idx += 1
        return result

    # -- stats / persistence ---------------------------------------------

    @property
    def cache(self) -> LRUCache[tuple[str, int], DRTEntry]:
        """The hot-entry list (for statistics)."""
        return self._cache

    def numeric_bytes(self) -> int:
        """Total numeric payload, i.e. ``len(self) * 24`` bytes (§V-E2)."""
        return self._count * ENTRY_NUMERIC_BYTES

    def close(self) -> None:
        """Close the backing store, if any."""
        if self._db is not None:
            self._db.close()
            self._db = None

    def __enter__(self) -> "DRT":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

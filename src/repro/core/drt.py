"""The Data Reordering Table (DRT).

§III-E: "Each entry in DRT includes five important variables. O_file
and O_offset are the file name and the offset of the data in the
original file, R_file and R_offset are the file name and the offset of
the data in the reordered region.  Length is the size of the data."

The table supports the two access paths the paper needs:

* the **Redirector**'s hot path — translate an original-file extent
  into region extents (range lookup, served from memory with an LRU
  list of hot entries, §IV-A);
* **durability** — every change is synchronously written through to a
  :class:`~repro.kvstore.hashdb.HashDB` file so the mapping survives
  power failures (§IV-A), and can be reloaded on the application's
  next run.

Entry encoding matches the paper's §V-E2 sizing: the numeric payload of
an entry (O_offset, Length, R_offset) packs into exactly ``6 * 4`` = 24
bytes.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..contracts import twin_of
from ..exceptions import RedirectionError
from ..kvstore import HashDB, LRUCache

__all__ = ["DRTEntry", "TranslatedExtent", "DRT", "ENTRY_NUMERIC_BYTES"]

#: bytes of numeric payload per entry — the paper's "6 * 4 B" (§V-E2)
ENTRY_NUMERIC_BYTES = 24

_VALUE = struct.Struct("<QQ")  # length, r_offset  (r_file appended as text)
_KEY = struct.Struct("<Q")  # o_offset (o_file prepended as text)


@dataclass(frozen=True, order=True)
class DRTEntry:
    """One reordering record: original extent -> region extent."""

    o_file: str
    o_offset: int
    length: int
    r_file: str
    r_offset: int

    def __post_init__(self) -> None:
        if self.o_offset < 0 or self.r_offset < 0:
            raise RedirectionError("DRT offsets must be non-negative")
        if self.length <= 0:
            raise RedirectionError(f"DRT length must be > 0, got {self.length}")

    @property
    def o_end(self) -> int:
        return self.o_offset + self.length


@dataclass(frozen=True)
class TranslatedExtent:
    """One fragment of a translated request.

    ``file``/``offset`` give the *current* location: the region file
    when ``mapped`` is True, or the original file when the extent was
    never reordered (``mapped`` False) and the request falls through to
    the original layout.
    """

    file: str
    offset: int
    length: int
    logical_offset: int
    mapped: bool


class DRT:
    """In-memory interval table with optional synchronous persistence."""

    def __init__(
        self,
        path: str | Path | None = None,
        cache_capacity: int = 4096,
        sync: bool = True,
    ) -> None:
        # per original file: parallel sorted lists of entry starts & entries
        self._starts: dict[str, list[int]] = {}
        self._entries: dict[str, list[DRTEntry]] = {}
        self._count = 0
        self._cache: LRUCache[tuple[str, int], DRTEntry] = LRUCache(cache_capacity)
        # per original file: o_offset of the most recently served entry —
        # the probe key into the hot-entry list (§IV-A)
        self._hot: dict[str, int] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._db: HashDB | None = None
        if path is not None:
            self._db = HashDB(path, sync=sync)
            for key, value in self._db.items():
                self._insert(self._decode(key, value), persist=False)

    # -- encoding -------------------------------------------------------

    @staticmethod
    def _encode_key(entry: DRTEntry) -> bytes:
        # fixed-width offset first, then the file name: the packed
        # integer routinely contains NUL bytes, so no separator could
        # safely delimit a name placed before it
        return _KEY.pack(entry.o_offset) + entry.o_file.encode()

    @staticmethod
    def _encode_value(entry: DRTEntry) -> bytes:
        return _VALUE.pack(entry.length, entry.r_offset) + entry.r_file.encode()

    @staticmethod
    def _decode(key: bytes, value: bytes) -> DRTEntry:
        (o_offset,) = _KEY.unpack(key[: _KEY.size])
        o_file = key[_KEY.size :].decode()
        length, r_offset = _VALUE.unpack(value[: _VALUE.size])
        r_file = value[_VALUE.size :].decode()
        return DRTEntry(
            o_file=o_file,
            o_offset=o_offset,
            length=length,
            r_file=r_file,
            r_offset=r_offset,
        )

    # -- mutation -------------------------------------------------------

    def _insert(self, entry: DRTEntry, persist: bool) -> None:
        starts = self._starts.setdefault(entry.o_file, [])
        entries = self._entries.setdefault(entry.o_file, [])
        idx = bisect_right(starts, entry.o_offset)
        if idx > 0 and entries[idx - 1].o_end > entry.o_offset:
            raise RedirectionError(
                f"DRT entries overlap at {entry.o_file}:{entry.o_offset}"
            )
        if idx < len(entries) and entry.o_end > entries[idx].o_offset:
            raise RedirectionError(
                f"DRT entries overlap at {entry.o_file}:{entry.o_offset}"
            )
        starts.insert(idx, entry.o_offset)
        entries.insert(idx, entry)
        self._count += 1
        if persist and self._db is not None:
            self._db.put(self._encode_key(entry), self._encode_value(entry))

    def add(self, entry: DRTEntry) -> None:
        """Insert an entry; synchronously persisted when backed by a file."""
        self._insert(entry, persist=True)

    # -- lookup ---------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[DRTEntry]:
        for file in sorted(self._entries):
            yield from self._entries[file]

    def entries_for(self, o_file: str) -> list[DRTEntry]:
        """All entries of one original file, offset-sorted."""
        return list(self._entries.get(o_file, ()))

    def _probe(self, o_file: str, offset: int) -> DRTEntry | None:
        """A hot entry covering ``offset``, if the LRU list has one.

        Two O(1) chances before the bisect walk: the file's most
        recently served entry (repeated/sequential lookups inside one
        entry), then the LRU list keyed by exact entry start (a lookup
        revisiting an entry served earlier — e.g. re-reading data —
        starts exactly where the entry does in the common aligned
        case).  Entries are never removed from the table, so a cached
        entry can never be stale; a successful probe short-circuits
        the walk entirely.
        """
        key = self._hot.get(o_file)
        if key is not None:
            entry = self._cache.get((o_file, key))
            if entry is not None and entry.o_offset <= offset < entry.o_end:
                return entry
        entry = self._cache.get((o_file, offset))
        if entry is not None and offset < entry.o_end:
            self._hot[o_file] = offset
            return entry
        return None

    def _remember(self, o_file: str, entry: DRTEntry) -> None:
        self._cache.put((o_file, entry.o_offset), entry)
        self._hot[o_file] = entry.o_offset

    def entry_at(self, o_file: str, offset: int) -> DRTEntry | None:
        """The entry covering byte ``offset`` of ``o_file``, if any.

        Served through the hot-entry LRU list (§IV-A): a probe of the
        file's most recently served entry answers repeated/sequential
        lookups without touching the sorted table.
        """
        entry = self._probe(o_file, offset)
        if entry is not None:
            self._cache_hits += 1
            return entry
        self._cache_misses += 1
        starts = self._starts.get(o_file)
        if not starts:
            return None
        idx = bisect_right(starts, offset) - 1
        if idx < 0:
            return None
        entry = self._entries[o_file][idx]
        if offset < entry.o_end:
            self._remember(o_file, entry)
            return entry
        return None

    def _translate_walk(
        self, o_file: str, offset: int, end: int, idx: int
    ) -> list[TranslatedExtent]:
        """The slow translation path: walk entries from sorted index
        ``idx`` (pre-clamped to >= 0); caches the last entry served."""
        result: list[TranslatedExtent] = []
        entries = self._entries.get(o_file, [])
        served: DRTEntry | None = None
        cursor = offset
        while cursor < end:
            entry = entries[idx] if idx < len(entries) else None
            if entry is not None and entry.o_end <= cursor:
                idx += 1
                continue
            if entry is None or entry.o_offset >= end:
                # no further mapping: the rest stays in the original file
                result.append(
                    TranslatedExtent(
                        file=o_file,
                        offset=cursor,
                        length=end - cursor,
                        logical_offset=cursor,
                        mapped=False,
                    )
                )
                break
            if cursor < entry.o_offset:
                take = entry.o_offset - cursor
                result.append(
                    TranslatedExtent(
                        file=o_file,
                        offset=cursor,
                        length=take,
                        logical_offset=cursor,
                        mapped=False,
                    )
                )
                cursor += take
            take = min(entry.o_end, end) - cursor
            result.append(
                TranslatedExtent(
                    file=entry.r_file,
                    offset=entry.r_offset + (cursor - entry.o_offset),
                    length=take,
                    logical_offset=cursor,
                    mapped=True,
                )
            )
            served = entry
            cursor += take
            idx += 1
        if served is not None:
            self._remember(o_file, served)
        return result

    def translate(self, o_file: str, offset: int, length: int) -> list[TranslatedExtent]:
        """Split ``[offset, offset+length)`` of the original file into
        current locations (region extents and unmapped fall-throughs).

        Fragments are returned in ascending ``logical_offset`` order and
        tile the request exactly.  Requests fully inside the file's hot
        entry are answered from the cache probe without a bisect.
        """
        if offset < 0 or length < 0:
            raise RedirectionError("offset and length must be non-negative")
        if length == 0:
            return []
        end = offset + length
        entry = self._probe(o_file, offset)
        if entry is not None and end <= entry.o_end:
            self._cache_hits += 1
            return [
                TranslatedExtent(
                    file=entry.r_file,
                    offset=entry.r_offset + (offset - entry.o_offset),
                    length=length,
                    logical_offset=offset,
                    mapped=True,
                )
            ]
        self._cache_misses += 1
        starts = self._starts.get(o_file, [])
        idx = bisect_right(starts, offset) - 1
        if idx < 0:
            idx = 0
        return self._translate_walk(o_file, offset, end, idx)

    @twin_of(
        "repro.core.drt:DRT.translate",
        param_map={"offset": "offsets", "length": "lengths"},
        harness="drt_translate",
    )
    def translate_many(
        self, o_file: str, offsets: Sequence[int], lengths: Sequence[int]
    ) -> list[list[TranslatedExtent]]:
        """Batch :meth:`translate` over parallel offset/length arrays.

        One vectorized ``searchsorted`` replaces the per-record bisect;
        per-record results (and cache hit/miss accounting) are identical
        to calling :meth:`translate` in sequence.
        """
        off = np.asarray(offsets, dtype=np.int64).reshape(-1)
        lng = np.asarray(lengths, dtype=np.int64).reshape(-1)
        if off.shape != lng.shape:
            raise RedirectionError(
                f"offsets ({off.size}) and lengths ({lng.size}) must match"
            )
        if off.size == 0:
            return []
        if int(off.min()) < 0 or int(lng.min()) < 0:
            raise RedirectionError("offset and length must be non-negative")
        starts = self._starts.get(o_file, [])
        idx0 = np.maximum(
            np.searchsorted(
                np.asarray(starts, dtype=np.int64), off, side="right"
            )
            - 1,
            0,
        ).tolist()
        off_list = off.tolist()
        lng_list = lng.tolist()
        result: list[list[TranslatedExtent]] = []
        for k in range(len(off_list)):
            offset = off_list[k]
            length = lng_list[k]
            if length == 0:
                result.append([])
                continue
            end = offset + length
            entry = self._probe(o_file, offset)
            if entry is not None and end <= entry.o_end:
                self._cache_hits += 1
                result.append(
                    [
                        TranslatedExtent(
                            file=entry.r_file,
                            offset=entry.r_offset + (offset - entry.o_offset),
                            length=length,
                            logical_offset=offset,
                            mapped=True,
                        )
                    ]
                )
                continue
            self._cache_misses += 1
            result.append(self._translate_walk(o_file, offset, end, idx0[k]))
        return result

    # -- stats / persistence ---------------------------------------------

    @property
    def cache(self) -> LRUCache[tuple[str, int], DRTEntry]:
        """The hot-entry list (for statistics)."""
        return self._cache

    @property
    def cache_hits(self) -> int:
        """Lookups fully served by the hot-entry probe."""
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        """Lookups that fell through to the sorted-table walk."""
        return self._cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Hot-probe hits / lookups, 0.0 before any lookup (Fig. 14)."""
        total = self._cache_hits + self._cache_misses
        return self._cache_hits / total if total else 0.0

    def numeric_bytes(self) -> int:
        """Total numeric payload, i.e. ``len(self) * 24`` bytes (§V-E2)."""
        return self._count * ENTRY_NUMERIC_BYTES

    def close(self) -> None:
        """Close the backing store, if any."""
        if self._db is not None:
            self._db.close()
            self._db = None

    def __enter__(self) -> "DRT":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

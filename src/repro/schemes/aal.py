"""AAL — the application-aware layout baseline.

§V-A: "it distributes file data on servers with varied-sized stripes by
considering application's access patterns, but it ignores server
heterogeneity."  Following the adaptive-stripe line of work the paper
cites ([10], [14]) — which was "designed for homogeneous HDD-based I/O
systems" (§VI) — AAL searches, per file, for the single *uniform*
stripe size minimizing the profiled requests' cost under a
**homogeneous server model**: every server is assumed to behave like an
HServer (that is precisely the heterogeneity blindness the paper
criticizes).  Access-pattern awareness includes request concurrency —
the pattern dimension the cost-aware layout line ([13]) models — so AAL
evaluates candidates against the trace's exact bursts like the other
optimizers; its handicaps are the uniform stripe, the homogeneous
server model, and (like HARL) the average-request-size search bound.
The winning stripe is applied identically to all servers.

Determinism contract: building an AAL layout is a pure function of the
``(spec, trace)`` inputs.  Traces longer than ``max_eval_requests`` are
subsampled before the stripe search, and that subsample is drawn from
``derive_rng(SeedDomain.SAMPLE, base=DEFAULT_SAMPLE_SEED)`` — the
central lineage registry of :mod:`repro.determinism`, never an
unseeded or inline-literal-seeded RNG — so repeated builds over the
same trace pick the same requests and land on the same stripe.
repro-lint's RL001 and RL201 rules enforce this contract mechanically.
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterSpec
from ..config import DEFAULT_SAMPLE_SEED
from ..core.cost_model import burst_costs
from ..determinism import SeedDomain, derive_rng
from ..core.params import CostModelParams
from ..tracing.analysis import burst_ids_of
from ..layouts.fixed import FixedStripeLayout
from ..tracing.record import Trace
from ..units import KiB
from .base import LayoutView, Scheme
from .default import DEFAULT_STRIPE

__all__ = ["AALScheme"]


class AALScheme(Scheme):
    """Pattern-aware uniform striping (server-oblivious)."""

    name = "AAL"

    def __init__(self, step: int = 4 * KiB, max_eval_requests: int = 4096) -> None:
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        self.step = step
        self.max_eval_requests = max_eval_requests
        #: per-file stripe decisions of the last build
        self.decisions: dict[str, int] = {}

    def _homogeneous_params(self, spec: ClusterSpec) -> CostModelParams:
        """All servers modelled as HServers (AAL's world view)."""
        return CostModelParams(
            M=spec.num_servers,
            N=0,
            t=spec.link.unit_transfer_time,
            alpha_h=spec.hdd.alpha("read"),
            beta_h=spec.hdd.beta("read"),
            alpha_sr=0.0,
            beta_sr=0.0,
            alpha_sw=0.0,
            beta_sw=0.0,
        )

    def stripe_for(self, spec: ClusterSpec, trace: Trace) -> int:
        """The cost-minimizing uniform stripe for one file's trace."""
        if len(trace) == 0:
            return DEFAULT_STRIPE
        params = self._homogeneous_params(spec)
        burst_map = burst_ids_of(trace)
        offsets = np.array([r.offset for r in trace], dtype=np.int64)
        lengths = np.array([r.size for r in trace], dtype=np.int64)
        is_read = np.array([r.op == "read" for r in trace], dtype=bool)
        bursts = np.array([burst_map[r] for r in trace], dtype=np.int64)
        if len(trace) > self.max_eval_requests:
            rng = derive_rng(SeedDomain.SAMPLE, base=DEFAULT_SAMPLE_SEED)
            pick = rng.choice(len(trace), size=self.max_eval_requests, replace=False)
            offsets, lengths, is_read, bursts = (
                offsets[pick], lengths[pick], is_read[pick], bursts[pick],
            )
        # like HARL, the prior-generation schemes bound their stripe
        # search by the average request size (§III-F)
        best_stripe, best_cost = DEFAULT_STRIPE, np.inf
        upper = max(self.step, int(lengths.mean()))
        for stripe in range(self.step, upper + self.step, self.step):
            cost = burst_costs(
                params, offsets, lengths, is_read, bursts, stripe, 0
            ).sum()
            if cost < best_cost:
                best_cost, best_stripe = cost, stripe
        return best_stripe

    def build(self, spec: ClusterSpec, trace: Trace) -> LayoutView:
        layouts = {}
        self.decisions = {}
        for file in trace.files():
            sub = trace.for_file(file)
            stripe = self.stripe_for(spec, sub)
            self.decisions[file] = stripe
            layouts[file] = FixedStripeLayout(spec.server_ids, stripe, obj=file)
        default = FixedStripeLayout(spec.server_ids, DEFAULT_STRIPE, obj="file")
        return LayoutView(layouts, default=default)

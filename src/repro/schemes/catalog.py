"""Leaf scheme catalog: the name → factory table behind ``make_scheme``.

This module sits *below* every scheme module in the import graph so
that schemes which compose other schemes by name (notably
``StragglerAwareScheme``, whose ``build`` instantiates its base via
``make_scheme``) can import :func:`make_scheme` at module top level —
no function-level import, no ``registry ↔ straggler`` cycle.  The
table itself is populated by :mod:`repro.schemes.registry` when the
package is imported (the package ``__init__`` imports the registry, so
any ``repro.schemes.*`` import sees a full catalogue).

``make_scheme`` dispatches through the table, which the effect
analyzer cannot resolve statically; its :func:`repro.effects.effects`
declaration pins the contract instead: scheme constructors only bind
parameters (and may read ``repro.config`` defaults) — anything louder
in a new scheme's ``__init__`` is a bug, and the declaration is what
makes RL302 hold for every task that builds schemes.
"""

from __future__ import annotations

from typing import Callable

from ..effects import effects
from ..exceptions import ConfigurationError
from .base import Scheme

__all__ = ["SCHEMES", "make_scheme"]

#: name → factory, populated by :mod:`repro.schemes.registry`
SCHEMES: dict[str, Callable[..., Scheme]] = {}


@effects("READS_CONFIG")
def make_scheme(name: str, **kwargs) -> Scheme:
    """Instantiate a scheme by name (case-insensitive)."""
    try:
        factory = SCHEMES[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None
    return factory(**kwargs)

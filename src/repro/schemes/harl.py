"""HARL — the heterogeneity-aware region-level layout baseline.

The authors' prior scheme ([8], summarized in §II-B): divide the file
into several *fixed* consecutive regions, and for each region pick the
``<h, s>`` stripe pair minimizing the cost-model time of the requests
that **inherently** fall in that region — no grouping, no migration.
Fidelity notes:

* HARL "uses the average request size as the upper bounds for the
  potential stripe sizes" (§III-F), i.e. the ``"average"`` bound
  policy;
* all schemes share the concurrency-aware cost evaluation, so the
  MHA-over-HARL delta isolates what the paper presents as the
  contribution: request grouping + data reordering + adaptive search
  bounds (§V-A: HARL "takes both access pattern and server
  heterogeneity into account but without data grouping and
  migration").
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterSpec
from ..core.determinator import DEFAULT_STEP, region_search_task
from ..core.parallel import parallel_map
from ..core.params import CostModelParams
from ..core.rst import StripePair
from ..layouts.base import Layout
from ..layouts.fixed import FixedStripeLayout
from ..layouts.region import Region, RegionLayout
from ..layouts.varied import VariedStripeLayout
from ..tracing.analysis import burst_ids_of, concurrency_of
from ..tracing.record import Trace
from ..units import KiB
from .base import LayoutView, Scheme
from .default import DEFAULT_STRIPE

__all__ = ["HARLScheme"]


class HARLScheme(Scheme):
    """Fixed-region, cost-model-optimized varied striping (no reordering)."""

    name = "HARL"

    def __init__(
        self,
        num_regions: int = 16,
        step: int = DEFAULT_STEP,
        max_eval_requests: int = 4096,
        seed: int = 0,
        n_jobs: int | None = None,
        engine: str = "grid",
    ) -> None:
        if num_regions <= 0:
            raise ValueError(f"num_regions must be >= 1, got {num_regions}")
        self.num_regions = num_regions
        self.step = step
        self.max_eval_requests = max_eval_requests
        self.seed = seed
        self.n_jobs = n_jobs
        self.engine = engine

    def _region_bounds(
        self, extent_end: int, max_request: int = 0
    ) -> list[tuple[int, int]]:
        """Equal consecutive regions covering ``[0, extent_end)``.

        Region boundaries snap to the 4 KB placement granularity and
        the region size is floored at ``8 * max_request`` — a region
        must be much larger than the requests that fall in it, or the
        clipping chops requests into fragments and the per-region
        optimization sees sizes the application never issues.  The last
        region absorbs the remainder.
        """
        if extent_end <= 0:
            return [(0, 4 * KiB)]
        raw = max(1, extent_end // self.num_regions, 8 * max_request)
        size = max(4 * KiB, (raw // (4 * KiB)) * (4 * KiB) or 4 * KiB)
        bounds: list[tuple[int, int]] = []
        start = 0
        while len(bounds) < self.num_regions - 1 and start + size < extent_end:
            bounds.append((start, start + size))
            start += size
        bounds.append((start, max(extent_end, start + size)))
        return bounds

    def _region_task(
        self,
        params: CostModelParams,
        trace: Trace,
        conc_map: dict,
        burst_map: dict,
        start: int,
        end: int,
    ) -> tuple | None:
        """One region's search task, or ``None`` for an untouched region."""
        # requests clipped to the region, in region-local coordinates
        offsets, lengths, is_read, conc, bursts = [], [], [], [], []
        for idx, record in enumerate(trace):
            lo = max(record.offset, start)
            hi = min(record.end, end)
            if lo < hi:
                offsets.append(lo - start)
                lengths.append(hi - lo)
                is_read.append(record.op == "read")
                conc.append(conc_map.get(record, 1))
                bursts.append(burst_map.get(record, -(idx + 1)))
        if not offsets:
            return None
        return (
            params,
            np.array(offsets, dtype=np.int64),
            np.array(lengths, dtype=np.int64),
            np.array(is_read, dtype=bool),
            np.array(conc, dtype=np.int64),
            np.array(bursts, dtype=np.int64),
            dict(
                step=self.step,
                bound_policy="average",
                max_eval_requests=self.max_eval_requests,
                seed=self.seed,
                engine=self.engine,
            ),
        )

    def build(self, spec: ClusterSpec, trace: Trace) -> LayoutView:
        params = CostModelParams.from_cluster(spec)
        self.decisions: dict[str, StripePair] = {}
        # phase 1: clip requests into regions, collecting one search
        # task per touched region across every file
        file_regions: dict[str, list[tuple[int, int, str, int | None]]] = {}
        tasks: list[tuple] = []
        labels: list[str] = []
        for file in trace.files():
            sub = trace.for_file(file).sorted_by_offset()
            conc_map = concurrency_of(sub)
            burst_map = burst_ids_of(sub)
            _, extent_end = sub.extent()
            bounds = self._region_bounds(extent_end, sub.max_size())
            entries: list[tuple[int, int, str, int | None]] = []
            for idx, (start, end) in enumerate(bounds):
                obj = f"{file}/r{idx}"
                task = self._region_task(
                    params, sub, conc_map, burst_map, start, end
                )
                if task is None:
                    entries.append((start, end, obj, None))
                else:
                    entries.append((start, end, obj, len(tasks)))
                    tasks.append(task)
                    labels.append(obj)
            file_regions[file] = entries

        # phase 2: all region searches are independent — run them on
        # the worker pool
        results = parallel_map(
            region_search_task, tasks, n_jobs=self.n_jobs, labels=labels
        )

        # phase 3: assemble the per-file region layouts in order
        layouts: dict[str, Layout] = {}
        for file, entries in file_regions.items():
            regions = []
            for start, end, obj, task_idx in entries:
                if task_idx is None:
                    # untouched region: keep the PFS default
                    layout = VariedStripeLayout(
                        spec.hserver_ids,
                        spec.sserver_ids,
                        h=DEFAULT_STRIPE if spec.num_hservers else 0,
                        s=DEFAULT_STRIPE if spec.num_sservers else 0,
                        obj=obj,
                    )
                else:
                    pair = results[task_idx].pair
                    layout = VariedStripeLayout(
                        spec.hserver_ids,
                        spec.sserver_ids,
                        h=pair.h,
                        s=pair.s,
                        obj=obj,
                    )
                    self.decisions[obj] = StripePair(layout.h, layout.s)
                regions.append(Region(start=start, end=end, layout=layout))
            layouts[file] = RegionLayout(regions, obj=file)
        default = FixedStripeLayout(spec.server_ids, DEFAULT_STRIPE, obj="file")
        return LayoutView(layouts, default=default)

"""HARL — the heterogeneity-aware region-level layout baseline.

The authors' prior scheme ([8], summarized in §II-B): divide the file
into several *fixed* consecutive regions, and for each region pick the
``<h, s>`` stripe pair minimizing the cost-model time of the requests
that **inherently** fall in that region — no grouping, no migration.
Fidelity notes:

* HARL "uses the average request size as the upper bounds for the
  potential stripe sizes" (§III-F), i.e. the ``"average"`` bound
  policy;
* all schemes share the concurrency-aware cost evaluation, so the
  MHA-over-HARL delta isolates what the paper presents as the
  contribution: request grouping + data reordering + adaptive search
  bounds (§V-A: HARL "takes both access pattern and server
  heterogeneity into account but without data grouping and
  migration").
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterSpec
from ..core.determinator import DEFAULT_STEP, determine_stripes
from ..core.params import CostModelParams
from ..core.rst import StripePair
from ..layouts.base import Layout
from ..layouts.region import Region, RegionLayout
from ..layouts.varied import VariedStripeLayout
from ..tracing.analysis import burst_ids_of, concurrency_of
from ..tracing.record import Trace
from ..units import KiB
from .base import LayoutView, Scheme
from .default import DEFAULT_STRIPE

__all__ = ["HARLScheme"]


class HARLScheme(Scheme):
    """Fixed-region, cost-model-optimized varied striping (no reordering)."""

    name = "HARL"

    def __init__(
        self,
        num_regions: int = 16,
        step: int = DEFAULT_STEP,
        max_eval_requests: int = 4096,
        seed: int = 0,
    ) -> None:
        if num_regions <= 0:
            raise ValueError(f"num_regions must be >= 1, got {num_regions}")
        self.num_regions = num_regions
        self.step = step
        self.max_eval_requests = max_eval_requests
        self.seed = seed

    def _region_bounds(
        self, extent_end: int, max_request: int = 0
    ) -> list[tuple[int, int]]:
        """Equal consecutive regions covering ``[0, extent_end)``.

        Region boundaries snap to the 4 KB placement granularity and
        the region size is floored at ``8 * max_request`` — a region
        must be much larger than the requests that fall in it, or the
        clipping chops requests into fragments and the per-region
        optimization sees sizes the application never issues.  The last
        region absorbs the remainder.
        """
        if extent_end <= 0:
            return [(0, 4 * KiB)]
        raw = max(1, extent_end // self.num_regions, 8 * max_request)
        size = max(4 * KiB, (raw // (4 * KiB)) * (4 * KiB) or 4 * KiB)
        bounds: list[tuple[int, int]] = []
        start = 0
        while len(bounds) < self.num_regions - 1 and start + size < extent_end:
            bounds.append((start, start + size))
            start += size
        bounds.append((start, max(extent_end, start + size)))
        return bounds

    def _optimize_region(
        self,
        params: CostModelParams,
        spec: ClusterSpec,
        trace: Trace,
        conc_map: dict,
        burst_map: dict,
        start: int,
        end: int,
        obj: str,
    ) -> Layout:
        # requests clipped to the region, in region-local coordinates
        offsets, lengths, is_read, conc, bursts = [], [], [], [], []
        for idx, record in enumerate(trace):
            lo = max(record.offset, start)
            hi = min(record.end, end)
            if lo < hi:
                offsets.append(lo - start)
                lengths.append(hi - lo)
                is_read.append(record.op == "read")
                conc.append(conc_map.get(record, 1))
                bursts.append(burst_map.get(record, -(idx + 1)))
        if not offsets:
            # untouched region: keep the PFS default
            return VariedStripeLayout(
                spec.hserver_ids,
                spec.sserver_ids,
                h=DEFAULT_STRIPE if spec.num_hservers else 0,
                s=DEFAULT_STRIPE if spec.num_sservers else 0,
                obj=obj,
            )
        decision = determine_stripes(
            params,
            np.array(offsets, dtype=np.int64),
            np.array(lengths, dtype=np.int64),
            np.array(is_read, dtype=bool),
            np.array(conc, dtype=np.int64),
            step=self.step,
            bound_policy="average",
            max_eval_requests=self.max_eval_requests,
            seed=self.seed,
            burst_ids=np.array(bursts, dtype=np.int64),
        )
        return VariedStripeLayout(
            spec.hserver_ids,
            spec.sserver_ids,
            h=decision.pair.h,
            s=decision.pair.s,
            obj=obj,
        )

    def build(self, spec: ClusterSpec, trace: Trace) -> LayoutView:
        params = CostModelParams.from_cluster(spec)
        layouts: dict[str, Layout] = {}
        self.decisions: dict[str, StripePair] = {}
        for file in trace.files():
            sub = trace.for_file(file).sorted_by_offset()
            conc_map = concurrency_of(sub)
            burst_map = burst_ids_of(sub)
            _, extent_end = sub.extent()
            regions = []
            bounds = self._region_bounds(extent_end, sub.max_size())
            for idx, (start, end) in enumerate(bounds):
                layout = self._optimize_region(
                    params, spec, sub, conc_map, burst_map, start, end,
                    obj=f"{file}/r{idx}",
                )
                if isinstance(layout, VariedStripeLayout):
                    self.decisions[f"{file}/r{idx}"] = StripePair(layout.h, layout.s)
                regions.append(Region(start=start, end=end, layout=layout))
            layouts[file] = RegionLayout(regions, obj=file)
        from ..layouts.fixed import FixedStripeLayout

        default = FixedStripeLayout(spec.server_ids, DEFAULT_STRIPE, obj="file")
        return LayoutView(layouts, default=default)

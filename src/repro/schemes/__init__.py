"""Layout schemes: DEF, AAL, HARL (baselines) and MHA (the contribution)."""

from .aal import AALScheme
from .base import LayoutView, Scheme
from .default import DEFAULT_STRIPE, DEFScheme
from .harl import HARLScheme
from .mha import MHAScheme
from .registry import SCHEMES, build_view, make_scheme, scheme_names

__all__ = [
    "Scheme",
    "LayoutView",
    "DEFScheme",
    "DEFAULT_STRIPE",
    "AALScheme",
    "HARLScheme",
    "MHAScheme",
    "SCHEMES",
    "make_scheme",
    "build_view",
    "scheme_names",
]

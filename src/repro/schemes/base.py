"""Scheme interface: from a (cluster, trace) pair to a runtime file view.

A *scheme* is a layout policy — DEF, AAL, HARL or MHA.  Building a
scheme performs whatever off-line analysis the policy calls for and
returns a *file view*: the runtime object the PFS client maps requests
through (see :class:`repro.pfs.replay.FileView`).
"""

from __future__ import annotations

import abc
from typing import Sequence

from ..cluster import ClusterSpec
from ..contracts import twin_of
from ..exceptions import LayoutError
from ..layouts.base import Layout, SubRequest
from ..layouts.batch import MergedRuns, merged_runs_of
from ..tracing.record import Trace

__all__ = ["LayoutView", "Scheme"]


class LayoutView:
    """A static per-file layout table (what DEF/AAL/HARL resolve to)."""

    def __init__(self, layouts: dict[str, Layout], default: Layout | None = None) -> None:
        self._layouts = dict(layouts)
        self._default = default

    def layout_for(self, file: str) -> Layout:
        layout = self._layouts.get(file, self._default)
        if layout is None:
            raise LayoutError(f"no layout for file {file!r} and no default")
        return layout

    def map_request(self, file: str, offset: int, length: int) -> list[SubRequest]:
        """Resolve a request through the file's static layout."""
        return self.layout_for(file).map_extent(offset, length)

    @twin_of(
        "repro.schemes.base:LayoutView.map_request",
        param_map={"offset": "offsets", "length": "lengths"},
        harness="layout_view_map",
    )
    def map_requests(
        self, file: str, offsets: Sequence[int], lengths: Sequence[int]
    ) -> list[list[SubRequest]]:
        """Batch :meth:`map_request` for one file (vectorized where the
        layout provides a batch kernel)."""
        return self.layout_for(file).map_extents(offsets, lengths)

    @twin_of(
        "repro.schemes.base:LayoutView.map_request",
        kind="reduction",
        param_map={"offset": "offsets", "length": "lengths"},
        harness="layout_view_runs",
    )
    def merged_runs(
        self, file: str, offsets: Sequence[int], lengths: Sequence[int]
    ) -> MergedRuns:
        """Columnar merged runs for a batch of requests against one file."""
        return merged_runs_of(self.layout_for(file), offsets, lengths)

    def files(self) -> tuple[str, ...]:
        return tuple(self._layouts)


class Scheme(abc.ABC):
    """A data layout policy with an off-line build step."""

    #: short identifier used in reports ("DEF", "AAL", "HARL", "MHA")
    name: str = "?"

    @abc.abstractmethod
    def build(self, spec: ClusterSpec, trace: Trace):
        """Analyze ``trace`` for ``spec`` and return a file view."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

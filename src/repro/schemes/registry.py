"""Scheme registry: look schemes up by the names the paper's figures use."""

from __future__ import annotations

from typing import Callable

from ..cluster import ClusterSpec
from ..tracing.record import Trace
from .aal import AALScheme
from .base import Scheme
from .catalog import SCHEMES, make_scheme
from .default import DEFScheme
from .harl import HARLScheme
from .mha import MHAScheme
from .straggler import StragglerAwareScheme

__all__ = ["SCHEMES", "make_scheme", "build_view", "scheme_names"]


def _mha_saw(**kwargs) -> StragglerAwareScheme:
    """The composed variant: straggler-aware dispatch over MHA's layout."""
    return StragglerAwareScheme(base="MHA", **kwargs)


# the catalog dict lives in the leaf module; fill it here, where every
# scheme class is importable without cycles
SCHEMES.update(
    {
        "DEF": DEFScheme,
        "AAL": AALScheme,
        "HARL": HARLScheme,
        "MHA": MHAScheme,
        "SAW": StragglerAwareScheme,
        "STRAGGLER": StragglerAwareScheme,
        "MHA+SAW": _mha_saw,
    }
)


def scheme_names() -> tuple[str, ...]:
    """The comparison order used throughout the paper's figures."""
    return ("DEF", "AAL", "HARL", "MHA")


def build_view(name: str, spec: ClusterSpec, trace: Trace, **kwargs):
    """One-shot: instantiate scheme ``name`` and build its file view."""
    return make_scheme(name, **kwargs).build(spec, trace)

"""Scheme registry: look schemes up by the names the paper's figures use."""

from __future__ import annotations

from typing import Callable

from ..cluster import ClusterSpec
from ..exceptions import ConfigurationError
from ..tracing.record import Trace
from .aal import AALScheme
from .base import Scheme
from .default import DEFScheme
from .harl import HARLScheme
from .mha import MHAScheme
from .straggler import StragglerAwareScheme

__all__ = ["SCHEMES", "make_scheme", "build_view", "scheme_names"]


def _mha_saw(**kwargs) -> StragglerAwareScheme:
    """The composed variant: straggler-aware dispatch over MHA's layout."""
    return StragglerAwareScheme(base="MHA", **kwargs)


SCHEMES: dict[str, Callable[..., Scheme]] = {
    "DEF": DEFScheme,
    "AAL": AALScheme,
    "HARL": HARLScheme,
    "MHA": MHAScheme,
    "SAW": StragglerAwareScheme,
    "STRAGGLER": StragglerAwareScheme,
    "MHA+SAW": _mha_saw,
}


def scheme_names() -> tuple[str, ...]:
    """The comparison order used throughout the paper's figures."""
    return ("DEF", "AAL", "HARL", "MHA")


def make_scheme(name: str, **kwargs) -> Scheme:
    """Instantiate a scheme by name (case-insensitive)."""
    try:
        factory = SCHEMES[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None
    return factory(**kwargs)


def build_view(name: str, spec: ClusterSpec, trace: Trace, **kwargs):
    """One-shot: instantiate scheme ``name`` and build its file view."""
    return make_scheme(name, **kwargs).build(spec, trace)

"""DEF — the default PFS layout baseline.

"For DEF, the data are placed on servers with the default stripe size
of 64KB" (§V-A): fixed 64 KB round-robin striping over every server,
oblivious to both the access pattern and the server types.
"""

from __future__ import annotations

from ..cluster import ClusterSpec
from ..layouts.fixed import FixedStripeLayout
from ..tracing.record import Trace
from ..units import KiB
from .base import LayoutView, Scheme

__all__ = ["DEFScheme", "DEFAULT_STRIPE"]

#: OrangeFS's default stripe size
DEFAULT_STRIPE = 64 * KiB


class DEFScheme(Scheme):
    """Fixed 64 KB round-robin striping (pattern- and server-oblivious)."""

    name = "DEF"

    def __init__(self, stripe: int = DEFAULT_STRIPE) -> None:
        if stripe <= 0:
            raise ValueError(f"stripe must be > 0, got {stripe}")
        self.stripe = stripe

    def build(self, spec: ClusterSpec, trace: Trace) -> LayoutView:
        layouts = {
            file: FixedStripeLayout(spec.server_ids, self.stripe, obj=file)
            for file in trace.files()
        }
        # unseen files get the same policy
        default = FixedStripeLayout(spec.server_ids, self.stripe, obj="file")
        return LayoutView(layouts, default=default)

"""Straggler-aware dispatch: a client-side competitor/composition scheme.

The paper's schemes assume servers are only *statically* heterogeneous
(HDD vs SSD); the straggler literature (Tavakoli/Dai/Chen, PAPERS.md)
adds the dynamic case — servers that are temporarily slow (GC pauses,
scrubs, rebuilds, write cliffs).  :class:`StragglerAwareScheme` wraps
any base scheme (DEF by default, MHA for the composed ``MHA+SAW``
variant) with a client-side dispatcher that:

* maintains a per-server **latency EWMA** (:class:`LatencyEWMA`) fed by
  completion-time observations (the ``observe_latency`` hook the event
  replay engine wires through ``HybridPFS.issue`` — a dispatcher only
  ever learns from sub-requests that already finished);
* classifies a server as a **straggler** when its estimate exceeds
  ``threshold`` × the median estimate across sampled servers;
* **redirects writes** away from stragglers into per-target overflow
  objects, bounded by a byte budget (the "bounded replication" knob:
  the redirected extent's authoritative replica lives on the chosen
  healthy server; a :class:`~repro.core.drt.DRT` records the move so
  later reads and re-writes are steered to it);
* **reorders sub-request dispatch** slowest-server-first.  The replay
  client issues a request's sub-requests at one simulated instant, so
  this ordering cannot change finish times here (simultaneous issue
  already subsumes the overlap benefit reordering buys a serial
  client); it is kept as an explicit, observable dispatch policy — the
  completion list and event order follow it.

The view *requires the event engine*: its mapping depends on latency
observations accumulated during the replay, which the flat kernel's
pre-mapping pass cannot provide.  ``requires_event_engine = True``
makes :func:`repro.pfs.replay.replay_trace` fall back automatically.
"""

from __future__ import annotations

from ..cluster import ClusterSpec
from ..core.drt import DRT, DRTEntry
from ..exceptions import ConfigurationError
from ..layouts.base import SubRequest
from ..layouts.batch import merge_fragments
from ..tracing.record import Trace
from .base import Scheme
from .catalog import make_scheme

__all__ = [
    "DEFAULT_EWMA_ALPHA",
    "DEFAULT_MIN_SAMPLES",
    "DEFAULT_REPLICATION_FRACTION",
    "DEFAULT_STRAGGLER_THRESHOLD",
    "LatencyEWMA",
    "StragglerAwareScheme",
    "StragglerAwareView",
]

#: EWMA smoothing weight for new latency observations
DEFAULT_EWMA_ALPHA = 0.3
#: straggler test: estimate > threshold * median(estimates)
DEFAULT_STRAGGLER_THRESHOLD = 1.5
#: observations a server needs before it can be classified at all
DEFAULT_MIN_SAMPLES = 4
#: default write-redirection budget, as a fraction of the trace's bytes
DEFAULT_REPLICATION_FRACTION = 0.5

#: overflow objects are named per target server and can never collide
#: with application file names (the replay namespace has no "~" files)
_OVERFLOW_PREFIX = "~saw"


class LatencyEWMA:
    """Per-server latency estimates: EWMA update plus staleness decay.

    ``observe`` folds a new sample in with weight ``alpha`` (the first
    sample initializes the mean).  ``estimate`` optionally decays the
    stored mean toward zero with half-life ``half_life`` seconds of
    *silence* — a server nobody has heard from recently drifts back
    toward "presumed healthy" and gets retried, which is what lets the
    dispatcher notice a straggler recovering.  ``half_life=None``
    disables decay.
    """

    def __init__(
        self,
        num_servers: int,
        alpha: float = DEFAULT_EWMA_ALPHA,
        half_life: float | None = None,
    ) -> None:
        if num_servers <= 0:
            raise ConfigurationError("num_servers must be > 0")
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if half_life is not None and half_life <= 0:
            raise ConfigurationError(f"half_life must be > 0, got {half_life}")
        self.alpha = alpha
        self.half_life = half_life
        self._mean = [0.0] * num_servers
        self._count = [0] * num_servers
        self._stamp = [0.0] * num_servers

    def __len__(self) -> int:
        return len(self._mean)

    def observe(self, server: int, latency: float, now: float) -> None:
        """Fold one completed sub-request's latency into the estimate."""
        if self._count[server] == 0:
            self._mean[server] = latency
        else:
            self._mean[server] += self.alpha * (latency - self._mean[server])
        self._count[server] += 1
        if now > self._stamp[server]:
            self._stamp[server] = now

    def count(self, server: int) -> int:
        """Observations folded into ``server``'s estimate so far."""
        return self._count[server]

    def estimate(self, server: int, now: float) -> float:
        """The (possibly decayed) latency estimate at time ``now``."""
        mean = self._mean[server]
        if self.half_life is None:
            return mean
        age = now - self._stamp[server]
        if age <= 0:
            return mean
        return mean * 0.5 ** (age / self.half_life)

    def estimates(self, now: float) -> list[float]:
        """All per-server estimates at time ``now``."""
        return [self.estimate(server, now) for server in range(len(self._mean))]


class StragglerAwareView:
    """Runtime dispatcher wrapping a base scheme's file view.

    See the module docstring for the policy.  The view exposes three
    protocols the replay engine probes for:

    * ``map_request`` — read-semantics mapping (follow existing
      redirects, never create new ones); this is also what external
      tools resolving the view see;
    * ``dispatch_request(op, file, offset, length)`` — the op-aware
      path the event replay uses: writes may be redirected away from
      stragglers, and the returned runs are pre-merged and ordered
      slowest-server-first (dispatch order);
    * ``observe_latency(server, latency, finish)`` — completion-time
      feedback updating the EWMAs.
    """

    #: replays through this view must use the event engine: mapping
    #: decisions depend on completion-time feedback
    requires_event_engine = True

    def __init__(
        self,
        inner,
        num_servers: int,
        *,
        replication_budget: int,
        alpha: float = DEFAULT_EWMA_ALPHA,
        half_life: float | None = None,
        threshold: float = DEFAULT_STRAGGLER_THRESHOLD,
        min_samples: int = DEFAULT_MIN_SAMPLES,
    ) -> None:
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
        if min_samples < 1:
            raise ConfigurationError(f"min_samples must be >= 1, got {min_samples}")
        if replication_budget < 0:
            raise ConfigurationError("replication_budget must be >= 0")
        self.inner = inner
        self.ewma = LatencyEWMA(num_servers, alpha=alpha, half_life=half_life)
        self.threshold = threshold
        self.min_samples = min_samples
        self.replication_budget = int(replication_budget)
        #: bytes redirected so far (never exceeds the budget)
        self.replicated_bytes = 0
        #: count of redirected stripe fragments
        self.redirected_fragments = 0
        self._num_servers = num_servers
        self._drt = DRT()
        self._overflow_server: dict[str, int] = {}
        self._overflow_cursor: dict[str, int] = {}
        # latest completion time observed — "now" for estimate decay
        self._now = 0.0

    # -- feedback --------------------------------------------------------

    def observe_latency(self, server: int, latency: float, finish: float) -> None:
        """Completion-time hook wired through ``HybridPFS.issue``."""
        if finish > self._now:
            self._now = finish
        self.ewma.observe(server, latency, finish)

    # -- classification --------------------------------------------------

    def stragglers(self) -> set[int]:
        """Servers currently classified as stragglers.

        A server qualifies once it has ``min_samples`` observations and
        its estimate exceeds ``threshold`` × the median estimate over
        all sampled servers (at least two servers must be sampled — a
        lone estimate has nothing to be slow *relative to*).
        """
        sampled = [
            server
            for server in range(self._num_servers)
            if self.ewma.count(server) >= self.min_samples
        ]
        if len(sampled) < 2:
            return set()
        estimates = {s: self.ewma.estimate(s, self._now) for s in sampled}
        ordered = sorted(estimates.values())
        median = ordered[(len(ordered) - 1) // 2]
        if median <= 0:
            return set()
        cut = self.threshold * median
        return {s for s in sampled if estimates[s] > cut}

    def _pick_target(self, stragglers: set[int]) -> int | None:
        """The healthy server with the lowest estimate (ties: lowest
        index); ``None`` when every server is straggling."""
        best: int | None = None
        best_estimate = 0.0
        for server in range(self._num_servers):
            if server in stragglers:
                continue
            estimate = self.ewma.estimate(server, self._now)
            if best is None or estimate < best_estimate:
                best = server
                best_estimate = estimate
        return best

    # -- mapping ---------------------------------------------------------

    def _overflow_fragment(self, piece) -> SubRequest:
        return SubRequest(
            server=self._overflow_server[piece.file],
            obj=piece.file,
            offset=piece.offset,
            length=piece.length,
            logical_offset=piece.logical_offset,
        )

    def map_request(self, file: str, offset: int, length: int) -> list[SubRequest]:
        """Read-semantics mapping: steer through existing redirects,
        fall through to the base scheme elsewhere; never redirects."""
        fragments: list[SubRequest] = []
        for piece in self._drt.translate(file, offset, length):
            if piece.mapped:
                fragments.append(self._overflow_fragment(piece))
            else:
                fragments.extend(
                    self.inner.map_request(file, piece.offset, piece.length)
                )
        return fragments

    def _redirect(self, file: str, frag: SubRequest, target: int) -> SubRequest:
        """Move one write fragment to ``target``'s overflow object and
        record the relocation in the DRT."""
        obj = f"{_OVERFLOW_PREFIX}{target}"
        cursor = self._overflow_cursor.get(obj, 0)
        self._drt.add(
            DRTEntry(
                o_file=file,
                o_offset=frag.logical_offset,
                length=frag.length,
                r_file=obj,
                r_offset=cursor,
            )
        )
        self._overflow_server[obj] = target
        self._overflow_cursor[obj] = cursor + frag.length
        self.replicated_bytes += frag.length
        self.redirected_fragments += 1
        return SubRequest(
            server=target,
            obj=obj,
            offset=cursor,
            length=frag.length,
            logical_offset=frag.logical_offset,
        )

    def dispatch_request(
        self, op: str, file: str, offset: int, length: int
    ) -> list[SubRequest]:
        """Op-aware dispatch: merged runs, slowest-server-first.

        Writes targeting a straggler are redirected to the healthiest
        server while the replication budget lasts; reads (and writes
        of already-redirected extents) are steered through the DRT.
        """
        if op != "write":
            return self._ordered(merge_fragments(self.map_request(file, offset, length)))
        stragglers = self.stragglers()
        target = self._pick_target(stragglers) if stragglers else None
        fragments: list[SubRequest] = []
        for piece in self._drt.translate(file, offset, length):
            if piece.mapped:
                fragments.append(self._overflow_fragment(piece))
                continue
            for frag in self.inner.map_request(file, piece.offset, piece.length):
                if (
                    target is not None
                    and frag.server in stragglers
                    and self.replication_budget - self.replicated_bytes >= frag.length
                ):
                    fragments.append(self._redirect(file, frag, target))
                else:
                    fragments.append(frag)
        return self._ordered(merge_fragments(fragments))

    def _ordered(self, merged: list[SubRequest]) -> list[SubRequest]:
        """Dispatch order: slowest estimated server first (stable, so
        equal-estimate runs keep the merge's logical order)."""
        if len(merged) < 2:
            return merged
        now = self._now
        estimate = self.ewma.estimate
        return sorted(merged, key=lambda f: -estimate(f.server, now))


class StragglerAwareScheme(Scheme):
    """Wrap a base scheme with the straggler-aware dispatcher.

    ``base`` names any registered scheme ("DEF" by default; "MHA"
    composes the dispatcher with the migratory layout — the registry's
    ``MHA+SAW``).  The replication budget is
    ``replication_fraction`` × the profile trace's total bytes.
    """

    name = "SAW"

    def __init__(
        self,
        base: str = "DEF",
        *,
        alpha: float = DEFAULT_EWMA_ALPHA,
        half_life: float | None = None,
        threshold: float = DEFAULT_STRAGGLER_THRESHOLD,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        replication_fraction: float = DEFAULT_REPLICATION_FRACTION,
        base_kwargs: dict | None = None,
    ) -> None:
        if replication_fraction < 0:
            raise ConfigurationError(
                f"replication_fraction must be >= 0, got {replication_fraction}"
            )
        self.base = base
        self.alpha = alpha
        self.half_life = half_life
        self.threshold = threshold
        self.min_samples = min_samples
        self.replication_fraction = replication_fraction
        self.base_kwargs = dict(base_kwargs or {})
        upper = base.upper()
        if upper != "DEF":
            self.name = f"{upper}+SAW"

    def build(self, spec: ClusterSpec, trace: Trace) -> StragglerAwareView:
        inner = make_scheme(self.base, **self.base_kwargs).build(spec, trace)
        budget = int(self.replication_fraction * trace.total_bytes())
        return StragglerAwareView(
            inner,
            spec.num_servers,
            replication_budget=budget,
            alpha=self.alpha,
            half_life=self.half_life,
            threshold=self.threshold,
            min_samples=self.min_samples,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(base={self.base!r})"

"""MHA — the paper's migratory heterogeneity-aware scheme.

A thin scheme wrapper over :class:`repro.core.pipeline.MHAPipeline`:
building it runs the full reordering + determination + placement
workflow and returns the runtime :class:`~repro.core.redirector.Redirector`
(which satisfies the replay engine's file-view protocol).  The last
built :class:`~repro.core.pipeline.MHAPlan` stays available on
``self.plan`` for inspection (regions, stripe pairs, DRT size,
migration volume).
"""

from __future__ import annotations

from ..cluster import ClusterSpec
from ..core.pipeline import MHAPipeline, MHAPlan
from ..core.redirector import Redirector
from ..tracing.record import Trace
from .base import Scheme

__all__ = ["MHAScheme"]


class MHAScheme(Scheme):
    """Data reordering + adaptive varied striping (the contribution)."""

    name = "MHA"

    def __init__(self, **pipeline_kwargs) -> None:
        self.pipeline_kwargs = pipeline_kwargs
        self.plan: MHAPlan | None = None

    def build(self, spec: ClusterSpec, trace: Trace) -> Redirector:
        pipeline = MHAPipeline(spec, **self.pipeline_kwargs)
        self.plan = pipeline.plan(trace)
        return self.plan.redirector

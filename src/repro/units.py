"""Byte-size and time-unit helpers used throughout the library.

The paper quotes sizes in the binary convention ("64KB" stripes mean
65536 bytes), so :func:`parse_size` follows the binary interpretation
for the ``KB``/``MB``/``GB`` suffixes, matching what OrangeFS and the
IOR benchmark mean by those strings.  All simulated times are plain
floats in seconds.
"""

from __future__ import annotations

import re

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "parse_size",
    "format_size",
    "format_bandwidth",
    "format_time",
]

#: one kibibyte in bytes
KiB: int = 1024
#: one mebibyte in bytes
MiB: int = 1024 * KiB
#: one gibibyte in bytes
GiB: int = 1024 * MiB

_SIZE_RE = re.compile(
    r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([KMGT]i?B?|B)?\s*$", re.IGNORECASE
)

_MULTIPLIERS = {
    None: 1,
    "B": 1,
    "K": KiB,
    "M": MiB,
    "G": GiB,
    "T": 1024 * GiB,
}


def parse_size(value: int | float | str) -> int:
    """Parse a human-readable size into a byte count.

    Accepts plain integers (returned unchanged), floats (rounded), and
    strings such as ``"64KB"``, ``"4 KiB"``, ``"1.5MB"`` or ``"512"``.
    Suffixes are interpreted in the binary convention used by the paper
    (``64KB`` == 65536 bytes).

    >>> parse_size("64KB")
    65536
    >>> parse_size(4096)
    4096
    """
    if isinstance(value, bool):  # bool is an int subclass; reject it
        raise TypeError("size must be an int, float or str, not bool")
    if isinstance(value, int):
        if value < 0:
            raise ValueError(f"size must be non-negative, got {value}")
        return value
    if isinstance(value, float):
        if value < 0:
            raise ValueError(f"size must be non-negative, got {value}")
        return int(round(value))
    if not isinstance(value, str):
        raise TypeError(f"size must be an int, float or str, got {type(value)!r}")
    m = _SIZE_RE.match(value)
    if m is None:
        raise ValueError(f"unparseable size string: {value!r}")
    number = float(m.group(1))
    suffix = m.group(2)
    key = None if suffix is None else suffix[0].upper()
    if key == "B":
        key = "B"
    mult = _MULTIPLIERS[key]
    return int(round(number * mult))


def format_size(nbytes: int) -> str:
    """Format a byte count with the largest whole binary unit.

    >>> format_size(65536)
    '64KiB'
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    for unit, width in (("TiB", 1024 * GiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if nbytes >= width:
            value = nbytes / width
            if value.is_integer():
                return f"{int(value)}{unit}"
            return f"{value:.2f}{unit}"
    return f"{nbytes}B"


def format_bandwidth(bytes_per_second: float) -> str:
    """Format a bandwidth in MiB/s, the unit the paper's figures use."""
    return f"{bytes_per_second / MiB:.2f} MiB/s"


def format_time(seconds: float) -> str:
    """Format a duration with an appropriate unit (s / ms / us)."""
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"

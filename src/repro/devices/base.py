"""Storage device model interface.

The paper's cost model (Table I) characterizes each server's storage by
an *average startup time* ``alpha`` and a *unit-data transfer time*
``beta`` — i.e. servicing ``n`` bytes costs ``alpha + n * beta``, with
read/write-specific values for SSDs.  Device models here implement that
affine service-time law, plus one refinement the affine law abstracts
away: **sequential-access startup amortization**.  On a real HDD, a
sub-request that continues exactly where the previous one ended pays no
seek, which is why the paper observes bandwidth rising with request
size ("the increasingly amortized disk seek time", §V-B).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

__all__ = ["Device", "OpType", "READ", "WRITE"]

#: request operation types, matching the trace "request type" field
OpType = str
READ: OpType = "read"
WRITE: OpType = "write"


@dataclass
class Device(abc.ABC):
    """Abstract storage device.

    Concrete devices define startup and per-byte costs; the PFS server
    calls :meth:`service_time` for each sub-request and tracks the last
    accessed byte so that sequential continuation can be detected.

    ``channels`` is the device's internal parallelism: how many
    sub-requests it can service concurrently (1 for a disk head,
    several for a flash channel array).  The server's device stage uses
    it as queue capacity.
    """

    name: str = "device"
    channels: int = 1

    @abc.abstractmethod
    def startup_time(self, op: OpType, sequential: bool) -> float:
        """Seconds of fixed cost to begin a transfer.

        ``sequential`` is True when the transfer begins exactly where
        the device's previous transfer ended (no repositioning needed).
        """

    @abc.abstractmethod
    def transfer_time(self, op: OpType, nbytes: int) -> float:
        """Seconds to move ``nbytes`` once positioned."""

    def service_time(self, op: OpType, nbytes: int, sequential: bool = False) -> float:
        """Total device-side service time for one sub-request."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.startup_time(op, sequential) + self.transfer_time(op, nbytes)

    @abc.abstractmethod
    def alpha(self, op: OpType) -> float:
        """Average startup time for the cost model (Table I alpha)."""

    @abc.abstractmethod
    def beta(self, op: OpType) -> float:
        """Unit-data transfer time for the cost model (Table I beta)."""


def _check_positive(**kwargs: float) -> None:
    for key, value in kwargs.items():
        if value < 0:
            raise ValueError(f"{key} must be non-negative, got {value}")

"""Derive cost-model parameters from device models, and vice versa.

MHA's layout determinator needs the Table I parameters
(``alpha_h``, ``beta_h``, ``alpha_sr`` ...).  On the paper's testbed
these are measured by profiling the servers; here they are read off the
device models (:func:`params_from_devices`) — the honest equivalent of
a perfectly calibrated profile — or *estimated* from observed
(size, time) samples via least squares (:func:`fit_affine`), which is
what a real deployment's calibration run would do.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..units import KiB, MiB
from .base import Device, READ, WRITE

__all__ = ["fit_affine", "measure_device", "AffineFit"]


class AffineFit:
    """Result of fitting ``time = alpha + beta * nbytes``."""

    __slots__ = ("alpha", "beta", "residual")

    def __init__(self, alpha: float, beta: float, residual: float) -> None:
        self.alpha = alpha
        self.beta = beta
        self.residual = residual

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AffineFit(alpha={self.alpha:.3e}, beta={self.beta:.3e})"


def fit_affine(sizes: Sequence[int], times: Sequence[float]) -> AffineFit:
    """Least-squares fit of the cost model's affine service-time law.

    Negative fitted intercepts are clamped to zero (a startup time
    cannot be negative; tiny negative values arise from noise).
    """
    x = np.asarray(sizes, dtype=np.float64)
    y = np.asarray(times, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("sizes and times must be 1-D sequences of equal length")
    if x.size < 2:
        raise ValueError("need at least two samples to fit alpha and beta")
    design = np.column_stack([np.ones_like(x), x])
    coef, residual, _rank, _sv = np.linalg.lstsq(design, y, rcond=None)
    alpha = float(max(coef[0], 0.0))
    beta = float(max(coef[1], 0.0))
    res = float(residual[0]) if residual.size else 0.0
    return AffineFit(alpha, beta, res)


def measure_device(
    device: Device,
    op: str,
    sizes: Sequence[int] = (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, MiB),
) -> AffineFit:
    """Probe a device model at several sizes and fit alpha/beta.

    This mimics the calibration micro-benchmark a deployment would run:
    issue random-access requests of increasing size, time them, and fit
    the affine law.  For our analytic device models the fit recovers the
    model's own parameters exactly (a useful test invariant).
    """
    if op not in (READ, WRITE):
        raise ValueError(f"op must be 'read' or 'write', got {op!r}")
    times = [device.service_time(op, n, sequential=False) for n in sizes]
    return fit_affine(list(sizes), times)

"""Hard disk drive model (the paper's HServer storage).

Calibrated by default to a 250 GB SATA-II disk of the paper's SUN Fire
cluster era behind a busy parallel-file-server: ~60 MiB/s *effective*
transfer under interleaved multi-process load (the raw platter rate is
higher, but head switches between concurrent streams eat into it), and
a flat ~2.5 ms positioning cost per sub-request — under PFS service,
requests from many processes interleave at the disk, so virtually every
sub-request repositions; the I/O scheduler and NCQ soak up part of the
raw 4-5 ms mechanical seek, and by default no sequential discount
remains (``sequential_startup == seek_time``, so the cost model's
single average ``alpha_h`` of Table I is *exact*).  Deployments that
want to study stream-detection effects can lower
``sequential_startup`` and the server's stream tracker will apply it.
These values put the HServer:SServer service-time ratio for 64 KB
requests near the 3.5x load skew the paper measures (§I), with the
paper's qualitative regimes: small random requests are an order of
magnitude cheaper on SServers, while large streaming requests amortize
the HServer startup and keep HServers worth striping onto.  Reads and
writes are treated symmetrically, as the paper's cost model does for
HServers (a single ``alpha_h`` / ``beta_h`` pair in Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import MiB
from .base import Device, OpType, _check_positive

__all__ = ["HDD"]


@dataclass
class HDD(Device):
    """Rotational disk with seek-dominated startup.

    Parameters
    ----------
    seek_time:
        Average positioning time for a random access (seconds).
    sequential_startup:
        Residual startup for a sequential continuation (seconds); real
        disks still pay controller/command overhead.
    bandwidth:
        Sustained media transfer rate, bytes/second.
    """

    name: str = "hdd"
    channels: int = 1  # one head assembly: strictly serial media access
    seek_time: float = 2.5e-3
    sequential_startup: float = 2.5e-3
    bandwidth: float = 60.0 * MiB

    def __post_init__(self) -> None:
        _check_positive(
            seek_time=self.seek_time,
            sequential_startup=self.sequential_startup,
        )
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")

    def startup_time(self, op: OpType, sequential: bool) -> float:
        return self.sequential_startup if sequential else self.seek_time

    def transfer_time(self, op: OpType, nbytes: int) -> float:
        return nbytes / self.bandwidth

    def alpha(self, op: OpType) -> float:
        """Table I ``alpha_h`` — the *average* storage startup time.

        The calibration a real deployment measures mixes sequential
        continuations with repositionings; the midpoint of the two
        regimes is that average for a balanced mix.
        """
        return 0.5 * (self.seek_time + self.sequential_startup)

    def beta(self, op: OpType) -> float:
        """Unit transfer time (Table I ``beta_h``), seconds per byte."""
        return 1.0 / self.bandwidth

"""Storage device models: HDD (HServer) and SSD (SServer) substrates."""

from .base import Device, OpType, READ, WRITE
from .calibrate import AffineFit, fit_affine, measure_device
from .hdd import HDD
from .ssd import SSD

__all__ = [
    "Device",
    "OpType",
    "READ",
    "WRITE",
    "HDD",
    "SSD",
    "AffineFit",
    "fit_affine",
    "measure_device",
]

"""Solid state drive model (the paper's SServer storage).

SSDs have near-zero positioning cost and *asymmetric* read/write
performance, which the paper models with separate
``alpha_sr``/``beta_sr`` (read) and ``alpha_sw``/``beta_sw`` (write)
parameters in Table I.  Defaults approximate the PCIe x4 100 GB SSDs of
the paper's testbed: ~420 MiB/s reads, ~310 MiB/s writes, startup well
under 0.2 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import MiB
from .base import Device, OpType, READ, _check_positive

__all__ = ["SSD"]


@dataclass
class SSD(Device):
    """Flash device with asymmetric read/write costs and tiny startup."""

    name: str = "ssd"
    #: flash channel parallelism: concurrent small requests overlap,
    #: which is a large part of why SSDs absorb concurrency so well
    channels: int = 4
    read_startup: float = 0.08e-3
    write_startup: float = 0.15e-3
    read_bandwidth: float = 420.0 * MiB
    write_bandwidth: float = 310.0 * MiB

    def __post_init__(self) -> None:
        _check_positive(
            read_startup=self.read_startup, write_startup=self.write_startup
        )
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("SSD bandwidths must be > 0")

    def startup_time(self, op: OpType, sequential: bool) -> float:
        # Flash has no mechanical positioning: sequentiality does not
        # change the (already small) command overhead.
        return self.read_startup if op == READ else self.write_startup

    def transfer_time(self, op: OpType, nbytes: int) -> float:
        bw = self.read_bandwidth if op == READ else self.write_bandwidth
        return nbytes / bw

    def alpha(self, op: OpType) -> float:
        """Table I ``alpha_sr`` / ``alpha_sw`` depending on ``op``."""
        return self.read_startup if op == READ else self.write_startup

    def beta(self, op: OpType) -> float:
        """Table I ``beta_sr`` / ``beta_sw`` depending on ``op``."""
        bw = self.read_bandwidth if op == READ else self.write_bandwidth
        return 1.0 / bw

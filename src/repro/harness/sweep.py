"""Generic parameter sweeps over (cluster, workload, scheme) space.

The per-figure entry points in :mod:`repro.harness.figures` hard-code
the paper's sweeps; :func:`sweep` is the general tool behind them for
exploring beyond the paper — vary any workload constructor argument or
the cluster shape, get a :class:`~repro.harness.report.FigureResult`
back, and print or bar-chart it like any reproduced figure.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..cluster import ClusterSpec
from ..tracing.record import Trace
from .experiment import compare_schemes
from .report import FigureResult, bandwidth_mib

__all__ = ["sweep", "SweepPoint"]


class SweepPoint:
    """One sweep coordinate: a label plus its cluster and trace."""

    __slots__ = ("label", "spec", "trace")

    def __init__(self, label: str, spec: ClusterSpec, trace: Trace) -> None:
        self.label = label
        self.spec = spec
        self.trace = trace


def sweep(
    points: Iterable[SweepPoint],
    schemes: Sequence[str] | None = None,
    *,
    title: str = "custom sweep",
    figure: str = "sweep",
    scheme_kwargs: dict[str, dict] | None = None,
) -> FigureResult:
    """Run every scheme on every sweep point.

    Example — vary the request size::

        points = [
            SweepPoint(f"{k}KiB", spec,
                       IORWorkload(request_sizes=k * KiB,
                                   total_size=16 * MiB).trace("write"))
            for k in (16, 64, 256)
        ]
        print(sweep(points))
    """
    result = FigureResult(figure=figure, title=title)
    for point in points:
        comparison = compare_schemes(
            point.spec,
            point.trace,
            tuple(schemes) if schemes else None,
            label=point.label,
            scheme_kwargs=scheme_kwargs,
        )
        for name, run in comparison.runs.items():
            result.add(point.label, name, bandwidth_mib(run.metrics.bandwidth))
    return result


def grid(
    labels_and_values: Sequence[tuple[str, object]],
    make_point: Callable[[object], SweepPoint],
) -> list[SweepPoint]:
    """Small helper: build sweep points from (label, value) pairs."""
    return [make_point(value) for _label, value in labels_and_values]

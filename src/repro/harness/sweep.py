"""Generic parameter sweeps over (cluster, workload, scheme) space.

The per-figure entry points in :mod:`repro.harness.figures` hard-code
the paper's sweeps; :func:`sweep` is the general tool behind them for
exploring beyond the paper — vary any workload constructor argument or
the cluster shape, get a :class:`~repro.harness.report.FigureResult`
back, and print or bar-chart it like any reproduced figure.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..cluster import ClusterSpec
from ..core.parallel import parallel_map
from ..effects import effects
from ..schemes.registry import scheme_names
from ..tracing.record import Trace
from .experiment import SchemeRun, run_scheme
from .report import FigureResult, bandwidth_mib

__all__ = ["sweep", "SweepPoint"]


class SweepPoint:
    """One sweep coordinate: a label plus its cluster and trace."""

    __slots__ = ("label", "spec", "trace")

    def __init__(self, label: str, spec: ClusterSpec, trace: Trace) -> None:
        self.label = label
        self.spec = spec
        self.trace = trace


@effects("READS_CONFIG", "IO")
def _sweep_cell(
    task: tuple[str, ClusterSpec, Trace, str, dict | None, str | None],
) -> SchemeRun:
    """Module-level (picklable) task body for one point × scheme cell."""
    name, spec, trace, _label, kwargs, engine = task
    return run_scheme(name, spec, trace, scheme_kwargs=kwargs, engine=engine)


def sweep(
    points: Iterable[SweepPoint],
    schemes: Sequence[str] | None = None,
    *,
    title: str = "custom sweep",
    figure: str = "sweep",
    scheme_kwargs: dict[str, dict] | None = None,
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """Run every scheme on every sweep point.

    Every (point, scheme) cell is independent, so the whole grid is
    flattened and fanned out across ``n_jobs`` processes (default 1 =
    serial; ``None`` defers to ``REPRO_JOBS``/CPU count).  ``engine``
    picks the replay engine for every cell.

    Example — vary the request size::

        points = [
            SweepPoint(f"{k}KiB", spec,
                       IORWorkload(request_sizes=k * KiB,
                                   total_size=16 * MiB).trace("write"))
            for k in (16, 64, 256)
        ]
        print(sweep(points))
    """
    names = tuple(schemes) if schemes else scheme_names()
    kwargs = scheme_kwargs or {}
    point_list = list(points)
    tasks = [
        (name, point.spec, point.trace, point.label, kwargs.get(name), engine)
        for point in point_list
        for name in names
    ]
    runs = parallel_map(
        _sweep_cell,
        tasks,
        n_jobs=n_jobs,
        labels=[f"{task[3]}/{task[0]}" for task in tasks],
    )
    result = FigureResult(figure=figure, title=title)
    for task, run in zip(tasks, runs):
        result.add(task[3], task[0], bandwidth_mib(run.metrics.bandwidth))
    return result


def grid(
    labels_and_values: Sequence[tuple[str, object]],
    make_point: Callable[[object], SweepPoint],
) -> list[SweepPoint]:
    """Small helper: build sweep points from (label, value) pairs."""
    return [make_point(value) for _label, value in labels_and_values]

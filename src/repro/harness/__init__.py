"""Benchmark harness: experiments, figure reproductions, reporting."""

from .chaos import ChaosReport, chaos_experiment, chaos_fault_plan, chaos_trace
from .experiment import Comparison, SchemeRun, compare_schemes, run_scheme
from .figures import (
    ALL_FIGURES,
    fig07_ior_mixed_sizes,
    fig08_server_io_time,
    fig09_ior_mixed_procs,
    fig10_server_ratios,
    fig11_hpio,
    fig12a_btio,
    fig12b_lanl,
    fig13a_lu,
    fig13b_cholesky,
    fig14_redirection_overhead,
)
from .report import FigureResult, bandwidth_mib, format_bars, format_table
from .sweep import SweepPoint, sweep

__all__ = [
    "ChaosReport",
    "chaos_experiment",
    "chaos_fault_plan",
    "chaos_trace",
    "Comparison",
    "SchemeRun",
    "compare_schemes",
    "run_scheme",
    "FigureResult",
    "format_table",
    "format_bars",
    "SweepPoint",
    "sweep",
    "bandwidth_mib",
    "ALL_FIGURES",
    "fig07_ior_mixed_sizes",
    "fig08_server_io_time",
    "fig09_ior_mixed_procs",
    "fig10_server_ratios",
    "fig11_hpio",
    "fig12a_btio",
    "fig12b_lanl",
    "fig13a_lu",
    "fig13b_cholesky",
    "fig14_redirection_overhead",
]

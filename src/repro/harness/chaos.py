"""Chaos harness: seeded fault sweeps with tail-latency reporting.

The paper evaluates layouts on healthy clusters; the straggler
literature's obvious follow-up question is how each layout behaves when
servers degrade.  :func:`chaos_experiment` answers it systematically:
sweep a **fault intensity** knob across a set of seeded fault models
(:mod:`repro.faults`), replay the same workload under every scheme at
every intensity, and tabulate aggregate bandwidth plus the
p50/p95/p99/p999 request-latency tail — per scheme, per intensity, and
per server at the harshest intensity.

Everything is deterministic: the fault plan compiles from a named seed,
the replay engines are deterministic, and the report serializes floats
at full precision — so :meth:`ChaosReport.digest` is a stable hash of
the *entire* result surface.  CI's ``chaos-smoke`` job runs the sweep
twice and compares digests, which pins scheme behaviour under faults
exactly (any nondeterminism, engine divergence, or silent numeric drift
flips the hash).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Collection, Mapping

from ..cluster import ClusterSpec
from ..config import DEFAULT_FAULT_SEED
from ..exceptions import ConfigurationError
from ..faults import (
    BackgroundScrub,
    FaultModel,
    FaultPlan,
    ServerOutage,
    TransientSlowdown,
    WriteCliff,
)
from ..tracing.record import Trace
from ..units import KiB, MiB
from ..workloads.base import TraceBuilder
from .experiment import Comparison, compare_schemes
from .report import (
    TAIL_QUANTILES,
    FigureResult,
    bandwidth_mib,
    latency_ms,
    quantile_label,
    to_csv,
)

__all__ = [
    "CHAOS_MODEL_NAMES",
    "CHAOS_SCHEMES",
    "ChaosReport",
    "DEFAULT_CHAOS_INTENSITIES",
    "chaos_experiment",
    "chaos_fault_plan",
    "chaos_trace",
]

#: scheme line-up of the chaos sweep: the paper's bookends plus the
#: straggler-aware dispatcher alone and composed with MHA
CHAOS_SCHEMES: tuple[str, ...] = ("DEF", "MHA", "SAW", "MHA+SAW")

#: fault-model names :func:`chaos_fault_plan` understands
CHAOS_MODEL_NAMES: tuple[str, ...] = ("slowdown", "scrub", "outage", "write_cliff")

#: default sweep: healthy baseline, moderate, harsh
DEFAULT_CHAOS_INTENSITIES: tuple[float, ...] = (0.0, 0.5, 1.0)


def chaos_trace(
    processes: int = 8,
    request_size: int = 256 * KiB,
    phases: int = 12,
    file: str = "chaos.dat",
) -> Trace:
    """The chaos workload: write-then-re-read slabs of a shared file.

    Phase ``2k`` has every rank write one ``request_size`` slot of slab
    ``k``; phase ``2k+1`` reads the same slots back.  Re-reading what
    was just written is deliberate: a dispatcher that redirected writes
    away from a straggler also serves the subsequent reads from the
    healthy replica, so the pattern exercises both halves of the
    straggler-aware policy (pure-write or pure-read workloads each
    exercise only one).
    """
    if phases < 1:
        raise ConfigurationError(f"phases must be >= 1, got {phases}")
    builder = TraceBuilder(file=file)
    for phase in range(phases):
        op = "write" if phase % 2 == 0 else "read"
        slab = phase // 2
        for rank in range(processes):
            offset = (slab * processes + rank) * request_size
            builder.add(rank, op, offset, request_size)
        builder.next_phase()
    return builder.build()


def chaos_fault_plan(
    spec: ClusterSpec,
    intensity: float,
    *,
    seed: int = DEFAULT_FAULT_SEED,
    models: tuple[str, ...] = ("slowdown", "scrub"),
    horizon: float = 30.0,
) -> FaultPlan:
    """Compile-ready fault plan for one intensity of the sweep.

    ``intensity`` in ``[0, 1]`` scales every model's severity (slowdown
    factors, scrub duty, outage/rebuild lengths, cliff capacity);
    ``0`` yields an empty plan — the healthy baseline row.  ``models``
    names which mechanisms to include (:data:`CHAOS_MODEL_NAMES`);
    device-dilation models land on successive HDD servers, the write
    cliff on successive SSD servers (where the mechanism physically
    lives).  The same ``(seed, models, intensity)`` triple always
    yields the same plan.
    """
    if intensity < 0:
        raise ConfigurationError(f"intensity must be >= 0, got {intensity}")
    if intensity == 0:
        return FaultPlan(faults=(), seed=seed)
    hdd = list(spec.hserver_ids) or list(spec.server_ids)
    ssd = list(spec.sserver_ids) or hdd
    faults: list[FaultModel] = []
    hdd_cursor = 0
    ssd_cursor = 0
    for name in models:
        if name == "slowdown":
            faults.append(
                TransientSlowdown(
                    server=hdd[hdd_cursor % len(hdd)],
                    factor=1.0 + 4.0 * intensity,
                    windows=4,
                    mean_duration=0.5 + 2.5 * intensity,
                    horizon=horizon,
                )
            )
            hdd_cursor += 1
        elif name == "scrub":
            faults.append(
                BackgroundScrub(
                    server=hdd[hdd_cursor % len(hdd)],
                    period=8.0,
                    duty=min(6.0, 0.5 + 4.0 * intensity),
                    factor=1.0 + 2.0 * intensity,
                )
            )
            hdd_cursor += 1
        elif name == "outage":
            faults.append(
                ServerOutage(
                    server=hdd[hdd_cursor % len(hdd)],
                    at=0.25,
                    duration=0.5 + 1.5 * intensity,
                    rebuild_duration=1.0 + 3.0 * intensity,
                    rebuild_factor=1.0 + 2.0 * intensity,
                )
            )
            hdd_cursor += 1
        elif name == "write_cliff":
            faults.append(
                WriteCliff(
                    server=ssd[ssd_cursor % len(ssd)],
                    capacity_bytes=max(int((1.25 - intensity) * 8 * MiB), 64 * KiB),
                    factor=1.0 + 3.0 * intensity,
                    recovery_idle=0.5,
                )
            )
            ssd_cursor += 1
        else:
            raise ConfigurationError(
                f"unknown chaos model {name!r}; choose from {CHAOS_MODEL_NAMES}"
            )
    return FaultPlan(faults=tuple(faults), seed=seed)


@dataclass
class ChaosReport:
    """The full result surface of one chaos sweep."""

    label: str
    intensities: tuple[float, ...]
    schemes: tuple[str, ...]
    figures: list[FigureResult] = field(default_factory=list)
    #: intensity row label -> paired scheme results at that intensity
    comparisons: dict[str, Comparison] = field(default_factory=dict)

    def describe(self) -> str:
        return "\n\n".join(str(figure) for figure in self.figures)

    def digest(self) -> str:
        """SHA-256 over the full-precision CSV of every figure.

        Two runs of the same sweep must produce the same hex digest —
        the determinism contract CI's ``chaos-smoke`` job enforces.
        """
        hasher = hashlib.sha256()
        for figure in self.figures:
            hasher.update(f"{figure.figure}|{figure.title}|{figure.unit}\n".encode())
            hasher.update(to_csv(figure).encode())
        return hasher.hexdigest()


def chaos_experiment(
    spec: ClusterSpec | None = None,
    trace: Trace | None = None,
    *,
    intensities: tuple[float, ...] = DEFAULT_CHAOS_INTENSITIES,
    schemes: tuple[str, ...] = CHAOS_SCHEMES,
    models: tuple[str, ...] = ("slowdown", "scrub"),
    seed: int = DEFAULT_FAULT_SEED,
    horizon: float = 30.0,
    engine: str | None = None,
    n_jobs: int | None = 1,
    label: str = "chaos",
    rank_groups: Mapping[str, Collection[int]] | None = None,
    columnar: bool = False,
) -> ChaosReport:
    """Sweep fault intensity × scheme; tabulate bandwidth and tails.

    Every scheme replays the same trace under the same compiled fault
    plan at each intensity (a paired comparison).  The report carries
    one bandwidth figure, one figure per tail quantile
    (:data:`~repro.harness.report.TAIL_QUANTILES`), and a per-server
    p99 breakdown at the harshest intensity of the sweep.

    ``rank_groups`` optionally names disjoint sets of trace ranks
    (e.g. per-tenant rank windows); when given, one extra figure
    reports each group's p50/p95/p99 at the harshest intensity via
    :meth:`~repro.pfs.replay.RunMetrics.group_latency_percentile`.
    Leaving it ``None`` keeps the figure set — and therefore every
    existing digest — unchanged.

    ``columnar`` routes every replay through the columnar trace spine
    (see :func:`~repro.harness.experiment.compare_schemes`); the
    report digest is identical either way.
    """
    if not intensities:
        raise ConfigurationError("need at least one intensity")
    spec = spec if spec is not None else ClusterSpec()
    trace = trace if trace is not None else chaos_trace()
    report = ChaosReport(
        label=label, intensities=tuple(intensities), schemes=tuple(schemes)
    )
    bw = FigureResult(
        figure=f"{label}-bw",
        title="aggregate bandwidth vs fault intensity",
        unit="MiB/s",
    )
    tails = {
        q: FigureResult(
            figure=f"{label}-{quantile_label(q)}",
            title=f"{quantile_label(q)} request latency vs fault intensity",
            unit="ms",
        )
        for q in TAIL_QUANTILES
    }
    for intensity in intensities:
        plan = chaos_fault_plan(
            spec, intensity, seed=seed, models=models, horizon=horizon
        )
        row = f"intensity={intensity:g}"
        comparison = compare_schemes(
            spec,
            trace,
            tuple(schemes),
            label=f"{label}@{intensity:g}",
            engine=engine,
            n_jobs=n_jobs,
            fault_plan=plan,
            keep_latencies=True,
            columnar=columnar,
        )
        report.comparisons[row] = comparison
        for scheme in schemes:
            metrics = comparison[scheme].metrics
            bw.add(row, scheme, bandwidth_mib(metrics.bandwidth))
            for q, figure in tails.items():
                figure.add(row, scheme, latency_ms(metrics.latency_percentile(q)))
    report.figures.append(bw)
    report.figures.extend(tails.values())
    harshest = f"intensity={max(intensities):g}"
    per_server = FigureResult(
        figure=f"{label}-p99-by-server",
        title=f"per-server p99 latency at {harshest}",
        unit="ms",
    )
    for scheme in schemes:
        metrics = report.comparisons[harshest][scheme].metrics
        for server in range(spec.num_servers):
            per_server.add(
                f"server{server}",
                scheme,
                latency_ms(metrics.server_latency_percentile(server, 99.0)),
            )
    report.figures.append(per_server)
    if rank_groups:
        group_tails = FigureResult(
            figure=f"{label}-group-tails",
            title=f"per-group latency tails at {harshest}",
            unit="ms",
        )
        for scheme in schemes:
            metrics = report.comparisons[harshest][scheme].metrics
            for group, ranks in rank_groups.items():
                for q in (50.0, 95.0, 99.0):
                    group_tails.add(
                        f"{group}/{quantile_label(q)}",
                        scheme,
                        latency_ms(metrics.group_latency_percentile(ranks, q)),
                    )
        report.figures.append(group_tails)
    return report

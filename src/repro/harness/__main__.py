"""``python -m repro.harness`` entry point."""

import sys

from .cli import main

sys.exit(main())

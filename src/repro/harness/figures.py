"""One entry point per figure of the paper's evaluation (§V).

Every function reproduces the corresponding experiment — same workload
structure, same sweep axis, same comparison set — at a volume scaled
down from the 16-node testbed so a full run takes seconds.  Absolute
bandwidths therefore differ from the paper; the *shapes* (scheme
ordering, improvement bands, trends along the sweep axis) are the
reproduction targets and are what ``benchmarks/`` asserts.

All functions accept ``total_mib`` (per-configuration data volume) and
a scheme list so tests can shrink them further.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..cluster import ClusterSpec
from ..core.pipeline import identity_redirector
from ..devices.base import READ, WRITE
from ..schemes.base import LayoutView
from ..schemes.registry import scheme_names
from ..tracing.columnar import ColumnarTrace
from ..tracing.record import Trace
from ..units import KiB, MiB
from ..workloads.btio import BTIOWorkload
from ..workloads.cholesky import CholeskyWorkload
from ..workloads.hpio import HPIOWorkload
from ..workloads.ior import IORMixedProcsWorkload, IORWorkload
from ..workloads.lanl import LANLWorkload
from ..workloads.lu import LUWorkload
from .experiment import compare_schemes
from .report import FigureResult, bandwidth_mib

__all__ = [
    "fig07_ior_mixed_sizes",
    "fig08_server_io_time",
    "fig09_ior_mixed_procs",
    "fig10_server_ratios",
    "fig11_hpio",
    "fig12a_btio",
    "fig12b_lanl",
    "fig13a_lu",
    "fig13b_cholesky",
    "fig14_redirection_overhead",
    "ALL_FIGURES",
]

#: the size mixes of Fig. 7, in KiB ("16" is the uniform control)
FIG7_SIZE_MIXES: tuple[tuple[int, ...], ...] = (
    (16,),
    (64, 128),
    (128, 256),
    (256, 512),
)
#: the process mixes of Fig. 9
FIG9_PROC_MIXES: tuple[tuple[int, ...], ...] = ((8,), (8, 32), (16, 64), (32, 128))
#: the server ratios of Fig. 10 (HServers, SServers)
FIG10_RATIOS: tuple[tuple[int, int], ...] = ((7, 1), (6, 2), (5, 3), (4, 4))


def _mix_label(mix: Sequence[int]) -> str:
    return "+".join(str(m) for m in mix)


def fig07_ior_mixed_sizes(
    spec: ClusterSpec | None = None,
    *,
    size_mixes: Sequence[Sequence[int]] = FIG7_SIZE_MIXES,
    num_processes: int = 32,
    total_mib: int = 32,
    schemes: Sequence[str] | None = None,
    seed: int = 0,
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """IOR bandwidth with mixed request sizes (reads and writes)."""
    spec = spec or ClusterSpec()
    schemes = tuple(schemes or scheme_names())
    result = FigureResult(
        figure="Fig 7",
        title=f"IOR, mixed request sizes, {num_processes} procs",
    )
    for mix in size_mixes:
        workload = IORWorkload(
            num_processes=num_processes,
            request_sizes=[m * KiB for m in mix],
            total_size=total_mib * MiB,
            seed=seed,
        )
        for op in (READ, WRITE):
            trace = workload.columnar(op)
            comparison = compare_schemes(
                spec, trace, schemes, engine=engine, n_jobs=n_jobs
            )
            row = f"{_mix_label(mix)} {op}"
            for name in schemes:
                result.add(row, name, bandwidth_mib(comparison.bandwidth(name)))
    return result


def fig08_server_io_time(
    spec: ClusterSpec | None = None,
    *,
    size_mix: Sequence[int] = (128, 256),
    num_processes: int = 32,
    total_mib: int = 32,
    schemes: Sequence[str] | None = None,
    op: str = WRITE,
    seed: int = 0,
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """Per-server I/O time under each scheme, normalized to the minimum
    server time under MHA (the paper's normalization)."""
    spec = spec or ClusterSpec()
    schemes = tuple(schemes or scheme_names())
    workload = IORWorkload(
        num_processes=num_processes,
        request_sizes=[m * KiB for m in size_mix],
        total_size=total_mib * MiB,
        seed=seed,
    )
    trace = workload.columnar(op)
    comparison = compare_schemes(
        spec, trace, schemes, engine=engine, n_jobs=n_jobs
    )
    result = FigureResult(
        figure="Fig 8",
        title=f"per-server I/O time, sizes {_mix_label(size_mix)}",
        unit="x min(MHA)",
    )
    norm_source = "MHA" if "MHA" in comparison.runs else schemes[0]
    baseline_busy = [
        t for t in comparison.runs[norm_source].metrics.per_server_busy if t > 0
    ]
    norm = min(baseline_busy) if baseline_busy else 1.0
    for idx in range(spec.num_servers):
        kind = "H" if spec.is_hserver(idx) else "S"
        row = f"S{idx}({kind})"
        for name in schemes:
            busy = comparison.runs[name].metrics.per_server_busy[idx]
            result.add(row, name, busy / norm if norm else 0.0)
    return result


def fig09_ior_mixed_procs(
    spec: ClusterSpec | None = None,
    *,
    proc_mixes: Sequence[Sequence[int]] = FIG9_PROC_MIXES,
    request_kib: int = 256,
    group_mib: int = 16,
    schemes: Sequence[str] | None = None,
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """IOR bandwidth with mixed process numbers (reads and writes)."""
    spec = spec or ClusterSpec()
    schemes = tuple(schemes or scheme_names())
    result = FigureResult(
        figure="Fig 9",
        title=f"IOR, mixed process numbers, {request_kib}KiB requests",
    )
    for mix in proc_mixes:
        workload = IORMixedProcsWorkload(
            process_groups=tuple(mix),
            request_size=request_kib * KiB,
            bytes_per_group=group_mib * MiB,
        )
        for op in (READ, WRITE):
            trace = workload.columnar(op)
            comparison = compare_schemes(
                spec, trace, schemes, engine=engine, n_jobs=n_jobs
            )
            row = f"{_mix_label(mix)} {op}"
            for name in schemes:
                result.add(row, name, bandwidth_mib(comparison.bandwidth(name)))
    return result


def fig10_server_ratios(
    base_spec: ClusterSpec | None = None,
    *,
    ratios: Sequence[tuple[int, int]] = FIG10_RATIOS,
    size_mix: Sequence[int] = (128, 256),
    num_processes: int = 32,
    total_mib: int = 32,
    schemes: Sequence[str] | None = None,
    seed: int = 0,
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """IOR bandwidth across HServer:SServer ratios."""
    base_spec = base_spec or ClusterSpec()
    schemes = tuple(schemes or scheme_names())
    result = FigureResult(
        figure="Fig 10",
        title=f"IOR, server ratios, sizes {_mix_label(size_mix)}",
    )
    workload = IORWorkload(
        num_processes=num_processes,
        request_sizes=[m * KiB for m in size_mix],
        total_size=total_mib * MiB,
        seed=seed,
    )
    for m, n in ratios:
        spec = base_spec.with_ratio(m, n)
        for op in (READ, WRITE):
            trace = workload.columnar(op)
            comparison = compare_schemes(
                spec, trace, schemes, engine=engine, n_jobs=n_jobs
            )
            row = f"{m}h:{n}s {op}"
            for name in schemes:
                result.add(row, name, bandwidth_mib(comparison.bandwidth(name)))
    return result


def fig11_hpio(
    spec: ClusterSpec | None = None,
    *,
    proc_counts: Sequence[int] = (16, 32, 64),
    region_count: int = 1024,
    region_kibs: Sequence[int] = (16, 32, 64),
    schemes: Sequence[str] | None = None,
    op: str = WRITE,
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """HPIO bandwidth over process counts (mixed region sizes)."""
    spec = spec or ClusterSpec()
    schemes = tuple(schemes or scheme_names())
    result = FigureResult(
        figure="Fig 11",
        title=f"HPIO, region sizes {_mix_label(region_kibs)}KiB",
    )
    for procs in proc_counts:
        workload = HPIOWorkload(
            num_processes=procs,
            region_count=region_count,
            region_sizes=[k * KiB for k in region_kibs],
        )
        trace = workload.columnar(op)
        comparison = compare_schemes(
            spec, trace, schemes, engine=engine, n_jobs=n_jobs
        )
        row = f"{procs} procs"
        for name in schemes:
            result.add(row, name, bandwidth_mib(comparison.bandwidth(name)))
    return result


def fig12a_btio(
    spec: ClusterSpec | None = None,
    *,
    proc_counts: Sequence[int] = (9, 16, 25),
    steps: int = 20,
    scale: float = 1 / 64,
    schemes: Sequence[str] | None = None,
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """BTIO aggregate bandwidth (class B + C sizes interleaved)."""
    spec = spec or ClusterSpec()
    schemes = tuple(schemes or scheme_names())
    result = FigureResult(figure="Fig 12a", title="BTIO, class B+C interleaved")
    for procs in proc_counts:
        workload = BTIOWorkload(num_processes=procs, steps=steps, scale=scale)
        trace = workload.columnar(WRITE)
        comparison = compare_schemes(
            spec, trace, schemes, engine=engine, n_jobs=n_jobs
        )
        row = f"{procs} procs"
        for name in schemes:
            result.add(row, name, bandwidth_mib(comparison.bandwidth(name)))
    return result


def _trace_figure(
    figure: str,
    title: str,
    trace: "Trace | ColumnarTrace",
    spec: ClusterSpec,
    schemes: Sequence[str],
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    result = FigureResult(figure=figure, title=title)
    comparison = compare_schemes(
        spec, trace, tuple(schemes), engine=engine, n_jobs=n_jobs
    )
    for name in schemes:
        result.add("bandwidth", name, bandwidth_mib(comparison.bandwidth(name)))
    return result


def fig12b_lanl(
    spec: ClusterSpec | None = None,
    *,
    num_processes: int = 8,
    loops: int = 48,
    schemes: Sequence[str] | None = None,
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """LANL anonymous-application trace replay."""
    spec = spec or ClusterSpec()
    schemes = tuple(schemes or scheme_names())
    trace = LANLWorkload(num_processes=num_processes, loops=loops).columnar(WRITE)
    return _trace_figure(
        "Fig 12b", "LANL trace replay", trace, spec, schemes, engine=engine, n_jobs=n_jobs
    )


def fig13a_lu(
    spec: ClusterSpec | None = None,
    *,
    num_processes: int = 8,
    slabs: int = 24,
    schemes: Sequence[str] | None = None,
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """Out-of-core LU decomposition trace replay (8 per-process files)."""
    spec = spec or ClusterSpec()
    schemes = tuple(schemes or scheme_names())
    trace = LUWorkload(num_processes=num_processes, slabs=slabs).columnar()
    return _trace_figure(
        "Fig 13a", "LU trace replay", trace, spec, schemes, engine=engine, n_jobs=n_jobs
    )


def fig13b_cholesky(
    spec: ClusterSpec | None = None,
    *,
    num_processes: int = 8,
    panels: int = 20,
    schemes: Sequence[str] | None = None,
    seed: int = 7,
    engine: str | None = None,
    n_jobs: int | None = 1,
) -> FigureResult:
    """Sparse Cholesky trace replay (highly skewed request sizes)."""
    spec = spec or ClusterSpec()
    schemes = tuple(schemes or scheme_names())
    trace = CholeskyWorkload(
        num_processes=num_processes, panels=panels, seed=seed
    ).columnar()
    return _trace_figure(
        "Fig 13b", "Cholesky trace replay", trace, spec, schemes, engine=engine, n_jobs=n_jobs
    )


def fig14_redirection_overhead(
    spec: ClusterSpec | None = None,
    *,
    proc_counts: Sequence[int] = (8, 32, 128),
    size_mix_kib: Sequence[int] = (4, 64),
    total_mib: int = 8,
    repeats: int = 3,
) -> FigureResult:
    """Redirection overhead: request-mapping wall time with an identity
    DRT (redirect-to-original, no data movement) vs. the plain layout.

    The paper's Fig. 14 shows bandwidth with and without redirection;
    since redirection costs no *simulated* time here, the honest
    equivalent is the real wall-clock cost of the lookup path per
    request — reported as lookup time and overhead ratio.
    """
    spec = spec or ClusterSpec()
    result = FigureResult(
        figure="Fig 14",
        title=f"redirection overhead, sizes {_mix_label(size_mix_kib)}KiB",
        unit="us/request",
    )
    for procs in proc_counts:
        workload = IORWorkload(
            num_processes=procs,
            request_sizes=[k * KiB for k in size_mix_kib],
            total_size=total_mib * MiB,
        )
        trace = workload.trace(WRITE)
        redirector = identity_redirector(spec, trace)
        direct = LayoutView(
            {trace.files()[0]: redirector.layout_for(trace.files()[0])}
        )

        def time_view(view) -> float:
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                for record in trace:
                    view.map_request(record.file, record.offset, record.size)
                best = min(best, time.perf_counter() - t0)
            return best / len(trace) * 1e6  # us per request

        row = f"{procs} procs"
        direct_us = time_view(direct)
        redirected_us = time_view(redirector)
        result.add(row, "direct", direct_us)
        result.add(row, "redirected", redirected_us)
        result.add(row, "overhead%", 100.0 * (redirected_us / direct_us - 1.0))
        result.add(row, "lru_hit%", 100.0 * redirector.drt.cache_hit_rate)
    result.note(
        "overhead%% is the added mapping cost of the DRT lookup path; "
        "lru_hit%% is the share of lookups served by the hot-entry probe"
    )
    return result


#: figure id -> callable, for the CLI and the benchmark harness
ALL_FIGURES = {
    "fig07": fig07_ior_mixed_sizes,
    "fig08": fig08_server_io_time,
    "fig09": fig09_ior_mixed_procs,
    "fig10": fig10_server_ratios,
    "fig11": fig11_hpio,
    "fig12a": fig12a_btio,
    "fig12b": fig12b_lanl,
    "fig13a": fig13a_lu,
    "fig13b": fig13b_cholesky,
    "fig14": fig14_redirection_overhead,
}

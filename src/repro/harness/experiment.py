"""Experiment primitives: run (scheme × workload) and compare.

The paper's evaluation protocol, condensed: profile the application
once (the tracing phase is free here because the workload generators
*are* the traces), build each scheme's layout off-line from the
profile, then replay the application against each layout and report
aggregate bandwidth.  :func:`compare_schemes` does exactly that for a
list of schemes, sharing one trace so the comparison is paired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..cluster import ClusterSpec
from ..core.parallel import parallel_map
from ..effects import effects
from ..pfs.replay import RunMetrics, run_workload
from ..schemes.registry import make_scheme, scheme_names
from ..tracing.columnar import ColumnarTrace, as_columnar_trace
from ..tracing.record import Trace
from ..units import MiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.plan import FaultPlan

__all__ = ["SchemeRun", "Comparison", "run_scheme", "compare_schemes"]


@dataclass(frozen=True)
class SchemeRun:
    """One scheme's replay outcome."""

    scheme: str
    metrics: RunMetrics

    @property
    def bandwidth_mib(self) -> float:
        return self.metrics.bandwidth / MiB


@dataclass
class Comparison:
    """Paired scheme results on one workload configuration."""

    label: str
    runs: dict[str, SchemeRun] = field(default_factory=dict)

    def bandwidth(self, scheme: str) -> float:
        """Scheme bandwidth in bytes/s."""
        return self.runs[scheme].metrics.bandwidth

    def improvement(self, scheme: str, over: str) -> float:
        """Fractional bandwidth improvement of ``scheme`` over ``over``
        (e.g. 0.15 == +15 %), the paper's headline metric."""
        base = self.bandwidth(over)
        if base == 0:
            return 0.0
        return self.bandwidth(scheme) / base - 1.0

    def ranking(self) -> list[str]:
        """Schemes from fastest to slowest."""
        return sorted(self.runs, key=self.bandwidth, reverse=True)

    def __getitem__(self, scheme: str) -> SchemeRun:
        return self.runs[scheme]


def run_scheme(
    name: str,
    spec: ClusterSpec,
    profile_trace: "Trace | ColumnarTrace",
    replay_trace_: "Trace | ColumnarTrace | None" = None,
    *,
    scheme_kwargs: dict | None = None,
    engine: str | None = None,
    fault_plan: "FaultPlan | None" = None,
    keep_latencies: bool = False,
) -> SchemeRun:
    """Build scheme ``name`` from ``profile_trace`` and replay.

    ``replay_trace_`` defaults to the profile trace (the paper's
    "subsequent runs" repeat the profiled pattern); pass a different
    trace to study mispredicted patterns.  ``engine`` picks the replay
    engine (see :func:`repro.pfs.replay.replay_trace`).  ``fault_plan``
    injects a seeded fault schedule into the replayed cluster (the
    chaos harness's knob); ``keep_latencies`` records per-request and
    per-server latency samples so tail percentiles can be reported.
    """
    scheme = make_scheme(name, **(scheme_kwargs or {}))
    view = scheme.build(spec, profile_trace)
    replay = replay_trace_ if replay_trace_ is not None else profile_trace
    metrics = run_workload(
        spec,
        view,
        replay,
        engine=engine,
        fault_plan=fault_plan,
        keep_latencies=keep_latencies,
    )
    return SchemeRun(scheme=name, metrics=metrics)


@effects("READS_CONFIG", "IO")
def _scheme_task(
    task: tuple[
        str,
        ClusterSpec,
        "Trace | ColumnarTrace",
        "Trace | ColumnarTrace | None",
        dict | None,
        str | None,
        "FaultPlan | None",
        bool,
    ],
) -> SchemeRun:
    """Module-level (picklable) task body for the scheme fan-out."""
    name, spec, trace, replay, kwargs, engine, fault_plan, keep_latencies = task
    return run_scheme(
        name,
        spec,
        trace,
        replay,
        scheme_kwargs=kwargs,
        engine=engine,
        fault_plan=fault_plan,
        keep_latencies=keep_latencies,
    )


def compare_schemes(
    spec: ClusterSpec,
    trace: "Trace | ColumnarTrace",
    schemes: tuple[str, ...] | None = None,
    *,
    label: str = "",
    scheme_kwargs: dict[str, dict] | None = None,
    engine: str | None = None,
    n_jobs: int | None = 1,
    fault_plan: "FaultPlan | None" = None,
    keep_latencies: bool = False,
    columnar: bool = False,
) -> Comparison:
    """Run every scheme on one workload trace; returns paired results.

    Scheme runs are independent (each builds its own PFS), so
    ``n_jobs`` > 1 fans them out across processes via
    :func:`repro.core.parallel.parallel_map`; the default of 1 stays
    serial (pass ``None`` to defer to ``REPRO_JOBS``/CPU count).
    ``fault_plan`` applies the same seeded fault schedule to every
    scheme's replay (plans are frozen dataclasses, so they pickle to
    worker processes and compile identically there); together with
    ``keep_latencies`` this is the chaos harness's paired-comparison
    primitive.  ``columnar=True`` replays every scheme through the
    columnar spine (one record→columnar conversion shared by all
    schemes); results are bit-identical either way.
    """
    schemes = schemes if schemes is not None else scheme_names()
    scheme_kwargs = scheme_kwargs or {}
    replay = as_columnar_trace(trace) if columnar else None
    tasks = [
        (
            name,
            spec,
            trace,
            replay,
            scheme_kwargs.get(name),
            engine,
            fault_plan,
            keep_latencies,
        )
        for name in schemes
    ]
    runs = parallel_map(
        _scheme_task,
        tasks,
        n_jobs=n_jobs,
        labels=[f"{label or 'compare'}/{name}" for name in schemes],
    )
    comparison = Comparison(label=label)
    for name, run in zip(schemes, runs):
        comparison.runs[name] = run
    return comparison

"""Paper-style result tables.

Each figure function in :mod:`repro.harness.figures` returns a
:class:`FigureResult`: labelled series of per-scheme numbers that
:func:`format_table` prints as the rows the paper plots.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

from ..units import MiB

__all__ = [
    "FigureResult",
    "TAIL_QUANTILES",
    "format_table",
    "format_bars",
    "to_csv",
    "from_csv",
    "bandwidth_mib",
    "latency_ms",
    "quantile_label",
]

#: the tail-latency quantiles chaos reports tabulate, in display order
TAIL_QUANTILES: tuple[float, ...] = (50.0, 95.0, 99.0, 99.9)


@dataclass
class FigureResult:
    """One reproduced figure: a grid of (row label × scheme) values."""

    figure: str
    title: str
    unit: str = "MiB/s"
    #: scheme/series names in display order
    series: list[str] = field(default_factory=list)
    #: row label -> {series -> value}
    rows: dict[str, dict[str, float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, row: str, series: str, value: float) -> None:
        if series not in self.series:
            self.series.append(series)
        self.rows.setdefault(row, {})[series] = value

    def value(self, row: str, series: str) -> float:
        return self.rows[row][series]

    def improvement(self, row: str, series: str, over: str) -> float:
        """Fractional improvement of one series over another in a row."""
        base = self.rows[row][over]
        if base == 0:
            return 0.0
        return self.rows[row][series] / base - 1.0

    def note(self, text: str) -> None:
        self.notes.append(text)

    def __str__(self) -> str:
        return format_table(self)


def format_table(result: FigureResult, width: int = 12) -> str:
    """Render a figure result as an aligned text table."""
    header = [result.figure, "-", result.title, f"[{result.unit}]"]
    lines = [" ".join(header)]
    label_w = max([len(r) for r in result.rows] + [8])
    cols = "".join(f"{s:>{width}}" for s in result.series)
    lines.append(f"{'':<{label_w}}{cols}")
    for row, values in result.rows.items():
        cells = "".join(
            f"{values.get(s, float('nan')):>{width}.2f}" for s in result.series
        )
        lines.append(f"{row:<{label_w}}{cells}")
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def format_bars(result: FigureResult, width: int = 46) -> str:
    """Render a figure result as horizontal ASCII bars.

    One bar per (row, series), all scaled to the figure's maximum
    value — roughly the visual the paper's grouped bar charts give.
    """
    values = [
        v for row in result.rows.values() for v in row.values() if v == v
    ]
    peak = max(values, default=0.0)
    lines = [f"{result.figure} - {result.title} [{result.unit}]"]
    label_w = max(
        [len(f"{r} {s}") for r in result.rows for s in result.series] + [10]
    )
    for row, row_values in result.rows.items():
        for series in result.series:
            value = row_values.get(series)
            if value is None:
                continue
            bar = "#" * int(round(width * value / peak)) if peak > 0 else ""
            lines.append(f"{f'{row} {series}':<{label_w}} |{bar} {value:.1f}")
        lines.append("")
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines).rstrip()


def to_csv(result: FigureResult) -> str:
    """Serialize a figure result as CSV (for external plotting tools).

    First column is the row label, then one column per series, in the
    figure's display order.  Values use full float precision so a
    re-plot reproduces the stored run exactly.
    """
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["label", *result.series])
    for row, values in result.rows.items():
        writer.writerow(
            [
                row,
                *(
                    repr(values[s]) if s in values else ""
                    for s in result.series
                ),
            ]
        )
    return buf.getvalue()


def from_csv(text: str, figure: str = "csv", title: str = "") -> FigureResult:
    """Rebuild a :class:`FigureResult` from :func:`to_csv` output."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader)
    if not header or header[0] != "label":
        raise ValueError("not a FigureResult CSV (missing 'label' header)")
    result = FigureResult(figure=figure, title=title)
    for row in reader:
        label, *values = row
        for series, value in zip(header[1:], values):
            if value != "":
                result.add(label, series, float(value))
    return result


def bandwidth_mib(bytes_per_second: float) -> float:
    """Bytes/s -> MiB/s (figure unit)."""
    return bytes_per_second / MiB


def latency_ms(seconds: float) -> float:
    """Seconds -> milliseconds (tail-latency figure unit)."""
    return seconds * 1000.0


def quantile_label(q: float) -> str:
    """Conventional percentile column name: 50 -> "p50", 99.9 -> "p999".

    The decimal point is dropped, not rounded — the digits of ``q``
    become the label (the standard tail-latency naming where "p999"
    means the 99.9th percentile).
    """
    text = f"{q:g}".replace(".", "")
    return f"p{text}"

"""Command-line harness: regenerate any paper figure from a terminal.

``python -m repro.harness fig07`` (or the installed ``repro-harness``
script) prints the reproduced rows of the requested figure; ``all``
runs the whole evaluation section.
"""

from __future__ import annotations

import argparse
import sys
import time

from .figures import ALL_FIGURES
from .report import format_bars

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Reproduce the MHA paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="figure ids to run (or 'all')",
    )
    parser.add_argument(
        "--schemes",
        default=None,
        help="comma-separated scheme subset (e.g. DEF,MHA)",
    )
    parser.add_argument(
        "--bars",
        action="store_true",
        help="render results as ASCII bar charts instead of tables",
    )
    args = parser.parse_args(argv)

    wanted = sorted(ALL_FIGURES) if "all" in args.figures else args.figures
    kwargs = {}
    if args.schemes:
        kwargs["schemes"] = tuple(s.strip().upper() for s in args.schemes.split(","))

    for fig in wanted:
        fn = ALL_FIGURES[fig]
        started = time.perf_counter()
        if fig == "fig14":
            result = fn()  # fig14 has no scheme axis
        else:
            result = fn(**kwargs)
        elapsed = time.perf_counter() - started
        print(format_bars(result) if args.bars else result)
        print(f"  ({elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

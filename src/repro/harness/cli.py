"""Command-line harness: regenerate any paper figure from a terminal.

``python -m repro.harness fig07`` (or the installed ``repro-harness``
script) prints the reproduced rows of the requested figure; ``all``
runs the whole evaluation section.  ``python -m repro.harness online``
runs the closed-loop phase-shift experiment of :mod:`repro.online`
instead of a figure, ``python -m repro.harness chaos`` runs the
fault-intensity × scheme sweep of :mod:`repro.harness.chaos`, and
``python -m repro.harness serve`` replays a multi-tenant fleet through
the cluster service of :mod:`repro.tenancy`.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..units import MiB
from .figures import ALL_FIGURES
from .report import format_bars

__all__ = ["main"]


def _online_main(argv: list[str]) -> int:
    """The ``online`` subcommand: checkpoint -> IOR phase shift served
    by the live relayout controller."""
    from ..online import phase_shift_experiment

    parser = argparse.ArgumentParser(
        prog="repro-harness online",
        description=(
            "Run the online relayout experiment: a checkpoint-profiled "
            "layout faces an IOR-style pattern shift mid-run; the "
            "controller detects the drift, re-plans, and migrates in "
            "the background while foreground requests keep being served."
        ),
    )
    parser.add_argument(
        "--processes", type=int, default=8, help="IOR ranks after the shift"
    )
    parser.add_argument(
        "--total-mib",
        type=float,
        default=4.0,
        help="bytes per IOR pass, in MiB",
    )
    parser.add_argument(
        "--passes",
        type=int,
        default=3,
        help="IOR passes after the shift (pass 1 trips the detector)",
    )
    parser.add_argument(
        "--throttle-mib",
        type=float,
        default=None,
        help="background migration cap per region copier, MiB/s",
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=3600.0,
        help="seconds of future traffic the gate credits a relayout with",
    )
    parser.add_argument(
        "--drift-threshold",
        type=float,
        default=0.5,
        help="relative feature distance that flags a region as drifted",
    )
    parser.add_argument("--seed", type=int, default=1, help="RNG seed")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = phase_shift_experiment(
        ior_processes=args.processes,
        ior_total=int(args.total_mib * MiB),
        passes=args.passes,
        throttle=args.throttle_mib * MiB if args.throttle_mib else None,
        horizon=args.horizon,
        drift_threshold=args.drift_threshold,
        seed=args.seed,
    )
    elapsed = time.perf_counter() - started
    print(report.describe())
    print(f"  ({elapsed:.1f}s)")
    return 0


def _chaos_main(argv: list[str]) -> int:
    """The ``chaos`` subcommand: fault-intensity × scheme sweep."""
    from ..config import DEFAULT_FAULT_SEED
    from .chaos import (
        CHAOS_MODEL_NAMES,
        CHAOS_SCHEMES,
        DEFAULT_CHAOS_INTENSITIES,
        chaos_experiment,
    )

    parser = argparse.ArgumentParser(
        prog="repro-harness chaos",
        description=(
            "Sweep fault intensity across schemes and report aggregate "
            "bandwidth plus p50/p95/p99/p999 request-latency tails. "
            "The sweep is fully deterministic; --digest prints only a "
            "SHA-256 of the full-precision results, which CI compares "
            "across runs."
        ),
    )
    parser.add_argument(
        "--models",
        default="slowdown,scrub",
        help=f"comma-separated fault models from {','.join(CHAOS_MODEL_NAMES)}",
    )
    parser.add_argument(
        "--intensities",
        default=",".join(f"{i:g}" for i in DEFAULT_CHAOS_INTENSITIES),
        help="comma-separated fault intensities in [0, 1]",
    )
    parser.add_argument(
        "--schemes",
        default=",".join(CHAOS_SCHEMES),
        help="comma-separated schemes (registry names)",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_FAULT_SEED, help="fault-plan seed"
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=30.0,
        help="seconds of simulated time randomized faults may land in",
    )
    parser.add_argument(
        "--engine",
        choices=("flat", "event"),
        default=None,
        help="replay engine (feedback schemes fall back to event)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per intensity (default 1 = serial)",
    )
    parser.add_argument(
        "--digest",
        action="store_true",
        help="print only the report's SHA-256 digest (for CI comparison)",
    )
    parser.add_argument(
        "--columnar",
        action="store_true",
        help="replay through the columnar trace spine (same digest)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = chaos_experiment(
        intensities=tuple(
            float(i.strip()) for i in args.intensities.split(",") if i.strip()
        ),
        schemes=tuple(
            s.strip().upper() for s in args.schemes.split(",") if s.strip()
        ),
        models=tuple(m.strip() for m in args.models.split(",") if m.strip()),
        seed=args.seed,
        horizon=args.horizon,
        engine=args.engine,
        n_jobs=args.jobs if args.jobs is not None else 1,
        columnar=args.columnar,
    )
    elapsed = time.perf_counter() - started
    if args.digest:
        print(report.digest())
        return 0
    print(report.describe())
    print(f"\ndigest: {report.digest()}")
    print(f"  ({elapsed:.1f}s)")
    return 0


def _serve_main(argv: list[str]) -> int:
    """The ``serve`` subcommand: the multi-tenant cluster service."""
    from ..config import DEFAULT_ARRIVAL_SEED
    from ..tenancy import serve_scenario

    parser = argparse.ArgumentParser(
        prog="repro-harness serve",
        description=(
            "Replay a multi-tenant fleet on one shared hybrid PFS: "
            "seeded per-tenant arrival processes, admission control, "
            "token-bucket bandwidth shares, SServer quotas, and SCFQ "
            "weighted fair queueing, with per-tenant tail latencies. "
            "Builds shard across processes; the result is bit-identical "
            "at any --jobs count, and --digest prints only the SHA-256 "
            "CI compares across runs."
        ),
    )
    parser.add_argument(
        "--tenants", type=int, default=1000, help="fleet size (default 1000)"
    )
    parser.add_argument(
        "--hot-fraction",
        type=float,
        default=0.8,
        help="fraction of hot (small working set) tenants in the mix",
    )
    parser.add_argument(
        "--max-active",
        type=int,
        default=64,
        help="admission slots: tenants concurrently in flight",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_ARRIVAL_SEED,
        help="arrival-process seed (tenant k draws from [seed, k])",
    )
    parser.add_argument(
        "--engine",
        choices=("flat", "event"),
        default=None,
        help="replay engine (default: the flat queue-tail kernel)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="build-shard worker processes (default: REPRO_JOBS/CPUs)",
    )
    parser.add_argument(
        "--digest",
        action="store_true",
        help="print only the report's SHA-256 digest (for CI comparison)",
    )
    parser.add_argument(
        "--columnar",
        action="store_true",
        help="replay through the columnar trace spine (same digest)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = serve_scenario(
        tenants=args.tenants,
        hot_fraction=args.hot_fraction,
        max_active=args.max_active,
        arrival_seed=args.seed,
        engine=args.engine,
        n_jobs=args.jobs,
        columnar=args.columnar,
    )
    elapsed = time.perf_counter() - started
    if args.digest:
        print(report.digest())
        return 0
    print(report.describe())
    print(f"\ndigest: {report.digest()}")
    print(f"  ({elapsed:.1f}s, {report.total_requests / elapsed:.0f} req/s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "online":
        return _online_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Reproduce the MHA paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="figure ids to run (or 'all')",
    )
    parser.add_argument(
        "--schemes",
        default=None,
        help="comma-separated scheme subset (e.g. DEF,MHA)",
    )
    parser.add_argument(
        "--bars",
        action="store_true",
        help="render results as ASCII bar charts instead of tables",
    )
    parser.add_argument(
        "--engine",
        choices=("flat", "event"),
        default=None,
        help="replay engine (default: the flat queue-tail kernel)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per figure (default 1 = serial)",
    )
    args = parser.parse_args(argv)

    wanted = sorted(ALL_FIGURES) if "all" in args.figures else args.figures
    kwargs = {}
    if args.schemes:
        kwargs["schemes"] = tuple(s.strip().upper() for s in args.schemes.split(","))
    if args.engine:
        kwargs["engine"] = args.engine
    if args.jobs is not None:
        kwargs["n_jobs"] = args.jobs

    for fig in wanted:
        fn = ALL_FIGURES[fig]
        started = time.perf_counter()
        if fig == "fig14":
            result = fn()  # fig14 has no scheme axis
        else:
            result = fn(**kwargs)
        elapsed = time.perf_counter() - started
        print(format_bars(result) if args.bars else result)
        print(f"  ({elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Central configuration constants shared across subsystems.

Every tunable that affects *reproducibility* lives here under a name,
never as an inline literal at a call site.  In particular, random seeds:
the planning pipeline samples large traces (e.g. AAL's stripe-search
subsample) and the determinism contract is that two runs over the same
trace produce byte-identical plans.  That only holds if every RNG in
``schemes/``, ``simulate/``, ``pfs/`` and ``online/`` is constructed
from a seed that is named, auditable, and overridable in one place —
which is exactly what repro-lint's RL001 rule enforces (inline literal
seeds and unseeded generators are rejected; named seeds pass).
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_ARRIVAL_SEED",
    "DEFAULT_FAULT_SEED",
    "DEFAULT_REPLAY_ENGINE",
    "DEFAULT_SAMPLE_SEED",
]

#: Seed for every deterministic sampling RNG in the planning pipeline
#: (trace subsampling, k-means initialisation, tie-breaking).  Changing
#: it changes which subsample a scheme evaluates — plans remain valid,
#: but byte-identical reproduction of recorded results requires the
#: recorded seed.
DEFAULT_SAMPLE_SEED: int = 0

#: Seed for fault-plan compilation (:class:`repro.faults.FaultPlan`):
#: randomized fault models (transient-slowdown window draws) derive
#: their generator from ``[DEFAULT_FAULT_SEED, model_index]``, so a
#: plan compiles to the same per-server timelines on every run and on
#: every worker process.  Distinct from the sampling seed so fault
#: schedules can be varied without disturbing planning.
DEFAULT_FAULT_SEED: int = 1729

#: Seed for tenant arrival processes (Poisson inter-arrival rewrites in
#: :class:`repro.workloads.arrivals.OpenArrivalWorkload` and the tenant
#: mix generator in :mod:`repro.tenancy`).  Tenant ``k`` derives its
#: generator from ``[DEFAULT_ARRIVAL_SEED, k]`` so every tenant's
#: arrival stream is independent yet reproducible, on every worker
#: process.  Distinct from the sampling and fault seeds so traffic can
#: be varied without disturbing planning or fault schedules.
DEFAULT_ARRIVAL_SEED: int = 4104

#: Replay engine used when the caller does not pick one: ``"flat"``
#: (the event-free queue-tail kernel of :mod:`repro.pfs.flat`) or
#: ``"event"`` (the generator-process engine).  The two are
#: bit-identical on every metric — property-tested in
#: ``tests/pfs/test_flat_replay.py`` — so this is purely a speed
#: default; replays needing per-record hooks fall back to the event
#: engine automatically.
DEFAULT_REPLAY_ENGINE: str = "flat"

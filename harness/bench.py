"""Machine-readable benchmark reporting and regression gating.

The RSSD microbenchmark (``benchmarks/test_perf_rssd.py``) measures the
vectorized search engine against the scalar reference loop and records
each phase here as a :class:`PhaseResult` — wall time, candidate count,
candidates/second and the speedup over the scalar engine.  The report
serializes to a small JSON document (``BENCH_rssd.json``) that CI
uploads as an artifact and gates with :func:`compare` against the
committed baseline::

    python harness/bench.py compare BENCH_rssd.json \
        benchmarks/baselines/BENCH_rssd.json --tolerance 0.30

The gate is one-sided: only a *drop* in candidates/second beyond the
tolerance fails, so faster machines (CI runners vs the baseline box)
always pass.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path

SCHEMA = "repro-bench/1"

__all__ = ["PhaseResult", "BenchReport", "compare", "main", "SCHEMA"]


@dataclass
class PhaseResult:
    """One timed phase of a benchmark run."""

    name: str
    wall_s: float
    candidates: int
    candidates_per_sec: float
    speedup_vs_scalar: float | None = None

    @classmethod
    def from_timing(
        cls,
        name: str,
        wall_s: float,
        candidates: int,
        scalar_wall_s: float | None = None,
    ) -> "PhaseResult":
        return cls(
            name=name,
            wall_s=wall_s,
            candidates=candidates,
            candidates_per_sec=candidates / wall_s if wall_s > 0 else 0.0,
            speedup_vs_scalar=(
                scalar_wall_s / wall_s
                if scalar_wall_s is not None and wall_s > 0
                else None
            ),
        )


@dataclass
class BenchReport:
    """A full benchmark report: phases plus environment provenance."""

    bench: str
    phases: list[PhaseResult] = field(default_factory=list)
    environment: dict = field(default_factory=dict)
    schema: str = SCHEMA

    def add(self, phase: PhaseResult) -> None:
        self.phases.append(phase)

    def phase(self, name: str) -> PhaseResult | None:
        for p in self.phases:
            if p.name == name:
                return p
        return None

    def collect_environment(self) -> None:
        import numpy

        self.environment = {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "machine": platform.machine(),
            "cpus": __import__("os").cpu_count(),
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(asdict(self), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        data = json.loads(Path(path).read_text())
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unsupported schema {data.get('schema')!r}, "
                f"expected {SCHEMA!r}"
            )
        return cls(
            bench=data["bench"],
            phases=[PhaseResult(**p) for p in data.get("phases", [])],
            environment=data.get("environment", {}),
            schema=data["schema"],
        )


def compare(
    current: BenchReport, baseline: BenchReport, tolerance: float = 0.30
) -> list[str]:
    """Return regression messages (empty list == gate passes).

    Every phase present in the baseline must exist in the current
    report with ``candidates_per_sec`` no more than ``tolerance``
    (fractional) below the baseline's.  Improvements never fail.
    """
    failures: list[str] = []
    for base in baseline.phases:
        cur = current.phase(base.name)
        if cur is None:
            failures.append(f"{base.name}: missing from current report")
            continue
        floor = base.candidates_per_sec * (1.0 - tolerance)
        if cur.candidates_per_sec < floor:
            failures.append(
                f"{base.name}: {cur.candidates_per_sec:,.0f} cand/s is "
                f"{1.0 - cur.candidates_per_sec / base.candidates_per_sec:.0%}"
                f" below baseline {base.candidates_per_sec:,.0f}"
                f" (tolerance {tolerance:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench", description="Benchmark report tooling."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cmp_p = sub.add_parser("compare", help="gate a report against a committed baseline")
    cmp_p.add_argument("current", help="freshly produced report JSON")
    cmp_p.add_argument("baseline", help="committed baseline JSON")
    cmp_p.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop in candidates/sec (default 0.30)",
    )

    show_p = sub.add_parser("show", help="pretty-print a report")
    show_p.add_argument("report", help="report JSON to print")

    args = parser.parse_args(argv)
    if args.command == "show":
        report = BenchReport.load(args.report)
        print(f"{report.bench}  [{report.schema}]")
        for key, value in report.environment.items():
            print(f"  {key}: {value}")
        for p in report.phases:
            speedup = (
                f"  ({p.speedup_vs_scalar:.1f}x vs scalar)"
                if p.speedup_vs_scalar
                else ""
            )
            print(
                f"  {p.name}: {p.wall_s * 1e3:.1f} ms, "
                f"{p.candidates_per_sec:,.0f} cand/s{speedup}"
            )
        return 0

    current = BenchReport.load(args.current)
    baseline = BenchReport.load(args.baseline)
    failures = compare(current, baseline, tolerance=args.tolerance)
    if failures:
        print("benchmark regression gate FAILED:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print(
        f"benchmark gate passed: {len(baseline.phases)} phase(s) within "
        f"{args.tolerance:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Capacity planning: how many SSD servers does this workload need?

A practical use of the simulator beyond reproducing the paper: fix the
total server count at eight and sweep the HServer:SServer ratio (the
paper's Fig. 10 axis), measuring what each additional SSD server buys
for a given workload under the DEF and MHA layouts.  The gap between
the two curves is the performance an operator loses by adding SSDs
*without* a heterogeneity-aware layout.

Run::

    python examples/capacity_planning.py
"""

from repro import ClusterSpec, compare_schemes
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


def main() -> None:
    workload = IORWorkload(
        num_processes=32,
        request_sizes=[128 * KiB, 256 * KiB],
        total_size=32 * MiB,
        seed=3,
    )
    trace = workload.trace("write")
    print(f"workload: IOR {workload.label()}KiB writes, "
          f"{trace.total_bytes() // MiB} MiB\n")
    print(f"{'ratio':<8}{'DEF MiB/s':>12}{'MHA MiB/s':>12}{'MHA gain':>10}")

    results = []
    for hservers, sservers in ((8, 0), (7, 1), (6, 2), (5, 3), (4, 4)):
        spec = ClusterSpec(num_hservers=hservers, num_sservers=sservers)
        comparison = compare_schemes(spec, trace, ("DEF", "MHA"))
        def_bw = comparison.bandwidth("DEF") / MiB
        mha_bw = comparison.bandwidth("MHA") / MiB
        gain = comparison.improvement("MHA", over="DEF")
        results.append((hservers, sservers, def_bw, mha_bw))
        print(f"{hservers}h:{sservers}s{'':<3}{def_bw:>12.1f}{mha_bw:>12.1f}"
              f"{gain:>+9.1%}")

    # the planning take-away: bandwidth per added SSD server
    print("\nmarginal MiB/s per SSD server added (MHA layout):")
    for (h0, s0, _, b0), (h1, s1, _, b1) in zip(results, results[1:]):
        print(f"  {h0}h:{s0}s -> {h1}h:{s1}s: {b1 - b0:+8.1f} MiB/s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Trace-driven study: an out-of-core LU solver on a hybrid PFS.

Replays the paper's LU decomposition workload (§V-D: per-process files,
fixed 524544-byte slab writes, panel reads growing from 6272 bytes to
524544 bytes) under all four layout schemes, then inspects what MHA
actually decided: the request groups it found, the stripe pair each
region received, and the migration schedule the placement phase would
execute.

Run::

    python examples/out_of_core_solver.py
"""

from repro import ClusterSpec, compare_schemes
from repro.core import migration_schedule
from repro.schemes import MHAScheme
from repro.units import KiB, MiB, format_bandwidth, format_size
from repro.workloads import LUWorkload


def main() -> None:
    spec = ClusterSpec()
    workload = LUWorkload(num_processes=8, slabs=24)
    trace = workload.trace()
    print(f"LU workload: {len(trace)} requests over {len(trace.files())} files, "
          f"{trace.total_bytes() // MiB} MiB "
          f"(writes {workload.trace('write').total_bytes() // MiB} MiB, "
          f"reads {workload.trace('read').total_bytes() // MiB} MiB)")

    # ---- scheme comparison
    comparison = compare_schemes(spec, trace)
    print(f"\n{'scheme':<8}{'bandwidth':>16}{'busiest server':>18}")
    for name in ("DEF", "AAL", "HARL", "MHA"):
        metrics = comparison.runs[name].metrics
        print(f"{name:<8}{format_bandwidth(metrics.bandwidth):>16}"
              f"{max(metrics.per_server_busy) * 1e3:>15.1f} ms")

    # ---- look inside the MHA plan for one of the files
    scheme = MHAScheme(seed=0)
    scheme.build(spec, trace)
    plan = scheme.plan
    file0 = trace.files()[0]
    grouping = plan.groupings[file0]
    print(f"\nMHA found {grouping.k} request groups in {file0} "
          f"(size, concurrency centers):")
    for center in grouping.centers:
        print(f"  size ~{format_size(int(center[0]))}, concurrency ~{center[1]:.0f}")

    print("\nper-region stripe decisions:")
    for region, pair in list(plan.rst)[:6]:
        print(f"  {region}: <h={format_size(pair.h)}, s={format_size(pair.s)}>")

    steps = migration_schedule(plan.drt)
    total = sum(s.bytes for s in steps)
    print(f"\nplacement phase: {len(steps)} copy steps, "
          f"{total // MiB} MiB moved; first three:")
    for step in steps[:3]:
        print(f"  {step}")


if __name__ == "__main__":
    main()

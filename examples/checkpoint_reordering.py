#!/usr/bin/env python
"""The full five-phase MHA workflow on a checkpointing application.

This example follows the paper's deployment story end to end, using the
simulated MPI-IO middleware the way an application would:

1. **tracing** — the application's first run is profiled by the
   I/O Collector hooked into the MPI-IO layer;
2. **reordering + determination + placement** — the off-line pipeline
   groups the requests, migrates each group into a region, and picks
   per-region stripe pairs with the cost model;
3. **redirection** — the application's next run executes *unchanged*;
   the middleware redirects its requests through the DRT to the
   optimized regions.

The application is LANL-like: every loop writes a tiny header (16 B),
a large payload (128 KiB - 16 B), and a checkpoint block (128 KiB).

Run::

    python examples/checkpoint_reordering.py
"""

from repro import ClusterSpec, MHAPipeline
from repro.mpiio import MPIJob
from repro.pfs import HybridPFS
from repro.schemes import DEFScheme
from repro.tracing import IOCollector
from repro.units import KiB, MiB, format_bandwidth

RANKS = 8
LOOPS = 32
HEADER = 16
PAYLOAD = 128 * KiB - 16
CHECKPOINT = 128 * KiB
AREA = LOOPS * (HEADER + PAYLOAD + CHECKPOINT)


def application(rank):
    """The unmodified application: one generator per MPI rank."""
    with rank.open("checkpoint.dat") as fh:
        for loop in range(LOOPS):
            base = rank.rank * AREA + loop * (HEADER + PAYLOAD + CHECKPOINT)
            yield fh.write_at(base, HEADER)
            yield fh.write_at(base + HEADER, PAYLOAD)
            yield fh.write_at(base + HEADER + PAYLOAD, CHECKPOINT)


def main() -> None:
    spec = ClusterSpec()

    # ---- first run: default layout, collector attached (tracing phase)
    pfs = HybridPFS(spec)
    collector = IOCollector(clock=lambda: pfs.sim.now)
    default_view = DEFScheme().build(spec, collector.trace())
    job = MPIJob(pfs, default_view, size=RANKS, collector=collector)
    first_makespan = job.run(application)
    volume = collector.trace().total_bytes()
    print(f"profiled run (DEF layout): {format_bandwidth(volume / first_makespan)}"
          f" over {len(collector)} requests")

    # ---- off-line optimization (reordering/determination/placement)
    trace = collector.trace()
    plan = MHAPipeline(spec, seed=0).plan(trace)
    print(f"\n{plan.describe()}")
    print(f"data migrated into regions: {plan.migrated_bytes() // MiB} MiB")

    # ---- subsequent run: same application, redirected transparently
    pfs2 = HybridPFS(spec)
    job2 = MPIJob(pfs2, plan.redirector, size=RANKS)
    second_makespan = job2.run(application)
    print(f"\noptimized run (MHA layout): "
          f"{format_bandwidth(volume / second_makespan)}")
    print(f"speedup: {first_makespan / second_makespan:.2f}x, with "
          f"{plan.redirector.stats.requests} requests redirected through the DRT")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: compare MHA against DEF/AAL/HARL on a mixed workload.

The three steps of using this library:

1. describe the hybrid cluster (``ClusterSpec``);
2. obtain an application's I/O trace (here: a generated IOR-like
   workload; real deployments would use the collector, see
   ``checkpoint_reordering.py``);
3. build each layout scheme from the trace and replay against the
   simulated PFS.

Run::

    python examples/quickstart.py
"""

from repro import ClusterSpec, compare_schemes
from repro.units import KiB, MiB, format_bandwidth
from repro.workloads import IORWorkload

def main() -> None:
    # the paper's testbed: six HDD servers, two SSD servers, GigE
    spec = ClusterSpec(num_hservers=6, num_sservers=2)

    # a heterogeneous access pattern: 32 processes issuing mixed
    # 128 KiB and 256 KiB requests at shuffled locations of one file
    workload = IORWorkload(
        num_processes=32,
        request_sizes=[128 * KiB, 256 * KiB],
        total_size=64 * MiB,
        seed=7,
    )
    trace = workload.trace("write")
    print(f"workload: IOR {workload.label()}KiB, {len(trace)} requests, "
          f"{trace.total_bytes() // MiB} MiB")

    comparison = compare_schemes(spec, trace)
    print(f"\n{'scheme':<8}{'bandwidth':>16}{'vs DEF':>10}")
    for name in ("DEF", "AAL", "HARL", "MHA"):
        bw = comparison.bandwidth(name)
        gain = comparison.improvement(name, over="DEF")
        print(f"{name:<8}{format_bandwidth(bw):>16}{gain:>+9.1%}")

    best = comparison.ranking()[0]
    print(f"\nbest scheme: {best} "
          f"(+{comparison.improvement(best, over='DEF'):.0%} over the default layout)")


if __name__ == "__main__":
    main()

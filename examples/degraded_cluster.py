#!/usr/bin/env python
"""Operating MHA on a degraded cluster (beyond the paper).

Storage clusters develop stragglers.  This example shows the whole
operational loop the library supports:

1. measure the healthy baseline;
2. inject a 4x slowdown into one HServer and watch every layout suffer;
3. *re-profile* — a calibration pass on the degraded cluster measures
   the slower HServer class — and re-plan MHA with the degraded
   parameters, shifting load off the sick class;
4. compare against simply re-running the stale (healthy-cluster) plan.

Run::

    python examples/degraded_cluster.py
"""

from dataclasses import replace

from repro import ClusterSpec
from repro.core import CostModelParams, MHAPipeline
from repro.pfs import HybridPFS, replay_trace
from repro.units import KiB, MiB, format_bandwidth
from repro.workloads import IORWorkload

SLOWDOWN = 4.0
SICK_SERVER = 0


def run(spec, view, trace, slow_server=None):
    pfs = HybridPFS(spec)
    if slow_server is not None:
        pfs.servers[slow_server].slowdown = SLOWDOWN
    return replay_trace(pfs, view, trace)


def main() -> None:
    spec = ClusterSpec()
    trace = IORWorkload(
        num_processes=16,
        request_sizes=[128 * KiB, 256 * KiB],
        total_size=32 * MiB,
        seed=11,
    ).trace("write")

    # 1. healthy baseline
    healthy_pipeline = MHAPipeline(spec, seed=0)
    healthy_plan = healthy_pipeline.plan(trace)
    healthy = run(spec, healthy_plan.redirector, trace)
    print(f"healthy cluster, MHA plan:      {format_bandwidth(healthy.bandwidth)}")

    # 2. degrade one HServer; stale plan keeps striping onto it
    stale = run(spec, healthy_plan.redirector, trace, slow_server=SICK_SERVER)
    print(f"h{SICK_SERVER} {SLOWDOWN:.0f}x slower, stale plan:  "
          f"{format_bandwidth(stale.bandwidth)} "
          f"({stale.bandwidth / healthy.bandwidth - 1:+.0%})")

    # 3. re-profile and re-plan: the calibration pass now measures the
    #    HServer class as slower on average
    degraded_params = replace(
        healthy_pipeline.params,
        alpha_h=healthy_pipeline.params.alpha_h * SLOWDOWN,
        beta_h=healthy_pipeline.params.beta_h * SLOWDOWN,
    )
    replan_pipeline = MHAPipeline(spec, seed=0)
    replan_pipeline.params = degraded_params
    replan = replan_pipeline.plan(trace)
    adapted = run(spec, replan.redirector, trace, slow_server=SICK_SERVER)
    print(f"h{SICK_SERVER} {SLOWDOWN:.0f}x slower, re-planned:  "
          f"{format_bandwidth(adapted.bandwidth)} "
          f"({adapted.bandwidth / stale.bandwidth - 1:+.0%} vs stale)")

    print("\nstripe pairs (healthy -> re-planned):")
    healthy_pairs = dict(healthy_plan.rst)
    for region, new_pair in replan.rst:
        old = healthy_pairs.get(region)
        print(f"  {region}: {old} -> {new_pair}")


if __name__ == "__main__":
    main()

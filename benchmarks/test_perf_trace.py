"""Columnar trace-spine microbenchmark: ingest + clustering at 1M requests.

Times the two trace hot paths the columnar spine (:mod:`repro.tracing.
columnar`) vectorizes, against the record path they are twins of:

* ``trace-ingest-*`` — building a trace from raw request columns: one
  million ``TraceRecord`` constructions versus one
  :meth:`ColumnarTrace.from_columns` call on the same NumPy columns;
* ``trace-cluster-*`` — :func:`extract_features` (phase split, burst
  clustering with the adaptive spatial threshold, feature matrix)
  versus :func:`extract_features_columnar` on the identical trace.

The combined columnar path must be at least ``MIN_SPEEDUP``× faster
than the record path — the headline perf claim of the spine — and the
absolute throughputs are written to ``BENCH_trace.json`` (override
with ``REPRO_BENCH_OUT``), which CI gates against
``benchmarks/baselines/BENCH_trace.json`` at the usual >30% regression
tolerance.
"""

import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from harness.bench import BenchReport, PhaseResult  # noqa: E402

from repro.core.features import (  # noqa: E402
    extract_features,
    extract_features_columnar,
)
from repro.tracing import ColumnarTrace, Trace, TraceRecord  # noqa: E402
from repro.units import KiB  # noqa: E402

N_REQUESTS = 1_000_000
MIN_SPEEDUP = 10.0
GAP = 0.5
REPEATS = 3


def best_of(fn, repeats: int = REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def raw_columns(n: int = N_REQUESTS):
    """Deterministic raw request columns: bursty phases over one file."""
    rng = np.random.default_rng(7)
    phase = np.arange(n) // 4096  # ~244 phases of 4096 requests
    timestamps = phase * 2.0 + rng.uniform(0.0, 0.2, size=n)
    timestamps.sort()
    offsets = rng.integers(0, 1 << 20, size=n) * (16 * KiB)
    sizes = rng.integers(1, 17, size=n) * (16 * KiB)
    ranks = rng.integers(0, 64, size=n)
    ops = rng.integers(0, 2, size=n).astype(np.uint8)
    return offsets, timestamps, ranks, sizes, ops


@pytest.fixture(scope="module")
def report():
    rep = BenchReport(bench="trace")
    rep.collect_environment()
    yield rep
    out = os.environ.get("REPRO_BENCH_OUT", str(REPO_ROOT / "BENCH_trace.json"))
    rep.write(out)
    print(f"\nwrote {out}")


@pytest.fixture(scope="module")
def columns():
    return raw_columns()


@pytest.fixture(scope="module")
def walls():
    """Phase walls shared across tests so the final speedup gate can
    combine ingest and cluster timings."""
    return {}


def test_ingest(report, columns, walls):
    """Raw columns -> trace: 1M record constructions vs one batch call."""
    offsets, timestamps, ranks, sizes, ops = columns
    off_l, ts_l = offsets.tolist(), timestamps.tolist()
    rank_l, size_l, op_l = ranks.tolist(), sizes.tolist(), ops.tolist()

    def ingest_record():
        return Trace(
            [
                TraceRecord(
                    offset=off_l[i],
                    timestamp=ts_l[i],
                    rank=rank_l[i],
                    op="write" if op_l[i] else "read",
                    size=size_l[i],
                    file="bench.dat",
                )
                for i in range(len(off_l))
            ]
        )

    def ingest_columnar():
        return ColumnarTrace.from_columns(
            offsets=offsets,
            timestamps=timestamps,
            ranks=ranks,
            sizes=sizes,
            ops=ops,
            files="bench.dat",
        )

    record_wall, trace = best_of(ingest_record, 1)
    columnar_wall, col = best_of(ingest_columnar)
    assert len(trace) == len(col) == N_REQUESTS
    walls["ingest-record"] = record_wall
    walls["ingest-columnar"] = columnar_wall
    walls["trace"], walls["col"] = trace, col
    report.add(PhaseResult.from_timing("trace-ingest-record", record_wall, N_REQUESTS))
    report.add(
        PhaseResult.from_timing(
            "trace-ingest-columnar", columnar_wall, N_REQUESTS, record_wall
        )
    )
    print(
        f"\ntrace ingest: record {record_wall * 1e3:,.0f} ms, columnar "
        f"{columnar_wall * 1e3:,.0f} ms ({record_wall / columnar_wall:,.1f}x)"
    )


def test_cluster(report, columns, walls):
    """Phase split + burst clustering + feature matrix, both paths."""
    trace, col = walls["trace"], walls["col"]
    record_wall, ref = best_of(
        lambda: extract_features(trace, gap=GAP, spatial=True), 1
    )
    columnar_wall, got = best_of(
        lambda: extract_features_columnar(col, gap=GAP, spatial=True)
    )
    assert got.points.tobytes() == ref.points.tobytes()
    walls["cluster-record"] = record_wall
    walls["cluster-columnar"] = columnar_wall
    report.add(PhaseResult.from_timing("trace-cluster-record", record_wall, N_REQUESTS))
    report.add(
        PhaseResult.from_timing(
            "trace-cluster-columnar", columnar_wall, N_REQUESTS, record_wall
        )
    )
    print(
        f"\ntrace cluster: record {record_wall * 1e3:,.0f} ms, columnar "
        f"{columnar_wall * 1e3:,.0f} ms ({record_wall / columnar_wall:,.1f}x)"
    )


def test_end_to_end_speedup(walls):
    """The headline gate: ingest+cluster columnar >= MIN_SPEEDUP x."""
    record = walls["ingest-record"] + walls["cluster-record"]
    columnar = walls["ingest-columnar"] + walls["cluster-columnar"]
    speedup = record / columnar
    print(
        f"\ntrace spine end-to-end: record {record * 1e3:,.0f} ms, columnar "
        f"{columnar * 1e3:,.0f} ms ({speedup:,.1f}x, floor {MIN_SPEEDUP:g}x)"
    )
    assert speedup >= MIN_SPEEDUP

"""Flat-replay microbenchmark: the event-free kernel vs the event engine.

Replays the same IOR trace (32 ranks, mixed 16/64 KiB requests, client
NICs modelled, latencies kept) through both engines for the DEF and MHA
layouts, asserts the flat kernel's results are *bit-identical* to the
event engine's, and records throughput in records/second (reported
through the ``candidates_per_sec`` field the CI gate compares):

* ``replay-event-def`` / ``replay-flat-def`` — the default striping
  layout, event vs flat;
* ``replay-flat-mha`` — the flat kernel over the full MHA pipeline's
  redirector view (batched DRT translation + per-region mapping).

Results are written to ``BENCH_replay.json`` (override with the
``REPRO_BENCH_OUT`` environment variable) and CI gates them against
``benchmarks/baselines/BENCH_replay.json`` with the same >30%
regression tolerance as the other benchmarks.
"""

import os
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from harness.bench import BenchReport, PhaseResult  # noqa: E402

from repro.cluster import ClusterSpec  # noqa: E402
from repro.pfs import HybridPFS, replay_trace  # noqa: E402
from repro.schemes import make_scheme  # noqa: E402
from repro.units import KiB, MiB  # noqa: E402
from repro.workloads import IORWorkload  # noqa: E402

REPEATS = 3
MIN_SPEEDUP_ANY = 5.0  # the tentpole claim: >=5x on at least one layout
MIN_SPEEDUP_EACH = 4.0  # robustness floor per layout (CI noise margin)


def best_of(fn, repeats: int = REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def report():
    rep = BenchReport(bench="flat-replay")
    rep.collect_environment()
    yield rep
    out = os.environ.get("REPRO_BENCH_OUT", str(REPO_ROOT / "BENCH_replay.json"))
    rep.write(out)
    print(f"\nwrote {out}")


@pytest.fixture(scope="module")
def workload():
    spec = ClusterSpec(model_client_nics=True)
    trace = IORWorkload(
        num_processes=32,
        request_sizes=[16 * KiB, 64 * KiB],
        total_size=256 * MiB,
        seed=7,
        file="f",
    ).trace("write")
    return spec, trace


def _replay(spec, trace, view, engine):
    pfs = HybridPFS(spec)
    return replay_trace(pfs, view, trace, keep_latencies=True, engine=engine), pfs


def _bench_scheme(report, spec, trace, name, record_event_phase):
    view = make_scheme(name).build(spec, trace)
    event_wall, (event_metrics, event_pfs) = best_of(
        lambda: _replay(spec, trace, view, "event")
    )
    flat_wall, (flat_metrics, flat_pfs) = best_of(
        lambda: _replay(spec, trace, view, "flat")
    )

    # bit-identity: same makespan, same latency stream, same per-server
    # accounting (exact float equality is the contract, not a tolerance)
    assert flat_metrics.makespan == event_metrics.makespan
    assert flat_metrics.latencies == event_metrics.latencies
    for flat_srv, event_srv in zip(flat_pfs.servers, event_pfs.servers):
        assert flat_srv.busy_time == event_srv.busy_time
        assert flat_srv.stats == event_srv.stats

    speedup = event_wall / flat_wall
    if record_event_phase:
        report.add(
            PhaseResult.from_timing(f"replay-event-{name.lower()}", event_wall, len(trace))
        )
    report.add(
        PhaseResult.from_timing(
            f"replay-flat-{name.lower()}", flat_wall, len(trace), scalar_wall_s=event_wall
        )
    )
    print(
        f"\nreplay {name}: {len(trace)} records, "
        f"event {event_wall * 1e3:.1f} ms, flat {flat_wall * 1e3:.1f} ms "
        f"({len(trace) / flat_wall:,.0f} rec/s, {speedup:.1f}x)"
    )
    return speedup


def test_flat_replay_speedup(report, workload):
    """Flat kernel >=5x the event engine, bit-identical results."""
    spec, trace = workload
    speedups = [
        _bench_scheme(report, spec, trace, "DEF", record_event_phase=True),
        _bench_scheme(report, spec, trace, "MHA", record_event_phase=False),
    ]
    assert max(speedups) >= MIN_SPEEDUP_ANY, (
        f"flat kernel best speedup {max(speedups):.1f}x below the "
        f"{MIN_SPEEDUP_ANY:.0f}x target"
    )
    assert min(speedups) >= MIN_SPEEDUP_EACH, (
        f"flat kernel worst speedup {min(speedups):.1f}x below the "
        f"{MIN_SPEEDUP_EACH:.0f}x floor"
    )

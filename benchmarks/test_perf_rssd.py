"""RSSD search-engine microbenchmark: vectorized grid vs scalar loop.

One synthetic region, 64 candidates per axis (the adaptive bounds put
``B_h = B_s = r_max = 256 KB`` on the default cluster, i.e. 64 nonzero
4 KB steps on each axis), searched by both engines in both cost modes.
Timing is best-of-``REPEATS`` wall clock; the grid engine must clear a
5x speedup over the scalar reference on the same candidate set.

Results are written to ``BENCH_rssd.json`` (override with the
``REPRO_BENCH_OUT`` environment variable) through the
:mod:`harness.bench` reporter, which CI uploads as an artifact and
gates against ``benchmarks/baselines/BENCH_rssd.json``.
"""

import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from harness.bench import BenchReport, PhaseResult  # noqa: E402

from repro.cluster import ClusterSpec  # noqa: E402
from repro.core.determinator import determine_stripes  # noqa: E402
from repro.core.params import CostModelParams  # noqa: E402
from repro.units import KiB  # noqa: E402

#: requests in the benchmark region — large enough that the per-request
#: axis dominates, small enough that the scalar reference finishes fast
NUM_REQUESTS = 128
#: largest request: with the default 6H+2S cluster the adaptive bound
#: threshold is (M+N) * 128 KB = 1 MB, so bounds collapse to r_max and
#: each search axis holds r_max / 4 KB = 64 candidate steps
R_MAX = 256 * KiB
#: minimum acceptable grid-over-scalar speedup (acceptance criterion)
MIN_SPEEDUP = 5.0
REPEATS = 3


def make_region(seed: int = 7):
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, 1 << 24, NUM_REQUESTS)
    lengths = rng.integers(4 * KiB, R_MAX, NUM_REQUESTS)
    lengths[0] = R_MAX  # pin r_max so the bounds are deterministic
    is_read = rng.random(NUM_REQUESTS) < 0.5
    conc = rng.integers(1, 16, NUM_REQUESTS)
    bursts = rng.integers(0, NUM_REQUESTS // 4, NUM_REQUESTS)
    return offsets, lengths, is_read, conc, bursts


def best_of(fn, repeats: int = REPEATS):
    """Best wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def report():
    rep = BenchReport(bench="rssd-search")
    rep.collect_environment()
    yield rep
    out = os.environ.get("REPRO_BENCH_OUT", str(REPO_ROOT / "BENCH_rssd.json"))
    rep.write(out)
    print(f"\nwrote {out}")


@pytest.mark.parametrize("mode", ["batch", "burst"])
def test_grid_engine_speedup(report, mode):
    params = CostModelParams.from_cluster(ClusterSpec())
    offsets, lengths, is_read, conc, bursts = make_region()
    kwargs = dict(step=4 * KiB, max_axis_candidates=64)
    if mode == "burst":
        kwargs["burst_ids"] = bursts

    def search(engine):
        return determine_stripes(
            params, offsets, lengths, is_read, conc, engine=engine, **kwargs
        )

    t_scalar, scalar = best_of(lambda: search("scalar"))
    t_grid, grid = best_of(lambda: search("grid"))

    # same search, same answer — speed is worthless if the result moved
    assert grid.pair == scalar.pair
    assert grid.cost == scalar.cost
    assert grid.candidates == scalar.candidates

    report.add(
        PhaseResult.from_timing(
            f"scalar-{mode}", t_scalar, scalar.candidates
        )
    )
    report.add(
        PhaseResult.from_timing(
            f"grid-{mode}", t_grid, grid.candidates, scalar_wall_s=t_scalar
        )
    )

    speedup = t_scalar / t_grid
    print(
        f"\n{mode}: {grid.candidates} candidates, "
        f"scalar {t_scalar * 1e3:.1f} ms, grid {t_grid * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"{mode} grid engine only {speedup:.1f}x faster than scalar "
        f"(need >= {MIN_SPEEDUP}x)"
    )

"""Fig. 11 — HPIO bandwidth over process counts.

Paper's shape: MHA has "obvious performance advantages over the other
three layout schemes" at every process count; for these small
contended requests DEF/AAL (which spread them across seek-bound
HServers) trail badly.
"""

from repro.harness import fig11_hpio


def test_fig11(once):
    result = once(fig11_hpio)
    print()
    print(result)

    for row in result.rows:
        for other in ("DEF", "AAL"):
            assert result.value(row, "MHA") > 1.2 * result.value(row, other)
        assert result.value(row, "MHA") >= 0.97 * result.value(row, "HARL")

"""Chaos-path microbenchmark: faulted replay and the chaos sweep harness.

Times the fault-injection hot paths so CI catches regressions in the
per-request ``ServerFaultState.adjust`` lookups and the straggler-aware
dispatch loop (reported through the ``candidates_per_sec`` field the CI
gate compares):

* ``chaos-replay-def`` — the flat kernel replaying the write/re-read
  chaos trace under a full four-model fault plan with the default
  striping layout (also asserts bit-identity against the event engine);
* ``chaos-replay-saw`` — the event engine replaying the same faulted
  trace through the straggler-aware view (EWMA feedback + redirection);
* ``chaos-sweep`` — a small end-to-end ``chaos_experiment`` sweep
  (two intensities, DEF vs SAW) including report assembly.

Results are written to ``BENCH_chaos.json`` (override with the
``REPRO_BENCH_OUT`` environment variable) and CI gates them against
``benchmarks/baselines/BENCH_chaos.json`` with the same >30% regression
tolerance as the other benchmarks.
"""

import os
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from harness.bench import BenchReport, PhaseResult  # noqa: E402

from repro.cluster import ClusterSpec  # noqa: E402
from repro.harness.chaos import (  # noqa: E402
    CHAOS_MODEL_NAMES,
    chaos_experiment,
    chaos_fault_plan,
    chaos_trace,
)
from repro.pfs import HybridPFS, replay_trace  # noqa: E402
from repro.schemes import make_scheme  # noqa: E402

REPEATS = 3


def best_of(fn, repeats: int = REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def report():
    rep = BenchReport(bench="chaos")
    rep.collect_environment()
    yield rep
    out = os.environ.get("REPRO_BENCH_OUT", str(REPO_ROOT / "BENCH_chaos.json"))
    rep.write(out)
    print(f"\nwrote {out}")


@pytest.fixture(scope="module")
def faulted_workload():
    spec = ClusterSpec(model_client_nics=True)
    trace = chaos_trace(processes=16, phases=24)
    plan = chaos_fault_plan(spec, 1.0, models=CHAOS_MODEL_NAMES)
    return spec, trace, plan


def _replay(spec, trace, view, plan, engine):
    pfs = HybridPFS(spec)
    metrics = replay_trace(
        pfs, view, trace, keep_latencies=True, fault_plan=plan, engine=engine
    )
    return metrics, pfs


def test_faulted_replay_def(report, faulted_workload):
    """Faulted flat replay stays bit-identical to the event engine."""
    spec, trace, plan = faulted_workload
    view = make_scheme("DEF").build(spec, trace)
    event_wall, (event_metrics, event_pfs) = best_of(
        lambda: _replay(spec, trace, view, plan, "event")
    )
    flat_wall, (flat_metrics, flat_pfs) = best_of(
        lambda: _replay(spec, trace, view, plan, "flat")
    )
    assert flat_metrics.makespan == event_metrics.makespan
    assert flat_metrics.latencies == event_metrics.latencies
    for flat_srv, event_srv in zip(flat_pfs.servers, event_pfs.servers):
        assert flat_srv.busy_time == event_srv.busy_time

    report.add(
        PhaseResult.from_timing(
            "chaos-replay-def", flat_wall, len(trace), scalar_wall_s=event_wall
        )
    )
    print(
        f"\nchaos replay DEF: {len(trace)} records, "
        f"event {event_wall * 1e3:.1f} ms, flat {flat_wall * 1e3:.1f} ms "
        f"({len(trace) / flat_wall:,.0f} rec/s)"
    )


def test_faulted_replay_saw(report, faulted_workload):
    """The straggler-aware feedback loop on the event engine."""
    spec, trace, plan = faulted_workload
    wall, (metrics, _) = best_of(
        lambda: _replay(
            spec, trace, make_scheme("SAW").build(spec, trace), plan, "event"
        )
    )
    assert metrics.total_bytes == trace.total_bytes()
    report.add(PhaseResult.from_timing("chaos-replay-saw", wall, len(trace)))
    print(f"\nchaos replay SAW: {len(trace)} records, {wall * 1e3:.1f} ms")


def test_chaos_sweep(report):
    """End-to-end sweep: fault compilation, replay, report assembly."""
    trace = chaos_trace(processes=4, phases=8)
    runs_per_sweep = 2 * 2  # two intensities x two schemes

    def sweep():
        return chaos_experiment(
            trace=trace, intensities=(0.0, 1.0), schemes=("DEF", "SAW")
        )

    wall, rep = best_of(sweep)
    assert len(rep.digest()) == 64
    report.add(PhaseResult.from_timing("chaos-sweep", wall, runs_per_sweep))
    print(f"\nchaos sweep: {runs_per_sweep} runs, {wall * 1e3:.1f} ms")

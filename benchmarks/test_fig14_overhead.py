"""Fig. 14 — MHA redirection overhead.

The paper shows end-to-end bandwidth with requests redirected to the
original system (identity DRT) vs. without redirection, finding the
overhead acceptable.  Here the redirection machinery costs no simulated
time, so the honest equivalent is the wall-clock cost of the lookup
path per request: a few microseconds, orders of magnitude below the
millisecond-scale I/O times it piggybacks on.
"""

from repro.harness import fig14_redirection_overhead


def test_fig14(once):
    result = once(fig14_redirection_overhead, total_mib=4)
    print()
    print(result)

    for row in ("8 procs", "32 procs", "128 procs"):
        redirected_us = result.value(row, "redirected")
        # the absolute lookup cost stays in the microsecond range,
        # negligible against millisecond-scale simulated I/O times
        assert redirected_us < 200.0
        # and it does not grow with the process count (DRT lookups are
        # O(log n) in the extent count, not the process count)
    assert result.value("128 procs", "redirected") < 3.0 * result.value(
        "8 procs", "redirected"
    )

"""Ablation — the group-count cap k (§III-D).

The paper caps k to bound metadata overhead.  Sweep the cap on a
bimodal workload: the region count (and hence the RST metadata) is
bounded by k, while the delivered bandwidth stays within a narrow band
— the cap is a safe metadata knob, exactly the property §III-D relies
on when it bounds k "to guarantee that the number of the groups is
bounded".
"""

from repro.cluster import ClusterSpec
from repro.schemes import MHAScheme
from repro.pfs import run_workload
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


def test_group_cap_ablation(once):
    spec = ClusterSpec()
    trace = IORWorkload(
        num_processes=16,
        request_sizes=[16 * KiB, 512 * KiB],
        total_size=16 * MiB,
        seed=0,
    ).trace("write")

    def sweep():
        results = {}
        for k in (1, 2, 4, 16):
            scheme = MHAScheme(max_groups=k, seed=0)
            view = scheme.build(spec, trace)
            metrics = run_workload(spec, view, trace)
            results[k] = (metrics, scheme.plan.num_regions)
        return results

    results = once(sweep)
    print()
    baseline = results[1][0].bandwidth
    for k, (metrics, regions) in results.items():
        print(
            f"max_groups={k:>2}: {metrics.bandwidth / MiB:8.2f} MiB/s, "
            f"{regions} regions"
        )
        # metadata bounded by the cap
        assert regions <= k
        # bandwidth stays within a narrow band across the sweep
        assert abs(metrics.bandwidth / baseline - 1.0) < 0.10
    # with the cap lifted, the two request patterns get their own regions
    assert results[16][1] >= 2

"""Ablation — adaptive vs. average RSSD search bounds (§III-F).

MHA's adaptive bound policy is one of its two deltas over HARL.  Run
the full MHA pipeline with each policy on a workload whose r_max sits
well past the average (Cholesky-like skew): adaptive must not lose.
"""

from repro.cluster import ClusterSpec
from repro.harness.experiment import run_scheme
from repro.workloads import CholeskyWorkload


def test_bound_policy_ablation(once):
    spec = ClusterSpec()
    trace = CholeskyWorkload(num_processes=8, panels=10).trace()

    def run():
        adaptive = run_scheme(
            "MHA", spec, trace, scheme_kwargs={"bound_policy": "adaptive", "seed": 0}
        )
        average = run_scheme(
            "MHA", spec, trace, scheme_kwargs={"bound_policy": "average", "seed": 0}
        )
        return adaptive, average

    adaptive, average = once(run)
    print()
    print(f"adaptive bounds: {adaptive.bandwidth_mib:8.2f} MiB/s")
    print(f"average bounds:  {average.bandwidth_mib:8.2f} MiB/s")
    assert adaptive.metrics.bandwidth >= 0.95 * average.metrics.bandwidth

"""Fig. 13b — sparse Cholesky factorization trace replay.

Paper's shape: the strongest trace result (+78.4% over DEF, +58.6% over
AAL, +29.6% over HARL) because the request sizes vary the most — the
best case for reordering.
"""

from repro.harness import fig13b_cholesky


def test_fig13b(once):
    result = once(fig13b_cholesky, panels=14)
    print()
    print(result)

    mha = result.value("bandwidth", "MHA")
    assert mha > 1.3 * result.value("bandwidth", "DEF")
    assert mha > 1.2 * result.value("bandwidth", "AAL")
    assert mha >= result.value("bandwidth", "HARL")

"""Lint-suite wall-clock gate: the RL3xx effect graph must stay cheap.

The effect system made ``repro-lint`` interprocedural — every project
checker now shares one call graph built over the whole tree, propagated
to fixpoint.  That graph runs on every pre-commit and every CI push, so
its cost is part of the developer loop and deserves the same regression
gate as the simulator hot paths:

* ``lint-graph-build`` — parse `src/` + `tests/` and build the call
  graph (scan + effect fixpoint), reported in *nodes*/sec;
* ``lint-full-run`` — a complete ``lint_paths(["src", "tests"])`` with
  every rule registered (the graph is built once inside and shared by
  all five RL3xx checkers), reported in *files*/sec.

Results go to ``BENCH_lint.json`` (override with ``REPRO_BENCH_OUT``);
CI gates against ``benchmarks/baselines/BENCH_lint.json`` at the usual
>30% regression tolerance.  The absolute ceilings below are loose
(slow CI runners) — the baseline comparison is the real gate; these
only catch a runaway (e.g. the fixpoint failing to converge).
"""

import ast
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

import pytest  # noqa: E402

from harness.bench import BenchReport, PhaseResult  # noqa: E402
from tools.repro_lint.callgraph import build_graph  # noqa: E402
from tools.repro_lint.engine import lint_paths  # noqa: E402

#: generous absolute ceilings — runaway detectors, not the real gate
MAX_GRAPH_BUILD_S = 30.0
MAX_FULL_RUN_S = 120.0
REPEATS = 3


@pytest.fixture(scope="module")
def report():
    rep = BenchReport(bench="lint")
    rep.collect_environment()
    yield rep
    out = os.environ.get("REPRO_BENCH_OUT", str(REPO_ROOT / "BENCH_lint.json"))
    rep.write(out)
    print(f"\nwrote {out}")


def best_of(fn, repeats: int = REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def project_files():
    return sorted(
        p
        for root in ("src", "tests")
        for p in (REPO_ROOT / root).rglob("*.py")
        if "__pycache__" not in p.parts
    )


def test_graph_build(report):
    """Parse the tree once, then time scan + fixpoint in isolation."""
    files = project_files()
    entries = []
    for path in files:
        rel = path.relative_to(REPO_ROOT).as_posix()
        tree = ast.parse(path.read_text(encoding="utf-8"))
        entries.append((tree, rel, rel, rel.startswith("tests/")))

    wall, graph = best_of(lambda: build_graph(entries))
    nodes = len(graph.nodes)
    assert nodes > 500, "graph suspiciously small — scan regression?"
    assert wall < MAX_GRAPH_BUILD_S
    report.add(PhaseResult.from_timing("lint-graph-build", wall, nodes))


def test_full_lint_run(report):
    """The command CI and pre-commit actually pay for."""
    n_files = len(project_files())
    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        wall, diags = best_of(lambda: lint_paths(["src", "tests"]))
    finally:
        os.chdir(cwd)
    assert diags == [], f"tree must lint clean, got {len(diags)} findings"
    assert wall < MAX_FULL_RUN_S
    report.add(PhaseResult.from_timing("lint-full-run", wall, n_files))

"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's evaluation figures at a
reduced data volume (bandwidths are volume-normalized, so the scheme
ordering — the reproduction target — is unaffected), asserts the
paper's qualitative shape, and prints the reproduced rows so a
``pytest benchmarks/ --benchmark-only -s`` run doubles as the
EXPERIMENTS.md data source.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure function exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run

"""Fig. 9 — IOR bandwidth with mixed process numbers.

Paper's shape: MHA at least matches every other scheme on each
configuration, and its performance degrades the least as the process
count grows.
"""

from repro.harness import fig09_ior_mixed_procs


def test_fig09(once):
    result = once(fig09_ior_mixed_procs, group_mib=8)
    print()
    print(result)

    for row in result.rows:
        for other in ("DEF", "HARL"):
            assert result.value(row, "MHA") >= 0.97 * result.value(row, other)

    # degradation across the sweep: MHA loses no more than the others
    def degradation(series):
        first = result.value("8 write", series)
        last = result.value("32+128 write", series)
        return (first - last) / first

    assert degradation("MHA") <= degradation("DEF") + 0.05
    assert degradation("MHA") <= degradation("HARL") + 0.05

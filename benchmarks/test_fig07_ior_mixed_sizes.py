"""Fig. 7 — IOR bandwidth with mixed request sizes.

Paper's shape: MHA and HARL always beat DEF and AAL; MHA ~= HARL on the
uniform 16 KB control; MHA strictly best on every mixed configuration;
bandwidth grows with request size.
"""

from repro.harness import fig07_ior_mixed_sizes


def test_fig07(once):
    result = once(fig07_ior_mixed_sizes, total_mib=16)
    print()
    print(result)

    for op in ("read", "write"):
        # heterogeneity-aware schemes beat the oblivious ones everywhere
        for row in (f"16 {op}", f"64+128 {op}", f"128+256 {op}", f"256+512 {op}"):
            assert result.value(row, "MHA") > result.value(row, "DEF")
        # uniform control: MHA degenerates to HARL (comparable)
        uniform = f"16 {op}"
        assert result.value(uniform, "MHA") >= 0.95 * result.value(uniform, "HARL")
        # mixed patterns: MHA is the strongest scheme
        for row in (f"64+128 {op}", f"128+256 {op}", f"256+512 {op}"):
            for other in ("DEF", "AAL", "HARL"):
                assert result.value(row, "MHA") >= 0.97 * result.value(row, other)

    # bandwidth rises with request size (amortized startup)
    assert result.value("256+512 read", "MHA") > result.value("16 read", "MHA")

"""Online-replay microbenchmark: controller overhead and live relayout.

Two phases, throughput measured in records/second (reported through the
``candidates_per_sec`` field the CI gate compares):

* ``observe-steady`` — the per-record cost of the streaming sketch +
  drift detector on traffic that matches the active plan (the common
  case: every record pays the sketch, checks fire, nothing drifts);
* ``phase-shift-e2e`` — the full closed-loop experiment (drift, replan,
  admission, background migration, epoch swap) per live record.

Results are written to ``BENCH_online.json`` (override with the
``REPRO_BENCH_OUT`` environment variable) and CI gates them against
``benchmarks/baselines/BENCH_online.json`` with the same >30%
regression tolerance as the RSSD search benchmark.
"""

import os
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from harness.bench import BenchReport, PhaseResult  # noqa: E402

from repro.cluster import ClusterSpec  # noqa: E402
from repro.core import MHAPipeline  # noqa: E402
from repro.online import (  # noqa: E402
    ControllerConfig,
    RelayoutController,
    phase_shift_experiment,
)
from repro.units import KiB, MiB  # noqa: E402
from repro.workloads import IORWorkload  # noqa: E402

REPEATS = 3


def best_of(fn, repeats: int = REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def report():
    rep = BenchReport(bench="online-replay")
    rep.collect_environment()
    yield rep
    out = os.environ.get("REPRO_BENCH_OUT", str(REPO_ROOT / "BENCH_online.json"))
    rep.write(out)
    print(f"\nwrote {out}")


def test_observe_throughput(report):
    """Sketch + periodic drift checks on steady (non-drifting) traffic."""
    spec = ClusterSpec()
    pipeline = MHAPipeline(spec, seed=0)
    trace = IORWorkload(
        num_processes=8,
        request_sizes=[32 * KiB, 128 * KiB],
        total_size=16 * MiB,
        seed=1,
        file="f",
    ).trace("write")
    plan = pipeline.plan(trace)
    records = list(trace.sorted_by_time())

    def run():
        controller = RelayoutController(
            pipeline,
            plan,
            ControllerConfig(window=256, check_interval=64),
        )
        for record in records:
            controller.observe(record)
        return controller

    wall, controller = best_of(run)
    assert controller.replans_admitted == 0, "steady traffic must not replan"
    assert controller.drift_checks > 0
    report.add(PhaseResult.from_timing("observe-steady", wall, len(records)))
    print(
        f"\nobserve-steady: {len(records)} records in {wall * 1e3:.1f} ms "
        f"({len(records) / wall:,.0f} rec/s, {controller.drift_checks} checks)"
    )


def test_phase_shift_throughput(report):
    """The full closed-loop phase-shift experiment, per live record."""
    wall, result = best_of(lambda: phase_shift_experiment(passes=2))
    assert result.replans_admitted == 1
    assert result.offline_match_fraction == 1.0
    records = result.foreground.requests
    report.add(PhaseResult.from_timing("phase-shift-e2e", wall, records))
    print(
        f"\nphase-shift-e2e: {records} records in {wall * 1e3:.1f} ms "
        f"({records / wall:,.0f} rec/s)"
    )

"""Ablation — data reordering on/off.

MHA with grouping and migration vs. HARL (identical cost model, no
reordering): isolates the paper's headline contribution on the
workload designed to show it (the LANL loop pattern, where similar
requests are never adjacent in the file).
"""

from repro.cluster import ClusterSpec
from repro.harness.experiment import compare_schemes
from repro.workloads import LANLWorkload


def test_reordering_ablation(once):
    spec = ClusterSpec()
    trace = LANLWorkload(num_processes=8, loops=32).trace("write")

    cmp = once(compare_schemes, spec, trace, ("HARL", "MHA"))
    print()
    for name in ("HARL", "MHA"):
        print(f"{name}: {cmp.runs[name].bandwidth_mib:8.2f} MiB/s")
    # reordering never hurts, and the migrated layout is at least as
    # good as the in-place region optimization
    assert cmp.bandwidth("MHA") >= 0.99 * cmp.bandwidth("HARL")

"""Multi-tenant serve microbenchmark: sharded build plus coupled replay.

Times the tenancy service hot paths so CI catches regressions in the
per-tenant build fan-out, the admission/QoS merge, and the shared-cluster
open-arrival replay (reported through the ``candidates_per_sec`` field
the CI gate compares):

* ``serve-build`` — sharded per-tenant builds (trace generation, arrival
  rewrite, premapping, quota enforcement) for a mixed fleet;
* ``serve-replay`` — the end-to-end ``serve_scenario`` replaying the
  merged trace on the shared cluster, measured in replayed requests/sec
  (also asserts the double-run digest is stable).

Results are written to ``BENCH_serve.json`` (override with the
``REPRO_BENCH_OUT`` environment variable) and CI gates them against
``benchmarks/baselines/BENCH_serve.json`` with the same >30% regression
tolerance as the other benchmarks.
"""

import os
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from harness.bench import BenchReport, PhaseResult  # noqa: E402

from repro.cluster import ClusterSpec  # noqa: E402
from repro.tenancy import build_tenants, make_tenants, serve_scenario  # noqa: E402

REPEATS = 3
TENANTS = 64
SPEC = ClusterSpec(num_hservers=4, num_sservers=2)


def best_of(fn, repeats: int = REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def report():
    rep = BenchReport(bench="serve")
    rep.collect_environment()
    yield rep
    out = os.environ.get("REPRO_BENCH_OUT", str(REPO_ROOT / "BENCH_serve.json"))
    rep.write(out)
    print(f"\nwrote {out}")


def test_sharded_build(report):
    """Per-tenant build fan-out: trace gen, premap, quota — serial path."""
    fleet = make_tenants(TENANTS)
    wall, builds = best_of(lambda: build_tenants(SPEC, fleet))
    assert len(builds) == TENANTS
    report.add(PhaseResult.from_timing("serve-build", wall, TENANTS))
    print(f"\nserve build: {TENANTS} tenants, {wall * 1e3:.1f} ms")


def test_serve_replay(report):
    """End-to-end serve: build, admission/QoS merge, coupled replay."""
    wall, rep = best_of(
        lambda: serve_scenario(spec=SPEC, tenants=TENANTS, max_active=16)
    )
    assert rep.digest() == serve_scenario(
        spec=SPEC, tenants=TENANTS, max_active=16
    ).digest()
    report.add(PhaseResult.from_timing("serve-replay", wall, rep.total_requests))
    print(
        f"\nserve replay: {TENANTS} tenants, {rep.total_requests} requests, "
        f"{wall * 1e3:.1f} ms ({rep.total_requests / wall:,.0f} req/s)"
    )

"""Ablation — RSSD step granularity (§III-F).

"Generally finer 'step' values result in more precise stripe pairs,
but with increased calculation overhead."  Verify both halves: a finer
step never yields a worse modelled cost, and evaluates more candidates.
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import CostModelParams, determine_stripes
from repro.units import KiB


def test_step_ablation(once):
    params = CostModelParams.from_cluster(ClusterSpec())
    count = 16
    offsets = np.arange(count, dtype=np.int64) * 96 * KiB
    lengths = np.full(count, 96 * KiB, dtype=np.int64)
    is_read = np.zeros(count, dtype=bool)
    conc = np.full(count, 8, dtype=np.int64)
    bursts = np.repeat(np.arange(2), 8)

    def sweep():
        return {
            step: determine_stripes(
                params, offsets, lengths, is_read, conc,
                step=step, burst_ids=bursts,
            )
            for step in (4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB)
        }

    decisions = once(sweep)
    print()
    for step, d in decisions.items():
        print(
            f"step {step // KiB:>3}KiB: pair {d.pair}, cost {d.cost * 1e3:8.3f}ms, "
            f"{d.candidates} candidates"
        )
    steps = sorted(decisions)
    for fine, coarse in zip(steps, steps[1:]):
        assert decisions[fine].cost <= decisions[coarse].cost + 1e-12
        assert decisions[fine].candidates >= decisions[coarse].candidates

"""Ablation — Algorithm 2's h = 0 extreme (SServer-only placement).

For small-request regions the optimal placement concentrates on the
SServers.  Verify MHA actually exercises the extreme on a small-request
workload, and that it pays off against the best no-extreme decision.
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import CostModelParams, determine_stripes
from repro.harness.experiment import run_scheme
from repro.schemes import MHAScheme
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


def test_h_zero_ablation(once):
    spec = ClusterSpec()
    small = IORWorkload(
        num_processes=16, request_sizes=16 * KiB, total_size=8 * MiB
    ).trace("write")

    def run():
        measured = run_scheme("MHA", spec, small, scheme_kwargs={"seed": 0})
        scheme = MHAScheme(seed=0)
        scheme.build(spec, small)
        pairs = [pair for _, pair in scheme.plan.rst]
        return measured, pairs

    measured, pairs = once(run)
    print()
    print(f"MHA on 16KiB requests: {measured.bandwidth_mib:8.2f} MiB/s")
    print("chosen pairs:", [str(p) for p in pairs])
    # the SServer-only extreme is used for small requests
    assert any(p.h == 0 for p in pairs)

    # and the cost model agrees the extreme beats any h > 0 candidate
    params = CostModelParams.from_cluster(spec)
    count = 32
    offsets = np.arange(count, dtype=np.int64) * 16 * KiB
    lengths = np.full(count, 16 * KiB, dtype=np.int64)
    is_read = np.zeros(count, dtype=bool)
    conc = np.full(count, 16, dtype=np.int64)
    bursts = np.repeat(np.arange(2), 16)
    free = determine_stripes(
        params, offsets, lengths, is_read, conc, burst_ids=bursts
    )
    forced = determine_stripes(
        params, offsets, lengths, is_read, conc, burst_ids=bursts,
        allow_h_zero=False,
    )
    print(f"free search: {free.pair} cost {free.cost * 1e3:.3f}ms")
    print(f"h>0 forced:  {forced.pair} cost {forced.cost * 1e3:.3f}ms")
    assert free.pair.h == 0
    assert free.cost <= forced.cost

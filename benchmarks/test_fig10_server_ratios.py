"""Fig. 10 — IOR bandwidth across HServer:SServer ratios.

Paper's shape: MHA beats DEF/AAL/HARL at every ratio; read and write
bandwidth improve as the SServer share grows; DEF barely moves.
"""

from repro.harness import fig10_server_ratios


def test_fig10(once):
    result = once(fig10_server_ratios, total_mib=16)
    print()
    print(result)

    for row in result.rows:
        assert result.value(row, "MHA") > result.value(row, "DEF")
        assert result.value(row, "MHA") >= 0.97 * result.value(row, "HARL")

    # more SServers -> more MHA bandwidth (both ops)
    for op in ("read", "write"):
        series = [result.value(f"{m}h:{n}s {op}", "MHA") for m, n in
                  ((7, 1), (6, 2), (5, 3), (4, 4))]
        assert series[-1] > series[0]
        assert all(b >= a * 0.95 for a, b in zip(series, series[1:]))

    # DEF cannot exploit the SServers: flat across ratios
    def_series = [result.value(f"{m}h:{n}s read", "DEF") for m, n in
                  ((7, 1), (6, 2), (5, 3), (4, 4))]
    assert max(def_series) / min(def_series) < 1.25

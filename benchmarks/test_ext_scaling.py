"""Extension — larger-cluster scaling (the paper's future work).

"As future work, we plan to evaluate MHA in a much larger cluster":
sweep the cluster size at a fixed H:S ratio and check MHA keeps its
advantage over DEF and that aggregate bandwidth grows with servers.
"""

from repro.cluster import ClusterSpec
from repro.harness.experiment import compare_schemes
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


def test_cluster_scaling(once):
    def sweep():
        results = {}
        for m, n in ((6, 2), (12, 4), (24, 8)):
            spec = ClusterSpec(num_hservers=m, num_sservers=n)
            trace = IORWorkload(
                num_processes=32,
                request_sizes=[128 * KiB, 256 * KiB],
                total_size=16 * MiB,
                seed=0,
            ).trace("write")
            results[(m, n)] = compare_schemes(spec, trace, ("DEF", "MHA"))
        return results

    results = once(sweep)
    print()
    mha_series = []
    for (m, n), cmp in results.items():
        mha = cmp.bandwidth("MHA") / MiB
        ratio = cmp.bandwidth("MHA") / cmp.bandwidth("DEF")
        mha_series.append(cmp.bandwidth("MHA"))
        print(f"{m}h:{n}s  MHA {mha:8.2f} MiB/s  ({ratio:.2f}x DEF)")
        assert cmp.bandwidth("MHA") > cmp.bandwidth("DEF")
    # aggregate bandwidth scales up with the cluster
    assert mha_series[-1] > 1.5 * mha_series[0]

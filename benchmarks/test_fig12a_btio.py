"""Fig. 12a — BTIO aggregate bandwidth (class B + C interleaved).

Paper's shape: MHA improves over DEF by ~50-65%, growing with the
process count relative to DEF; MHA also beats AAL and HARL.
"""

from repro.harness import fig12a_btio


def test_fig12a(once):
    result = once(fig12a_btio, steps=16)
    print()
    print(result)

    for row in result.rows:
        assert result.value(row, "MHA") > 1.3 * result.value(row, "DEF")
        for other in ("AAL", "HARL"):
            assert result.value(row, "MHA") >= 0.97 * result.value(row, other)

"""Fig. 12b — LANL anonymous-application trace replay.

Paper's shape: MHA beats DEF (+89.7% there), AAL (+51.2%) and HARL
(+15.6%); the mixed 16 B / 128K-16 B / 128 KB loop pattern is exactly
what reordering groups.
"""

from repro.harness import fig12b_lanl


def test_fig12b(once):
    result = once(fig12b_lanl)
    print()
    print(result)

    mha = result.value("bandwidth", "MHA")
    assert mha > 1.5 * result.value("bandwidth", "DEF")
    assert mha > 1.2 * result.value("bandwidth", "AAL")
    assert mha >= 0.99 * result.value("bandwidth", "HARL")

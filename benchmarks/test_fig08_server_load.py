"""Fig. 8 — per-server I/O time under each layout scheme.

Paper's shape: DEF/AAL load the HServers several times harder than the
SServers (the ~3.5x skew); MHA's per-server I/O times are nearly even
and its busiest server does the least work of all schemes' busiest
servers.
"""

from repro.harness import fig08_server_io_time


def test_fig08(once):
    result = once(fig08_server_io_time, total_mib=16)
    print()
    print(result)

    h_rows = [r for r in result.rows if "(H)" in r]
    s_rows = [r for r in result.rows if "(S)" in r]

    # DEF skew: HServers far busier than SServers
    def_h = max(result.value(r, "DEF") for r in h_rows)
    def_s = max(result.value(r, "DEF") for r in s_rows)
    assert def_h > 2.0 * def_s

    # MHA's busiest server is below DEF's busiest server
    mha_peak = max(result.value(r, "MHA") for r in result.rows)
    def_peak = max(result.value(r, "DEF") for r in result.rows)
    assert mha_peak < def_peak

    # MHA server times are clustered (near-even), normalized to min ~1.0
    mha_values = [result.value(r, "MHA") for r in result.rows]
    assert min(mha_values) >= 0.99  # normalization anchor
    assert max(mha_values) / min(mha_values) < 2.0

"""Fig. 13a — out-of-core LU decomposition trace replay.

Paper's shape: MHA beats DEF (+56.2%), AAL (+8.1%) and HARL (+14.2%);
the per-process files hold fixed-size writes and growing reads.
"""

from repro.harness import fig13a_lu


def test_fig13a(once):
    result = once(fig13a_lu, slabs=16)
    print()
    print(result)

    mha = result.value("bandwidth", "MHA")
    assert mha > 1.3 * result.value("bandwidth", "DEF")
    assert mha > 1.1 * result.value("bandwidth", "AAL")
    assert mha >= 0.95 * result.value("bandwidth", "HARL")

"""Robustness properties: MHA on randomized workloads.

The figure benchmarks check the paper's specific workloads; these
property tests check that MHA's machinery never *breaks down* on
workloads nobody hand-picked: random size mixes, random concurrency,
random op mixes.  Two invariants:

* the plan is always structurally consistent (auditor-clean) and every
  request remains resolvable;
* MHA never loses catastrophically to the default layout — the paper's
  "effective tool for I/O performance optimization" framing implies it
  is safe to turn on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline, verify_plan
from repro.harness import compare_schemes
from repro.tracing import Trace, TraceRecord
from repro.units import KiB


@st.composite
def random_workloads(draw):
    """A random phase-structured workload over one shared file."""
    rng_seed = draw(st.integers(min_value=0, max_value=999))
    rng = np.random.default_rng(rng_seed)
    n_sizes = draw(st.integers(min_value=1, max_value=3))
    sizes = [
        int(s) for s in rng.choice([4, 16, 64, 128, 256], size=n_sizes, replace=False)
    ]
    procs = draw(st.sampled_from([2, 4, 8]))
    phases = draw(st.integers(min_value=2, max_value=8))
    write_fraction = draw(st.floats(min_value=0.0, max_value=1.0))
    records = []
    offset = 0
    for phase in range(phases):
        size = sizes[phase % len(sizes)] * KiB
        for rank in range(procs):
            op = "write" if rng.random() < write_fraction else "read"
            records.append(
                TraceRecord(
                    offset=offset,
                    timestamp=phase * 10.0 + rank * 1e-4,
                    rank=rank,
                    size=size,
                    op=op,
                    file="rand.dat",
                )
            )
            offset += size
    return Trace(records)


class TestRandomWorkloads:
    @given(trace=random_workloads())
    @settings(max_examples=15, deadline=None)
    def test_plan_always_consistent(self, trace):
        spec = ClusterSpec()
        plan = MHAPipeline(spec, seed=0).plan(trace)
        report = verify_plan(plan, trace)
        assert report.ok, str(report)

    @given(trace=random_workloads())
    @settings(max_examples=8, deadline=None)
    def test_mha_never_catastrophic_vs_def(self, trace):
        spec = ClusterSpec()
        cmp = compare_schemes(spec, trace, ("DEF", "MHA"))
        # MHA may lose slightly on adversarial shapes, never badly
        assert cmp.bandwidth("MHA") >= 0.7 * cmp.bandwidth("DEF")

    def test_single_request_trace(self):
        spec = ClusterSpec()
        trace = Trace(
            [TraceRecord(offset=0, timestamp=0.0, rank=0, size=4096, op="read")]
        )
        plan = MHAPipeline(spec, seed=0).plan(trace)
        assert verify_plan(plan, trace).ok

    def test_huge_single_request(self):
        spec = ClusterSpec()
        trace = Trace(
            [
                TraceRecord(
                    offset=0, timestamp=0.0, rank=0, size=64 * 1024 * KiB, op="write"
                )
            ]
        )
        plan = MHAPipeline(spec, seed=0).plan(trace)
        assert verify_plan(plan, trace).ok


class TestFaultConservation:
    """Faults defer and dilate service but never change what is served.

    The conservation contract of :mod:`repro.faults`: with and without
    an attached plan, a replay moves exactly the same bytes to exactly
    the same servers — only the timing differs.
    """

    @staticmethod
    def _plan(seed):
        from repro.faults import (
            BackgroundScrub,
            FaultPlan,
            ServerOutage,
            TransientSlowdown,
            WriteCliff,
        )

        return FaultPlan(
            faults=(
                TransientSlowdown(
                    server=0, factor=4.0, windows=4, mean_duration=0.5, horizon=5.0
                ),
                ServerOutage(
                    server=1, at=0.01, duration=0.5, rebuild_duration=1.0,
                    rebuild_factor=2.0,
                ),
                BackgroundScrub(server=2, period=0.5, duty=0.2, factor=2.0),
                WriteCliff(
                    server=6, capacity_bytes=256 * KiB, factor=3.0, recovery_idle=0.1
                ),
            ),
            seed=seed,
        )

    @given(trace=random_workloads(), seed=st.integers(min_value=0, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_faults_conserve_bytes(self, trace, seed):
        from repro.pfs import run_workload
        from repro.schemes import build_view

        spec = ClusterSpec()
        view = build_view("DEF", spec, trace)
        healthy = run_workload(spec, view, trace)
        faulted = run_workload(spec, view, trace, fault_plan=self._plan(seed))
        assert faulted.total_bytes == healthy.total_bytes
        assert faulted.read_bytes == healthy.read_bytes
        assert faulted.write_bytes == healthy.write_bytes
        assert faulted.per_server_bytes == healthy.per_server_bytes
        assert faulted.requests == healthy.requests
        assert faulted.makespan >= healthy.makespan

    @given(trace=random_workloads())
    @settings(max_examples=6, deadline=None)
    def test_faulted_comparison_conserves_per_scheme(self, trace):
        spec = ClusterSpec()
        healthy = compare_schemes(spec, trace, ("DEF", "MHA"))
        faulted = compare_schemes(
            spec, trace, ("DEF", "MHA"), fault_plan=self._plan(0)
        )
        for name in ("DEF", "MHA"):
            h, f = healthy[name].metrics, faulted[name].metrics
            assert f.per_server_bytes == h.per_server_bytes
            assert f.total_bytes == h.total_bytes

"""Tenant namespaces: disjoint files and rank windows."""

import pytest

from repro.exceptions import ConfigurationError
from repro.tenancy import (
    RANK_STRIDE,
    namespace_trace,
    rank_base,
    tenant_file,
    tenant_of_file,
    tenant_of_rank,
)
from repro.tracing import Trace, TraceRecord


def rec(rank, file="f", ts=0.0):
    return TraceRecord(
        offset=0, timestamp=ts, rank=rank, size=1024, op="write", file=file
    )


class TestNames:
    def test_file_round_trip(self):
        assert tenant_file(42, "data.bin") == "t0042/data.bin"
        assert tenant_of_file("t0042/data.bin") == 42
        assert tenant_of_file("t1234/a/b") == 1234
        assert tenant_of_file("data.bin") is None
        assert tenant_of_file("x0042/data.bin") is None
        assert tenant_of_file("t00x2/data.bin") is None

    def test_rank_windows_partition_the_integers(self):
        for tenant in (0, 1, 99):
            base = rank_base(tenant)
            assert tenant_of_rank(base) == tenant
            assert tenant_of_rank(base + RANK_STRIDE - 1) == tenant
            assert tenant_of_rank(base + RANK_STRIDE) == tenant + 1


class TestNamespaceTrace:
    def test_rewrites_files_ranks_and_pids(self):
        trace = Trace([rec(0), rec(1, file="g", ts=1.0)])
        spaced = namespace_trace(trace, 7)
        assert [r.file for r in spaced] == ["t0007/f", "t0007/g"]
        assert [r.rank for r in spaced] == [rank_base(7), rank_base(7) + 1]
        assert [r.pid for r in spaced] == [rank_base(7), rank_base(7) + 1]
        # payload untouched
        assert [r.timestamp for r in spaced] == [0.0, 1.0]
        assert all(r.size == 1024 for r in spaced)

    def test_rank_overflow_is_a_config_error(self):
        with pytest.raises(ConfigurationError, match="namespace window"):
            namespace_trace(Trace([rec(RANK_STRIDE)]), 0)

    def test_namespaces_are_disjoint(self):
        a = namespace_trace(Trace([rec(0)]), 3)
        b = namespace_trace(Trace([rec(0)]), 4)
        assert a[0].file != b[0].file
        assert tenant_of_rank(a[0].rank) != tenant_of_rank(b[0].rank)

"""QoS kernels: shaping, fair queueing, capacity — pure and fair."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.tenancy import (
    admission_offsets,
    nominal_bandwidth,
    token_bucket_release,
    wfq_emission,
)
from repro.units import KiB, MiB


class TestNominalBandwidth:
    def test_positive_and_monotone_in_servers(self):
        small = nominal_bandwidth(ClusterSpec(num_hservers=2, num_sservers=1))
        large = nominal_bandwidth(ClusterSpec(num_hservers=4, num_sservers=2))
        assert 0.0 < small < large

    def test_link_caps_fast_devices(self):
        spec = ClusterSpec(num_hservers=0, num_sservers=2)
        # SSD streams faster than GigE: the link is the binding term
        assert nominal_bandwidth(spec) <= 2 * spec.link.bandwidth + 1e-9


class TestTokenBucket:
    def test_burst_passes_through_then_rate_limits(self):
        size = 64 * KiB
        arrivals = [0.0] * 8
        release = token_bucket_release(arrivals, [size] * 8, rate=float(size), burst=2.0 * size)
        # two requests ride the initial burst; the rest pace at 1/s
        assert release[0] == 0.0
        assert release[1] == 0.0
        for gap in (b - a for a, b in zip(release[2:], release[3:])):
            assert gap == pytest.approx(1.0)

    def test_idle_time_refills_the_bucket(self):
        size = 64 * KiB
        release = token_bucket_release(
            [0.0, 100.0], [size, size], rate=float(size), burst=float(size)
        )
        assert release == [0.0, 100.0]

    def test_oversized_request_goes_into_deficit(self):
        release = token_bucket_release([0.0], [10 * KiB], rate=1024.0, burst=1024.0)
        assert release[0] == pytest.approx((10 * KiB - 1024.0) / 1024.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            token_bucket_release([0.0], [1], rate=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            token_bucket_release([0.0], [1, 2], rate=1.0, burst=1.0)

    @given(
        raw=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),
                st.integers(min_value=1, max_value=1 << 20),
            ),
            min_size=1,
            max_size=30,
        ),
        rate=st.floats(min_value=1e3, max_value=1e8),
        burst_factor=st.floats(min_value=0.0, max_value=4.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_releases_monotone_and_after_arrival(self, raw, rate, burst_factor):
        arrivals = sorted(a for a, _ in raw)
        sizes = [s for _, s in raw]
        release = token_bucket_release(
            arrivals, sizes, rate=rate, burst=burst_factor * max(sizes)
        )
        assert all(r >= a for r, a in zip(release, arrivals))
        assert all(a <= b for a, b in zip(release, release[1:]))


class TestWFQ:
    def test_preserves_per_tenant_order_with_increasing_starts(self):
        releases = [[0.0, 0.1, 0.2], [0.0, 0.15]]
        sizes = [[4 * KiB] * 3, [64 * KiB] * 2]
        order = wfq_emission(releases, sizes, [1.0, 1.0], capacity=float(MiB))
        starts = [s for _, _, s in order]
        assert all(a < b for a, b in zip(starts, starts[1:]))
        for tenant in (0, 1):
            ks = [k for i, k, _ in order if i == tenant]
            assert ks == sorted(ks)

    def test_weights_bias_the_interleaving(self):
        # two saturated flows, same sizes; the heavy flow finishes its
        # backlog earlier in the emission order
        n = 20
        releases = [[0.0] * n, [0.0] * n]
        sizes = [[64 * KiB] * n, [64 * KiB] * n]
        order = wfq_emission(releases, sizes, [3.0, 1.0], capacity=float(MiB))
        heavy_done = max(pos for pos, (i, _, _) in enumerate(order) if i == 0)
        light_done = max(pos for pos, (i, _, _) in enumerate(order) if i == 1)
        assert heavy_done < light_done

    def test_no_flow_starves(self):
        # even a weight-0.001 flow gets served while a heavy flow backlogs
        releases = [[0.0] * 50, [0.0]]
        sizes = [[64 * KiB] * 50, [64 * KiB]]
        order = wfq_emission(releases, sizes, [1000.0, 0.001], capacity=float(MiB))
        assert sum(1 for i, _, _ in order if i == 1) == 1

    def test_deterministic(self):
        releases = [[0.0, 0.5], [0.25]]
        sizes = [[KiB, 2 * KiB], [3 * KiB]]
        a = wfq_emission(releases, sizes, [1.0, 2.0], capacity=1e6)
        b = wfq_emission(releases, sizes, [1.0, 2.0], capacity=1e6)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wfq_emission([[0.0]], [[1]], [1.0], capacity=0.0)
        with pytest.raises(ConfigurationError):
            wfq_emission([[0.0]], [[1], [2]], [1.0], capacity=1.0)
        with pytest.raises(ConfigurationError):
            wfq_emission([[0.0]], [[1, 2]], [1.0], capacity=1.0)


class TestAdmission:
    def test_enough_slots_admit_everyone_immediately(self):
        offsets = admission_offsets([0.0, 1.0, 2.0], [5.0, 6.0, 7.0], [100, 100, 100], 1e6, 3)
        assert offsets == [0.0, 0.0, 0.0]

    def test_single_slot_serializes(self):
        offsets = admission_offsets(
            [0.0, 0.0], [10.0, 10.0], [int(1e6), int(1e6)], 1e6, 1
        )
        assert offsets[0] == 0.0
        assert offsets[1] == pytest.approx(11.0)  # span 10 + 1e6/1e6

    def test_offsets_never_negative_and_deterministic(self):
        args = ([3.0, 0.0, 1.0], [4.0, 9.0, 2.0], [10, 20, 30], 1e3, 2)
        a = admission_offsets(*args)
        b = admission_offsets(*args)
        assert a == b
        assert all(offset >= 0.0 for offset in a)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            admission_offsets([0.0], [1.0], [1], 1e6, 0)
        with pytest.raises(ConfigurationError):
            admission_offsets([0.0], [1.0], [1], 0.0, 1)
        with pytest.raises(ConfigurationError):
            admission_offsets([0.0], [1.0, 2.0], [1], 1e6, 1)

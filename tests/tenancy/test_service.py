"""The serve scenario end to end: determinism, sharding, fairness."""

import pytest

from repro.cluster import ClusterSpec
from repro.exceptions import LayoutError
from repro.layouts.batch import MergedRuns
from repro.tenancy import (
    RANK_STRIDE,
    TenantRoutingView,
    TenantSpec,
    build_tenants,
    make_tenants,
    serve_scenario,
    tenant_of_rank,
)

SPEC = ClusterSpec(num_hservers=2, num_sservers=2)
N = 16


def serve(**kwargs):
    defaults = dict(spec=SPEC, tenants=N, max_active=6)
    defaults.update(kwargs)
    return serve_scenario(**defaults)


class TestDeterminism:
    def test_two_runs_digest_identical(self):
        assert serve().digest() == serve().digest()

    def test_sharded_equals_single_process_bit_identical(self):
        serial = serve(n_jobs=1)
        sharded = serve(n_jobs=4)
        assert serial.digest() == sharded.digest()
        # bit-identical all the way down, not just through the hash
        assert serial.metrics.makespan == sharded.metrics.makespan
        assert serial.metrics.latencies == sharded.metrics.latencies
        assert serial.metrics.latency_ranks == sharded.metrics.latency_ranks
        assert serial.tenants == sharded.tenants

    def test_event_engine_matches_flat(self):
        assert serve(engine="event").digest() == serve(engine="flat").digest()

    def test_arrival_seed_changes_results(self):
        assert serve().digest() != serve(arrival_seed=99).digest()


class TestFairnessInvariants:
    def test_no_tenant_starves(self):
        report = serve()
        assert report.tenants
        for t in report.tenants:
            assert t.requests > 0
            assert t.completed == t.requests  # every request finished
            assert t.p99 > 0.0

    def test_every_tenant_attributed(self):
        report = serve()
        assert len(report.tenants) == N
        assert report.total_requests == sum(t.requests for t in report.tenants)
        assert len(report.metrics.latencies) == report.total_requests

    def test_admission_bounds_concurrency(self):
        open_door = serve(max_active=N)
        squeezed = serve(max_active=1)
        assert all(t.admission_delay == 0.0 for t in open_door.tenants)
        assert any(t.admission_delay > 0.0 for t in squeezed.tenants)
        assert squeezed.makespan > open_door.makespan

    def test_report_figures_cover_the_surface(self):
        report = serve()
        names = {f.figure for f in report.figures}
        assert names == {
            "serve-bw",
            "serve-tails",
            "serve-fairness",
            "serve-tenants",
            "serve-admission",
        }
        fairness = next(f for f in report.figures if f.figure == "serve-fairness")
        shares = [fairness.value(k, "bytes") for k in ("hot", "tail")]
        assert sum(shares) == pytest.approx(1.0)


class TestQuotaEnforcement:
    def test_tail_quota_demotes_to_hdd(self):
        builds = build_tenants(SPEC, make_tenants(4, hot_fraction=0.5))
        tails = [b for b in builds if b.klass == "tail"]
        hots = [b for b in builds if b.klass == "hot"]
        assert tails and hots
        for b in tails:  # default tail quota binds: rebuilt HDD-only
            assert b.demoted
            assert b.ssd_bytes == 0
        for b in hots:  # unlimited quota: SSD use intact
            assert not b.demoted
            assert b.ssd_bytes > 0

    def test_unquotad_fleet_keeps_ssd_placement(self):
        fleet = tuple(
            TenantSpec(tenant=k, klass="tail", scheme="AAL", share=0.25)
            for k in range(4)
        )
        builds = build_tenants(SPEC, fleet)
        assert all(not b.demoted for b in builds)
        assert all(b.ssd_bytes > 0 for b in builds)

    def test_quota_respected_in_full_serve(self):
        report = serve()
        assert any(t.demoted for t in report.tenants if t.klass == "tail")


class TestMDSNamespaces:
    def test_namespace_per_tenant_registered(self):
        import repro.tenancy.service as service_mod

        captured = {}
        original = service_mod.replay_trace

        def spy(pfs, *args, **kwargs):
            captured["mds"] = pfs.mds
            return original(pfs, *args, **kwargs)

        service_mod.replay_trace = spy
        try:
            serve()
        finally:
            service_mod.replay_trace = original
        mds = captured["mds"]
        assert mds.namespaces() == tuple(range(N))
        for tenant in mds.namespaces():
            mds.rst_for(tenant)  # registered, possibly empty

    def test_mds_namespace_api(self):
        from repro.core.rst import RST, StripePair
        from repro.exceptions import ConfigurationError
        from repro.pfs.mds import MetaDataServer
        from repro.simulate import Simulator

        mds = MetaDataServer(Simulator())
        rst = RST()
        rst.set("r0", StripePair(4096, 8192))
        mds.register_namespace(0, rst)
        mds.register_namespace(1)
        assert mds.namespaces() == (0, 1)
        assert mds.rst_for(0).get("r0") == StripePair(4096, 8192)
        assert mds.drt_for(0) is None
        _, pair = mds.lookup("r0", tenant=0)
        assert pair == StripePair(4096, 8192)
        _, missing = mds.lookup("r0", tenant=1)
        assert missing is None
        _, global_miss = mds.lookup("r0")
        assert global_miss is None
        with pytest.raises(ConfigurationError):
            mds.register_namespace(0)
        with pytest.raises(ConfigurationError):
            mds.rst_for(9)


class TestTenantRoutingView:
    def make_view(self):
        builds = build_tenants(SPEC, make_tenants(2, hot_fraction=1.0))
        runs = {}
        requests = {}
        for b in builds:
            runs.update(b.runs_by_file)
            requests.update(b.requests_by_file)
        return TenantRoutingView(runs, requests), builds

    def test_serves_premapped_batches(self):
        view, builds = self.make_view()
        b = builds[0]
        (file, pairs), = b.requests_by_file.items()
        runs = view.merged_runs(file, [p[0] for p in pairs], [p[1] for p in pairs])
        assert runs is b.runs_by_file[file]
        frags = view.map_request(file, pairs[0][0], pairs[0][1])
        assert frags == runs.subrequests(0)

    def test_unknown_file_and_diverged_batches_rejected(self):
        view, builds = self.make_view()
        (file, pairs), = builds[0].requests_by_file.items()
        with pytest.raises(LayoutError, match="no premapped"):
            view.merged_runs("nope", [0], [1])
        with pytest.raises(LayoutError, match="diverged"):
            view.merged_runs(file, [pairs[0][0] + 7], [pairs[0][1]])
        with pytest.raises(LayoutError, match="never premapped"):
            view.map_request(file, 10**9, 1)

    def test_mismatched_construction_rejected(self):
        empty = MergedRuns(
            servers=[], objs=[], offsets=[], lengths=[],
            first_logicals=[], starts=[0], n_fragments=0,
        )
        with pytest.raises(LayoutError):
            TenantRoutingView({"f": empty}, {})
        with pytest.raises(LayoutError):
            TenantRoutingView({"f": empty}, {"f": ((0, 1),)})


class TestInterference:
    def test_tenants_contend_on_shared_servers(self):
        # the same fleet overlapped vs admission-serialized: overlapping
        # tenants queue behind each other on the shared servers
        overlapped = serve(max_active=N)
        serialized = serve(max_active=1)
        assert max(t.p99 for t in overlapped.tenants) > max(
            t.p99 for t in serialized.tenants
        )

    def test_rank_attribution_is_consistent(self):
        report = serve()
        for latency_rank in report.metrics.latency_ranks:
            assert 0 <= tenant_of_rank(latency_rank, RANK_STRIDE) < N


class TestScale:
    def test_couple_hundred_tenants_replay_fully(self):
        report = serve_scenario(spec=SPEC, tenants=200, max_active=32, n_jobs=None)
        assert report.num_tenants == 200
        assert report.total_requests == sum(t.requests for t in report.tenants)
        assert all(t.completed == t.requests for t in report.tenants)
        assert report.digest()

"""Fleet configuration: validation happens at config time, not mid-run."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.tenancy import (
    SERVE_SCHEMES,
    TenantSpec,
    make_tenants,
    tenant_workload,
    validate_tenants,
)
from repro.tenancy.spec import tenant_op


class TestTenantSpec:
    def test_defaults_validate(self):
        t = TenantSpec(tenant=0)
        assert t.klass == "hot"
        assert t.scheme in SERVE_SCHEMES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tenant": -1},
            {"klass": "warm"},
            {"scheme": "SAW"},  # feedback schemes cannot be premapped
            {"scheme": "nope"},
            {"weight": 0.0},
            {"share": 0.0},
            {"share": 1.5},
            {"sserver_quota": -0.1},
            {"sserver_quota": 1.1},
            {"rate": 0.0},
            {"start": -1.0},
            {"jitter": -1.0},
        ],
    )
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantSpec(**{"tenant": 0, **kwargs})


class TestValidateTenants:
    def test_shares_must_sum_to_at_most_one(self):
        fleet = [
            TenantSpec(tenant=0, share=0.6),
            TenantSpec(tenant=1, share=0.6),
        ]
        with pytest.raises(ConfigurationError, match="shares sum"):
            validate_tenants(fleet)

    def test_share_sum_of_exactly_one_passes(self):
        validate_tenants(
            [TenantSpec(tenant=k, share=0.25) for k in range(4)]
        )

    def test_ids_unique_and_dense(self):
        with pytest.raises(ConfigurationError, match="unique"):
            validate_tenants(
                [TenantSpec(tenant=0, share=0.1), TenantSpec(tenant=0, share=0.1)]
            )
        with pytest.raises(ConfigurationError, match="dense"):
            validate_tenants(
                [TenantSpec(tenant=0, share=0.1), TenantSpec(tenant=2, share=0.1)]
            )

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_tenants([])


class TestMakeTenants:
    def test_mix_ratio_and_shares(self):
        fleet = make_tenants(100, hot_fraction=0.8)
        assert len(fleet) == 100
        hot = sum(1 for t in fleet if t.klass == "hot")
        assert hot == 80
        assert math.fsum(t.share for t in fleet) <= 1.0 + 1e-9
        assert len({t.tenant for t in fleet}) == 100

    def test_deterministic(self):
        assert make_tenants(50) == make_tenants(50)

    def test_all_hot_and_all_tail(self):
        assert all(t.klass == "hot" for t in make_tenants(10, hot_fraction=1.0))
        assert all(t.klass == "tail" for t in make_tenants(10, hot_fraction=0.0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_tenants(0)
        with pytest.raises(ConfigurationError):
            make_tenants(5, hot_fraction=1.5)


class TestTenantWorkload:
    def test_classes_produce_disjoint_shapes(self):
        hot = TenantSpec(tenant=0, klass="hot")
        tail = TenantSpec(tenant=1, klass="tail")
        hot_trace = tenant_workload(hot).trace(tenant_op(hot))
        tail_trace = tenant_workload(tail).trace(tenant_op(tail))
        assert all(r.op == "read" for r in hot_trace)
        assert {r.op for r in tail_trace} == {"write", "read"}  # restart re-read
        assert max(r.size for r in hot_trace) < max(r.size for r in tail_trace)

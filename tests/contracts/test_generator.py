"""The twin registry, the static scanner, and the generated suites all
have to agree — these tests pin the three views of the contracts to
each other so none can drift silently.
"""

import ast
import os
import subprocess
import sys

import pytest

from repro import contracts
from tools.repro_lint.checkers import twin_contracts as tc
from tools.repro_lint.gen_twin_tests import generated_modules, slug_of

from . import _harnesses

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
CONTRACTS_DIR = os.path.join(REPO_ROOT, "tests", "contracts")


def static_twin_sites():
    """Every ``@twin_of`` site found by scanning ``src/`` with the
    RL1xx extractor (no imports involved)."""
    sites = {}
    for dirpath, _, filenames in os.walk(os.path.join(REPO_ROOT, "src")):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            posix = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
            for info in tc.extract_functions(tree, posix, posix, False):
                if info.contract is not None:
                    sites[info.spec] = info
    return sites


class TestRegistrySync:
    def test_static_scan_matches_runtime_registry(self):
        """A @twin_of site in a module missing from TWIN_MODULES would
        register statically but not at runtime — fail loudly instead."""
        contracts.load_all()
        runtime = {c.twin for c in contracts.iter_contracts()}
        static = set(static_twin_sites())
        assert static == runtime

    def test_twin_modules_all_register_contracts(self):
        contracts.load_all()
        modules_with_contracts = {
            c.twin.split(":")[0] for c in contracts.iter_contracts()
        }
        assert modules_with_contracts == set(contracts.TWIN_MODULES)

    def test_registry_covers_at_least_four_pairs(self):
        contracts.load_all()
        assert len(list(contracts.iter_contracts())) >= 4

    def test_static_kinds_match_runtime(self):
        contracts.load_all()
        static = static_twin_sites()
        for contract in contracts.iter_contracts():
            parsed = static[contract.twin].contract
            assert parsed.reference == contract.reference
            assert parsed.kind == contract.kind
            assert tuple(parsed.unsupported) == contract.unsupported
            assert tuple(parsed.twin_only) == contract.twin_only
            assert dict(parsed.param_map) == dict(contract.param_map)
            assert tuple(parsed.fallback_flags) == contract.fallback_flags

    def test_checker_kinds_mirror_contracts_module(self):
        assert tc._TWIN_KINDS == contracts.TWIN_KINDS


class TestHarnessCoverage:
    def test_every_contract_names_a_known_harness(self):
        contracts.load_all()
        for contract in contracts.iter_contracts():
            assert contract.harness, f"{contract.twin} declares no harness"
            assert contract.harness in _harnesses.HARNESSES

    def test_build_twin_test_returns_callable(self):
        contracts.load_all()
        for contract in contracts.iter_contracts():
            assert callable(_harnesses.build_twin_test(contract.twin))

    def test_unknown_harness_is_a_loud_error(self):
        contracts.load_all()
        twin = next(iter(contracts.iter_contracts())).twin
        contract = contracts.get_contract(twin)
        broken = type(contract)(
            reference=contract.reference,
            twin="repro.pfs.flat:made_up_twin",
            harness="no_such_harness",
        )
        contracts._REGISTRY[broken.twin] = broken
        try:
            with pytest.raises(KeyError):
                _harnesses.build_twin_test(broken.twin)
        finally:
            del contracts._REGISTRY[broken.twin]


class TestGeneratedSuitesFresh:
    def test_committed_modules_match_generator(self):
        """The staleness gate, as a test: regenerating must be a no-op."""
        wanted = generated_modules()
        committed = {
            name: open(os.path.join(CONTRACTS_DIR, name), encoding="utf-8").read()
            for name in os.listdir(CONTRACTS_DIR)
            if name.startswith("test_twin_") and name.endswith(".py")
        }
        assert sorted(committed) == sorted(wanted)
        for name in wanted:
            assert committed[name] == wanted[name], f"{name} is stale"

    def test_check_subcommand_reports_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", "gen-twin-tests", "--check"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_check_subcommand_flags_staleness(self, tmp_path):
        stale_dir = tmp_path / "contracts"
        stale_dir.mkdir()
        (stale_dir / "test_twin_pfs_flat_replay_flat.py").write_text("# stale\n")
        (stale_dir / "test_twin_orphan_pair.py").write_text("# orphan\n")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.repro_lint",
                "gen-twin-tests",
                "--check",
                "--dir",
                str(stale_dir),
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "STALE" in proc.stdout
        assert "ORPHAN" in proc.stdout
        assert "MISSING" in proc.stdout

    def test_slugs_are_unique(self):
        contracts.load_all()
        slugs = [slug_of(c.twin) for c in contracts.iter_contracts()]
        assert len(slugs) == len(set(slugs))

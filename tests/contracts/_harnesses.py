"""Differential-test harnesses for the twin-contract registry.

One factory per :attr:`TwinContract.harness` name.  Each factory
receives the contract and returns a hypothesis test function asserting
the twin's observables are *exactly* equal to the reference path's —
never approximately: twins only reorganize the same integer/IEEE
operations (see ``docs/static-analysis.md``, "Twin contracts").

The generated modules under ``tests/contracts/`` are one-liners calling
:func:`build_twin_test`; all substance lives here so regeneration is a
pure rename-level operation (``python -m tools.repro_lint
gen-twin-tests``).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import contracts
from repro.cluster import ClusterSpec
from repro.core import DRT, DRTEntry, Redirector, StripePair, build_region_layout
from repro.core.cost_model import (
    batch_costs,
    batch_costs_grid,
    burst_costs,
    burst_costs_grid,
)
from repro.core import CostModelParams
from repro.faults import (
    BackgroundScrub,
    FaultPlan,
    ServerOutage,
    TransientSlowdown,
    WriteCliff,
)
from repro.faults.state import CliffState, Scrub, ServerFaultState, Window
from repro.layouts import FixedStripeLayout
from repro.layouts.batch import merge_fragments
from repro.layouts.extents import (
    max_server_bytes_grid,
    per_server_bytes_batch,
    per_server_bytes_grid,
)
from repro.core.features import extract_features, extract_features_columnar
from repro.core.pipeline import MHAPipeline
from repro.pfs import HybridPFS, replay_trace
from repro.pfs.server import DataServer
from repro.schemes.base import LayoutView
from repro.simulate import FIFOResource, Simulator
from repro.tracing import (
    ColumnarTrace,
    Trace,
    TraceRecord,
    burst_ids_columnar,
    burst_ids_of,
    concurrency_columnar,
    concurrency_of,
    load_trace,
    load_trace_mmap,
    save_trace,
    save_trace_columnar,
    split_phases,
    split_phases_columnar,
)
from repro.units import KiB

HARNESSES = {}

#: cluster shapes exercised by the array-kernel harnesses (mirrors
#: tests/core/test_grid_equivalence.py, including single-class clusters)
SPECS = [
    ClusterSpec(),
    ClusterSpec(num_hservers=3, num_sservers=3),
    ClusterSpec(num_sservers=0),
    ClusterSpec(num_hservers=0, num_sservers=2),
]


def harness(name):
    """Register a factory for contracts declaring ``harness=name``."""

    def decorate(factory):
        HARNESSES[name] = factory
        return factory

    return decorate


def build_twin_test(twin_spec):
    """The differential test for one registered twin contract.

    Entry point of the generated modules: resolves the contract, looks
    up its harness factory, and returns the hypothesis test it builds.
    """
    contracts.load_all()
    contract = contracts.get_contract(twin_spec)
    factory = HARNESSES.get(contract.harness)
    if factory is None:
        raise KeyError(
            f"contract {twin_spec} names unknown harness {contract.harness!r}; "
            "add a factory to tests/contracts/_harnesses.py"
        )
    return factory(contract)


# ---------------------------------------------------------------- strategies

_seeds = st.integers(min_value=0, max_value=2**32 - 1)

_extent_batches = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=512 * KiB),
        st.integers(min_value=0, max_value=96 * KiB),
    ),
    min_size=0,
    max_size=10,
)

_trace_shapes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=64),  # offset in 16 KiB units
        st.integers(min_value=1, max_value=12),  # size in 16 KiB units
        st.integers(min_value=0, max_value=3),  # phase index
        st.integers(min_value=0, max_value=4),  # rank
        st.sampled_from(["read", "write"]),
    ),
    min_size=1,
    max_size=16,
)

# durations/bounds as integer quarters so float equality is trivially exact
_service_batches = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # duration * 4
        st.integers(min_value=0, max_value=60),  # not_before * 4
    ),
    min_size=1,
    max_size=12,
)

_sub_request_batches = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.sampled_from(["f", "g"]),
        st.integers(min_value=0, max_value=48),  # offset in 8 KiB units
        st.integers(min_value=1, max_value=16),  # length in 8 KiB units
        st.integers(min_value=0, max_value=30),  # not_before * 4
    ),
    min_size=1,
    max_size=14,
)


# fault timelines: quarters keep every boundary exactly representable
_fault_windows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # start * 4
        st.integers(min_value=0, max_value=12),  # extra duration * 4
        st.sampled_from([1.5, 2.0, 3.0]),  # dilation factor
    ),
    min_size=0,
    max_size=4,
)
_fault_outages = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # start * 4
        st.integers(min_value=1, max_value=12),  # duration * 4
    ),
    min_size=0,
    max_size=3,
)
_fault_scrubs = st.lists(
    st.tuples(
        st.integers(min_value=4, max_value=40),  # period * 4
        st.integers(min_value=0, max_value=40),  # duty * 4 (clamped to period)
        st.sampled_from([1.5, 2.5]),
        st.integers(min_value=0, max_value=8),  # phase * 4
    ),
    min_size=0,
    max_size=2,
)
_fault_cliffs = st.none() | st.tuples(
    st.integers(min_value=1, max_value=8),  # capacity in 8 KiB units
    st.sampled_from([2.0, 4.0]),
    st.integers(min_value=1, max_value=8),  # recovery idle * 4
)
# (op, length/8KiB, candidate*4, tail lag*4): candidates need NOT be
# monotone — the flat twin must survive out-of-order probes too
_fault_queries = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=80),
        st.integers(min_value=0, max_value=80),
    ),
    min_size=1,
    max_size=20,
)

#: a fixed four-mechanism plan for the faulted replay harness
#: (servers 0-3 exist in every spec that harness builds)
_FAULT_PLAN = FaultPlan(
    faults=(
        TransientSlowdown(server=0, factor=3.0, windows=3, mean_duration=1.0, horizon=8.0),
        ServerOutage(server=1, at=0.5, duration=1.0, rebuild_duration=2.0, rebuild_factor=2.0),
        BackgroundScrub(server=2, period=2.0, duty=0.5, factor=1.5),
        WriteCliff(server=3, capacity_bytes=64 * KiB, factor=2.0, recovery_idle=0.5),
    )
)

#: every mechanism stacked on one server, for the single-server
#: submit harness
_SERVER_FAULT_PLAN = FaultPlan(
    faults=(
        TransientSlowdown(server=0, factor=3.0, windows=3, mean_duration=1.0, horizon=8.0),
        ServerOutage(server=0, at=0.5, duration=1.0, rebuild_duration=2.0, rebuild_factor=2.0),
        BackgroundScrub(server=0, period=2.0, duty=0.5, factor=1.5),
        WriteCliff(server=0, capacity_bytes=64 * KiB, factor=2.0, recovery_idle=0.5),
    )
)


def _random_region(rng, max_len=1 << 18):
    K = int(rng.integers(1, 48))
    offsets = rng.integers(0, 1 << 21, K)
    lengths = rng.integers(1, max_len, K)
    is_read = rng.random(K) < 0.5
    conc = rng.integers(1, 16, K)
    bursts = rng.integers(0, max(1, K // 3), K)
    return offsets, lengths, is_read, conc, bursts


def _candidate_grid(rng, G=16):
    h = rng.integers(0, 64, G) * 4096
    s = np.maximum(rng.integers(1, 64, G) * 4096, h)
    return h, s


# ------------------------------------------------------------- columnar trace

# raw columnar-trace rows: timestamps drawn from a tie-heavy menu so
# phase/burst boundaries are exercised, plus an explicit duplicate flag
# — duplicated records are where the reference's dict-keyed results
# collapse, the exact semantics the columnar twins must reproduce
_columnar_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=64),  # offset in 16 KiB units
        st.integers(min_value=1, max_value=12),  # size in 16 KiB units
        st.sampled_from([0.0, 0.25, 0.3, 1.0, 1.05, 5.0]),  # timestamp
        st.integers(min_value=0, max_value=4),  # rank
        st.sampled_from(["read", "write"]),
        st.booleans(),  # emit the record twice?
    ),
    min_size=0,
    max_size=16,
)

_gaps = st.sampled_from([0.3, 0.5, 2.0])
_spatials = st.sampled_from([False, True, 4 * 16 * KiB])


def _columnar_pair(raw, files=("f",)):
    """A record trace (with duplicates) and its columnar twin."""
    records = []
    for i, (off, size, ts, rank, op, dup) in enumerate(raw):
        record = TraceRecord(
            offset=off * 16 * KiB,
            timestamp=ts,
            rank=rank,
            size=size * 16 * KiB,
            op=op,
            file=files[i % len(files)],
        )
        records.append(record)
        if dup:
            records.append(record)
    trace = Trace(records)
    return trace, ColumnarTrace.from_trace(trace)


@harness("trace_phases")
def _trace_phases(contract):
    @given(raw=_columnar_rows, gap=_gaps)
    @settings(max_examples=40, deadline=None)
    def test(raw, gap):
        trace, col = _columnar_pair(raw)
        want = split_phases(trace, gap=gap)
        slices = split_phases_columnar(col, gap=gap)
        assert slices.n_phases == len(want)
        for p, phase in enumerate(want):
            got = [col.record(i) for i in slices.indices(p).tolist()]
            assert got == list(phase.records)
            assert slices.start_time(p) == phase.start_time
            assert slices.end_time(p) == phase.end_time

    return test


@harness("trace_concurrency")
def _trace_concurrency(contract):
    @given(raw=_columnar_rows, gap=_gaps, spatial=_spatials)
    @settings(max_examples=40, deadline=None)
    def test(raw, gap, spatial):
        trace, col = _columnar_pair(raw)
        want = concurrency_of(trace, gap=gap, spatial=spatial)
        got = concurrency_columnar(col, gap=gap, spatial=spatial)
        assert got.shape == (len(trace),)
        for i, record in enumerate(trace):
            assert got[i] == want[record]

    return test


@harness("trace_bursts")
def _trace_bursts(contract):
    @given(raw=_columnar_rows, gap=_gaps, spatial=_spatials)
    @settings(max_examples=40, deadline=None)
    def test(raw, gap, spatial):
        trace, col = _columnar_pair(raw)
        want = burst_ids_of(trace, gap=gap, spatial=spatial)
        got = burst_ids_columnar(col, gap=gap, spatial=spatial)
        assert got.shape == (len(trace),)
        for i, record in enumerate(trace):
            assert got[i] == want[record]

    return test


@harness("features_columnar")
def _features_columnar(contract):
    @given(raw=_columnar_rows, gap=_gaps, spatial=_spatials)
    @settings(max_examples=40, deadline=None)
    def test(raw, gap, spatial):
        trace, col = _columnar_pair(raw)
        want = extract_features(trace, gap=gap, spatial=spatial)
        got = extract_features_columnar(col, gap=gap, spatial=spatial)
        # bitwise float equality, not allclose: twins reorganize the
        # same integer-valued assignments
        assert got.points.tobytes() == want.points.tobytes()
        assert got.spread.tobytes() == want.spread.tobytes()

    return test


@harness("plan_file_columnar")
def _plan_file_columnar(contract):
    @given(raw=_columnar_rows, gap=_gaps, spatial=_spatials, k=st.sampled_from([None, 1, 3]))
    @settings(max_examples=20, deadline=None)
    def test(raw, gap, spatial, k):
        trace, _ = _columnar_pair(raw)
        sub = trace.for_file("f").sorted_by_offset()
        col = ColumnarTrace.from_trace(sub)
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        pipe = MHAPipeline(spec, gap=gap, spatial=spatial, k=k, n_jobs=1)
        drt_ref, drt_twin = DRT(), DRT()
        ref_plan, ref_grouping, ref_names, ref_tasks = pipe.plan_file(
            "f", sub, drt_ref
        )
        twin_plan, twin_grouping, twin_names, twin_tasks = pipe.plan_file_columnar(
            "f", col, drt_twin
        )
        assert twin_names == ref_names
        assert np.array_equal(twin_grouping.labels, ref_grouping.labels)
        assert twin_plan.migrated_bytes == ref_plan.migrated_bytes
        assert list(drt_twin) == list(drt_ref)
        assert (drt_twin.cache_hits, drt_twin.cache_misses) == (
            drt_ref.cache_hits,
            drt_ref.cache_misses,
        )
        for twin_region, ref_region in zip(twin_plan.regions, ref_plan.regions):
            assert twin_region.name == ref_region.name
            assert twin_region.size == ref_region.size
            assert twin_region.requests == ref_region.requests
        for twin_task, ref_task in zip(twin_tasks, ref_tasks):
            for twin_col, ref_col in zip(twin_task, ref_task):
                if isinstance(twin_col, np.ndarray):
                    assert twin_col.tobytes() == ref_col.tobytes()
                else:
                    assert twin_col == ref_col

    return test


@harness("trace_roundtrip")
def _trace_roundtrip(contract):
    @given(raw=_columnar_rows, multi=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test(raw, multi, tmp_path_factory):
        trace, col = _columnar_pair(raw, files=("f", "g") if multi else ("f",))
        directory = tmp_path_factory.mktemp("roundtrip")
        text = directory / "trace.csv"
        binary = directory / "trace.bin"
        save_trace(trace, text)
        save_trace_columnar(col, binary)
        back = load_trace_mmap(binary)
        assert list(back.to_trace()) == list(load_trace(text)) == list(trace)
        assert back == col
        # the binary format also round-trips a record-trace input
        save_trace_columnar(trace, binary)
        assert list(load_trace_mmap(binary).to_trace()) == list(trace)

    return test


# ---------------------------------------------------------------- replay


@harness("replay")
def _replay(contract):
    @given(
        raw=_trace_shapes,
        nics=st.booleans(),
        gap=st.booleans(),
        faulted=st.booleans(),
        open_=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test(raw, nics, gap, faulted, open_):
        spec = ClusterSpec(num_hservers=2, num_sservers=2, model_client_nics=nics)
        trace = Trace(
            [
                TraceRecord(
                    offset=off * 16 * KiB,
                    timestamp=phase * 10.0,
                    rank=rank,
                    size=size * 16 * KiB,
                    op=op,
                    file="f",
                )
                for off, size, phase, rank, op in raw
            ]
        )
        runs = {}
        for engine in ("event", "flat"):
            pfs = HybridPFS(spec)
            view = LayoutView(
                {}, default=FixedStripeLayout(spec.server_ids, 32 * KiB, obj="f")
            )
            metrics = replay_trace(
                pfs,
                view,
                trace,
                engine=engine,
                keep_latencies=True,
                barrier_gap=5.0 if gap else None,
                fault_plan=_FAULT_PLAN if faulted else None,
                open_arrivals=open_,
            )
            runs[engine] = (metrics, pfs)
        (em, epfs), (fm, fpfs) = runs["event"], runs["flat"]
        assert fm.makespan == em.makespan
        assert fm.latencies == em.latencies
        assert fm.latency_ranks == em.latency_ranks
        assert fm.per_server_latencies == em.per_server_latencies
        assert fm.per_server_busy == em.per_server_busy
        assert fm.per_server_bytes == em.per_server_bytes
        assert fm.total_bytes == em.total_bytes
        assert fm.requests == em.requests
        for fsrv, esrv in zip(fpfs.servers, epfs.servers):
            assert fsrv.stats == esrv.stats
        assert fpfs.sim.now == epfs.sim.now

    return test


# ---------------------------------------------------------------- faults


def _fault_state(windows, outages, scrubs, cliff):
    cliff_state = None
    if cliff is not None:
        cap8, factor, idle4 = cliff
        cliff_state = CliffState(
            capacity_bytes=cap8 * 8 * KiB, factor=factor, recovery_idle=idle4 / 4.0
        )
    return ServerFaultState(
        windows=[
            Window(s4 / 4.0, s4 / 4.0 + d4 / 4.0 + 0.25, factor)
            for s4, d4, factor in windows
        ],
        outages=[(s4 / 4.0, s4 / 4.0 + d4 / 4.0) for s4, d4 in outages],
        scrubs=[
            Scrub(p4 / 4.0, min(duty4, p4) / 4.0, factor, ph4 / 4.0)
            for p4, duty4, factor, ph4 in scrubs
        ],
        cliff=cliff_state,
    )


@harness("fault_adjust")
def _fault_adjust(contract):
    @given(
        windows=_fault_windows,
        outages=_fault_outages,
        scrubs=_fault_scrubs,
        cliff=_fault_cliffs,
        queries=_fault_queries,
    )
    @settings(max_examples=40, deadline=None)
    def test(windows, outages, scrubs, cliff, queries):
        ref = _fault_state(windows, outages, scrubs, cliff)
        twin = _fault_state(windows, outages, scrubs, cliff)
        for op, len8, cand4, lag4 in queries:
            candidate = cand4 / 4.0
            prev_tail = max(0.0, candidate - lag4 / 4.0)
            length = len8 * 8 * KiB
            got = twin.adjust_flat(op, length, candidate, prev_tail)
            want = ref.adjust(op, length, candidate, prev_tail)
            assert got == want

    return test


# ---------------------------------------------------------------- pfs layers


def _fresh_server(use_ssd):
    spec = ClusterSpec()
    sim = Simulator()
    device = spec.ssd if use_ssd else spec.hdd
    server = DataServer(sim, 0, device, spec.link)
    server.channel.keep_records = True
    return sim, server


@harness("server_submit")
def _server_submit(contract):
    @given(batch=_sub_request_batches, use_ssd=st.booleans(), faulted=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test(batch, use_ssd, faulted):
        _, ref = _fresh_server(use_ssd)
        _, twin = _fresh_server(use_ssd)
        if faulted:
            # separate compilations: fault states carry mutable cursors
            ref.faults = _SERVER_FAULT_PLAN.compile(1)[0]
            twin.faults = _SERVER_FAULT_PLAN.compile(1)[0]
        for op, obj, off, length, nb4 in batch:
            ref.submit(op, obj, off * 8 * KiB, length * 8 * KiB, not_before=nb4 / 4.0)
            twin.submit_flat(
                op, obj, off * 8 * KiB, length * 8 * KiB, 0.0, not_before=nb4 / 4.0
            )
        assert twin.channel.records == ref.channel.records
        assert twin.stats == ref.stats
        assert twin.busy_time == ref.busy_time
        assert twin.channel.busy_until == ref.channel.busy_until
        assert twin.channel.served == ref.channel.served

    return test


@harness("fifo_schedule")
def _fifo_schedule(contract):
    @given(batch=_service_batches, capacity=st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test(batch, capacity):
        ref = FIFOResource(Simulator(), capacity=capacity)
        twin = FIFOResource(Simulator(), capacity=capacity)
        ref.keep_records = twin.keep_records = True
        for i, (dur4, nb4) in enumerate(batch):
            record, _ = ref.schedule(dur4 / 4.0, not_before=nb4 / 4.0, tag=i)
            finish = twin.schedule_flat(0.0, dur4 / 4.0, not_before=nb4 / 4.0, tag=i)
            assert finish == record.finish
        assert twin.records == ref.records
        assert twin.busy_time == ref.busy_time
        assert twin.served == ref.served
        assert twin.busy_until == ref.busy_until

    return test


@harness("pfs_issue")
def _pfs_issue(contract):
    @given(extents=_extent_batches, nics=st.booleans(), op=st.sampled_from(["read", "write"]))
    @settings(max_examples=25, deadline=None)
    def test(extents, nics, op):
        spec = ClusterSpec(num_hservers=2, num_sservers=2, model_client_nics=nics)
        layout = FixedStripeLayout(spec.server_ids, 16 * KiB, obj="f")
        ref, twin = HybridPFS(spec), HybridPFS(spec)
        finishes = [0.0]
        for rank, (offset, length) in enumerate(extents):
            fragments = layout.map_extent(offset, length)
            ref.issue(op, fragments, rank=rank)
            finishes.append(twin.issue_flat(op, fragments, rank=rank, now=0.0))
        ref.sim.run()
        assert max(finishes) == ref.sim.now
        assert twin.per_server_busy() == ref.per_server_busy()
        assert twin.per_server_bytes() == ref.per_server_bytes()
        for tsrv, rsrv in zip(twin.servers, ref.servers):
            assert tsrv.stats == rsrv.stats
            assert tsrv.channel.busy_until == rsrv.channel.busy_until

    return test


# ---------------------------------------------------------------- DRT layer


def _build_drt(entry_shapes):
    drt = DRT()
    cursor = 0
    for i, (gap, length, mapped) in enumerate(entry_shapes):
        cursor += gap
        if mapped:
            drt.add(
                DRTEntry(
                    o_file="f",
                    o_offset=cursor,
                    length=length,
                    r_file=f"f.r{i % 2}",
                    r_offset=i * (1 << 20),
                )
            )
        cursor += length
    return drt, cursor


_drt_shapes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=64 * KiB),  # gap before the entry
        st.integers(min_value=1, max_value=64 * KiB),  # entry length
        st.booleans(),  # actually insert it?
    ),
    min_size=0,
    max_size=8,
)

_probe_batches = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=640 * KiB),
        st.integers(min_value=0, max_value=128 * KiB),
    ),
    min_size=0,
    max_size=10,
)


@harness("drt_translate")
def _drt_translate(contract):
    @given(shapes=_drt_shapes, probes=_probe_batches)
    @settings(max_examples=30, deadline=None)
    def test(shapes, probes):
        batched, _ = _build_drt(shapes)
        scalar, _ = _build_drt(shapes)
        offsets = [o for o, _ in probes]
        lengths = [l for _, l in probes]
        got = batched.translate_many("f", offsets, lengths)
        want = [scalar.translate("f", o, l) for o, l in probes]
        assert got == want
        assert (batched.cache_hits, batched.cache_misses) == (
            scalar.cache_hits,
            scalar.cache_misses,
        )

    return test


def _build_redirector(spec):
    drt = DRT()
    drt.add(DRTEntry("f", 0, 64 * KiB, "f.r0", 0))
    drt.add(DRTEntry("f", 128 * KiB, 64 * KiB, "f.r1", 32 * KiB))
    regions = {
        "f.r0": build_region_layout(spec, StripePair(0, 8 * KiB), "f.r0"),
        "f.r1": build_region_layout(spec, StripePair(4 * KiB, 16 * KiB), "f.r1"),
    }
    originals = {"f": FixedStripeLayout(spec.server_ids, 64 * KiB, obj="f")}
    return Redirector(drt, regions, originals)


@harness("redirector_map")
def _redirector_map(contract):
    @given(probes=_probe_batches)
    @settings(max_examples=30, deadline=None)
    def test(probes):
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        batched, scalar = _build_redirector(spec), _build_redirector(spec)
        offsets = [o for o, _ in probes]
        lengths = [l for _, l in probes]
        got = batched.map_requests("f", offsets, lengths)
        want = [scalar.map_request("f", o, l) for o, l in probes]
        assert got == want
        assert batched.stats == scalar.stats

    return test


@harness("redirector_runs")
def _redirector_runs(contract):
    @given(probes=_probe_batches)
    @settings(max_examples=30, deadline=None)
    def test(probes):
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        batched, scalar = _build_redirector(spec), _build_redirector(spec)
        runs = batched.merged_runs(
            "f", [o for o, _ in probes], [l for _, l in probes]
        )
        assert runs.n_extents == len(probes)
        for k, (o, l) in enumerate(probes):
            assert runs.subrequests(k) == merge_fragments(
                scalar.map_request("f", o, l)
            )
        assert batched.stats == scalar.stats

    return test


# ---------------------------------------------------------------- layout view


def _view(spec):
    return LayoutView(
        {"f": FixedStripeLayout(spec.server_ids, 64 * KiB, obj="f")},
        default=FixedStripeLayout(spec.server_ids, 4 * KiB),
    )


@harness("layout_view_map")
def _layout_view_map(contract):
    @given(probes=_extent_batches, known=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test(probes, known):
        view = _view(ClusterSpec(num_hservers=2, num_sservers=2))
        file = "f" if known else "other"
        offsets = [o for o, _ in probes]
        lengths = [l for _, l in probes]
        got = view.map_requests(file, offsets, lengths)
        assert got == [view.map_request(file, o, l) for o, l in probes]

    return test


@harness("layout_view_runs")
def _layout_view_runs(contract):
    @given(probes=_extent_batches, known=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test(probes, known):
        view = _view(ClusterSpec(num_hservers=2, num_sservers=2))
        file = "f" if known else "other"
        runs = view.merged_runs(
            file, [o for o, _ in probes], [l for _, l in probes]
        )
        assert runs.n_extents == len(probes)
        for k, (o, l) in enumerate(probes):
            assert runs.subrequests(k) == merge_fragments(
                view.map_request(file, o, l)
            )

    return test


# ---------------------------------------------------------------- array kernels


@harness("extents_grid")
def _extents_grid(contract):
    @given(seed=_seeds, which=st.integers(min_value=0, max_value=len(SPECS) - 1))
    @settings(max_examples=15, deadline=None)
    def test(seed, which):
        spec = SPECS[which]
        M, N = spec.num_hservers, spec.num_sservers
        rng = np.random.default_rng(seed)
        offsets, lengths, _, _, _ = _random_region(rng)
        h_arr, s_arr = _candidate_grid(rng)
        hg, sg = per_server_bytes_grid(offsets, lengths, M, N, h_arr, s_arr)
        for g in range(h_arr.shape[0]):
            hb, sb = per_server_bytes_batch(
                offsets, lengths, M, N, int(h_arr[g]), int(s_arr[g])
            )
            assert np.array_equal(hg[g], hb)
            assert np.array_equal(sg[g], sb)

    return test


@harness("extents_max_grid")
def _extents_max_grid(contract):
    @given(seed=_seeds, which=st.integers(min_value=0, max_value=len(SPECS) - 1))
    @settings(max_examples=15, deadline=None)
    def test(seed, which):
        spec = SPECS[which]
        M, N = spec.num_hservers, spec.num_sservers
        rng = np.random.default_rng(seed)
        offsets, lengths, _, _, _ = _random_region(rng)
        h_arr, s_arr = _candidate_grid(rng)
        hm, sm = max_server_bytes_grid(offsets, lengths, M, N, h_arr, s_arr)
        for g in range(h_arr.shape[0]):
            hb, sb = per_server_bytes_batch(
                offsets, lengths, M, N, int(h_arr[g]), int(s_arr[g])
            )
            if M:
                assert np.array_equal(hm[g], hb.max(axis=1))
            else:
                assert not hm[g].any()
            if N:
                assert np.array_equal(sm[g], sb.max(axis=1))
            else:
                assert not sm[g].any()

    return test


@harness("batch_costs_grid")
def _batch_costs_grid(contract):
    @given(seed=_seeds, which=st.integers(min_value=0, max_value=len(SPECS) - 1))
    @settings(max_examples=10, deadline=None)
    def test(seed, which):
        spec = SPECS[which]
        params = CostModelParams.from_cluster(spec)
        rng = np.random.default_rng(seed)
        offsets, lengths, is_read, conc, _ = _random_region(rng)
        h_arr, s_arr = _candidate_grid(rng)
        grid = batch_costs_grid(params, offsets, lengths, is_read, conc, h_arr, s_arr)
        for g in range(h_arr.shape[0]):
            row = batch_costs(
                params, offsets, lengths, is_read, conc, int(h_arr[g]), int(s_arr[g])
            )
            assert np.array_equal(grid[g], row)

    return test


@harness("burst_costs_grid")
def _burst_costs_grid(contract):
    @given(seed=_seeds, which=st.integers(min_value=0, max_value=len(SPECS) - 1))
    @settings(max_examples=10, deadline=None)
    def test(seed, which):
        spec = SPECS[which]
        params = CostModelParams.from_cluster(spec)
        rng = np.random.default_rng(seed)
        offsets, lengths, is_read, _, bursts = _random_region(rng)
        h_arr, s_arr = _candidate_grid(rng)
        grid = burst_costs_grid(params, offsets, lengths, is_read, bursts, h_arr, s_arr)
        for g in range(h_arr.shape[0]):
            row = burst_costs(
                params, offsets, lengths, is_read, bursts, int(h_arr[g]), int(s_arr[g])
            )
            assert np.array_equal(grid[g], row)

    return test

"""Tests for the HDD/SSD device models."""

import pytest

from repro.devices import HDD, SSD, READ, WRITE, fit_affine, measure_device
from repro.units import MiB


class TestHDD:
    def test_random_access_pays_seek(self):
        hdd = HDD()
        t = hdd.service_time(READ, 64 * 1024, sequential=False)
        assert t == pytest.approx(hdd.seek_time + 64 * 1024 / hdd.bandwidth)

    def test_sequential_pays_reduced_startup(self):
        hdd = HDD(seek_time=4e-3, sequential_startup=0.2e-3)
        seq = hdd.service_time(READ, 4096, sequential=True)
        rnd = hdd.service_time(READ, 4096, sequential=False)
        assert seq < rnd

    def test_default_has_no_sequential_discount(self):
        # calibration note: the PFS-server default is seek-bound either way
        hdd = HDD()
        assert hdd.sequential_startup == hdd.seek_time

    def test_reads_and_writes_symmetric(self):
        hdd = HDD()
        assert hdd.service_time(READ, 8192) == hdd.service_time(WRITE, 8192)

    def test_alpha_is_average_of_regimes(self):
        hdd = HDD(seek_time=4e-3, sequential_startup=2e-3)
        assert hdd.alpha(READ) == pytest.approx(3e-3)

    def test_beta_is_inverse_bandwidth(self):
        hdd = HDD(bandwidth=100 * MiB)
        assert hdd.beta(WRITE) == pytest.approx(1.0 / (100 * MiB))

    def test_zero_bytes_is_free(self):
        assert HDD().service_time(READ, 0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            HDD().service_time(READ, -1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HDD(seek_time=-1.0)
        with pytest.raises(ValueError):
            HDD(bandwidth=0)

    def test_single_channel(self):
        assert HDD().channels == 1


class TestSSD:
    def test_read_write_asymmetry(self):
        ssd = SSD()
        r = ssd.service_time(READ, 1 * MiB)
        w = ssd.service_time(WRITE, 1 * MiB)
        assert w > r  # writes slower: lower bandwidth and higher startup

    def test_sequentiality_irrelevant(self):
        ssd = SSD()
        assert ssd.service_time(READ, 4096, sequential=True) == ssd.service_time(
            READ, 4096, sequential=False
        )

    def test_table1_parameters(self):
        ssd = SSD()
        assert ssd.alpha(READ) == ssd.read_startup
        assert ssd.alpha(WRITE) == ssd.write_startup
        assert ssd.beta(READ) == pytest.approx(1.0 / ssd.read_bandwidth)
        assert ssd.beta(WRITE) == pytest.approx(1.0 / ssd.write_bandwidth)

    def test_faster_than_hdd_for_small_requests(self):
        # the premise of the paper: an order of magnitude for small I/O
        hdd, ssd = HDD(), SSD()
        ratio = hdd.service_time(READ, 16 * 1024) / ssd.service_time(READ, 16 * 1024)
        assert ratio > 5

    def test_has_channel_parallelism(self):
        assert SSD().channels > 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SSD(read_bandwidth=0)
        with pytest.raises(ValueError):
            SSD(write_startup=-0.1)


class TestCalibration:
    def test_fit_recovers_affine_law(self):
        fit = fit_affine([1000, 2000, 4000], [1.1, 1.2, 1.4])
        assert fit.alpha == pytest.approx(1.0)
        assert fit.beta == pytest.approx(1e-4)

    def test_measure_device_recovers_hdd_parameters(self):
        hdd = HDD()
        fit = measure_device(hdd, READ)
        assert fit.alpha == pytest.approx(hdd.seek_time, rel=1e-6)
        assert fit.beta == pytest.approx(1.0 / hdd.bandwidth, rel=1e-6)

    def test_measure_device_recovers_ssd_write_parameters(self):
        ssd = SSD()
        fit = measure_device(ssd, WRITE)
        assert fit.alpha == pytest.approx(ssd.write_startup, rel=1e-6)
        assert fit.beta == pytest.approx(1.0 / ssd.write_bandwidth, rel=1e-6)

    def test_negative_intercept_clamped(self):
        fit = fit_affine([1000, 2000], [0.0, 1.0])
        assert fit.alpha == 0.0

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_affine([1], [1.0])

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            measure_device(HDD(), "append")

"""Unit tests for FaultPlan compilation, attachment and round-trip."""

import pytest

from repro.cluster import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.faults import (
    BackgroundScrub,
    FaultPlan,
    ServerOutage,
    TransientSlowdown,
    WriteCliff,
)
from repro.pfs.system import HybridPFS
from repro.units import MiB


def _plan(seed=7):
    return FaultPlan(
        faults=(
            TransientSlowdown(server=0, factor=3.0, windows=3, horizon=20.0),
            ServerOutage(server=1, at=1.0, duration=2.0),
            BackgroundScrub(server=2, period=8.0, duty=2.0),
            WriteCliff(server=3, capacity_bytes=MiB),
        ),
        seed=seed,
    )


class TestCompile:
    def test_deterministic_across_calls(self):
        a = _plan().compile(6)
        b = _plan().compile(6)
        assert sorted(a) == sorted(b) == [0, 1, 2, 3]
        assert a[0]._segments == b[0]._segments
        assert a[1]._outages == b[1]._outages
        assert a[2]._scrubs == b[2]._scrubs

    def test_seed_changes_random_draws(self):
        a = FaultPlan((TransientSlowdown(server=0),), seed=1).compile(2)
        b = FaultPlan((TransientSlowdown(server=0),), seed=2).compile(2)
        assert a[0]._segments != b[0]._segments

    def test_per_model_independence(self):
        # removing an unrelated model must not change another's draws
        slow = TransientSlowdown(server=0)
        alone = FaultPlan((slow,), seed=3).compile(4)
        first = FaultPlan((slow, ServerOutage(server=1)), seed=3).compile(4)
        assert alone[0]._segments == first[0]._segments

    def test_fresh_state_each_compile(self):
        plan = _plan()
        assert plan.compile(6)[3] is not plan.compile(6)[3]

    def test_out_of_range_server_rejected(self):
        with pytest.raises(ConfigurationError, match="targets server"):
            _plan().compile(2)

    def test_duplicate_cliff_rejected(self):
        plan = FaultPlan((WriteCliff(server=0), WriteCliff(server=0)))
        with pytest.raises(ConfigurationError, match="write-cliff"):
            plan.compile(1)


class TestAttach:
    def test_attach_installs_and_clears(self):
        spec = ClusterSpec()
        pfs = HybridPFS(spec)
        _plan().attach(pfs)
        assert all(pfs.servers[i].faults is not None for i in range(4))
        assert all(srv.faults is None for srv in pfs.servers[4:])
        FaultPlan(faults=()).attach(pfs)
        assert all(srv.faults is None for srv in pfs.servers)

    def test_servers_listing(self):
        assert _plan().servers() == (0, 1, 2, 3)
        assert len(_plan()) == 4


class TestSerialization:
    def test_round_trip(self):
        plan = _plan(seed=11)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_describe_mentions_every_model(self):
        text = _plan().describe()
        for kind in ("slowdown", "outage", "scrub", "write_cliff"):
            assert kind in text
        assert FaultPlan().describe() == "fault plan: (healthy)"

    def test_picklable(self):
        import pickle

        plan = _plan()
        assert pickle.loads(pickle.dumps(plan)) == plan

"""Unit tests for declarative fault models (repro.faults.models)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    BackgroundScrub,
    ServerOutage,
    TransientSlowdown,
    WriteCliff,
    model_from_dict,
    model_to_dict,
)
from repro.faults.models import MODEL_KINDS
from repro.units import MiB


class TestValidation:
    def test_negative_server_rejected(self):
        with pytest.raises(ConfigurationError):
            TransientSlowdown(server=-1)

    @pytest.mark.parametrize("factor", [0.0, -1.0])
    def test_nonpositive_factor_rejected(self, factor):
        with pytest.raises(ConfigurationError):
            BackgroundScrub(server=0, factor=factor)

    def test_scrub_duty_bounded_by_period(self):
        with pytest.raises(ConfigurationError):
            BackgroundScrub(server=0, period=5.0, duty=6.0)

    def test_outage_duration_positive(self):
        with pytest.raises(ConfigurationError):
            ServerOutage(server=0, duration=0.0)

    def test_cliff_capacity_positive(self):
        with pytest.raises(ConfigurationError):
            WriteCliff(server=0, capacity_bytes=0)

    def test_slowdown_defaults_valid(self):
        model = TransientSlowdown(server=2)
        assert model.kind == "slowdown"
        assert model.server == 2


class TestRoundTrip:
    MODELS = [
        TransientSlowdown(server=0, factor=4.0, windows=2, mean_duration=1.5),
        BackgroundScrub(server=1, period=12.0, duty=3.0, factor=2.0, phase=1.0),
        ServerOutage(server=2, at=5.0, duration=2.0, rebuild_duration=4.0),
        WriteCliff(server=3, capacity_bytes=2 * MiB, factor=5.0),
    ]

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.kind)
    def test_dict_round_trip(self, model):
        payload = model_to_dict(model)
        assert payload["kind"] == model.kind
        assert model_from_dict(payload) == model

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            model_from_dict({"kind": "gremlins", "server": 0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown field"):
            model_from_dict({"kind": "scrub", "server": 0, "spin": 1})

    def test_registry_covers_all_models(self):
        assert sorted(MODEL_KINDS) == ["outage", "scrub", "slowdown", "write_cliff"]

"""Unit tests for compiled fault timelines (repro.faults.state)."""

from repro.faults.state import (
    CliffState,
    Scrub,
    ServerFaultState,
    Window,
    flatten_windows,
    merge_outages,
)
from repro.units import KiB


class TestMergeOutages:
    def test_empty(self):
        assert merge_outages([]) == []

    def test_sorts_and_merges_overlaps(self):
        spans = [(5.0, 7.0), (0.0, 2.0), (1.0, 3.0)]
        assert merge_outages(spans) == [(0.0, 3.0), (5.0, 7.0)]

    def test_touching_spans_merge(self):
        assert merge_outages([(0.0, 1.0), (1.0, 2.0)]) == [(0.0, 2.0)]

    def test_degenerate_spans_dropped(self):
        assert merge_outages([(3.0, 3.0), (4.0, 2.0)]) == []


class TestFlattenWindows:
    def test_disjoint_windows_pass_through(self):
        windows = [Window(0.0, 1.0, 2.0), Window(2.0, 3.0, 3.0)]
        assert flatten_windows(windows) == windows

    def test_overlap_composes_multiplicatively(self):
        segments = flatten_windows(
            [Window(0.0, 2.0, 2.0), Window(1.0, 3.0, 3.0)]
        )
        assert segments == [
            Window(0.0, 1.0, 2.0),
            Window(1.0, 2.0, 6.0),
            Window(2.0, 3.0, 3.0),
        ]

    def test_gaps_produce_no_segment(self):
        segments = flatten_windows([Window(0.0, 1.0, 2.0), Window(5.0, 6.0, 2.0)])
        assert [(s.start, s.end) for s in segments] == [(0.0, 1.0), (5.0, 6.0)]

    def test_empty_windows_dropped(self):
        assert flatten_windows([Window(2.0, 2.0, 9.0)]) == []

    def test_declaration_order_irrelevant(self):
        a = [Window(0.0, 2.0, 2.0), Window(1.0, 4.0, 1.5), Window(1.5, 2.5, 3.0)]
        assert flatten_windows(a) == flatten_windows(list(reversed(a)))


class TestAdjust:
    def test_healthy_state_is_identity(self):
        state = ServerFaultState()
        assert state.adjust("read", KiB, 1.5, 1.0) == (1.5, 1.0)

    def test_outage_defers_start(self):
        state = ServerFaultState(outages=[(1.0, 3.0)])
        start, factor = state.adjust("read", KiB, 2.0, 0.0)
        assert start == 3.0
        assert factor == 1.0

    def test_start_exactly_at_outage_end_not_deferred(self):
        state = ServerFaultState(outages=[(1.0, 3.0)])
        assert state.adjust("read", KiB, 3.0, 0.0) == (3.0, 1.0)

    def test_window_dilates_duration(self):
        state = ServerFaultState(windows=[Window(0.0, 2.0, 4.0)])
        assert state.adjust("read", KiB, 1.0, 0.5) == (1.0, 4.0)

    def test_factor_evaluated_at_deferred_start(self):
        # outage pushes the start into the rebuild window behind it
        state = ServerFaultState(
            windows=[Window(3.0, 5.0, 2.5)], outages=[(1.0, 3.0)]
        )
        assert state.adjust("write", KiB, 1.5, 1.0) == (3.0, 2.5)

    def test_scrub_duty_cycle(self):
        state = ServerFaultState(scrubs=[Scrub(period=4.0, duty=1.0, factor=3.0)])
        assert state.adjust("read", KiB, 0.5, 0.0)[1] == 3.0
        assert state.adjust("read", KiB, 2.0, 0.0)[1] == 1.0
        assert state.adjust("read", KiB, 4.5, 0.0)[1] == 3.0

    def test_scrub_phase_shifts_duty(self):
        state = ServerFaultState(
            scrubs=[Scrub(period=4.0, duty=1.0, factor=3.0, phase=2.0)]
        )
        assert state.adjust("read", KiB, 0.5, 0.0)[1] == 1.0
        assert state.adjust("read", KiB, 2.5, 0.0)[1] == 3.0


class TestWriteCliff:
    def _state(self):
        return ServerFaultState(
            cliff=CliffState(capacity_bytes=4 * KiB, factor=2.0, recovery_idle=1.0)
        )

    def test_writes_accumulate_until_cliff(self):
        state = self._state()
        assert state.adjust("write", 3 * KiB, 0.1, 0.0)[1] == 1.0
        assert state.adjust("write", 3 * KiB, 0.2, 0.1)[1] == 2.0

    def test_reads_do_not_accumulate(self):
        state = self._state()
        for step in range(10):
            assert state.adjust("read", 8 * KiB, 0.1 * step, 0.1 * step)[1] == 1.0

    def test_idle_gap_recovers(self):
        state = self._state()
        state.adjust("write", 8 * KiB, 0.1, 0.0)
        # long idle gap before the next service start: counter resets
        assert state.adjust("write", KiB, 5.0, 0.2)[1] == 1.0

    def test_short_gap_does_not_recover(self):
        state = self._state()
        state.adjust("write", 8 * KiB, 0.1, 0.0)
        assert state.adjust("write", KiB, 0.5, 0.2)[1] == 2.0


class TestFlatTwinCursorReset:
    def test_regressing_queries_match_reference(self):
        # deliberately non-monotone probe sequence over a dense timeline
        timeline = dict(
            windows=[Window(0.0, 2.0, 2.0), Window(1.0, 4.0, 1.5)],
            outages=[(0.5, 1.0), (3.0, 3.5)],
            scrubs=[Scrub(period=2.0, duty=0.5, factor=3.0)],
        )
        ref = ServerFaultState(**timeline)
        twin = ServerFaultState(**timeline)
        probes = [0.2, 3.2, 0.6, 4.0, 0.0, 3.4, 1.2, 0.9]
        for t in probes:
            assert twin.adjust_flat("read", KiB, t, 0.0) == ref.adjust(
                "read", KiB, t, 0.0
            )

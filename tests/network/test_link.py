"""Tests for the network link model."""

import pytest

from repro.network import GIGABIT_ETHERNET, Link
from repro.units import MiB


class TestLink:
    def test_unit_transfer_time_is_inverse_bandwidth(self):
        link = Link(bandwidth=100 * MiB, latency=0.0)
        assert link.unit_transfer_time == pytest.approx(1.0 / (100 * MiB))

    def test_transfer_time_includes_latency(self):
        link = Link(bandwidth=100 * MiB, latency=1e-4)
        assert link.transfer_time(100 * MiB) == pytest.approx(1.0 + 1e-4)

    def test_zero_bytes_free(self):
        assert Link().transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Link().transfer_time(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Link(bandwidth=0)
        with pytest.raises(ValueError):
            Link(latency=-1)

    def test_gige_constant_close_to_line_rate(self):
        # payload rate below the 125 MB/s theoretical line rate
        assert 100 * MiB < GIGABIT_ETHERNET.bandwidth < 125 * 1e6

    def test_immutable(self):
        with pytest.raises(AttributeError):
            GIGABIT_ETHERNET.bandwidth = 1.0  # type: ignore[misc]

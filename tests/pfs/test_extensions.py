"""Tests for the simulator extensions: latency percentiles, client
NICs, and straggler injection."""

import pytest

from repro.cluster import ClusterSpec
from repro.layouts import FixedStripeLayout
from repro.pfs import HybridPFS, replay_trace, run_workload
from repro.schemes.base import LayoutView
from repro.tracing import Trace, TraceRecord
from repro.units import KiB, MiB


def rec(offset, size, ts, rank=0, op="write"):
    return TraceRecord(offset=offset, timestamp=ts, rank=rank, size=size, op=op, file="f")


def view_for(spec):
    return LayoutView({}, default=FixedStripeLayout(spec.server_ids, 64 * KiB, obj="f"))


class TestLatencyPercentiles:
    def test_percentiles_ordered(self):
        spec = ClusterSpec()
        trace = Trace(
            [rec(i * 256 * KiB, 64 * KiB * (1 + i % 4), float(i % 4), rank=i % 4)
             for i in range(24)]
        )
        metrics = run_workload(spec, view_for(spec), trace, keep_latencies=True)
        assert 0 < metrics.p50_latency <= metrics.p99_latency
        assert metrics.latency_percentile(0) <= metrics.p50_latency
        assert metrics.p99_latency <= metrics.latency_percentile(100)

    def test_zero_without_keep(self):
        spec = ClusterSpec()
        trace = Trace([rec(0, 64 * KiB, 0.0)])
        metrics = run_workload(spec, view_for(spec), trace)
        assert metrics.p50_latency == 0.0

    def test_bad_quantile(self):
        spec = ClusterSpec()
        metrics = run_workload(spec, view_for(spec), Trace([rec(0, 64 * KiB, 0.0)]))
        with pytest.raises(ValueError):
            metrics.latency_percentile(101)


class TestClientNICs:
    def _trace(self, ranks):
        return Trace(
            [rec(r * 4 * MiB + i * 256 * KiB, 256 * KiB, float(i), rank=r)
             for r in range(ranks) for i in range(8)]
        )

    def test_disabled_by_default(self):
        spec = ClusterSpec()
        pfs = HybridPFS(spec)
        assert pfs.client_links is None

    def test_client_contention_slows_colocated_ranks(self):
        # 16 ranks on 2 client nodes vs 16 ranks on 16 nodes
        trace = self._trace(16)
        crowded = ClusterSpec(num_clients=2, model_client_nics=True)
        roomy = ClusterSpec(num_clients=16, model_client_nics=True)
        m_crowded = run_workload(crowded, view_for(crowded), trace)
        m_roomy = run_workload(roomy, view_for(roomy), trace)
        assert m_crowded.makespan > m_roomy.makespan

    def test_modeling_off_equals_many_clients_upper_bound(self):
        trace = self._trace(8)
        off = ClusterSpec(model_client_nics=False)
        on = ClusterSpec(num_clients=8, model_client_nics=True)
        m_off = run_workload(off, view_for(off), trace)
        m_on = run_workload(on, view_for(on), trace)
        # the client stage can only add time
        assert m_on.makespan >= m_off.makespan

    def test_ratio_copy_preserves_flag(self):
        spec = ClusterSpec(model_client_nics=True).with_ratio(4, 4)
        assert spec.model_client_nics is True


class TestStragglerInjection:
    def test_slow_server_stretches_makespan(self):
        spec = ClusterSpec()
        trace = Trace([rec(i * 512 * KiB, 512 * KiB, float(i)) for i in range(8)])
        healthy = run_workload(spec, view_for(spec), trace)

        pfs = HybridPFS(spec)
        pfs.servers[0].slowdown = 4.0
        degraded = replay_trace(pfs, view_for(spec), trace)
        assert degraded.makespan > healthy.makespan

    def test_slowdown_scales_busy_time(self):
        spec = ClusterSpec(num_hservers=1, num_sservers=0)
        trace = Trace([rec(0, 64 * KiB, 0.0)])
        pfs = HybridPFS(spec)
        base = replay_trace(pfs, view_for(spec), trace).per_server_busy[0]
        pfs2 = HybridPFS(spec)
        pfs2.servers[0].slowdown = 2.0
        doubled = replay_trace(pfs2, view_for(spec), trace).per_server_busy[0]
        assert doubled == pytest.approx(2 * base)

    def test_invalid_slowdown(self):
        spec = ClusterSpec()
        pfs = HybridPFS(spec)
        pfs.servers[0].slowdown = 0.0
        with pytest.raises(ValueError):
            pfs.servers[0].submit("read", "o", 0, 1024)

    def test_mha_replan_routes_around_straggler(self):
        """Robustness extension: re-profiling on a degraded cluster and
        re-planning with degraded parameters shifts load away from the
        slow server class."""
        from repro.core import CostModelParams, determine_stripes
        import numpy as np

        spec = ClusterSpec()
        params = CostModelParams.from_cluster(spec)
        offsets = np.arange(8, dtype=np.int64) * 256 * KiB
        lengths = np.full(8, 256 * KiB, dtype=np.int64)
        is_read = np.zeros(8, dtype=bool)
        conc = np.full(8, 8, dtype=np.int64)
        healthy = determine_stripes(params, offsets, lengths, is_read, conc)
        # HServers measured 4x slower during re-profiling
        from dataclasses import replace

        degraded_params = replace(
            params, alpha_h=4 * params.alpha_h, beta_h=4 * params.beta_h
        )
        degraded = determine_stripes(
            degraded_params, offsets, lengths, is_read, conc
        )
        assert degraded.h <= healthy.h  # load shifts off the slow class

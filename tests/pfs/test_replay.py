"""Tests for the trace replay engine."""

import pytest

from repro.cluster import ClusterSpec
from repro.layouts import FixedStripeLayout
from repro.pfs import HybridPFS, replay_trace, run_workload
from repro.schemes.base import LayoutView
from repro.tracing import IOCollector, Trace, TraceRecord
from repro.units import KiB, MiB


def rec(offset, size, ts, rank=0, op="write", file="f"):
    return TraceRecord(offset=offset, timestamp=ts, rank=rank, size=size, op=op, file=file)


def simple_view(spec, stripe=64 * KiB):
    return LayoutView({}, default=FixedStripeLayout(spec.server_ids, stripe, obj="f"))


@pytest.fixture
def spec():
    return ClusterSpec(num_hservers=2, num_sservers=2)


class TestReplay:
    def test_metrics_accounting(self, spec):
        trace = Trace([rec(i * 64 * KiB, 64 * KiB, float(i)) for i in range(4)])
        metrics = run_workload(spec, simple_view(spec), trace)
        assert metrics.total_bytes == 4 * 64 * KiB
        assert metrics.requests == 4
        assert metrics.makespan > 0
        assert metrics.bandwidth > 0
        assert metrics.read_bytes == 0
        assert metrics.write_bytes == 4 * 64 * KiB

    def test_ranks_run_concurrently(self, spec):
        # two ranks, same work: makespan should be well below 2x serial
        one = Trace([rec(i * 64 * KiB, 64 * KiB, float(i)) for i in range(8)])
        both = Trace(
            [rec(i * 64 * KiB, 64 * KiB, float(i)) for i in range(8)]
            + [rec((8 + i) * 64 * KiB, 64 * KiB, float(i), rank=1) for i in range(8)]
        )
        m1 = run_workload(spec, simple_view(spec), one)
        m2 = run_workload(spec, simple_view(spec), both)
        assert m2.makespan < 1.8 * m1.makespan

    def test_rank_requests_serialized(self, spec):
        # one rank's requests never overlap: makespan == sum of latencies
        trace = Trace([rec(i * MiB, 64 * KiB, float(i)) for i in range(4)])
        metrics = run_workload(spec, simple_view(spec), trace, keep_latencies=True)
        assert len(metrics.latencies) == 4
        assert metrics.makespan == pytest.approx(sum(metrics.latencies))

    def test_determinism(self, spec):
        trace = Trace(
            [rec(i * 64 * KiB, 64 * KiB, float(i % 3), rank=i % 3) for i in range(12)]
        )
        a = run_workload(spec, simple_view(spec), trace)
        b = run_workload(spec, simple_view(spec), trace)
        assert a.makespan == b.makespan
        assert a.per_server_busy == b.per_server_busy

    def test_empty_trace(self, spec):
        metrics = run_workload(spec, simple_view(spec), Trace([]))
        assert metrics.makespan == 0.0
        assert metrics.bandwidth == 0.0

    def test_load_imbalance_metric(self, spec):
        trace = Trace([rec(i * 64 * KiB, 64 * KiB, float(i)) for i in range(16)])
        metrics = run_workload(spec, simple_view(spec), trace)
        assert metrics.load_imbalance() >= 1.0

    def test_collector_hook_records_requests(self, spec):
        trace = Trace([rec(i * 64 * KiB, 64 * KiB, float(i)) for i in range(3)])
        collector = IOCollector()
        pfs = HybridPFS(spec)
        replay_trace(pfs, simple_view(spec), trace, collector=collector)
        assert len(collector) == 3
        # collector timestamps are simulated times, not wall-clock
        recorded = collector.trace(sort_by_offset=False)
        assert recorded[0].timestamp == 0.0

    def test_shared_pfs_sequential_replays(self, spec):
        trace = Trace([rec(0, 64 * KiB, 0.0)])
        pfs = HybridPFS(spec)
        m1 = replay_trace(pfs, simple_view(spec), trace)
        m2 = replay_trace(pfs, simple_view(spec), trace)
        assert m1.total_bytes == m2.total_bytes
        assert m2.makespan > 0


class TestOnRecordHook:
    def test_hook_sees_every_record_at_issue_time(self, spec):
        trace = Trace([rec(i * 64 * KiB, 64 * KiB, float(i)) for i in range(5)])
        seen = []
        pfs = HybridPFS(spec)
        replay_trace(pfs, simple_view(spec), trace, on_record=seen.append)
        assert seen == list(trace.sorted_by_time())

    def test_hook_spawned_background_work_excluded_from_makespan(self, spec):
        """A hook that spawns extra simulator work must not inflate the
        foreground makespan (but does extend the simulator clock)."""
        trace = Trace([rec(i * 64 * KiB, 64 * KiB, float(i)) for i in range(3)])
        pfs = HybridPFS(spec)

        def lingering():
            yield 100.0

        fired = []

        def hook(record):
            if not fired:
                fired.append(record)
                pfs.sim.spawn(lingering(), name="background")

        metrics = replay_trace(pfs, simple_view(spec), trace, on_record=hook)
        assert metrics.makespan < 100.0
        assert pfs.sim.now >= 100.0


class TestBarrierGap:
    def two_phase_trace(self):
        """Two ranks, two phases 10s apart; rank 1's phase-1 work is
        8x larger, so without barriers rank 0 races deep into phase 2."""
        records = []
        for rank in (0, 1):
            size = 64 * KiB if rank == 0 else 512 * KiB
            records.append(rec(rank * 4 * MiB, size, 0.0 + rank * 1e-4, rank=rank))
            records.append(
                rec(2 * MiB + rank * 4 * MiB, 64 * KiB, 10.0 + rank * 1e-4, rank=rank)
            )
        return Trace(records)

    def test_phases_issue_in_order(self, spec):
        trace = self.two_phase_trace()
        order = []
        pfs = HybridPFS(spec)
        replay_trace(
            pfs,
            simple_view(spec),
            trace,
            on_record=lambda r: order.append(r.timestamp),
            barrier_gap=5.0,
        )
        # all phase-1 records (t < 5) issue before any phase-2 record
        first_phase2 = next(i for i, t in enumerate(order) if t >= 5.0)
        assert all(t >= 5.0 for t in order[first_phase2:])
        assert all(t < 5.0 for t in order[:first_phase2])

    def test_no_barrier_keeps_ranks_independent(self, spec):
        trace = self.two_phase_trace()
        order = []
        replay_trace(
            HybridPFS(spec),
            simple_view(spec),
            trace,
            on_record=lambda r: order.append((r.rank, r.timestamp)),
        )
        # rank 0 issues its phase-2 record while rank 1 is still in phase 1
        assert order.index((0, 10.0)) < order.index((1, 10.0001))

    def test_barrier_metrics_consistent(self, spec):
        trace = self.two_phase_trace()
        free = run_workload(spec, simple_view(spec), trace)
        pfs = HybridPFS(spec)
        gated = replay_trace(pfs, simple_view(spec), trace, barrier_gap=5.0)
        assert gated.total_bytes == free.total_bytes
        # synchronization can only slow the replay down
        assert gated.makespan >= free.makespan

"""Tests for the hybrid PFS assembly and fragment merging."""

import pytest

from repro.cluster import ClusterSpec
from repro.devices import HDD, SSD
from repro.exceptions import SimulationError
from repro.layouts import SubRequest
from repro.pfs import HybridPFS, merge_fragments
from repro.units import KiB


def frag(server, offset, length, logical, obj="o"):
    return SubRequest(
        server=server, obj=obj, offset=offset, length=length, logical_offset=logical
    )


class TestMergeFragments:
    def test_contiguous_same_server_merges(self):
        frags = [frag(0, 0, 10, 0), frag(1, 0, 10, 10), frag(0, 10, 10, 20)]
        merged = merge_fragments(frags)
        assert len(merged) == 2
        by_server = {f.server: f for f in merged}
        assert by_server[0].length == 20
        assert by_server[1].length == 10

    def test_noncontiguous_not_merged(self):
        frags = [frag(0, 0, 10, 0), frag(0, 50, 10, 10)]
        assert len(merge_fragments(frags)) == 2

    def test_different_objects_not_merged(self):
        frags = [frag(0, 0, 10, 0, obj="a"), frag(0, 10, 10, 10, obj="b")]
        assert len(merge_fragments(frags)) == 2

    def test_empty(self):
        assert merge_fragments([]) == []

    def test_interleaved_striping_collapses_per_server(self):
        """A striped request's per-server pieces are contiguous in the
        server object and merge into one sub-request per server."""
        from repro.layouts import VariedStripeLayout

        layout = VariedStripeLayout([0, 1], [2, 3], h=4 * KiB, s=4 * KiB)
        frags = layout.map_extent(0, 64 * KiB)
        merged = merge_fragments(frags)
        assert len(merged) == 4  # one run per server
        assert {f.server for f in merged} == {0, 1, 2, 3}


class TestHybridPFS:
    def test_server_classes(self):
        pfs = HybridPFS(ClusterSpec(num_hservers=2, num_sservers=2))
        assert isinstance(pfs.servers[0].device, HDD)
        assert isinstance(pfs.servers[2].device, SSD)
        assert len(pfs.servers) == 4

    def test_issue_completes_at_slowest(self):
        pfs = HybridPFS(ClusterSpec(num_hservers=1, num_sservers=1))
        frags = [frag(0, 0, 64 * KiB, 0), frag(1, 0, 64 * KiB, 64 * KiB)]
        done = pfs.issue("read", frags)
        pfs.sim.run()
        hdd_time = pfs.servers[0].busy_time
        assert pfs.sim.now == pytest.approx(hdd_time)  # HDD is slower

    def test_issue_empty_fragments(self):
        pfs = HybridPFS(ClusterSpec())
        done = pfs.issue("read", [])
        assert done.fired

    def test_unknown_server_rejected(self):
        pfs = HybridPFS(ClusterSpec(num_hservers=1, num_sservers=1))
        with pytest.raises(SimulationError):
            pfs.issue("read", [frag(9, 0, 10, 0)])

    def test_per_server_stats(self):
        pfs = HybridPFS(ClusterSpec(num_hservers=1, num_sservers=1))
        pfs.issue("write", [frag(0, 0, 100, 0), frag(1, 0, 300, 100)])
        pfs.sim.run()
        assert pfs.per_server_bytes() == [100, 300]
        assert all(t > 0 for t in pfs.per_server_busy())
        pfs.reset_stats()
        assert pfs.per_server_bytes() == [0, 0]

    def test_mds_present(self):
        pfs = HybridPFS(ClusterSpec())
        completion, pair = pfs.mds.lookup("region0")
        pfs.sim.run()
        assert completion.fired
        assert pair is None  # empty RST
        assert pfs.mds.lookups == 1

"""Tests for the byte-accurate data path and migration execution.

The end-to-end integrity tests here are the strongest correctness
statement in the repository: data written through the *original*
layout, migrated per the MHA plan, and read back through the
*redirector* must be bit-identical — for every workload shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core import MHAPipeline
from repro.exceptions import SimulationError
from repro.layouts import FixedStripeLayout, VariedStripeLayout
from repro.pfs import DataClient, ObjectStore, migrate
from repro.schemes import DEFScheme
from repro.tracing import Trace, TraceRecord


def rec(offset, size, ts=0.0, rank=0, op="write", file="data"):
    return TraceRecord(offset=offset, timestamp=ts, rank=rank, size=size, op=op, file=file)


class TestObjectStore:
    def test_write_read_roundtrip(self):
        store = ObjectStore()
        store.write("o", 10, b"hello")
        assert store.read("o", 10, 5) == b"hello"

    def test_unwritten_reads_zero(self):
        store = ObjectStore()
        assert store.read("o", 0, 4) == b"\x00" * 4

    def test_read_past_eof_zero_filled(self):
        store = ObjectStore()
        store.write("o", 0, b"ab")
        assert store.read("o", 0, 4) == b"ab\x00\x00"

    def test_overwrite(self):
        store = ObjectStore()
        store.write("o", 0, b"aaaa")
        store.write("o", 1, b"bb")
        assert store.read("o", 0, 4) == b"abba"

    def test_size_and_objects(self):
        store = ObjectStore()
        store.write("x", 100, b"z")
        assert store.size("x") == 101
        assert store.size("unknown") == 0
        assert store.objects() == ("x",)
        assert store.used_bytes() == 101

    def test_negative_offset_rejected(self):
        with pytest.raises(SimulationError):
            ObjectStore().write("o", -1, b"x")


class TestDataClient:
    def test_layout_roundtrip_fixed(self):
        client = DataClient(4)
        layout = FixedStripeLayout([0, 1, 2, 3], stripe=7, obj="f")
        payload = bytes(range(256)) * 3
        client.write_layout(layout, 13, payload)
        assert client.read_layout(layout, 13, len(payload)) == payload

    def test_layout_roundtrip_varied(self):
        client = DataClient(4)
        layout = VariedStripeLayout([0, 1], [2, 3], h=5, s=12, obj="f")
        payload = b"The quick brown fox jumps over the lazy dog" * 10
        client.write_layout(layout, 0, payload)
        assert client.read_layout(layout, 0, len(payload)) == payload

    def test_different_layouts_see_different_bytes(self):
        client = DataClient(2)
        a = FixedStripeLayout([0, 1], stripe=4, obj="a")
        b = FixedStripeLayout([0, 1], stripe=4, obj="b")
        client.write_layout(a, 0, b"XXXX")
        assert client.read_layout(b, 0, 4) == b"\x00" * 4

    def test_view_roundtrip(self):
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        view = DEFScheme().build(spec, Trace([rec(0, 64)]))
        client = DataClient(spec.num_servers)
        client.write(view, "data", 100, b"payload!")
        assert client.read(view, "data", 100, 8) == b"payload!"

    def test_server_out_of_range(self):
        client = DataClient(1)
        layout = FixedStripeLayout([3], stripe=4, obj="f")
        with pytest.raises(SimulationError):
            client.write_layout(layout, 0, b"zz")

    @given(
        stripe=st.integers(min_value=1, max_value=64),
        offset=st.integers(min_value=0, max_value=500),
        payload=st.binary(min_size=1, max_size=600),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, stripe, offset, payload):
        client = DataClient(3)
        layout = FixedStripeLayout([0, 1, 2], stripe=stripe, obj="f")
        client.write_layout(layout, offset, payload)
        assert client.read_layout(layout, offset, len(payload)) == payload


class TestMigrationIntegrity:
    def _dataset(self, trace, seed=0):
        """Deterministic distinct content for every accessed extent."""
        rng = np.random.default_rng(seed)
        extent = trace.extent()[1]
        return rng.integers(0, 256, size=extent, dtype=np.uint8).tobytes()

    def _roundtrip(self, trace, spec=None, seed=1):
        spec = spec or ClusterSpec()
        pipeline = MHAPipeline(spec, seed=seed)
        plan = pipeline.plan(trace)
        client = DataClient(spec.num_servers)
        data = self._dataset(trace)
        file = trace.files()[0]
        # 1. populate through the ORIGINAL layout
        client.write_layout(plan.original_layouts[file], 0, data)
        # 2. execute the placement phase's migration
        moved = migrate(client, plan.drt, plan.original_layouts, plan.region_layouts)
        assert moved == plan.migrated_bytes()
        # 3. every request read through the REDIRECTOR returns the bytes
        for record in trace:
            got = client.read(plan.redirector, file, record.offset, record.size)
            assert got == data[record.offset : record.end], (
                f"data mismatch at {record.offset}+{record.size}"
            )

    def test_mixed_pattern_integrity(self):
        records = []
        for i in range(6):
            records.append(rec(i * 4096, 128, ts=float(i)))
            records.append(rec(i * 4096 + 1024, 3072, ts=float(i) + 0.1))
        self._roundtrip(Trace(records))

    def test_overlapping_requests_integrity(self):
        records = [
            rec(0, 8192, ts=0.0),
            rec(1000, 500, ts=10.0),
            rec(4096, 4096, ts=20.0),
        ]
        self._roundtrip(Trace(records))

    def test_unmigrated_bytes_still_readable(self):
        spec = ClusterSpec()
        trace = Trace([rec(0, 1024), rec(8192, 1024, ts=5.0)])
        plan = MHAPipeline(spec, seed=0).plan(trace)
        client = DataClient(spec.num_servers)
        data = self._dataset(trace)
        client.write_layout(plan.original_layouts["data"], 0, data)
        migrate(client, plan.drt, plan.original_layouts, plan.region_layouts)
        # a read over never-accessed (unmigrated) bytes falls through to
        # the original file and still returns the right content
        got = client.read(plan.redirector, "data", 2000, 4000)
        assert got == data[2000:6000]

    @given(
        sizes=st.lists(
            st.sampled_from([64, 512, 4096, 65536]), min_size=2, max_size=12
        ),
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_integrity_property(self, sizes, seed):
        records = []
        offset = 0
        for i, size in enumerate(sizes):
            records.append(rec(offset, size, ts=float(i // 4) * 10))
            offset += size
        self._roundtrip(Trace(records), seed=seed)

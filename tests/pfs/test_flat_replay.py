"""Flat replay kernel: bit-identity with the event engine + fallbacks.

The flat kernel (:mod:`repro.pfs.flat`) is the default replay engine
and must be *float-bit-identical* to the event engine on everything a
replay measures — so every equality here is exact, never approximate.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.pfs.replay as replay_mod
from repro.cluster import ClusterSpec
from repro.layouts import FixedStripeLayout
from repro.pfs import HybridPFS, replay_trace, run_workload
from repro.schemes import build_view, scheme_names
from repro.schemes.base import LayoutView
from repro.tracing import Trace, TraceRecord
from repro.units import KiB, MiB
from repro.workloads import IORWorkload
from repro.workloads.base import PHASE_GAP


def rec(offset, size, ts, rank=0, op="write", file="f"):
    return TraceRecord(offset=offset, timestamp=ts, rank=rank, size=size, op=op, file=file)


def simple_view(spec, stripe=64 * KiB):
    return LayoutView({}, default=FixedStripeLayout(spec.server_ids, stripe, obj="f"))


def run_both(spec, view_of, trace, **kwargs):
    """Replay the same trace through both engines on fresh PFS twins."""
    results = []
    for engine in ("event", "flat"):
        pfs = HybridPFS(spec)
        metrics = replay_trace(pfs, view_of(), trace, engine=engine, **kwargs)
        results.append((metrics, pfs))
    return results


def assert_identical(event, flat):
    """Exact equality on every replayed observable."""
    (em, epfs), (fm, fpfs) = event, flat
    assert fm.makespan == em.makespan
    assert fm.latencies == em.latencies
    assert fm.per_server_busy == em.per_server_busy
    assert fm.per_server_bytes == em.per_server_bytes
    assert fm.total_bytes == em.total_bytes
    assert fm.requests == em.requests
    for fsrv, esrv in zip(fpfs.servers, epfs.servers):
        assert fsrv.stats == esrv.stats
    assert fpfs.sim.now == epfs.sim.now


class TestBitIdentity:
    @pytest.mark.parametrize("scheme", scheme_names())
    @pytest.mark.parametrize("nics", [False, True])
    def test_every_scheme_matches_event_engine(self, scheme, nics):
        spec = ClusterSpec(model_client_nics=nics)
        trace = IORWorkload(
            num_processes=4,
            request_sizes=[16 * KiB, 64 * KiB],
            total_size=4 * MiB,
            seed=3,
            file="f",
        ).trace("write")
        event, flat = run_both(
            spec,
            lambda: build_view(scheme, spec, trace),
            trace,
            keep_latencies=True,
        )
        assert event[0].makespan > 0
        assert_identical(event, flat)

    @pytest.mark.parametrize("scheme", ["DEF", "MHA"])
    def test_barrier_gap_matches_event_engine(self, scheme):
        spec = ClusterSpec(model_client_nics=True)
        trace = IORWorkload(
            num_processes=4,
            request_sizes=[16 * KiB, 64 * KiB],
            total_size=4 * MiB,
            seed=5,
            file="f",
        ).trace("write")
        event, flat = run_both(
            spec,
            lambda: build_view(scheme, spec, trace),
            trace,
            keep_latencies=True,
            barrier_gap=PHASE_GAP / 2,
        )
        assert_identical(event, flat)

    def test_read_op_and_mixed_ranks(self):
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        trace = Trace(
            [rec(i * 48 * KiB, 48 * KiB, float(i % 3), rank=i % 3, op="read") for i in range(12)]
        )
        event, flat = run_both(spec, lambda: simple_view(spec), trace, keep_latencies=True)
        assert_identical(event, flat)

    def test_empty_trace(self):
        spec = ClusterSpec()
        metrics = run_workload(spec, simple_view(spec), Trace([]), engine="flat")
        assert metrics.makespan == 0.0

    def test_duplicated_records_with_barriers(self):
        """Identical records (same rank/offset/size/timestamp) are legal
        in a trace; the barrier index is keyed by position, so each copy
        occupies its own phase slot in both engines."""
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        dup = rec(0, 64 * KiB, 0.0)
        records = [dup, dup, rec(0, 64 * KiB, 0.0, rank=1)]
        # second phase duplicates a first-phase record's value too
        records += [rec(0, 64 * KiB, 20.0), rec(0, 64 * KiB, 20.0, rank=1)]
        trace = Trace(records)
        event, flat = run_both(
            spec, lambda: simple_view(spec), trace, keep_latencies=True, barrier_gap=5.0
        )
        assert len(event[0].latencies) == len(records)
        assert_identical(event, flat)

    def test_phase_index_keys_by_position(self):
        dup = rec(0, 64 * KiB, 0.0)
        phase_of, sizes = replay_mod._phase_index([dup, dup, dup], barrier_gap=5.0)
        assert phase_of == [0, 0, 0]
        assert sizes == [3]
        later = rec(0, 64 * KiB, 10.0)
        phase_of, sizes = replay_mod._phase_index([dup, dup, later, later], 5.0)
        assert phase_of == [0, 0, 1, 1]
        assert sizes == [2, 2]

    def test_shared_pfs_sequential_replays_match(self):
        """Back-to-back replays on one PFS leave the clock where the
        event engine would, so later replays stay identical too."""
        spec = ClusterSpec()
        trace = Trace([rec(i * 64 * KiB, 64 * KiB, float(i)) for i in range(4)])
        event_pfs, flat_pfs = HybridPFS(spec), HybridPFS(spec)
        for _ in range(2):
            em = replay_trace(event_pfs, simple_view(spec), trace, engine="event")
            fm = replay_trace(flat_pfs, simple_view(spec), trace, engine="flat")
            assert fm.makespan == em.makespan
            assert flat_pfs.sim.now == event_pfs.sim.now


traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=64),  # offset in 16 KiB units
        st.integers(min_value=1, max_value=12),  # size in 16 KiB units
        st.integers(min_value=0, max_value=3),  # phase index
        st.integers(min_value=0, max_value=4),  # rank
        st.sampled_from(["read", "write"]),
    ),
    min_size=1,
    max_size=24,
)


class TestPropertyEquivalence:
    @given(raw=traces, nics=st.booleans(), gap=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_flat_equals_event_on_random_traces(self, raw, nics, gap):
        spec = ClusterSpec(num_hservers=2, num_sservers=2, model_client_nics=nics)
        trace = Trace(
            [
                rec(off * 16 * KiB, size * 16 * KiB, phase * 10.0, rank=rank, op=op)
                for off, size, phase, rank, op in raw
            ]
        )
        event, flat = run_both(
            spec,
            lambda: simple_view(spec, stripe=32 * KiB),
            trace,
            keep_latencies=True,
            barrier_gap=5.0 if gap else None,
        )
        assert_identical(event, flat)


class TestOpenArrivalEquivalence:
    """Open-loop replay must stay bit-identical across engines."""

    @given(raw=traces, nics=st.booleans(), gap=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_open_arrivals_flat_equals_event(self, raw, nics, gap):
        spec = ClusterSpec(num_hservers=2, num_sservers=2, model_client_nics=nics)
        trace = Trace(
            [
                rec(off * 16 * KiB, size * 16 * KiB, phase * 10.0, rank=rank, op=op)
                for off, size, phase, rank, op in raw
            ]
        )
        event, flat = run_both(
            spec,
            lambda: simple_view(spec, stripe=32 * KiB),
            trace,
            keep_latencies=True,
            barrier_gap=5.0 if gap else None,
            open_arrivals=True,
        )
        assert_identical(event, flat)
        assert flat[0].latency_ranks == event[0].latency_ranks

    def test_open_arrivals_defer_issue_to_timestamps(self):
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        trace = Trace([rec(0, 16 * KiB, 0.0), rec(64 * KiB, 16 * KiB, 50.0)])
        closed = run_workload(spec, simple_view(spec), trace)
        opened = run_workload(
            spec, simple_view(spec), trace, open_arrivals=True
        )
        assert opened.makespan > closed.makespan
        assert opened.makespan >= 50.0
        assert opened.total_bytes == closed.total_bytes

    def test_latency_ranks_label_every_latency(self):
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        trace = Trace(
            [rec(i * 64 * KiB, 16 * KiB, 0.0, rank=i % 3) for i in range(9)]
        )
        metrics = run_workload(
            spec, simple_view(spec), trace, keep_latencies=True
        )
        assert len(metrics.latency_ranks) == len(metrics.latencies)
        assert sorted(metrics.latency_ranks) == sorted(r.rank for r in trace)
        for rank in (0, 1, 2):
            group = metrics.group_latencies([rank])
            assert len(group) == 3
            assert metrics.group_latency_percentile([rank], 100.0) == max(group)
        assert metrics.group_latencies([99]) == []
        assert metrics.group_latency_percentile([99], 99.0) == 0.0
        with pytest.raises(ValueError):
            metrics.group_latency_percentile([0], 101.0)


class TestFaultEquivalence:
    """Fault injection must preserve engine bit-identity."""

    @staticmethod
    def plan(seed):
        from repro.faults import (
            BackgroundScrub,
            FaultPlan,
            ServerOutage,
            TransientSlowdown,
            WriteCliff,
        )

        return FaultPlan(
            faults=(
                TransientSlowdown(
                    server=0, factor=3.0, windows=3, mean_duration=1.0, horizon=8.0
                ),
                ServerOutage(
                    server=1, at=0.5, duration=1.0, rebuild_duration=2.0,
                    rebuild_factor=2.0,
                ),
                BackgroundScrub(server=2, period=2.0, duty=0.5, factor=1.5),
                WriteCliff(server=3, capacity_bytes=64 * KiB, factor=2.0,
                           recovery_idle=0.5),
            ),
            seed=seed,
        )

    @given(raw=traces, nics=st.booleans(), gap=st.booleans(), seed=st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_faulted_flat_equals_event(self, raw, nics, gap, seed):
        spec = ClusterSpec(num_hservers=2, num_sservers=2, model_client_nics=nics)
        trace = Trace(
            [
                rec(off * 16 * KiB, size * 16 * KiB, phase * 10.0, rank=rank, op=op)
                for off, size, phase, rank, op in raw
            ]
        )
        event, flat = run_both(
            spec,
            lambda: simple_view(spec, stripe=32 * KiB),
            trace,
            keep_latencies=True,
            barrier_gap=5.0 if gap else None,
            fault_plan=self.plan(seed),
        )
        assert_identical(event, flat)
        assert flat[0].per_server_latencies == event[0].per_server_latencies

    def test_faults_slow_the_replay_down(self):
        from repro.faults import FaultPlan, ServerOutage

        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        trace = Trace([rec(i * 64 * KiB, 64 * KiB, 0.0, rank=i) for i in range(6)])
        healthy = run_workload(spec, simple_view(spec), trace)
        plan = FaultPlan((ServerOutage(server=0, at=0.0, duration=1.0),))
        faulted = run_workload(spec, simple_view(spec), trace, fault_plan=plan)
        assert faulted.makespan > healthy.makespan
        assert faulted.makespan >= 1.0  # deferred past the outage
        assert faulted.total_bytes == healthy.total_bytes


class TestEngineSelection:
    def make(self):
        spec = ClusterSpec(num_hservers=2, num_sservers=2)
        trace = Trace([rec(i * 64 * KiB, 64 * KiB, float(i)) for i in range(3)])
        return spec, trace

    def test_unknown_engine_rejected(self):
        spec, trace = self.make()
        with pytest.raises(ValueError):
            replay_trace(HybridPFS(spec), simple_view(spec), trace, engine="warp")

    def test_explicit_event_engine_skips_flat(self, monkeypatch):
        spec, trace = self.make()
        monkeypatch.setattr(replay_mod, "replay_flat", self.boom)
        metrics = replay_trace(HybridPFS(spec), simple_view(spec), trace, engine="event")
        assert metrics.requests == 3

    @staticmethod
    def boom(*args, **kwargs):
        raise AssertionError("flat kernel must not be used here")

    def test_on_record_hook_falls_back_to_event(self, monkeypatch):
        spec, trace = self.make()
        monkeypatch.setattr(replay_mod, "replay_flat", self.boom)
        seen = []
        metrics = replay_trace(
            HybridPFS(spec), simple_view(spec), trace, engine="flat", on_record=seen.append
        )
        assert len(seen) == 3
        assert metrics.requests == 3

    def test_collector_falls_back_to_event(self, monkeypatch):
        from repro.tracing import IOCollector

        spec, trace = self.make()
        monkeypatch.setattr(replay_mod, "replay_flat", self.boom)
        collector = IOCollector()
        replay_trace(
            HybridPFS(spec), simple_view(spec), trace, engine="flat", collector=collector
        )
        assert len(collector) == 3

    def test_pending_events_fall_back_to_event(self, monkeypatch):
        spec, trace = self.make()
        pfs = HybridPFS(spec)

        def background():
            yield 1000.0

        pfs.sim.spawn(background(), name="bg")
        assert pfs.sim.pending() > 0
        monkeypatch.setattr(replay_mod, "replay_flat", self.boom)
        metrics = replay_trace(pfs, simple_view(spec), trace, engine="flat")
        assert metrics.requests == 3

    def test_multichannel_server_falls_back_to_event(self, monkeypatch):
        from repro.simulate import FIFOResource

        spec, trace = self.make()
        pfs = HybridPFS(spec)
        srv = pfs.servers[0]
        srv.channel = FIFOResource(pfs.sim, name=srv.name, capacity=2)
        monkeypatch.setattr(replay_mod, "replay_flat", self.boom)
        metrics = replay_trace(pfs, simple_view(spec), trace, engine="flat")
        assert metrics.requests == 3

    def test_feedback_view_falls_back_to_event(self, monkeypatch):
        from repro.schemes import make_scheme

        spec, trace = self.make()
        view = make_scheme("SAW").build(spec, trace)
        assert view.requires_event_engine
        monkeypatch.setattr(replay_mod, "replay_flat", self.boom)
        metrics = replay_trace(HybridPFS(spec), view, trace, engine="flat")
        assert metrics.requests == 3

    def test_flat_is_the_default_engine(self, monkeypatch):
        from repro.config import DEFAULT_REPLAY_ENGINE

        assert DEFAULT_REPLAY_ENGINE == "flat"
        spec, trace = self.make()
        called = {}
        real = replay_mod.replay_flat

        def spy(*args, **kwargs):
            called["flat"] = True
            return real(*args, **kwargs)

        monkeypatch.setattr(replay_mod, "replay_flat", spy)
        replay_trace(HybridPFS(spec), simple_view(spec), trace)
        assert called.get("flat")


class TestLatencyPercentileCache:
    def metrics(self, latencies):
        return replay_mod.RunMetrics(
            makespan=1.0,
            total_bytes=0,
            requests=len(latencies),
            per_server_busy=[],
            per_server_bytes=[],
            read_bytes=0,
            write_bytes=0,
            latencies=list(latencies),
        )

    def test_sorted_view_cached_and_reused(self):
        m = self.metrics([3.0, 1.0, 2.0])
        assert m.latency_percentile(0) == 1.0
        first = m._sorted_latencies
        assert first == [1.0, 2.0, 3.0]
        assert m.latency_percentile(100) == 3.0
        assert m._sorted_latencies is first

    def test_length_change_rebuilds(self):
        m = self.metrics([2.0, 1.0])
        assert m.latency_percentile(100) == 2.0
        m.latencies.append(0.5)
        assert m.latency_percentile(0) == 0.5

    def test_invalidate_after_in_place_mutation(self):
        m = self.metrics([1.0, 2.0, 3.0])
        assert m.latency_percentile(100) == 3.0
        m.latencies[0] = 9.0  # same length: cache would go stale
        m.invalidate_latency_cache()
        assert m.latency_percentile(100) == 9.0

    def test_percentile_validation_and_empty(self):
        m = self.metrics([])
        assert m.p99_latency == 0.0
        with pytest.raises(ValueError):
            m.latency_percentile(101)

    def test_server_percentiles(self):
        m = self.metrics([1.0, 2.0])
        m.per_server_latencies = [[3.0, 1.0, 2.0], []]
        assert m.server_latency_percentile(0, 0) == 1.0
        assert m.server_latency_percentile(0, 100) == 3.0
        assert m.server_latency_percentile(1, 99) == 0.0
        with pytest.raises(IndexError):
            m.server_latency_percentile(2, 50)
        with pytest.raises(ValueError):
            m.server_latency_percentile(0, -1)

    def test_server_percentile_cache_invalidation(self):
        m = self.metrics([1.0])
        m.per_server_latencies = [[2.0, 1.0]]
        assert m.server_latency_percentile(0, 100) == 2.0
        m.per_server_latencies[0][0] = 9.0
        m.invalidate_latency_cache()
        assert m.server_latency_percentile(0, 100) == 9.0

    def test_no_server_latencies_returns_zero(self):
        m = self.metrics([1.0])
        assert m.server_latency_percentile(0, 99) == 0.0

    def test_tail_properties(self):
        m = self.metrics([float(i) for i in range(1, 1001)])
        assert m.p95_latency == m.latency_percentile(95)
        assert m.p999_latency == m.latency_percentile(99.9)

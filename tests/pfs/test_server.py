"""Tests for the data server model."""

import pytest

from repro.devices import HDD, SSD
from repro.network import GIGABIT_ETHERNET
from repro.pfs import DataServer
from repro.simulate import Simulator
from repro.units import KiB


def make_server(device=None, stream_capacity=4):
    sim = Simulator()
    server = DataServer(
        sim, 0, device or HDD(), GIGABIT_ETHERNET, stream_capacity=stream_capacity
    )
    return sim, server


class TestService:
    def test_service_time_structure(self):
        sim, server = make_server()
        done = server.submit("read", "obj", 0, 64 * KiB)
        sim.run()
        hdd, link = HDD(), GIGABIT_ETHERNET
        expected = (
            hdd.startup_time("read", False)
            + hdd.transfer_time("read", 64 * KiB)
            + link.transfer_time(64 * KiB)
        )
        assert done.value.duration == pytest.approx(expected)

    def test_ssd_startup_amortized_by_channels(self):
        ssd = SSD()
        sim, server = make_server(device=ssd)
        done = server.submit("write", "obj", 0, 4 * KiB)
        sim.run()
        expected = (
            ssd.write_startup / ssd.channels
            + ssd.transfer_time("write", 4 * KiB)
            + GIGABIT_ETHERNET.transfer_time(4 * KiB)
        )
        assert done.value.duration == pytest.approx(expected)

    def test_fifo_queueing(self):
        sim, server = make_server()
        c1 = server.submit("read", "obj", 0, 64 * KiB)
        c2 = server.submit("read", "x", 0, 64 * KiB)
        sim.run()
        assert c2.value.start == pytest.approx(c1.value.finish)

    def test_busy_time_accumulates(self):
        sim, server = make_server()
        server.submit("read", "obj", 0, 64 * KiB)
        server.submit("write", "obj", 64 * KiB, 64 * KiB)
        sim.run()
        assert server.busy_time > 0

    def test_byte_accounting(self):
        sim, server = make_server()
        server.submit("read", "obj", 0, 100)
        server.submit("write", "obj", 100, 200)
        sim.run()
        assert server.stats.bytes_read == 100
        assert server.stats.bytes_written == 200
        assert server.stats.total_bytes == 300
        assert server.stats.sub_requests == 2

    def test_reset_stats(self):
        sim, server = make_server()
        server.submit("read", "obj", 0, 100)
        sim.run()
        server.reset_stats()
        assert server.busy_time == 0.0
        assert server.stats.sub_requests == 0


class TestStreamTracking:
    def test_sequential_continuation_detected(self):
        hdd = HDD(seek_time=5e-3, sequential_startup=1e-3)
        sim, server = make_server(device=hdd)
        server.submit("read", "obj", 0, 4096)
        server.submit("read", "obj", 4096, 4096)
        sim.run()
        assert server.stats.seeks == 1
        assert server.stats.sequential_hits == 1

    def test_multiple_streams_tracked(self):
        sim, server = make_server(stream_capacity=4)
        for obj in ("a", "b", "c"):
            server.submit("read", obj, 0, 4096)
        for obj in ("a", "b", "c"):
            server.submit("read", obj, 4096, 4096)
        sim.run()
        assert server.stats.sequential_hits == 3

    def test_stream_eviction_when_over_capacity(self):
        sim, server = make_server(stream_capacity=2)
        for obj in ("a", "b", "c"):  # c's insert evicts a's tail
            server.submit("read", obj, 0, 4096)
        server.submit("read", "a", 4096, 4096)  # tail evicted: a seek
        sim.run()
        assert server.stats.sequential_hits == 0

    def test_zero_capacity_disables_tracking(self):
        sim, server = make_server(stream_capacity=0)
        server.submit("read", "obj", 0, 4096)
        server.submit("read", "obj", 4096, 4096)
        sim.run()
        assert server.stats.sequential_hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_server(stream_capacity=-1)

"""Tests for the LRU hot-entry cache."""

import pytest

from repro.kvstore import LRUCache


class TestLRUCache:
    def test_put_get(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.get("a") == 1

    def test_miss_returns_default(self):
        c = LRUCache(2)
        assert c.get("x") is None
        assert c.get("x", 42) == 42

    def test_eviction_order(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)  # evicts a
        assert "a" not in c
        assert "b" in c and "c" in c

    def test_get_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")
        c.put("c", 3)  # evicts b, not a
        assert "a" in c and "b" not in c

    def test_put_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)
        c.put("c", 3)  # evicts b
        assert c.get("a") == 10 and "b" not in c

    def test_hit_rate(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.get("a")
        c.get("miss")
        assert c.hit_rate == pytest.approx(0.5)
        assert c.hits == 1 and c.misses == 1

    def test_hit_rate_no_lookups(self):
        assert LRUCache(1).hit_rate == 0.0

    def test_invalidate(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.invalidate("a") is True
        assert c.invalidate("a") is False

    def test_clear(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.clear()
        assert len(c) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_len(self):
        c = LRUCache(3)
        c.put("a", 1)
        c.put("b", 2)
        assert len(c) == 2

"""Tests for the Berkeley-DB stand-in, including crash recovery."""

import pytest

from repro.exceptions import KVStoreError
from repro.kvstore import HashDB


class TestBasics:
    def test_put_get(self, tmp_path):
        with HashDB(tmp_path / "db") as db:
            db.put(b"key", b"value")
            assert db.get(b"key") == b"value"

    def test_get_default(self, tmp_path):
        with HashDB(tmp_path / "db") as db:
            assert db.get(b"missing") is None
            assert db.get(b"missing", b"d") == b"d"

    def test_mapping_protocol(self, tmp_path):
        with HashDB(tmp_path / "db") as db:
            db[b"a"] = b"1"
            assert b"a" in db
            assert db[b"a"] == b"1"
            assert len(db) == 1
            assert list(db) == [b"a"]

    def test_missing_key_raises(self, tmp_path):
        with HashDB(tmp_path / "db") as db:
            with pytest.raises(KVStoreError):
                db[b"nope"]

    def test_overwrite(self, tmp_path):
        with HashDB(tmp_path / "db") as db:
            db.put(b"k", b"v1")
            db.put(b"k", b"v2")
            assert db[b"k"] == b"v2"
            assert len(db) == 1

    def test_delete(self, tmp_path):
        with HashDB(tmp_path / "db") as db:
            db.put(b"k", b"v")
            assert db.delete(b"k") is True
            assert b"k" not in db
            assert db.delete(b"k") is False

    def test_non_bytes_rejected(self, tmp_path):
        with HashDB(tmp_path / "db") as db:
            with pytest.raises(KVStoreError):
                db.put("str", b"v")  # type: ignore[arg-type]

    def test_use_after_close_rejected(self, tmp_path):
        db = HashDB(tmp_path / "db")
        db.close()
        with pytest.raises(KVStoreError):
            db.put(b"k", b"v")


class TestDurability:
    def test_reload_after_close(self, tmp_path):
        path = tmp_path / "db"
        with HashDB(path) as db:
            db.put(b"a", b"1")
            db.put(b"b", b"2")
            db.delete(b"a")
        with HashDB(path) as db:
            assert b"a" not in db
            assert db[b"b"] == b"2"

    def test_torn_tail_record_is_dropped(self, tmp_path):
        path = tmp_path / "db"
        with HashDB(path) as db:
            db.put(b"good", b"kept")
            db.put(b"tail", b"lost")
        # simulate a crash mid-write of the final record
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with HashDB(path) as db:
            assert db[b"good"] == b"kept"
            assert b"tail" not in db

    def test_corrupt_record_stops_replay(self, tmp_path):
        path = tmp_path / "db"
        with HashDB(path) as db:
            db.put(b"a", b"1")
            db.put(b"b", b"2")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a bit in the last record's value
        path.write_bytes(bytes(data))
        with HashDB(path) as db:
            assert db[b"a"] == b"1"
            assert b"b" not in db

    def test_not_a_db_file(self, tmp_path):
        path = tmp_path / "db"
        path.write_bytes(b"random junk")
        with pytest.raises(KVStoreError):
            HashDB(path)

    def test_compaction_preserves_contents(self, tmp_path):
        path = tmp_path / "db"
        with HashDB(path) as db:
            for i in range(50):
                db.put(b"key%d" % (i % 5), b"v%d" % i)
            size_before = path.stat().st_size
            db.compact()
            size_after = path.stat().st_size
            assert size_after < size_before
            assert len(db) == 5
            assert db[b"key4"] == b"v49"
        with HashDB(path) as db:
            assert len(db) == 5

    def test_writes_after_compaction_survive(self, tmp_path):
        path = tmp_path / "db"
        with HashDB(path) as db:
            db.put(b"a", b"1")
            db.compact()
            db.put(b"b", b"2")
        with HashDB(path) as db:
            assert db[b"a"] == b"1" and db[b"b"] == b"2"


class TestHypothesisRoundTrip:
    def test_random_operation_sequences(self, tmp_path):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        keys = st.binary(min_size=1, max_size=8)
        ops = st.lists(
            st.tuples(st.sampled_from(["put", "del"]), keys, st.binary(max_size=16)),
            max_size=40,
        )

        @given(ops=ops)
        @settings(max_examples=25, deadline=None)
        def run(ops):
            path = tmp_path / "fuzz.db"
            if path.exists():
                path.unlink()
            shadow = {}
            with HashDB(path, sync=False) as db:
                for op, key, value in ops:
                    if op == "put":
                        db.put(key, value)
                        shadow[key] = value
                    else:
                        db.delete(key)
                        shadow.pop(key, None)
            with HashDB(path, sync=False) as db:
                assert dict(db.items()) == shadow

        run()

"""Tests for the DEF/AAL/HARL/MHA scheme builders."""

import pytest

from repro.cluster import ClusterSpec
from repro.exceptions import ConfigurationError, LayoutError
from repro.layouts import check_tiling
from repro.schemes import (
    AALScheme,
    DEFScheme,
    HARLScheme,
    MHAScheme,
    build_view,
    make_scheme,
    scheme_names,
)
from repro.schemes.base import LayoutView
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


@pytest.fixture
def spec():
    return ClusterSpec()


@pytest.fixture
def trace():
    return IORWorkload(
        num_processes=8,
        request_sizes=[32 * KiB, 128 * KiB],
        total_size=8 * MiB,
        seed=1,
    ).trace("write")


class TestRegistry:
    def test_names(self):
        assert scheme_names() == ("DEF", "AAL", "HARL", "MHA")

    def test_make_scheme_case_insensitive(self):
        assert isinstance(make_scheme("def"), DEFScheme)
        assert isinstance(make_scheme("MhA"), MHAScheme)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            make_scheme("XYZ")

    def test_build_view_one_shot(self, spec, trace):
        view = build_view("DEF", spec, trace)
        assert view.map_request(trace.files()[0], 0, 4 * KiB)


class TestDEF:
    def test_fixed_64k_over_all_servers(self, spec, trace):
        view = DEFScheme().build(spec, trace)
        layout = view.layout_for(trace.files()[0])
        assert layout.stripe == 64 * KiB
        assert set(layout.servers) == set(spec.server_ids)

    def test_unseen_file_gets_default(self, spec, trace):
        view = DEFScheme().build(spec, trace)
        frags = view.map_request("brand-new-file", 0, 4 * KiB)
        assert frags

    def test_invalid_stripe(self):
        with pytest.raises(ValueError):
            DEFScheme(stripe=0)


class TestAAL:
    def test_uniform_stripe_all_servers(self, spec, trace):
        scheme = AALScheme()
        view = scheme.build(spec, trace)
        layout = view.layout_for(trace.files()[0])
        assert set(layout.servers) == set(spec.server_ids)
        assert scheme.decisions[trace.files()[0]] == layout.stripe

    def test_stripe_adapts_to_request_sizes(self, spec):
        small = IORWorkload(
            num_processes=4, request_sizes=16 * KiB, total_size=2 * MiB
        ).trace("write")
        large = IORWorkload(
            num_processes=4, request_sizes=512 * KiB, total_size=8 * MiB
        ).trace("write")
        scheme = AALScheme()
        s_small = scheme.stripe_for(spec, small)
        s_large = scheme.stripe_for(spec, large)
        assert s_small <= s_large

    def test_empty_trace_uses_default(self, spec):
        from repro.tracing import Trace

        assert AALScheme().stripe_for(spec, Trace([])) == 64 * KiB


class TestHARL:
    def test_regions_cover_file(self, spec, trace):
        view = HARLScheme().build(spec, trace)
        file = trace.files()[0]
        for record in trace:
            frags = view.map_request(file, record.offset, record.size)
            check_tiling(record.offset, record.size, frags)

    def test_heterogeneous_stripes_chosen(self, spec, trace):
        scheme = HARLScheme()
        scheme.build(spec, trace)
        pairs = set(scheme.decisions.values())
        # at least one region uses a genuinely varied (h != s) pair
        assert any(p.h != p.s for p in pairs)

    def test_region_size_floor(self):
        scheme = HARLScheme(num_regions=16)
        bounds = scheme._region_bounds(1 * MiB, max_request=512 * KiB)
        sizes = [e - s for s, e in bounds[:-1]]
        assert all(size >= 8 * 512 * KiB for size in sizes) or len(bounds) == 1

    def test_invalid_num_regions(self):
        with pytest.raises(ValueError):
            HARLScheme(num_regions=0)


class TestMHA:
    def test_build_returns_redirector(self, spec, trace):
        scheme = MHAScheme(seed=1)
        view = scheme.build(spec, trace)
        assert scheme.plan is not None
        file = trace.files()[0]
        for record in trace:
            frags = view.map_request(file, record.offset, record.size)
            check_tiling(record.offset, record.size, frags)

    def test_two_size_groups_produce_regions(self, spec, trace):
        scheme = MHAScheme(seed=1)
        scheme.build(spec, trace)
        assert scheme.plan.num_regions >= 2

    def test_pipeline_kwargs_forwarded(self, spec, trace):
        scheme = MHAScheme(k=1, seed=0)
        scheme.build(spec, trace)
        assert scheme.plan.groupings[trace.files()[0]].k == 1


class TestLayoutView:
    def test_missing_layout_no_default(self):
        view = LayoutView({})
        with pytest.raises(LayoutError):
            view.map_request("f", 0, 10)

    def test_files(self, spec, trace):
        view = DEFScheme().build(spec, trace)
        assert trace.files()[0] in view.files()

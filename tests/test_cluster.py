"""Tests for the cluster specification."""

import pytest

from repro.cluster import ClusterSpec
from repro.devices import HDD, SSD
from repro.exceptions import ConfigurationError


class TestClusterSpec:
    def test_paper_defaults(self):
        spec = ClusterSpec()
        assert spec.M == 6 and spec.N == 2
        assert spec.num_clients == 8
        assert spec.num_servers == 8

    def test_server_id_convention(self):
        spec = ClusterSpec(num_hservers=3, num_sservers=2)
        assert spec.hserver_ids == (0, 1, 2)
        assert spec.sserver_ids == (3, 4)
        assert spec.server_ids == (0, 1, 2, 3, 4)

    def test_device_for(self):
        spec = ClusterSpec(num_hservers=1, num_sservers=1)
        assert isinstance(spec.device_for(0), HDD)
        assert isinstance(spec.device_for(1), SSD)
        with pytest.raises(ConfigurationError):
            spec.device_for(2)

    def test_is_hserver(self):
        spec = ClusterSpec(num_hservers=2, num_sservers=1)
        assert spec.is_hserver(1)
        assert not spec.is_hserver(2)
        with pytest.raises(ConfigurationError):
            spec.is_hserver(5)

    def test_with_ratio(self):
        spec = ClusterSpec().with_ratio(4, 4)
        assert spec.M == 4 and spec.N == 4
        assert spec.num_clients == 8  # preserved

    def test_no_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(num_hservers=0, num_sservers=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(num_hservers=-1)

    def test_no_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(num_clients=0)

    def test_homogeneous_clusters_allowed(self):
        assert ClusterSpec(num_sservers=0).N == 0
        assert ClusterSpec(num_hservers=0, num_sservers=2).M == 0


class TestCostModelParamsFromCluster:
    def test_table1_values(self):
        from repro.core import CostModelParams

        spec = ClusterSpec()
        p = CostModelParams.from_cluster(spec)
        assert p.M == 6 and p.N == 2
        assert p.t == pytest.approx(spec.link.unit_transfer_time)
        assert p.alpha_h == pytest.approx(spec.hdd.alpha("read"))
        assert p.beta_h == pytest.approx(spec.hdd.beta("read"))
        # SSD startups amortized over internal channels
        assert p.alpha_sr == pytest.approx(spec.ssd.read_startup / spec.ssd.channels)
        assert p.alpha_sw == pytest.approx(spec.ssd.write_startup / spec.ssd.channels)
        assert p.net_latency == spec.link.latency

    def test_op_specific_accessors(self):
        from repro.core import CostModelParams

        p = CostModelParams.from_cluster(ClusterSpec())
        assert p.sserver_alpha("read") == p.alpha_sr
        assert p.sserver_alpha("write") == p.alpha_sw
        assert p.sserver_beta("read") == p.beta_sr
        assert p.sserver_beta("write") == p.beta_sw
        with pytest.raises(ConfigurationError):
            p.sserver_alpha("trim")

    def test_validation(self):
        from repro.core import CostModelParams

        with pytest.raises(ConfigurationError):
            CostModelParams(
                M=0, N=0, t=0, alpha_h=0, beta_h=0,
                alpha_sr=0, beta_sr=0, alpha_sw=0, beta_sw=0,
            )
        with pytest.raises(ConfigurationError):
            CostModelParams(
                M=1, N=1, t=-1, alpha_h=0, beta_h=0,
                alpha_sr=0, beta_sr=0, alpha_sw=0, beta_sw=0,
            )

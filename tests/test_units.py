"""Tests for repro.units."""

import pytest

from repro.units import (
    GiB,
    KiB,
    MiB,
    format_bandwidth,
    format_size,
    format_time,
    parse_size,
)


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_zero(self):
        assert parse_size(0) == 0

    def test_float_rounds(self):
        assert parse_size(4095.6) == 4096

    def test_kb_is_binary(self):
        # the paper's "64KB" stripes mean 65536 bytes
        assert parse_size("64KB") == 64 * KiB

    def test_kib_suffix(self):
        assert parse_size("4 KiB") == 4096

    def test_mb(self):
        assert parse_size("1.5MB") == int(1.5 * MiB)

    def test_gb(self):
        assert parse_size("2GB") == 2 * GiB

    def test_bare_number_string(self):
        assert parse_size("512") == 512

    def test_bytes_suffix(self):
        assert parse_size("100B") == 100

    def test_case_insensitive(self):
        assert parse_size("64kb") == 64 * KiB

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            parse_size(True)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("lots of bytes")

    def test_none_rejected(self):
        with pytest.raises(TypeError):
            parse_size(None)


class TestFormatters:
    def test_format_size_exact_unit(self):
        assert format_size(64 * KiB) == "64KiB"

    def test_format_size_fractional(self):
        assert format_size(1536) == "1.50KiB"

    def test_format_size_bytes(self):
        assert format_size(123) == "123B"

    def test_format_size_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-1)

    def test_format_bandwidth(self):
        assert format_bandwidth(2 * MiB) == "2.00 MiB/s"

    def test_format_time_seconds(self):
        assert format_time(1.5) == "1.500s"

    def test_format_time_millis(self):
        assert format_time(0.0025) == "2.500ms"

    def test_format_time_micros(self):
        assert format_time(25e-6) == "25.0us"

    def test_format_time_negative_rejected(self):
        with pytest.raises(ValueError):
            format_time(-0.1)

    def test_roundtrip(self):
        for n in (0, 1, 512, 4096, 64 * KiB, 3 * MiB, GiB):
            assert parse_size(format_size(n)) == n

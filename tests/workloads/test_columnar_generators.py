"""Bit-identity of the columnar-native workload generators.

Every ``Workload.columnar`` override must emit exactly the trace the
record path emits — same offsets, sizes, ranks, phases-as-timestamps,
op codes, files and pids — so the harness figure path can feed
``ColumnarTrace`` straight into ``compare_schemes`` without changing a
single digest.  ``ColumnarTrace.__eq__`` compares semantically
(interning-independent), which is precisely the contract asserted here.
"""

import pytest

from repro.tracing.columnar import ColumnarTrace, as_columnar_trace
from repro.units import KiB, MiB
from repro.workloads import (
    CheckpointWorkload,
    IORMixedProcsWorkload,
    IORWorkload,
    LUWorkload,
)


def assert_identical(workload, *trace_args):
    native = workload.columnar(*trace_args)
    reference = as_columnar_trace(workload.trace(*trace_args))
    assert isinstance(native, ColumnarTrace)
    assert native == reference
    # field-level check too, so a future __eq__ loosening can't mask drift
    for got, want in zip(native, reference):
        assert got == want


class TestIORColumnar:
    @pytest.mark.parametrize("op", ["read", "write"])
    @pytest.mark.parametrize("randomize", [True, False])
    def test_mixed_sizes(self, op, randomize):
        assert_identical(
            IORWorkload(
                num_processes=7,
                request_sizes=[4 * KiB, 64 * KiB],
                total_size=1 * MiB,
                randomize_offsets=randomize,
                seed=3,
            ),
            op,
        )

    def test_uniform(self):
        assert_identical(
            IORWorkload(
                num_processes=4, request_sizes=8 * KiB, total_size=512 * KiB
            ),
            "write",
        )

    def test_shuffle_respects_seed(self):
        a = IORWorkload(total_size=1 * MiB, seed=1).columnar("write")
        b = IORWorkload(total_size=1 * MiB, seed=1).columnar("write")
        c = IORWorkload(total_size=1 * MiB, seed=2).columnar("write")
        assert a == b
        assert a != c


class TestIORMixedProcsColumnar:
    @pytest.mark.parametrize("op", ["read", "write"])
    def test_two_groups(self, op):
        assert_identical(
            IORMixedProcsWorkload(
                process_groups=(3, 5),
                request_size=16 * KiB,
                bytes_per_group=512 * KiB,
            ),
            op,
        )

    def test_single_group(self):
        assert_identical(
            IORMixedProcsWorkload(
                process_groups=(4,),
                request_size=64 * KiB,
                bytes_per_group=1 * MiB,
            ),
            "write",
        )


class TestCheckpointColumnar:
    @pytest.mark.parametrize("op", [None, "read", "write"])
    @pytest.mark.parametrize("restart", [True, False])
    def test_all_op_filters(self, op, restart):
        workload = CheckpointWorkload(
            num_processes=3, checkpoints=4, restart=restart
        )
        if op is None:
            assert_identical(workload)
        else:
            assert_identical(workload, op)

    def test_read_filter_without_restart_is_empty(self):
        trace = CheckpointWorkload(restart=False).columnar("read")
        assert len(trace) == 0
        assert trace == as_columnar_trace(
            CheckpointWorkload(restart=False).trace("read")
        )


class TestFallbackColumnar:
    def test_base_fallback_round_trips(self):
        # LUWorkload has no native override: the Workload.columnar
        # fallback must still hand back the converted record trace.
        assert_identical(LUWorkload(num_processes=4, slabs=6))

"""Tests for the checkpoint/restart workload."""

import pytest

from repro.exceptions import ConfigurationError
from repro.units import KiB, MiB
from repro.workloads import CheckpointWorkload


class TestCheckpointWorkload:
    def test_write_then_restart_read(self):
        w = CheckpointWorkload(num_processes=2, checkpoints=3)
        trace = w.trace()
        ops = [r.op for r in trace.sorted_by_time()]
        # all writes first, then the restart reads
        first_read = ops.index("read")
        assert all(op == "write" for op in ops[:first_read])
        assert all(op == "read" for op in ops[first_read:])

    def test_restart_reads_final_checkpoint(self):
        w = CheckpointWorkload(num_processes=2, checkpoints=4, restart=True)
        reads = [r for r in w.trace() if r.op == "read"]
        assert len(reads) == 2 * 2  # header + payload per rank
        last_epoch_base = w._offset(0, 3)
        assert min(r.offset for r in reads if r.rank == 0) == last_epoch_base

    def test_no_restart(self):
        w = CheckpointWorkload(num_processes=2, checkpoints=2, restart=False)
        assert all(r.op == "write" for r in w.trace())

    def test_heterogeneous_sizes(self):
        w = CheckpointWorkload(header_size=512, payload_size=1 * MiB)
        sizes = {r.size for r in w.trace("write")}
        assert sizes == {512, 1 * MiB}

    def test_rank_areas_disjoint(self):
        w = CheckpointWorkload(num_processes=3, checkpoints=2)
        trace = w.trace("write")
        for rank in range(3):
            mine = [r for r in trace if r.rank == rank]
            lo = min(r.offset for r in mine)
            hi = max(r.end for r in mine)
            assert lo >= rank * w.area_size
            assert hi <= (rank + 1) * w.area_size

    def test_op_filter(self):
        w = CheckpointWorkload(num_processes=2, checkpoints=2)
        assert all(r.op == "write" for r in w.trace("write"))
        assert all(r.op == "read" for r in w.trace("read"))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CheckpointWorkload(num_processes=0)
        with pytest.raises(ConfigurationError):
            CheckpointWorkload(header_size=0)

    def test_mha_exploits_the_pattern(self):
        """Integration: the header/payload split is MHA's bread and butter."""
        from repro.cluster import ClusterSpec
        from repro.harness import compare_schemes

        spec = ClusterSpec()
        trace = CheckpointWorkload(
            num_processes=4, checkpoints=6, payload_size=256 * KiB
        ).trace()
        cmp = compare_schemes(spec, trace, ("DEF", "MHA"))
        assert cmp.bandwidth("MHA") > cmp.bandwidth("DEF")

"""Tests for the workload generators."""

import pytest

from repro.exceptions import ConfigurationError
from repro.tracing import trace_statistics
from repro.units import KiB, MiB
from repro.workloads import (
    BTIOWorkload,
    CholeskyWorkload,
    HPIOWorkload,
    IORMixedProcsWorkload,
    IORWorkload,
    LANLWorkload,
    LUWorkload,
    LOOP_PATTERN,
    MAX_READ,
    MIN_READ,
    READ_BOUNDS,
    WRITE_BOUNDS,
    WRITE_SIZE,
)


class TestIOR:
    def test_uniform_sizes(self):
        trace = IORWorkload(
            num_processes=4, request_sizes=64 * KiB, total_size=1 * MiB
        ).trace("write")
        stats = trace_statistics(trace)
        assert stats.distinct_sizes == 1
        assert stats.total_bytes == 1 * MiB

    def test_mixed_sizes_present(self):
        trace = IORWorkload(
            num_processes=4,
            request_sizes=[64 * KiB, 128 * KiB],
            total_size=4 * MiB,
        ).trace("write")
        sizes = {r.size for r in trace}
        assert sizes == {64 * KiB, 128 * KiB}

    def test_offsets_disjoint(self):
        trace = IORWorkload(
            num_processes=4, request_sizes=[16 * KiB, 64 * KiB], total_size=2 * MiB
        ).trace("write")
        spans = sorted((r.offset, r.end) for r in trace)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_shuffle_determinism(self):
        w = IORWorkload(num_processes=2, total_size=1 * MiB, seed=3)
        assert w.trace("read") == w.trace("read")

    def test_label(self):
        w = IORWorkload(request_sizes=[128 * KiB, 256 * KiB])
        assert w.label() == "128+256"

    def test_op_propagates(self):
        trace = IORWorkload(num_processes=2, total_size=1 * MiB).trace("read")
        assert all(r.op == "read" for r in trace)

    def test_too_small_total_rejected(self):
        with pytest.raises(ConfigurationError):
            IORWorkload(request_sizes=1 * MiB, total_size=1 * KiB).trace()

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            IORWorkload(num_processes=0)
        with pytest.raises(ConfigurationError):
            IORWorkload(request_sizes=[])


class TestIORMixedProcs:
    def test_rank_groups(self):
        trace = IORMixedProcsWorkload(
            process_groups=(2, 4), request_size=64 * KiB, bytes_per_group=1 * MiB
        ).trace("write")
        ranks = trace.ranks()
        assert ranks == tuple(range(6))

    def test_groups_access_disjoint_parts(self):
        w = IORMixedProcsWorkload(
            process_groups=(2, 4), request_size=64 * KiB, bytes_per_group=1 * MiB
        )
        trace = w.trace("write")
        group_a = [r for r in trace if r.rank < 2]
        group_b = [r for r in trace if r.rank >= 2]
        assert max(r.end for r in group_a) <= min(r.offset for r in group_b)

    def test_label(self):
        assert IORMixedProcsWorkload(process_groups=(8, 32)).label() == "8+32"


class TestHPIO:
    def test_paper_parameters(self):
        w = HPIOWorkload(num_processes=16, region_count=4096)
        assert w.groups == 256

    def test_region_sizes_cycle(self):
        trace = HPIOWorkload(
            num_processes=2,
            region_count=6,
            region_sizes=(16 * KiB, 32 * KiB, 64 * KiB),
        ).trace("write")
        sizes = [r.size for r in trace]
        assert sizes == [16 * KiB] * 2 + [32 * KiB] * 2 + [64 * KiB] * 2

    def test_spacing(self):
        trace = HPIOWorkload(
            num_processes=1, region_count=2, region_sizes=4 * KiB, region_spacing=1024
        ).trace("write")
        assert trace[1].offset - trace[0].end == 1024

    def test_count_must_divide(self):
        with pytest.raises(ConfigurationError):
            HPIOWorkload(num_processes=3, region_count=10)


class TestBTIO:
    def test_square_process_count_required(self):
        with pytest.raises(ConfigurationError):
            BTIOWorkload(num_processes=10)

    def test_class_sizes_interleave(self):
        w = BTIOWorkload(num_processes=4, steps=4, scale=1 / 16)
        trace = w.trace("write")
        sizes = [trace[i].size for i in range(0, len(trace), 4)]
        assert sizes[0] == w.request_size("B")
        assert sizes[1] == w.request_size("C")
        assert sizes[0] != sizes[1]

    def test_class_c_larger_than_b(self):
        w = BTIOWorkload(num_processes=9)
        assert w.request_size("C") > w.request_size("B")

    def test_unknown_class(self):
        with pytest.raises(ConfigurationError):
            BTIOWorkload(num_processes=4, classes=("Z",))


class TestLANL:
    def test_loop_pattern_is_the_papers(self):
        assert LOOP_PATTERN == (16, 128 * KiB - 16, 128 * KiB)

    def test_request_sequence_regenerates_fig3(self):
        w = LANLWorkload(loops=3)
        assert w.request_sequence() == list(LOOP_PATTERN) * 3

    def test_per_process_areas_disjoint(self):
        w = LANLWorkload(num_processes=2, loops=2)
        trace = w.trace("write")
        a = [r for r in trace if r.rank == 0]
        b = [r for r in trace if r.rank == 1]
        assert max(r.end for r in a) <= min(r.offset for r in b)

    def test_loop_layout_contiguous_per_process(self):
        w = LANLWorkload(num_processes=1, loops=2)
        spans = sorted((r.offset, r.end) for r in w.trace("write"))
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 == s2  # back-to-back within the area


class TestLU:
    def test_paper_request_sizes(self):
        w = LUWorkload(num_processes=2, slabs=8)
        trace = w.trace()
        writes = {r.size for r in trace if r.op == "write"}
        reads = sorted({r.size for r in trace if r.op == "read"})
        assert writes == {WRITE_SIZE}
        assert reads[0] == MIN_READ
        assert reads[-1] == MAX_READ

    def test_one_file_per_process(self):
        w = LUWorkload(num_processes=4, slabs=2)
        assert len(w.trace().files()) == 4

    def test_op_filter(self):
        w = LUWorkload(num_processes=2, slabs=2)
        assert all(r.op == "read" for r in w.trace("read"))
        assert all(r.op == "write" for r in w.trace("write"))


class TestCholesky:
    def test_paper_bounds_present(self):
        w = CholeskyWorkload(num_processes=2, panels=6)
        trace = w.trace()
        reads = sorted(r.size for r in trace if r.op == "read")
        writes = sorted(r.size for r in trace if r.op == "write")
        assert reads[0] == READ_BOUNDS[0] and reads[-1] == READ_BOUNDS[1]
        assert writes[0] == WRITE_BOUNDS[0] and writes[-1] == WRITE_BOUNDS[1]

    def test_sizes_within_bounds(self):
        w = CholeskyWorkload(num_processes=2, panels=20)
        for r in w.trace():
            lo, hi = READ_BOUNDS if r.op == "read" else WRITE_BOUNDS
            assert lo <= r.size <= hi

    def test_seeded_determinism(self):
        a = CholeskyWorkload(seed=5).trace()
        b = CholeskyWorkload(seed=5).trace()
        assert a == b

    def test_skewed_distribution(self):
        """Log-uniform sizes: the median is far below the mean."""
        import numpy as np

        trace = CholeskyWorkload(num_processes=1, panels=200).trace("read")
        sizes = np.array([r.size for r in trace])
        assert np.median(sizes) < sizes.mean() / 2

"""Open-arrival rewrite: seeded Poisson pacing over closed generators."""

import pytest

from repro.exceptions import TraceError
from repro.units import KiB, MiB
from repro.workloads import IORWorkload, OpenArrivalWorkload, poisson_arrival_times


def inner():
    return IORWorkload(
        num_processes=4, request_sizes=[64 * KiB], total_size=1 * MiB
    )


class TestPoissonArrivalTimes:
    def test_strictly_increasing_from_start(self):
        times = poisson_arrival_times(50, rate=100.0, start=3.0)
        assert len(times) == 50
        assert all(t >= 3.0 for t in times)
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_deterministic_per_stream(self):
        a = poisson_arrival_times(20, rate=10.0, stream=7)
        b = poisson_arrival_times(20, rate=10.0, stream=7)
        c = poisson_arrival_times(20, rate=10.0, stream=8)
        assert a == b
        assert a != c

    def test_jitter_offsets_start(self):
        flat = poisson_arrival_times(10, rate=10.0, jitter=0.0)
        jittered = poisson_arrival_times(10, rate=10.0, jitter=100.0)
        assert jittered != flat

    def test_mean_gap_tracks_rate(self):
        times = poisson_arrival_times(4000, rate=50.0)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1.0 / 50.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(TraceError):
            poisson_arrival_times(5, rate=0.0)
        with pytest.raises(TraceError):
            poisson_arrival_times(5, rate=1.0, jitter=-1.0)


class TestOpenArrivalWorkload:
    def test_rewrites_timestamps_preserving_order_and_payload(self):
        base = inner().trace("write").sorted_by_time()
        wrapped = OpenArrivalWorkload(inner(), rate=100.0).trace("write")
        assert len(wrapped) == len(base)
        ts = [r.timestamp for r in wrapped]
        assert all(a < b for a, b in zip(ts, ts[1:]))
        for original, rewritten in zip(base, wrapped):
            assert rewritten.offset == original.offset
            assert rewritten.size == original.size
            assert rewritten.rank == original.rank
            assert rewritten.file == original.file
            assert rewritten.op == original.op

    def test_streams_are_independent_and_reproducible(self):
        w3 = OpenArrivalWorkload(inner(), rate=100.0, stream=3)
        w4 = OpenArrivalWorkload(inner(), rate=100.0, stream=4)
        assert w3.trace("write") == w3.trace("write")
        assert w3.trace("write") != w4.trace("write")

    def test_name_and_validation(self):
        wrapped = OpenArrivalWorkload(inner(), rate=5.0)
        assert wrapped.name == "open(IOR)"
        with pytest.raises(TraceError):
            OpenArrivalWorkload(inner(), rate=-1.0)
        with pytest.raises(TraceError):
            OpenArrivalWorkload(inner(), rate=1.0, jitter=-0.5)

"""Smoke tests for every figure entry point (tiny configurations).

The benchmarks run the real (scaled) figures; these tests only check
that each entry point produces a well-formed result quickly, so a
refactor can't silently break the harness.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.harness import (
    ALL_FIGURES,
    fig07_ior_mixed_sizes,
    fig08_server_io_time,
    fig09_ior_mixed_procs,
    fig10_server_ratios,
    fig11_hpio,
    fig12a_btio,
    fig12b_lanl,
    fig13a_lu,
    fig13b_cholesky,
    fig14_redirection_overhead,
)


@pytest.fixture(scope="module")
def spec():
    return ClusterSpec()


SCHEMES = ("DEF", "MHA")


class TestFigureSmoke:
    def test_fig07(self, spec):
        r = fig07_ior_mixed_sizes(
            spec, size_mixes=((16,), (64, 128)), num_processes=4,
            total_mib=2, schemes=SCHEMES,
        )
        assert len(r.rows) == 4  # 2 mixes x read/write
        assert set(r.series) == set(SCHEMES)

    def test_fig08(self, spec):
        r = fig08_server_io_time(
            spec, num_processes=4, total_mib=2, schemes=SCHEMES
        )
        assert len(r.rows) == spec.num_servers
        # normalization anchor: some MHA row sits at 1.0
        assert min(r.value(row, "MHA") for row in r.rows) == pytest.approx(1.0)

    def test_fig09(self, spec):
        r = fig09_ior_mixed_procs(
            spec, proc_mixes=((2,), (2, 4)), group_mib=1, schemes=SCHEMES
        )
        assert len(r.rows) == 4

    def test_fig10(self, spec):
        r = fig10_server_ratios(
            spec, ratios=((6, 2), (4, 4)), num_processes=4,
            total_mib=2, schemes=SCHEMES,
        )
        assert len(r.rows) == 4

    def test_fig11(self, spec):
        r = fig11_hpio(
            spec, proc_counts=(4,), region_count=64, schemes=SCHEMES
        )
        assert "4 procs" in r.rows

    def test_fig12a(self, spec):
        r = fig12a_btio(spec, proc_counts=(4,), steps=4, schemes=SCHEMES)
        assert "4 procs" in r.rows

    def test_fig12b(self, spec):
        r = fig12b_lanl(spec, num_processes=2, loops=4, schemes=SCHEMES)
        assert "bandwidth" in r.rows

    def test_fig13a(self, spec):
        r = fig13a_lu(spec, num_processes=2, slabs=4, schemes=SCHEMES)
        assert r.value("bandwidth", "MHA") > 0

    def test_fig13b(self, spec):
        r = fig13b_cholesky(spec, num_processes=2, panels=4, schemes=SCHEMES)
        assert r.value("bandwidth", "MHA") > 0

    def test_fig14(self, spec):
        r = fig14_redirection_overhead(
            spec, proc_counts=(2,), total_mib=1, repeats=1
        )
        assert r.value("2 procs", "redirected") > 0

    def test_registry_complete(self):
        assert set(ALL_FIGURES) == {
            "fig07", "fig08", "fig09", "fig10", "fig11",
            "fig12a", "fig12b", "fig13a", "fig13b", "fig14",
        }


class TestCLI:
    def test_cli_runs_one_figure(self, capsys):
        from repro.harness.cli import main

        # fig12b is the fastest full figure
        assert main(["fig12b", "--schemes", "DEF,MHA"]) == 0
        out = capsys.readouterr().out
        assert "Fig 12b" in out

    def test_cli_bars_flag(self, capsys):
        from repro.harness.cli import main

        assert main(["fig12b", "--schemes", "DEF,MHA", "--bars"]) == 0
        out = capsys.readouterr().out
        assert "#" in out

    def test_cli_rejects_unknown_figure(self):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["fig99"])

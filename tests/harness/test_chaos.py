"""Chaos harness tests: determinism, report shape, CLI, acceptance."""

import pytest

from repro.cluster import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.harness.chaos import (
    CHAOS_MODEL_NAMES,
    chaos_experiment,
    chaos_fault_plan,
    chaos_trace,
)
from repro.harness.cli import main
from repro.harness.report import quantile_label
from repro.units import KiB


class TestChaosFaultPlan:
    def test_zero_intensity_is_healthy(self):
        plan = chaos_fault_plan(ClusterSpec(), 0.0)
        assert len(plan) == 0

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            chaos_fault_plan(ClusterSpec(), -0.5)

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos model"):
            chaos_fault_plan(ClusterSpec(), 1.0, models=("gremlins",))

    def test_all_models_compile(self):
        spec = ClusterSpec()
        plan = chaos_fault_plan(spec, 1.0, models=CHAOS_MODEL_NAMES)
        states = plan.compile(spec.num_servers)
        assert states  # at least one degraded server

    def test_write_cliff_lands_on_ssd(self):
        spec = ClusterSpec()
        plan = chaos_fault_plan(spec, 1.0, models=("write_cliff",))
        assert plan.faults[0].server in spec.sserver_ids

    def test_intensity_scales_severity(self):
        mild = chaos_fault_plan(ClusterSpec(), 0.25, models=("slowdown",))
        harsh = chaos_fault_plan(ClusterSpec(), 1.0, models=("slowdown",))
        assert harsh.faults[0].factor > mild.faults[0].factor


class TestChaosTrace:
    def test_write_then_reread(self):
        trace = chaos_trace(processes=2, request_size=8 * KiB, phases=4)
        records = trace.sorted_by_time()
        ops = [r.op for r in records]
        assert ops == ["write"] * 2 + ["read"] * 2 + ["write"] * 2 + ["read"] * 2
        # phase 1 re-reads exactly the offsets phase 0 wrote
        assert {r.offset for r in records[:2]} == {r.offset for r in records[2:4]}

    def test_bad_phase_count_rejected(self):
        with pytest.raises(ConfigurationError):
            chaos_trace(phases=0)


class TestChaosExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return chaos_experiment(
            trace=chaos_trace(processes=4, phases=6),
            intensities=(0.0, 1.0),
            schemes=("DEF", "SAW"),
        )

    def test_report_shape(self, report):
        names = [figure.figure for figure in report.figures]
        assert names[0] == "chaos-bw"
        for q in (50.0, 95.0, 99.0, 99.9):
            assert f"chaos-{quantile_label(q)}" in names
        assert names[-1] == "chaos-p99-by-server"
        rows = report.figures[0].rows
        assert set(rows) == {"intensity=0", "intensity=1"}
        assert set(report.figures[0].series) == {"DEF", "SAW"}
        assert len(report.figures[-1].rows) == ClusterSpec().num_servers

    def test_digest_is_deterministic(self, report):
        again = chaos_experiment(
            trace=chaos_trace(processes=4, phases=6),
            intensities=(0.0, 1.0),
            schemes=("DEF", "SAW"),
        )
        assert again.digest() == report.digest()
        assert len(report.digest()) == 64

    def test_faults_degrade_bandwidth(self, report):
        bw = report.figures[0]
        assert bw.value("intensity=1", "DEF") < bw.value("intensity=0", "DEF")

    def test_empty_intensities_rejected(self):
        with pytest.raises(ConfigurationError):
            chaos_experiment(intensities=())


class TestAcceptance:
    """The issue's headline claims, pinned as tests."""

    @pytest.fixture(scope="class")
    def report(self):
        return chaos_experiment(
            trace=chaos_trace(processes=8, phases=40),
            intensities=(1.0,),
            schemes=("DEF", "MHA", "SAW", "MHA+SAW"),
        )

    def test_straggler_aware_beats_def_on_p99(self, report):
        p99 = next(f for f in report.figures if f.figure == "chaos-p99")
        assert p99.value("intensity=1", "SAW") < p99.value("intensity=1", "DEF")

    def test_composition_at_least_as_good_on_bandwidth(self, report):
        bw = report.figures[0]
        composed = bw.value("intensity=1", "MHA+SAW")
        assert composed >= bw.value("intensity=1", "MHA")
        assert composed >= bw.value("intensity=1", "SAW")


class TestChaosCLI:
    def test_digest_mode_prints_only_hash(self, capsys):
        argv = [
            "chaos",
            "--intensities", "0,1",
            "--schemes", "DEF,SAW",
            "--models", "slowdown,scrub",
            "--digest",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out.strip()
        assert len(out) == 64
        int(out, 16)  # valid hex

    def test_full_report_mentions_digest(self, capsys):
        argv = ["chaos", "--intensities", "1", "--schemes", "DEF"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "chaos-bw" in out
        assert "digest:" in out

"""Tests for figure-result CSV export/import."""

import pytest

from repro.harness.report import FigureResult, from_csv, to_csv


class TestCSVRoundTrip:
    def _result(self):
        r = FigureResult(figure="Fig X", title="demo")
        r.add("row a", "DEF", 120.25)
        r.add("row a", "MHA", 180.756250001)
        r.add("row b", "DEF", 90.0)
        r.add("row b", "MHA", 170.5)
        return r

    def test_roundtrip_exact(self):
        original = self._result()
        restored = from_csv(to_csv(original))
        assert restored.series == original.series
        assert set(restored.rows) == set(original.rows)
        for row in original.rows:
            for series in original.series:
                assert restored.value(row, series) == original.value(row, series)

    def test_missing_cells_survive(self):
        r = FigureResult(figure="F", title="t")
        r.add("a", "X", 1.0)
        r.add("b", "Y", 2.0)  # a/Y and b/X missing
        restored = from_csv(to_csv(r))
        assert restored.rows["a"] == {"X": 1.0}
        assert restored.rows["b"] == {"Y": 2.0}

    def test_header_validation(self):
        with pytest.raises(ValueError):
            from_csv("nope,DEF\nx,1\n")

    def test_csv_is_plottable_shape(self):
        text = to_csv(self._result())
        lines = text.strip().splitlines()
        assert lines[0] == "label,DEF,MHA"
        assert len(lines) == 3

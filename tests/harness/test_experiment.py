"""Tests for the experiment harness and the paper-shape integration checks.

The integration tests here are the heart of the reproduction: on
miniature versions of the paper's workloads, the scheme ordering the
paper reports must hold.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.harness import compare_schemes, run_scheme
from repro.harness.report import FigureResult, format_table
from repro.units import KiB, MiB
from repro.workloads import HPIOWorkload, IORWorkload, LANLWorkload


@pytest.fixture(scope="module")
def spec():
    return ClusterSpec()


@pytest.fixture(scope="module")
def mixed_trace():
    return IORWorkload(
        num_processes=16,
        request_sizes=[64 * KiB, 256 * KiB],
        total_size=16 * MiB,
        seed=2,
    ).trace("write")


class TestExperiment:
    def test_run_scheme(self, spec, mixed_trace):
        run = run_scheme("DEF", spec, mixed_trace)
        assert run.scheme == "DEF"
        assert run.metrics.bandwidth > 0
        assert run.bandwidth_mib > 0

    def test_compare_schemes_pairs_results(self, spec, mixed_trace):
        cmp = compare_schemes(spec, mixed_trace, ("DEF", "MHA"), label="test")
        assert set(cmp.runs) == {"DEF", "MHA"}
        assert cmp.label == "test"
        assert cmp.bandwidth("MHA") > 0

    def test_improvement_metric(self, spec, mixed_trace):
        cmp = compare_schemes(spec, mixed_trace, ("DEF", "MHA"))
        imp = cmp.improvement("MHA", over="DEF")
        assert imp == pytest.approx(
            cmp.bandwidth("MHA") / cmp.bandwidth("DEF") - 1.0
        )

    def test_ranking_sorted(self, spec, mixed_trace):
        cmp = compare_schemes(spec, mixed_trace)
        ranking = cmp.ranking()
        bws = [cmp.bandwidth(s) for s in ranking]
        assert bws == sorted(bws, reverse=True)

    def test_replay_different_trace(self, spec, mixed_trace):
        other = IORWorkload(
            num_processes=16, request_sizes=128 * KiB, total_size=8 * MiB
        ).trace("read")
        run = run_scheme("MHA", spec, mixed_trace, other)
        assert run.metrics.total_bytes == other.total_bytes()


class TestPaperShape:
    """The paper's qualitative results on miniature workloads."""

    def test_mha_beats_def_on_mixed_ior(self, spec, mixed_trace):
        cmp = compare_schemes(spec, mixed_trace, ("DEF", "MHA"))
        assert cmp.improvement("MHA", over="DEF") > 0.10

    def test_mha_at_least_harl_on_mixed_ior(self, spec, mixed_trace):
        cmp = compare_schemes(spec, mixed_trace, ("HARL", "MHA"))
        assert cmp.bandwidth("MHA") >= 0.97 * cmp.bandwidth("HARL")

    def test_mha_degenerates_to_harl_on_uniform(self, spec):
        uniform = IORWorkload(
            num_processes=16, request_sizes=64 * KiB, total_size=8 * MiB
        ).trace("write")
        cmp = compare_schemes(spec, uniform, ("HARL", "MHA"))
        # §V-B: "MHA is comparable to HARL ... for uniform access patterns"
        assert cmp.bandwidth("MHA") == pytest.approx(
            cmp.bandwidth("HARL"), rel=0.10
        )

    def test_heterogeneity_aware_beat_def_on_hpio(self, spec):
        trace = HPIOWorkload(num_processes=8, region_count=256).trace("write")
        cmp = compare_schemes(spec, trace, ("DEF", "HARL", "MHA"))
        assert cmp.bandwidth("MHA") > cmp.bandwidth("DEF")
        assert cmp.bandwidth("HARL") > cmp.bandwidth("DEF")

    def test_mha_tops_lanl(self, spec):
        trace = LANLWorkload(num_processes=8, loops=24).trace("write")
        cmp = compare_schemes(spec, trace)
        best = cmp.bandwidth(cmp.ranking()[0])
        # MHA is (possibly jointly) the best scheme and clearly beats DEF
        assert cmp.bandwidth("MHA") >= 0.999 * best
        assert cmp.improvement("MHA", over="DEF") > 0.5

    def test_mha_relieves_the_bottleneck_server(self, spec, mixed_trace):
        cmp = compare_schemes(spec, mixed_trace, ("DEF", "MHA"))
        # Fig. 8's point: under DEF the slowest (HDD) servers carry far
        # more I/O time than necessary; MHA's layout reduces the
        # busiest server's I/O time, which is what bounds the makespan
        assert max(cmp.runs["MHA"].metrics.per_server_busy) < max(
            cmp.runs["DEF"].metrics.per_server_busy
        )


class TestReport:
    def test_figure_result_table(self):
        r = FigureResult(figure="Fig X", title="demo")
        r.add("row1", "DEF", 100.0)
        r.add("row1", "MHA", 150.0)
        r.note("a note")
        text = format_table(r)
        assert "Fig X" in text and "row1" in text and "150.00" in text
        assert "a note" in text
        assert r.improvement("row1", "MHA", over="DEF") == pytest.approx(0.5)

    def test_improvement_zero_base(self):
        r = FigureResult(figure="F", title="t")
        r.add("r", "A", 0.0)
        r.add("r", "B", 1.0)
        assert r.improvement("r", "B", over="A") == 0.0

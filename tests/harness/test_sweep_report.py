"""Tests for the sweep utility, bar rendering and migration estimate."""


from repro.cluster import ClusterSpec
from repro.core import MHAPipeline, estimate_migration_time
from repro.harness import SweepPoint, format_bars, sweep
from repro.harness.report import FigureResult
from repro.units import KiB, MiB
from repro.workloads import IORWorkload


class TestSweep:
    def test_sweep_over_request_sizes(self):
        spec = ClusterSpec()
        points = [
            SweepPoint(
                f"{k}KiB",
                spec,
                IORWorkload(
                    num_processes=4,
                    request_sizes=k * KiB,
                    total_size=2 * MiB,
                ).trace("write"),
            )
            for k in (16, 128)
        ]
        result = sweep(points, schemes=("DEF", "MHA"), title="size sweep")
        assert set(result.rows) == {"16KiB", "128KiB"}
        assert set(result.series) == {"DEF", "MHA"}
        assert all(v > 0 for row in result.rows.values() for v in row.values())

    def test_sweep_over_cluster_shapes(self):
        trace = IORWorkload(
            num_processes=4, request_sizes=64 * KiB, total_size=2 * MiB
        ).trace("write")
        points = [
            SweepPoint(f"{m}h:{n}s", ClusterSpec(num_hservers=m, num_sservers=n), trace)
            for m, n in ((6, 2), (4, 4))
        ]
        result = sweep(points, schemes=("MHA",))
        assert len(result.rows) == 2


class TestFormatBars:
    def test_bars_scale_to_peak(self):
        r = FigureResult(figure="F", title="t")
        r.add("a", "X", 100.0)
        r.add("a", "Y", 50.0)
        text = format_bars(r, width=10)
        lines = [l for l in text.splitlines() if "|" in l]
        x_bar = lines[0].split("|")[1]
        y_bar = lines[1].split("|")[1]
        assert x_bar.count("#") == 10
        assert y_bar.count("#") == 5

    def test_bars_empty_result(self):
        r = FigureResult(figure="F", title="t")
        assert "F" in format_bars(r)

    def test_notes_included(self):
        r = FigureResult(figure="F", title="t")
        r.add("a", "X", 1.0)
        r.note("hello")
        assert "hello" in format_bars(r)


class TestMigrationEstimate:
    def test_zero_for_empty_plan(self):
        spec = ClusterSpec()
        from repro.core import DRT

        assert estimate_migration_time(spec, DRT()) == 0.0

    def test_scales_with_volume(self):
        spec = ClusterSpec()
        small = IORWorkload(
            num_processes=4, request_sizes=64 * KiB, total_size=1 * MiB
        ).trace("write")
        large = IORWorkload(
            num_processes=4, request_sizes=64 * KiB, total_size=4 * MiB
        ).trace("write")
        t_small = estimate_migration_time(
            spec, MHAPipeline(spec, seed=0).plan(small).drt
        )
        t_large = estimate_migration_time(
            spec, MHAPipeline(spec, seed=0).plan(large).drt
        )
        assert t_large > 2 * t_small

    def test_one_off_cost_is_modest(self):
        """The paper's premise: off-line migration once is acceptable.
        The one-off sweep should be within a small multiple of one
        optimized run of the same volume."""
        spec = ClusterSpec()
        trace = IORWorkload(
            num_processes=8, request_sizes=128 * KiB, total_size=8 * MiB
        ).trace("write")
        plan = MHAPipeline(spec, seed=0).plan(trace)
        migration = estimate_migration_time(spec, plan.drt)
        from repro.pfs import run_workload

        run = run_workload(spec, plan.redirector, trace)
        assert migration < 10 * run.makespan

"""Unit tests for the straggler-aware scheme (repro.schemes.straggler)."""

import pytest

from repro.cluster import ClusterSpec
from repro.exceptions import ConfigurationError
from repro.layouts import FixedStripeLayout
from repro.schemes.base import LayoutView
from repro.schemes.registry import make_scheme
from repro.schemes.straggler import (
    LatencyEWMA,
    StragglerAwareScheme,
    StragglerAwareView,
)
from repro.tracing import Trace, TraceRecord
from repro.units import KiB


def _records(n=4, size=64 * KiB):
    return [
        TraceRecord(
            offset=i * size, timestamp=float(i), rank=0, size=size, op="write", file="f"
        )
        for i in range(n)
    ]


def _view(num_servers=4, budget=1 << 30, **kwargs):
    spec = ClusterSpec(num_hservers=num_servers, num_sservers=0)
    inner = LayoutView(
        {}, default=FixedStripeLayout(spec.server_ids, 16 * KiB, obj="f")
    )
    return StragglerAwareView(
        inner, num_servers, replication_budget=budget, **kwargs
    )


class TestLatencyEWMA:
    def test_first_sample_initializes_mean(self):
        ewma = LatencyEWMA(2, alpha=0.5)
        ewma.observe(0, 4.0, 1.0)
        assert ewma.estimate(0, 1.0) == 4.0

    def test_update_moves_toward_sample(self):
        ewma = LatencyEWMA(1, alpha=0.5)
        ewma.observe(0, 4.0, 1.0)
        ewma.observe(0, 8.0, 2.0)
        assert ewma.estimate(0, 2.0) == 6.0
        ewma.observe(0, 6.0, 3.0)
        assert ewma.estimate(0, 3.0) == 6.0

    def test_counts_per_server(self):
        ewma = LatencyEWMA(2)
        ewma.observe(1, 1.0, 0.5)
        ewma.observe(1, 1.0, 0.6)
        assert ewma.count(0) == 0
        assert ewma.count(1) == 2

    def test_no_decay_without_half_life(self):
        ewma = LatencyEWMA(1)
        ewma.observe(0, 4.0, 0.0)
        assert ewma.estimate(0, 1e6) == 4.0

    def test_decay_halves_per_half_life(self):
        ewma = LatencyEWMA(1, half_life=2.0)
        ewma.observe(0, 8.0, 10.0)
        assert ewma.estimate(0, 10.0) == 8.0
        assert ewma.estimate(0, 12.0) == 4.0
        assert ewma.estimate(0, 14.0) == 2.0

    def test_estimates_vector(self):
        ewma = LatencyEWMA(3)
        ewma.observe(2, 5.0, 0.0)
        assert ewma.estimates(0.0) == [0.0, 0.0, 5.0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_servers=0),
            dict(num_servers=1, alpha=0.0),
            dict(num_servers=1, alpha=1.5),
            dict(num_servers=1, half_life=0.0),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LatencyEWMA(**kwargs)


class TestStragglerClassification:
    def _feed(self, view, latencies, samples=4):
        for _ in range(samples):
            for server, latency in enumerate(latencies):
                view.observe_latency(server, latency, 1.0)

    def test_no_classification_before_min_samples(self):
        view = _view(min_samples=4)
        for server in range(4):
            view.observe_latency(server, 9.0 if server == 0 else 1.0, 1.0)
        assert view.stragglers() == set()

    def test_outlier_flagged(self):
        view = _view(min_samples=2, threshold=1.5)
        self._feed(view, [10.0, 1.0, 1.0, 1.0])
        assert view.stragglers() == {0}

    def test_uniform_cluster_has_no_stragglers(self):
        view = _view(min_samples=2)
        self._feed(view, [1.0, 1.0, 1.0, 1.0])
        assert view.stragglers() == set()

    def test_single_sampled_server_never_straggler(self):
        view = _view(min_samples=1)
        view.observe_latency(0, 99.0, 1.0)
        assert view.stragglers() == set()

    def test_pick_target_prefers_fastest_healthy(self):
        view = _view(min_samples=1)
        self._feed(view, [10.0, 3.0, 2.0, 10.0], samples=2)
        stragglers = view.stragglers()
        assert stragglers == {0, 3}
        assert view._pick_target(stragglers) == 2

    def test_all_straggling_no_target(self):
        view = _view()
        assert view._pick_target({0, 1, 2, 3}) is None


class TestRedirection:
    def _hot(self, view):
        # server 0 slow, everyone sampled
        for _ in range(4):
            for server in range(4):
                view.observe_latency(server, 8.0 if server == 0 else 1.0, 1.0)

    def test_writes_redirected_away_from_straggler(self):
        view = _view()
        self._hot(view)
        runs = view.dispatch_request("write", "f", 0, 64 * KiB)
        assert all(f.server != 0 for f in runs)
        assert view.redirected_fragments == 1
        assert view.replicated_bytes == 16 * KiB

    def test_reads_follow_redirects(self):
        view = _view()
        self._hot(view)
        view.dispatch_request("write", "f", 0, 64 * KiB)
        reads = view.dispatch_request("read", "f", 0, 64 * KiB)
        assert sorted(f.logical_offset for f in reads) == [
            0, 16 * KiB, 32 * KiB, 48 * KiB
        ]
        assert all(f.server != 0 for f in reads)
        assert sum(f.length for f in reads) == 64 * KiB

    def test_reads_never_create_redirects(self):
        view = _view()
        self._hot(view)
        view.dispatch_request("read", "f", 0, 64 * KiB)
        assert view.redirected_fragments == 0

    def test_budget_bounds_replication(self):
        view = _view(budget=16 * KiB)
        self._hot(view)
        view.dispatch_request("write", "f", 0, 256 * KiB)
        assert view.replicated_bytes <= 16 * KiB
        # further writes to the straggler stay in place once exhausted
        runs = view.dispatch_request("write", "f", 256 * KiB, 256 * KiB)
        assert any(f.server == 0 for f in runs)

    def test_zero_budget_never_redirects(self):
        view = _view(budget=0)
        self._hot(view)
        runs = view.dispatch_request("write", "f", 0, 256 * KiB)
        assert any(f.server == 0 for f in runs)
        assert view.replicated_bytes == 0

    def test_healthy_cluster_maps_like_inner(self):
        view = _view()
        got = view.dispatch_request("write", "f", 0, 64 * KiB)
        want = view.inner.map_request("f", 0, 64 * KiB)
        assert sorted(got, key=lambda f: f.logical_offset) == want

    def test_dispatch_orders_slowest_first(self):
        view = _view(min_samples=1, threshold=100.0)  # classify nothing
        for server, latency in enumerate([1.0, 4.0, 2.0, 3.0]):
            view.observe_latency(server, latency, 1.0)
        runs = view.dispatch_request("read", "f", 0, 64 * KiB)
        assert [f.server for f in runs] == [1, 3, 2, 0]


class TestScheme:
    def test_build_and_name(self):
        scheme = StragglerAwareScheme()
        assert scheme.name == "SAW"
        spec = ClusterSpec()
        trace = Trace(_records())
        view = scheme.build(spec, trace)
        assert isinstance(view, StragglerAwareView)
        assert view.requires_event_engine
        assert view.replication_budget == int(0.5 * trace.total_bytes())

    def test_composed_name(self):
        assert StragglerAwareScheme(base="MHA").name == "MHA+SAW"
        assert make_scheme("MHA+SAW").name == "MHA+SAW"
        assert make_scheme("STRAGGLER").name == "SAW"

    def test_replication_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            StragglerAwareScheme(replication_fraction=-0.1)

    def test_view_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            _view(threshold=0.5)
        with pytest.raises(ConfigurationError):
            _view(min_samples=0)
        with pytest.raises(ConfigurationError):
            _view(budget=-1)

"""The seed-lineage registry and runtime sanitizer.

``repro.determinism`` is the root of every reproducibility guarantee:
each stream is derived from a ``(domain, base, indices)`` lineage via
SHA-256, so distinct lineages can never alias the way the old
``default_rng([seed, k])`` list-seeding could.  These tests pin:

* injectivity of :func:`derive_seed` (hypothesis property),
* reproducibility of :func:`derive_rng` and its equivalence to
  ``default_rng(derive_seed(...))``,
* the sanitizer ledger (recording, draw counting, worker merge,
  JSON round-trip through the ``sanitize-report`` loader),
* ledger equivalence of serial and sharded ``parallel_map`` runs,
* the serve digest itself — pinned, because this PR moved every seeded
  subsystem from list-seeding onto the registry, which *changed the
  streams* (and therefore all digests) once; the pin keeps them from
  ever drifting silently again.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.determinism import (
    Ledger,
    SeedDomain,
    derive_rng,
    derive_seed,
    ledger,
    reset_ledger,
    sanitize_enabled,
    write_ledger,
)
from tools.repro_lint.sanitize import compare_ledgers, load_ledger

lineages = st.tuples(
    st.sampled_from(list(SeedDomain)),
    st.lists(st.integers(min_value=0, max_value=2**31), max_size=3),
    st.integers(min_value=0, max_value=2**31),
)


class TestDeriveSeed:
    def test_deterministic(self):
        a = derive_seed(SeedDomain.FAULTS, 3, base=17)
        b = derive_seed(SeedDomain.FAULTS, 3, base=17)
        assert a == b

    def test_64_bit_range(self):
        seed = derive_seed(SeedDomain.SAMPLE, base=0)
        assert 0 <= seed < 2**64

    @given(a=lineages, b=lineages)
    @settings(max_examples=200, deadline=None)
    def test_injective(self, a, b):
        """Distinct lineages -> distinct seeds (the RL202 guarantee)."""
        seed_a = derive_seed(a[0], *a[1], base=a[2])
        seed_b = derive_seed(b[0], *b[1], base=b[2])
        if (a[0], tuple(a[1]), a[2]) == (b[0], tuple(b[1]), b[2]):
            assert seed_a == seed_b
        else:
            assert seed_a != seed_b

    def test_index_order_matters(self):
        assert derive_seed(SeedDomain.FAULTS, 1, 2) != derive_seed(
            SeedDomain.FAULTS, 2, 1
        )

    def test_no_prefix_aliasing(self):
        """The failure mode of the old list-seeding: ``[1, 23]`` vs
        ``[12, 3]`` style prefix overlap must not collide."""
        assert derive_seed(SeedDomain.FAULTS, 1, base=23) != derive_seed(
            SeedDomain.FAULTS, 12, base=3
        )

    def test_domains_never_share_streams(self):
        assert derive_seed(SeedDomain.SAMPLE, base=7) != derive_seed(
            SeedDomain.FAULTS, base=7
        )


class TestDeriveRng:
    def test_reproducible(self):
        a = derive_rng(SeedDomain.ARRIVALS, 5, base=1).random(8)
        b = derive_rng(SeedDomain.ARRIVALS, 5, base=1).random(8)
        assert np.array_equal(a, b)

    def test_equivalent_to_default_rng_of_derived_seed(self):
        seed = derive_seed(SeedDomain.ARRIVALS, 5, base=1)
        direct = np.random.default_rng(seed).random(8)
        derived = derive_rng(SeedDomain.ARRIVALS, 5, base=1).random(8)
        assert np.array_equal(direct, derived)

    def test_sanitize_off_returns_plain_generator(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        rng = derive_rng(SeedDomain.SAMPLE, base=0)
        assert isinstance(rng, np.random.Generator)


class TestLedger:
    def test_record_and_snapshot(self):
        led = Ledger()
        led.record("faults", (0,), 1, 111)
        led.record("faults", (0,), 1, 111)
        led.record("faults", (1,), 1, 222)
        snap = led.snapshot()
        assert snap["faults|1|0"] == {
            "seed": 111, "derivations": 2, "draws": 0,
        }
        assert len(led) == 2

    def test_count_draw(self):
        led = Ledger()
        led.record("faults", (0,), 1, 111)
        led.count_draw("faults|1|0")
        led.count_draw("faults|1|0")
        assert led.snapshot()["faults|1|0"]["draws"] == 2

    def test_merge_sums_counts(self):
        led = Ledger()
        led.record("faults", (0,), 1, 111)
        led.merge(
            {
                "faults|1|0": {"seed": 111, "derivations": 2, "draws": 3},
                "faults|1|1": {"seed": 222, "derivations": 1, "draws": 4},
            }
        )
        snap = led.snapshot()
        assert snap["faults|1|0"] == {
            "seed": 111, "derivations": 3, "draws": 3,
        }
        assert snap["faults|1|1"]["draws"] == 4

    def test_collisions(self):
        led = Ledger()
        led.record("faults", (0,), 1, 999)
        led.record("arrivals", (0,), 1, 999)
        assert led.collisions() == [("arrivals|1|0", "faults|1|0")]


class TestSanitizer:
    @pytest.fixture(autouse=True)
    def _armed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        reset_ledger()
        yield
        reset_ledger()

    def test_derivations_recorded(self):
        derive_seed(SeedDomain.FAULTS, 7, base=3)
        snap = ledger().snapshot()
        assert snap["faults|3|7"]["derivations"] == 1

    def test_draws_counted_per_lineage(self):
        rng = derive_rng(SeedDomain.FAULTS, 7, base=3)
        rng.random()
        rng.integers(10)
        rng.normal()
        assert ledger().snapshot()["faults|3|7"]["draws"] == 3

    def test_traced_generator_draws_match_plain(self, monkeypatch):
        traced = derive_rng(SeedDomain.SAMPLE, base=5)
        monkeypatch.delenv("REPRO_SANITIZE")
        plain = derive_rng(SeedDomain.SAMPLE, base=5)
        assert np.array_equal(traced.random(16), plain.random(16))

    def test_write_ledger_roundtrips_through_report_loader(self, tmp_path):
        rng = derive_rng(SeedDomain.ARRIVALS, 2, base=9)
        rng.random()
        path = tmp_path / "ledger.json"
        write_ledger(str(path))
        loaded = load_ledger(str(path))
        assert loaded == ledger().snapshot()
        assert compare_ledgers(loaded, ledger().snapshot()) == []

    def test_written_ledger_is_valid_sorted_json(self, tmp_path):
        derive_seed(SeedDomain.FAULTS, 1)
        derive_seed(SeedDomain.ARRIVALS, 1)
        path = tmp_path / "ledger.json"
        write_ledger(str(path))
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert list(doc["entries"]) == sorted(doc["entries"])


def _draw_three(spec):
    """Module-level worker (picklable): derive and consume a stream."""
    domain, index, base = spec
    rng = derive_rng(SeedDomain[domain], index, base=base)
    return float(rng.random()) + float(rng.random()) + float(rng.random())


class TestParallelLedgerMerge:
    @pytest.fixture(autouse=True)
    def _armed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        reset_ledger()
        yield
        reset_ledger()

    SPECS = [("FAULTS", i, 42) for i in range(4)]

    def test_serial_and_sharded_ledgers_equivalent(self):
        from repro.core.parallel import parallel_map

        serial_results = parallel_map(_draw_three, self.SPECS, n_jobs=1)
        serial_snap = ledger().snapshot()
        reset_ledger()
        sharded_results = parallel_map(_draw_three, self.SPECS, n_jobs=2)
        sharded_snap = ledger().snapshot()
        assert serial_results == sharded_results
        assert compare_ledgers(serial_snap, sharded_snap) == []
        assert serial_snap.keys() == sharded_snap.keys()
        for key in serial_snap:
            assert serial_snap[key]["draws"] == sharded_snap[key]["draws"]


class TestServeDigestPinned:
    """Regression pin for the registry migration (this PR).

    Moving faults/workloads/arrivals/aal off ``default_rng([seed, k])``
    list-seeding onto ``derive_seed`` changed every derived stream, so
    serve digests changed exactly once, in this PR.  This pin is the
    new baseline: any future change to the derivation (domain tags,
    hashing, index encoding) must update it *consciously*.
    """

    PINNED = "cacf89c47fa3bfb5fb85244a6481d4d5a5d03a3b6305ac57ac606ef96d075f0f"

    def test_small_serve_digest(self):
        from repro.cluster import ClusterSpec
        from repro.tenancy import serve_scenario

        report = serve_scenario(
            spec=ClusterSpec(num_hservers=2, num_sservers=2),
            tenants=8,
            max_active=4,
            n_jobs=1,
        )
        assert report.digest() == self.PINNED

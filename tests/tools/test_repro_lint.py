"""repro-lint checker suite: positive/negative fixtures per rule,
suppressions, CLI exit codes, and a clean-tree gate.

Each rule gets at least one minimal source that MUST trigger it and one
that MUST NOT; the fixtures mirror the true positives the pre-fix
codebase contained (aal.py's inline seed, placer.py's raw ``64 * 1024``
and lazy import, test_parallel.py's lambda, features.py's ``== 0.0``).
"""

import json
import subprocess
import sys
from pathlib import Path

from tools.repro_lint import lint_source
from tools.repro_lint.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]

SRC = "src/repro/online/example.py"  # in RL001 scope (online/) and src scope
CORE = "src/repro/core/example.py"  # src scope, not RL001 scope
COST = "src/repro/core/cost_model.py"  # RL004 scope
TEST = "tests/core/test_example.py"  # test scope


def rules_of(source, path):
    return sorted({d.rule for d in lint_source(source, path)})


# -- RL001 determinism ----------------------------------------------------


class TestRL001:
    def test_wall_clock_flagged(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert "RL001" in rules_of(src, SRC)

    def test_datetime_now_flagged(self):
        src = (
            "from datetime import datetime\n\n"
            "def f():\n    return datetime.now()\n"
        )
        assert "RL001" in rules_of(src, SRC)

    def test_unseeded_rng_flagged(self):
        src = "import numpy as np\n\nrng = np.random.default_rng()\n"
        assert "RL001" in rules_of(src, SRC)

    def test_inline_literal_seed_flagged(self):
        # the pre-fix aal.py pattern
        src = "import numpy as np\n\nrng = np.random.default_rng(0)\n"
        assert "RL001" in rules_of(src, SRC)

    def test_legacy_global_np_random_flagged(self):
        src = "import numpy as np\n\nx = np.random.randint(0, 10)\n"
        assert "RL001" in rules_of(src, SRC)

    def test_global_random_module_flagged(self):
        src = "import random\n\nx = random.random()\n"
        assert "RL001" in rules_of(src, SRC)

    def test_named_seed_ok(self):
        src = (
            "import numpy as np\n"
            "from repro.config import DEFAULT_SAMPLE_SEED\n\n"
            "rng = np.random.default_rng(DEFAULT_SAMPLE_SEED)\n"
        )
        assert "RL001" not in rules_of(src, SRC)

    def test_out_of_scope_dirs_ignored(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert "RL001" not in rules_of(src, CORE)
        assert "RL001" not in rules_of(src, "tests/online/test_x.py")


# -- RL002 units discipline -----------------------------------------------


class TestRL002:
    def test_raw_stripe_default_flagged(self):
        # the pre-fix placer.py pattern
        src = "def f(original_stripe: int = 64 * 1024) -> int:\n    return 0\n"
        assert "RL002" in rules_of(src, CORE)

    def test_raw_literal_in_sizes_tuple_flagged(self):
        # the pre-fix calibrate.py pattern
        src = "def f(sizes=(4096, 16384)):\n    return sizes\n"
        assert "RL002" in rules_of(src, CORE)

    def test_keyword_argument_flagged(self):
        src = "g = object()\nx = g(stripe=65536)\n"
        assert "RL002" in rules_of(src, CORE)

    def test_units_constant_ok(self):
        src = (
            "from repro.units import KiB\n\n"
            "def f(original_stripe: int = 64 * KiB) -> int:\n    return 0\n"
        )
        assert "RL002" not in rules_of(src, CORE)

    def test_non_byte_names_ok(self):
        # counts that merely look power-of-two-ish must not be flagged
        src = "max_eval_requests = 4096\ncache_capacity = 4096\n"
        assert "RL002" not in rules_of(src, CORE)

    def test_unit_suffix_mixing_flagged(self):
        src = "def f(total_bytes: int, quota_kb: int) -> int:\n"
        src += "    return total_bytes + quota_kb\n"
        assert "RL002" in rules_of(src, CORE)

    def test_same_suffix_ok(self):
        src = "def f(a_bytes: int, b_bytes: int) -> int:\n"
        src += "    return a_bytes + b_bytes\n"
        assert "RL002" not in rules_of(src, CORE)

    def test_tests_exempt(self):
        src = "def f(original_stripe: int = 64 * 1024) -> int:\n    return 0\n"
        assert "RL002" not in rules_of(src, TEST)


# -- RL003 parallel safety ------------------------------------------------


class TestRL003:
    def test_lambda_flagged(self):
        src = "from repro.core.parallel import parallel_map\n\n"
        src += "r = parallel_map(lambda x: x, [1])\n"
        assert "RL003" in rules_of(src, SRC)

    def test_nested_function_flagged(self):
        src = (
            "from repro.core.parallel import parallel_map\n\n"
            "def outer(k):\n"
            "    def inner(x):\n"
            "        return x + k\n"
            "    return parallel_map(inner, [1])\n"
        )
        assert "RL003" in rules_of(src, SRC)

    def test_bound_method_flagged(self):
        src = (
            "from repro.core.parallel import parallel_map\n\n"
            "def run(sim):\n"
            "    return parallel_map(sim.step, [1])\n"
        )
        assert "RL003" in rules_of(src, SRC)

    def test_module_level_function_ok(self):
        src = (
            "from repro.core.parallel import parallel_map\n\n"
            "def work(x):\n"
            "    return x + 1\n\n"
            "def run():\n"
            "    return parallel_map(work, [1])\n"
        )
        assert "RL003" not in rules_of(src, SRC)

    def test_module_attribute_ok(self):
        src = (
            "import math\n"
            "from repro.core.parallel import parallel_map\n\n"
            "r = parallel_map(math.sqrt, [1.0])\n"
        )
        assert "RL003" not in rules_of(src, SRC)

    def test_partial_binding_simulator_flagged(self):
        src = (
            "from functools import partial\n"
            "from repro.core.parallel import parallel_map\n\n"
            "def work(simulator, x):\n"
            "    return x\n\n"
            "def run(simulator):\n"
            "    return parallel_map(partial(work, simulator), [1])\n"
        )
        assert "RL003" in rules_of(src, SRC)

    def test_applies_in_tests_too(self):
        src = "from repro.core.parallel import parallel_map\n\n"
        src += "r = parallel_map(lambda x: x, [1])\n"
        assert "RL003" in rules_of(src, TEST)


# -- RL004 cost-model purity ----------------------------------------------


class TestRL004:
    def test_argument_attribute_write_flagged(self):
        src = "def f(plan):\n    plan.cost = 1.0\n"
        assert "RL004" in rules_of(src, COST)

    def test_argument_item_write_flagged(self):
        src = "def f(table):\n    table['k'] = 1\n"
        assert "RL004" in rules_of(src, COST)

    def test_global_statement_flagged(self):
        src = "_N = 0\n\ndef f():\n    global _N\n    _N += 1\n"
        assert "RL004" in rules_of(src, COST)

    def test_io_call_flagged(self):
        src = "def f(x):\n    print(x)\n    return x\n"
        assert "RL004" in rules_of(src, COST)

    def test_function_level_import_flagged(self):
        # the pre-fix placer.py pattern
        src = "def f(spec):\n    from .params import CostModelParams\n    return 0\n"
        assert "RL004" in rules_of(src, "src/repro/core/placer.py")

    def test_mutator_on_argument_flagged(self):
        src = "def f(rows):\n    rows.append(1)\n    return rows\n"
        assert "RL004" in rules_of(src, COST)

    def test_pure_function_ok(self):
        src = (
            "def f(params, x):\n"
            "    local = [x]\n"
            "    local.append(2 * x)\n"
            "    return sum(local) * params.t\n"
        )
        assert "RL004" not in rules_of(src, COST)

    def test_self_state_ok(self):
        # stateful controllers may keep internal state
        src = (
            "class Gate:\n"
            "    def evaluate(self, plan):\n"
            "        self.evaluations = getattr(self, 'evaluations', 0) + 1\n"
            "        return plan\n"
        )
        assert "RL004" not in rules_of(src, "src/repro/online/gate.py")

    def test_out_of_scope_module_ignored(self):
        src = "def f(plan):\n    plan.cost = 1.0\n"
        assert "RL004" not in rules_of(src, "src/repro/pfs/storage.py")


# -- RL005 float equality -------------------------------------------------


class TestRL005:
    def test_float_literal_eq_flagged(self):
        # the pre-fix features.py pattern
        src = "def f(spread):\n    spread[spread == 0.0] = 1.0\n    return spread\n"
        assert "RL005" in rules_of(src, CORE)

    def test_float_literal_noteq_flagged(self):
        src = "def f(x):\n    return x != 1.5\n"
        assert "RL005" in rules_of(src, CORE)

    def test_int_roundtrip_flagged(self):
        # the pre-fix units.py pattern
        src = "def f(value):\n    return value == int(value)\n"
        assert "RL005" in rules_of(src, CORE)

    def test_division_result_eq_flagged(self):
        src = "def f(a, b, c):\n    return a / b == c\n"
        assert "RL005" in rules_of(src, CORE)

    def test_int_comparison_ok(self):
        src = "def f(n):\n    return n == 0\n"
        assert "RL005" not in rules_of(src, CORE)

    def test_ordering_comparison_ok(self):
        src = "def f(x):\n    return x > 0.0\n"
        assert "RL005" not in rules_of(src, CORE)

    def test_tests_exempt(self):
        src = "def f(x):\n    return x == 0.0\n"
        assert "RL005" not in rules_of(src, TEST)


# -- RL101..RL104 twin contracts -------------------------------------------


def twin_fixture(ref_params, twin_params, deco_args="", body="    return 0\n"):
    """One module holding a reference def and its decorated twin."""
    return (
        "from repro.contracts import twin_of\n\n"
        f"def base({ref_params}):\n{body}\n"
        f"@twin_of('repro.core.example:base'{deco_args})\n"
        f"def base_many({twin_params}):\n{body}"
    )


class TestRL101:
    def test_matching_signatures_clean(self):
        src = twin_fixture("a, b", "a, b")
        assert "RL101" not in rules_of(src, CORE)

    def test_reference_param_missing_on_twin(self):
        src = twin_fixture("a, b", "a")
        assert "RL101" in rules_of(src, CORE)

    def test_param_map_rename_accepted(self):
        src = twin_fixture("a, offset", "a, offsets", ", param_map={'offset': 'offsets'}")
        assert "RL101" not in rules_of(src, CORE)

    def test_param_map_key_typo_flagged(self):
        src = twin_fixture("a, offset", "a, offsets", ", param_map={'offzet': 'offsets'}")
        assert "RL101" in rules_of(src, CORE)

    def test_param_map_value_typo_flagged(self):
        src = twin_fixture("a, offset", "a, offset", ", param_map={'offset': 'offzets'}")
        assert "RL101" in rules_of(src, CORE)

    def test_unsupported_param_accepted(self):
        src = twin_fixture("a, hook", "a", ", unsupported=('hook',)")
        assert "RL101" not in rules_of(src, CORE)

    def test_unsupported_but_present_flagged(self):
        src = twin_fixture("a, hook", "a, hook", ", unsupported=('hook',)")
        assert "RL101" in rules_of(src, CORE)

    def test_unsupported_unknown_param_flagged(self):
        src = twin_fixture("a", "a", ", unsupported=('ghost',)")
        assert "RL101" in rules_of(src, CORE)

    def test_undeclared_twin_extra_flagged(self):
        src = twin_fixture("a", "a, now")
        assert "RL101" in rules_of(src, CORE)

    def test_twin_only_extra_accepted(self):
        src = twin_fixture("a", "a, now", ", twin_only=('now',)")
        assert "RL101" not in rules_of(src, CORE)

    def test_twin_only_unknown_param_flagged(self):
        src = twin_fixture("a", "a", ", twin_only=('now',)")
        assert "RL101" in rules_of(src, CORE)

    def test_method_self_is_not_a_parameter(self):
        src = (
            "from repro.contracts import twin_of\n\n"
            "class T:\n"
            "    def base(self, a):\n"
            "        return a\n\n"
            "    @twin_of('repro.core.example:T.base')\n"
            "    def base_many(self, a):\n"
            "        return a\n"
        )
        assert "RL101" not in rules_of(src, CORE)


class TestRL102:
    CONFIG = "from repro.config import DEFAULT_SAMPLE_SEED\n"

    def twin_reads(self, deco_args=""):
        return (
            self.CONFIG + "from repro.contracts import twin_of\n\n"
            "def base(x):\n    return x\n\n"
            f"@twin_of('repro.core.example:base'{deco_args})\n"
            "def base_many(x):\n    return x + DEFAULT_SAMPLE_SEED\n"
        )

    def test_twin_only_config_read_flagged(self):
        assert "RL102" in rules_of(self.twin_reads(), CORE)

    def test_fallback_flag_declares_the_asymmetry(self):
        src = self.twin_reads(", fallback_flags=('DEFAULT_SAMPLE_SEED',)")
        assert "RL102" not in rules_of(src, CORE)

    def test_reference_only_config_read_flagged(self):
        src = (
            self.CONFIG + "from repro.contracts import twin_of\n\n"
            "def base(x):\n    return x + DEFAULT_SAMPLE_SEED\n\n"
            "@twin_of('repro.core.example:base')\n"
            "def base_many(x):\n    return x\n"
        )
        assert "RL102" in rules_of(src, CORE)

    def test_symmetric_reads_clean(self):
        src = (
            self.CONFIG + "from repro.contracts import twin_of\n\n"
            "def base(x):\n    return x + DEFAULT_SAMPLE_SEED\n\n"
            "@twin_of('repro.core.example:base')\n"
            "def base_many(x):\n    return x + DEFAULT_SAMPLE_SEED\n"
        )
        assert "RL102" not in rules_of(src, CORE)


class TestRL103:
    def test_unregistered_fast_path_name_flagged(self):
        for name in ("replay_flat", "search_grid", "map_many", "batch_costs"):
            src = f"def {name}(x):\n    return x\n"
            assert "RL103" in rules_of(src, CORE), name

    def test_registered_twin_exempt(self):
        src = twin_fixture("a", "a")
        assert "RL103" not in rules_of(src, CORE)

    def test_contract_reference_exempt(self):
        src = (
            "from repro.contracts import twin_of\n\n"
            "def batch_costs(a):\n    return a\n\n"
            "@twin_of('repro.core.example:batch_costs')\n"
            "def batch_costs_grid(a):\n    return a\n"
        )
        assert "RL103" not in rules_of(src, CORE)

    def test_nested_defs_exempt(self):
        src = (
            "def search(h):\n"
            "    def evaluate_grid(x):\n"
            "        return x + h\n"
            "    return evaluate_grid(1)\n"
        )
        assert "RL103" not in rules_of(src, CORE)

    def test_tests_exempt(self):
        src = "def run_many(x):\n    return x\n"
        assert "RL103" not in rules_of(src, TEST)

    def test_plain_names_ignored(self):
        src = "def translate(x):\n    return x\n\ndef flatten(x):\n    return x\n"
        assert "RL103" not in rules_of(src, CORE)


class TestRL104:
    def test_non_literal_reference_flagged(self):
        src = (
            "from repro.contracts import twin_of\n\n"
            "REF = 'repro.core.example:base'\n\n"
            "def base(a):\n    return a\n\n"
            "@twin_of(REF)\n"
            "def base_many(a):\n    return a\n"
        )
        assert "RL104" in rules_of(src, CORE)

    def test_malformed_spec_flagged(self):
        src = (
            "from repro.contracts import twin_of\n\n"
            "@twin_of('repro.core.example.base')\n"
            "def base_many(a):\n    return a\n"
        )
        assert "RL104" in rules_of(src, CORE)

    def test_unknown_kind_flagged(self):
        src = twin_fixture("a", "a", ", kind='roughly_equal'")
        assert "RL104" in rules_of(src, CORE)

    def test_unresolvable_reference_flagged(self):
        src = (
            "from repro.contracts import twin_of\n\n"
            "@twin_of('repro.core.example:ghost')\n"
            "def base_many(a):\n    return a\n"
        )
        assert "RL104" in rules_of(src, CORE)

    def test_cross_module_reference_resolves_from_disk(self):
        """Single-file runs (pre-commit) resolve references by parsing
        the referenced module under src/ on disk."""
        src = (
            "from repro.contracts import twin_of\n\n"
            "@twin_of('repro.simulate.resources:FIFOResource.schedule',\n"
            "         twin_only=('now',))\n"
            "def schedule_flat(duration, not_before=0.0, tag=None, now=0.0):\n"
            "    return now\n"
        )
        assert "RL104" not in rules_of(src, CORE)

    def test_well_formed_contract_clean(self):
        src = twin_fixture("a", "a", ", kind='reduction'")
        assert "RL104" not in rules_of(src, CORE)


# -- suppressions ----------------------------------------------------------


class TestSuppressions:
    def test_same_line_suppression(self):
        src = "import time\n\n"
        src += "def f():\n"
        src += "    return time.time()  # repro-lint: disable=RL001\n"
        assert rules_of(src, SRC) == []

    def test_suppression_is_rule_specific(self):
        src = "import time\n\n"
        src += "def f():\n"
        src += "    return time.time()  # repro-lint: disable=RL005\n"
        assert "RL001" in rules_of(src, SRC)

    def test_suppression_is_line_specific(self):
        src = (
            "import time\n"
            "# repro-lint: disable=RL001\n\n"
            "def f():\n"
            "    return time.time()\n"
        )
        assert "RL001" in rules_of(src, SRC)

    def test_file_wide_suppression(self):
        src = (
            "# repro-lint: disable-file=RL001\n"
            "import time\n\n"
            "def f():\n"
            "    return time.time()\n"
        )
        assert rules_of(src, SRC) == []

    def test_multiple_rules_one_comment(self):
        src = (
            "import time\n\n"
            "def f(x):\n"
            "    return time.time() == 0.0  "
            "# repro-lint: disable=RL001,RL005\n"
        )
        assert rules_of(src, SRC) == []

    def test_marker_inside_string_is_not_a_suppression(self):
        src = (
            "import time\n\n"
            "def f():\n"
            '    s = "# repro-lint: disable=RL001"\n'
            "    return time.time(), s\n"
        )
        assert "RL001" in rules_of(src, SRC)


class TestSuppressionLogicalLines:
    """A disable comment inside an open logical line covers the whole
    statement's physical span (multi-line calls, decorated defs)."""

    def test_comment_after_diagnostic_line_in_same_statement(self):
        src = (
            "import time\n\n"
            "x = time.time(\n"
            ")  # repro-lint: disable=RL001\n"
        )
        assert "RL001" not in rules_of(src, SRC)

    def test_comment_before_diagnostic_line_in_same_statement(self):
        src = (
            "import time\n\n"
            "x = [\n"
            "    # repro-lint: disable=RL001\n"
            "    time.time(),\n"
            "]\n"
        )
        assert "RL001" not in rules_of(src, SRC)

    def test_span_ends_with_the_statement(self):
        # the suppression must not leak past the closing bracket
        src = (
            "import time\n\n"
            "x = time.time(\n"
            ")  # repro-lint: disable=RL001\n"
            "y = time.time()\n"
        )
        assert "RL001" in rules_of(src, SRC)

    def test_multiline_decorator_suppresses_contract_rule(self):
        # RL101 anchors at the decorator call; the comment sits on a
        # later physical line of the same (decorator) logical line
        src = (
            "from repro.contracts import twin_of\n\n"
            "def base(a, b):\n"
            "    return 0\n\n"
            "@twin_of(\n"
            "    'repro.core.example:base',  # repro-lint: disable=RL101\n"
            ")\n"
            "def base_many(a):\n"
            "    return 0\n"
        )
        assert "RL101" not in rules_of(src, CORE)

    def test_decorator_suppression_does_not_cover_the_def(self):
        # the decorator and the def are separate logical lines
        src = (
            "@staticmethod  # repro-lint: disable=RL103\n"
            "def lonely_many(x):\n"
            "    return x\n"
        )
        assert "RL103" in rules_of(src, CORE)

    def test_def_line_suppression_covers_multiline_signature(self):
        src = (
            "def lonely_many(\n"
            "    x,  # repro-lint: disable=RL103\n"
            "    y,\n"
            "):\n"
            "    return x + y\n"
        )
        assert "RL103" not in rules_of(src, CORE)


# -- engine / CLI ----------------------------------------------------------


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        diags = lint_source("def f(:\n", SRC)
        assert [d.rule for d in diags] == ["RL000"]

    def test_diagnostics_sorted_and_located(self):
        src = "import time\n\nx = time.time()\ny = time.time()\n"
        diags = lint_source(src, SRC)
        assert [d.line for d in diags] == [3, 4]
        assert all(d.path == SRC for d in diags)

    def test_render_format(self):
        diag = lint_source("x = time.time()\nimport time\n", SRC)[0]
        text = diag.render()
        assert text.startswith(f"{SRC}:1:")
        assert "RL001" in text


class TestCLI:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert cli_main([str(clean)]) == 0
        assert capsys.readouterr().out == ""

    def test_exit_one_with_findings(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "online" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\nx = time.time()\n")
        assert cli_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out

    def test_exit_two_on_missing_path(self, tmp_path):
        assert cli_main([str(tmp_path / "nope")]) == 2

    def test_exit_two_on_unknown_rule(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text("x = 1\n")
        assert cli_main(["--select", "RL999", str(f)]) == 2

    def test_select_restricts_rules(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "online" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\nx = time.time()\ny = 1.0 == 2.0\n")
        assert cli_main(["--select", "RL001", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out
        assert "RL005" not in out

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "RL001", "RL002", "RL003", "RL004", "RL005",
            "RL101", "RL102", "RL103", "RL104",
            "RL201", "RL202", "RL203",
            "RL211", "RL212", "RL213",
        ):
            assert rule in out

    def bad_file(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "online" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\nx = time.time()\n")
        return bad

    def test_json_format(self, tmp_path, capsys):
        bad = self.bad_file(tmp_path)
        assert cli_main(["--format", "json", str(bad)]) == 1
        findings = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in findings] == ["RL001"]
        assert findings[0]["line"] == 3
        assert findings[0]["path"].endswith("bad.py")

    def test_sarif_format_to_output_file(self, tmp_path, capsys):
        bad = self.bad_file(tmp_path)
        out_file = tmp_path / "lint.sarif"
        assert cli_main(
            ["--format", "sarif", "--output", str(out_file), str(bad)]
        ) == 1
        assert capsys.readouterr().out == ""
        doc = json.loads(out_file.read_text())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= {
            "RL001", "RL101", "RL104",
        }
        result = run["results"][0]
        assert result["ruleId"] == "RL001"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_sarif_written_even_when_clean(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        out_file = tmp_path / "lint.sarif"
        assert cli_main(
            ["--format", "sarif", "--output", str(out_file), str(clean)]
        ) == 0
        assert json.loads(out_file.read_text())["runs"][0]["results"] == []


class TestOverlappingPaths:
    """Overlapping or differently spelled CLI paths must not duplicate
    diagnostics: files are normalized and deduplicated before analysis."""

    def make_tree(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "online" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\nx = time.time()\n")
        return bad

    def count_findings(self, argv, capsys):
        code = cli_main(["--format", "json", *argv])
        assert code == 1
        return len(json.loads(capsys.readouterr().out))

    def test_nested_directories(self, tmp_path, capsys):
        bad = self.make_tree(tmp_path)
        argv = [str(tmp_path / "src"), str(bad.parent)]
        assert self.count_findings(argv, capsys) == 1

    def test_directory_and_file(self, tmp_path, capsys):
        bad = self.make_tree(tmp_path)
        assert self.count_findings([str(tmp_path), str(bad)], capsys) == 1

    def test_same_path_twice(self, tmp_path, capsys):
        bad = self.make_tree(tmp_path)
        assert self.count_findings([str(bad), str(bad)], capsys) == 1

    def test_dot_spelled_duplicate(self, tmp_path, capsys):
        bad = self.make_tree(tmp_path)
        dotted = str(tmp_path / "." / "src")
        assert self.count_findings([str(tmp_path / "src"), dotted], capsys) == 1


class TestSeededMutation:
    """The acceptance drill: growing a twin-only kwarg or config branch
    must flip the lint from clean to failing."""

    PAIR = (
        "from repro.config import DEFAULT_SAMPLE_SEED\n"
        "from repro.contracts import twin_of\n\n"
        "def base(a, b):\n"
        "    return a + b\n\n"
        "@twin_of('repro.core.example:base')\n"
        "def base_many(a, b):\n"
        "    return a + b\n"
    )

    def write(self, tmp_path, source):
        mod = tmp_path / "src" / "repro" / "core" / "example.py"
        mod.parent.mkdir(parents=True, exist_ok=True)
        mod.write_text(source)
        return mod

    def test_clean_pair_passes(self, tmp_path):
        mod = self.write(tmp_path, self.PAIR)
        assert cli_main([str(mod)]) == 0

    def test_twin_kwarg_mutation_fails(self, tmp_path, capsys):
        mutated = self.PAIR.replace("def base_many(a, b):", "def base_many(a, b, fancy=False):")
        mod = self.write(tmp_path, mutated)
        assert cli_main([str(mod)]) == 1
        assert "RL101" in capsys.readouterr().out

    def test_twin_config_branch_mutation_fails(self, tmp_path, capsys):
        mutated = self.PAIR.replace(
            "def base_many(a, b):\n    return a + b",
            "def base_many(a, b):\n    return a + b + DEFAULT_SAMPLE_SEED",
        )
        mod = self.write(tmp_path, mutated)
        assert cli_main([str(mod)]) == 1
        assert "RL102" in capsys.readouterr().out


class TestRepositoryIsClean:
    """The acceptance gate: the shipped tree has zero findings."""

    def test_module_invocation_exits_zero(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", "src", "tests"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr


# -- RL201 seed derivation ------------------------------------------------

FAULTS = "src/repro/faults/example.py"  # seeded-subsystem scope for RL2xx


class TestRL201:
    def test_list_seeding_flagged(self):
        # the pre-registry faults/arrivals pattern
        src = (
            "import numpy as np\n\n"
            "def f(seed, k):\n"
            "    return np.random.default_rng([seed, k])\n"
        )
        assert "RL201" in rules_of(src, FAULTS)

    def test_named_scalar_seed_flagged(self):
        # passes RL001 (auditable) but still bypasses the registry
        src = (
            "import numpy as np\n"
            "from repro.config import DEFAULT_SAMPLE_SEED\n\n"
            "rng = np.random.default_rng(DEFAULT_SAMPLE_SEED)\n"
        )
        assert "RL201" in rules_of(src, FAULTS)

    def test_derive_rng_ok(self):
        src = (
            "from repro.determinism import SeedDomain, derive_rng\n\n"
            "def f(i, seed):\n"
            "    return derive_rng(SeedDomain.FAULTS, i, base=seed)\n"
        )
        assert "RL201" not in rules_of(src, FAULTS)

    def test_default_rng_of_derive_seed_ok(self):
        src = (
            "import numpy as np\n"
            "from repro.determinism import SeedDomain, derive_seed\n\n"
            "def f(i):\n"
            "    return np.random.default_rng("
            "derive_seed(SeedDomain.FAULTS, i))\n"
        )
        assert "RL201" not in rules_of(src, FAULTS)

    def test_core_and_tests_out_of_scope(self):
        src = "import numpy as np\n\nrng = np.random.default_rng(seed)\n"
        assert "RL201" not in rules_of(src, CORE)
        assert "RL201" not in rules_of(src, "tests/faults/test_x.py")

    def test_suppression(self):
        src = (
            "import numpy as np\n\n"
            "rng = np.random.default_rng(seed)"
            "  # repro-lint: disable=RL201,RL001\n"
        )
        assert "RL201" not in rules_of(src, FAULTS)


# -- RL202 lineage aliasing -----------------------------------------------


class TestRL202:
    def test_two_sites_same_domain_and_arity_flagged(self):
        src = (
            "from repro.determinism import SeedDomain, derive_rng, derive_seed\n\n"
            "def a(i):\n"
            "    return derive_rng(SeedDomain.FAULTS, i, base=1)\n\n"
            "def b(j):\n"
            "    return derive_seed(SeedDomain.FAULTS, j, base=2)\n"
        )
        assert "RL202" in rules_of(src, FAULTS)

    def test_distinct_arity_ok(self):
        src = (
            "from repro.determinism import SeedDomain, derive_rng\n\n"
            "def a(i):\n"
            "    return derive_rng(SeedDomain.FAULTS, i, base=1)\n\n"
            "def b():\n"
            "    return derive_rng(SeedDomain.FAULTS, base=2)\n"
        )
        assert "RL202" not in rules_of(src, FAULTS)

    def test_distinct_domains_ok(self):
        src = (
            "from repro.determinism import SeedDomain, derive_rng\n\n"
            "def a(i):\n"
            "    return derive_rng(SeedDomain.FAULTS, i)\n\n"
            "def b(j):\n"
            "    return derive_rng(SeedDomain.ARRIVALS, j)\n"
        )
        assert "RL202" not in rules_of(src, FAULTS)

    def test_duplicate_enum_tag_flagged(self):
        src = (
            "import enum\n\n"
            "class SeedDomain(enum.Enum):\n"
            "    FAULTS = \"faults\"\n"
            "    CHAOS = \"faults\"\n"
        )
        assert "RL202" in rules_of(src, "src/repro/determinism.py")


# -- RL203 rng across task boundary ---------------------------------------


class TestRL203:
    def test_rng_captured_in_lambda_flagged(self):
        src = (
            "from repro.determinism import SeedDomain, derive_rng\n"
            "from repro.core.parallel import parallel_map\n\n"
            "def run(items, work):\n"
            "    rng = derive_rng(SeedDomain.FAULTS, 0, base=1)\n"
            "    return parallel_map(lambda it: work(it, rng), items)\n"
        )
        assert "RL203" in rules_of(src, CORE)

    def test_rng_as_direct_argument_flagged(self):
        src = (
            "import numpy as np\n"
            "from functools import partial\n"
            "from repro.core.parallel import parallel_map\n\n"
            "def run(items, work, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return parallel_map(partial(work, rng), items)\n"
        )
        assert "RL203" in rules_of(src, CORE)

    def test_worker_side_derivation_ok(self):
        src = (
            "from repro.core.parallel import parallel_map\n\n"
            "def run(specs, work):\n"
            "    return parallel_map(work, specs)\n"
        )
        assert "RL203" not in rules_of(src, CORE)

    def test_rng_outside_call_ok(self):
        src = (
            "from repro.determinism import SeedDomain, derive_rng\n"
            "from repro.core.parallel import parallel_map\n\n"
            "def run(specs, work):\n"
            "    rng = derive_rng(SeedDomain.FAULTS, 0)\n"
            "    out = parallel_map(work, specs)\n"
            "    return [o + rng.random() for o in out]\n"
        )
        assert "RL203" not in rules_of(src, CORE)


# -- RL211 set iteration order --------------------------------------------


class TestRL211:
    DIGEST_FN = (
        "import hashlib\n\n"
        "def digest(names):\n"
        "    uniq = set(names)\n"
        "    h = hashlib.sha256()\n"
        "    for n in {LOOP}:\n"
        "        h.update(n.encode())\n"
        "    return h.hexdigest()\n"
    )

    def test_unsorted_set_into_digest_flagged(self):
        src = self.DIGEST_FN.replace("{LOOP}", "uniq")
        assert "RL211" in rules_of(src, CORE)

    def test_sorted_set_ok(self):
        src = self.DIGEST_FN.replace("{LOOP}", "sorted(uniq)")
        assert "RL211" not in rules_of(src, CORE)

    def test_set_literal_in_comprehension_flagged(self):
        src = (
            "from repro.determinism import SeedDomain, derive_seed\n\n"
            "def seeds(a, b):\n"
            "    return [derive_seed(SeedDomain.FAULTS, x)"
            " for x in {a, b}]\n"
        )
        assert "RL211" in rules_of(src, CORE)

    def test_function_without_markers_not_flagged(self):
        src = (
            "def count(names):\n"
            "    total = 0\n"
            "    for n in set(names):\n"
            "        total += 1\n"
            "    return total\n"
        )
        assert "RL211" not in rules_of(src, CORE)

    def test_list_iteration_ok(self):
        src = (
            "import hashlib\n\n"
            "def digest(names):\n"
            "    h = hashlib.sha256()\n"
            "    for n in names:\n"
            "        h.update(n.encode())\n"
            "    return h.hexdigest()\n"
        )
        assert "RL211" not in rules_of(src, CORE)


# -- RL212 directory listing order ----------------------------------------


class TestRL212:
    def test_bare_listdir_flagged(self):
        src = (
            "import os\n\n"
            "def load(d):\n"
            "    return [open(f) for f in os.listdir(d)]\n"
        )
        assert "RL212" in rules_of(src, CORE)

    def test_glob_flagged(self):
        src = (
            "import glob\n\n"
            "def load(pattern):\n"
            "    return glob.glob(pattern)\n"
        )
        assert "RL212" in rules_of(src, CORE)

    def test_path_iterdir_flagged(self):
        src = (
            "def load(root):\n"
            "    return list(root.iterdir())\n"
        )
        assert "RL212" in rules_of(src, CORE)

    def test_sorted_listing_ok(self):
        src = (
            "import glob\n"
            "import os\n\n"
            "def load(d, pattern, root):\n"
            "    a = sorted(os.listdir(d))\n"
            "    b = sorted(glob.glob(pattern))\n"
            "    c = sorted(p for p in root.iterdir())\n"
            "    return a, b, c\n"
        )
        assert "RL212" not in rules_of(src, CORE)

    def test_tests_out_of_scope(self):
        src = "import os\n\nfiles = os.listdir('.')\n"
        assert "RL212" not in rules_of(src, TEST)


# -- RL213 accumulation order ---------------------------------------------


class TestRL213:
    def test_sum_over_parallel_map_name_flagged(self):
        src = (
            "from repro.core.parallel import parallel_map\n\n"
            "def total(items, work):\n"
            "    parts = parallel_map(work, items)\n"
            "    return sum(parts)\n"
        )
        assert "RL213" in rules_of(src, CORE)

    def test_sum_over_parallel_map_call_flagged(self):
        src = (
            "from repro.core.parallel import parallel_map\n\n"
            "def total(items, work):\n"
            "    return sum(parallel_map(work, items))\n"
        )
        assert "RL213" in rules_of(src, CORE)

    def test_fsum_ok(self):
        src = (
            "from math import fsum\n"
            "from repro.core.parallel import parallel_map\n\n"
            "def total(items, work):\n"
            "    parts = parallel_map(work, items)\n"
            "    return fsum(parts)\n"
        )
        assert "RL213" not in rules_of(src, CORE)

    def test_sum_over_plain_list_ok(self):
        src = (
            "def total(values):\n"
            "    return sum(values)\n"
        )
        assert "RL213" not in rules_of(src, CORE)

    def test_suppressed_documented_guarantee_ok(self):
        src = (
            "from repro.core.parallel import parallel_map\n\n"
            "def total(items, work):\n"
            "    parts = parallel_map(work, items)\n"
            "    # submission order is preserved; values are ints\n"
            "    return sum(parts)  # repro-lint: disable=RL213\n"
        )
        assert "RL213" not in rules_of(src, CORE)


# -- seeded-mutation drills for the RL2xx family --------------------------


class TestSeedLineageMutation:
    """The acceptance drill: introducing a colliding domain tag or
    pickling an rng into parallel_map must flip the lint to failing."""

    ENUM = (
        "import enum\n\n"
        "class SeedDomain(enum.Enum):\n"
        "    SAMPLE = \"sample\"\n"
        "    FAULTS = \"faults\"\n"
    )

    def write(self, tmp_path, source, rel="src/repro/determinism.py"):
        mod = tmp_path / rel
        mod.parent.mkdir(parents=True, exist_ok=True)
        mod.write_text(source)
        return mod

    def test_clean_enum_passes(self, tmp_path):
        mod = self.write(tmp_path, self.ENUM)
        assert cli_main([str(mod)]) == 0

    def test_colliding_tag_mutation_fails(self, tmp_path, capsys):
        mutated = self.ENUM + "    CHAOS = \"faults\"\n"
        mod = self.write(tmp_path, mutated)
        assert cli_main([str(mod)]) == 1
        assert "RL202" in capsys.readouterr().out

    def test_rng_pickled_into_parallel_map_fails(self, tmp_path, capsys):
        src = (
            "from functools import partial\n"
            "from repro.determinism import SeedDomain, derive_rng\n"
            "from repro.core.parallel import parallel_map\n\n"
            "def work(rng, item):\n"
            "    return item + rng.random()\n\n"
            "def run(items):\n"
            "    rng = derive_rng(SeedDomain.SAMPLE, base=0)\n"
            "    return parallel_map(partial(work, rng), items)\n"
        )
        mod = self.write(tmp_path, src, rel="src/repro/core/example.py")
        assert cli_main([str(mod)]) == 1
        assert "RL203" in capsys.readouterr().out


# -- sanitize-report ------------------------------------------------------


class TestSanitizeReport:
    def ledger(self, entries):
        return {"version": 1, "entries": entries}

    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    ENTRY = {"seed": 11, "derivations": 1, "draws": 4}

    def test_equivalent_ledgers_pass(self, tmp_path, capsys):
        a = self.write(
            tmp_path, "a.json", self.ledger({"faults|1|0": dict(self.ENTRY)})
        )
        # derivation counts may legitimately differ (workers re-derive)
        b_entry = dict(self.ENTRY, derivations=3)
        b = self.write(
            tmp_path, "b.json", self.ledger({"faults|1|0": b_entry})
        )
        assert cli_main(["sanitize-report", a, b]) == 0
        assert "OK" in capsys.readouterr().out

    def test_draw_divergence_fails(self, tmp_path, capsys):
        a = self.write(
            tmp_path, "a.json", self.ledger({"faults|1|0": dict(self.ENTRY)})
        )
        b_entry = dict(self.ENTRY, draws=5)
        b = self.write(
            tmp_path, "b.json", self.ledger({"faults|1|0": b_entry})
        )
        assert cli_main(["sanitize-report", a, b]) == 1
        assert "draws" in capsys.readouterr().out

    def test_missing_lineage_fails(self, tmp_path, capsys):
        a = self.write(
            tmp_path,
            "a.json",
            self.ledger(
                {
                    "faults|1|0": dict(self.ENTRY),
                    "faults|1|1": dict(self.ENTRY, seed=12),
                }
            ),
        )
        b = self.write(
            tmp_path, "b.json", self.ledger({"faults|1|0": dict(self.ENTRY)})
        )
        assert cli_main(["sanitize-report", a, b]) == 1
        assert "only in A" in capsys.readouterr().out

    def test_seed_collision_fails(self, tmp_path, capsys):
        entries = {
            "faults|1|0": dict(self.ENTRY),
            "arrivals|1|0": dict(self.ENTRY),  # same seed, distinct lineage
        }
        a = self.write(tmp_path, "a.json", self.ledger(entries))
        b = self.write(tmp_path, "b.json", self.ledger(entries))
        assert cli_main(["sanitize-report", a, b]) == 1
        assert "collision" in capsys.readouterr().out

    def test_bad_file_is_usage_error(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", {"version": 2})
        b = self.write(
            tmp_path, "b.json", self.ledger({"faults|1|0": dict(self.ENTRY)})
        )
        assert cli_main(["sanitize-report", a, b]) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        b = self.write(
            tmp_path, "b.json", self.ledger({"faults|1|0": dict(self.ENTRY)})
        )
        assert cli_main(
            ["sanitize-report", str(tmp_path / "absent.json"), b]
        ) == 2

"""RL3xx effect-system suite: call-graph edge cases, rule drills,
explain-mode witnesses, and the rule catalogue.

The call-graph tests pin the analyzer behaviours the rules lean on
(fixpoint over mutual recursion, sound unproven default for dynamic
calls, indirection through decorators/partial/lambda, seeded-ctor RNG
stripping).  The drills are seeded mutations: each plants exactly the
defect its rule exists to catch and asserts the rule fires — mirroring
the true positives the pre-fix tree contained (function-level imports
reaching IO, parallel tasks with undeclared effects).
"""

import ast

from tools.repro_lint import lint_source
from tools.repro_lint.callgraph import (
    EFFECT_NAMES,
    MUTATES_STATE,
    RNG,
    TIME,
    build_graph,
)
from tools.repro_lint.cli import main as cli_main
from tools.repro_lint.registry import all_checkers

MOD = "repro.online.example"
PATH = "src/repro/online/example.py"


def graph_of(source, path=PATH):
    return build_graph([(ast.parse(source), path, path, False)])


def rules_of(source, path, select):
    diags = lint_source(source, path, checkers=all_checkers(select))
    return sorted({d.rule for d in diags})


class TestCallGraphEdgeCases:
    def test_mutual_recursion_reaches_fixpoint(self):
        graph = graph_of(
            """
import os
def even(n):
    return n == 0 or odd(n - 1)
def odd(n):
    if n == 0:
        os.environ.get("X")
        return False
    return even(n - 1)
"""
        )
        assert graph.inferred(f"{MOD}:even") == {"READS_ENV"}
        assert graph.inferred(f"{MOD}:odd") == {"READS_ENV"}
        assert not graph.is_unproven(f"{MOD}:even")

    def test_unresolved_dynamic_call_is_sound_default(self):
        graph = graph_of(
            """
def dispatch(table, key):
    return table[key]()
def caller(table):
    return dispatch(table, "a")
"""
        )
        # no effect can be *proven*, so none is claimed — but the node
        # is marked unproven, and the rules treat unproven as a finding
        assert graph.inferred(f"{MOD}:caller") == frozenset()
        assert graph.is_unproven(f"{MOD}:caller")
        assert graph.unproven_chain(f"{MOD}:caller")

    def test_decorated_method_edges_resolve(self):
        graph = graph_of(
            """
import functools
import time
class Clock:
    @functools.lru_cache
    def now(self):
        return time.time()
    def stamp(self):
        return self.now()
"""
        )
        assert graph.inferred(f"{MOD}:Clock.stamp") == {TIME}

    def test_partial_and_lambda_indirection(self):
        graph = graph_of(
            """
import functools
import os
def leak(prefix):
    return prefix + os.environ.get("X", "")
def build():
    f = functools.partial(leak, "p")
    return f()
def lam():
    g = lambda: leak("q")
    return g()
"""
        )
        assert graph.inferred(f"{MOD}:build") == {"READS_ENV"}
        assert graph.inferred(f"{MOD}:lam") == {"READS_ENV"}

    def test_seeded_rng_ctor_is_not_entropy(self):
        graph = graph_of(
            """
import numpy as np
def seeded():
    return np.random.default_rng(7).random()
def unseeded():
    return np.random.default_rng().random()
"""
        )
        assert RNG not in graph.inferred(f"{MOD}:seeded")
        assert RNG in graph.inferred(f"{MOD}:unseeded")

    def test_per_parameter_mutation_tracking(self):
        graph = graph_of(
            """
CONSTANT = (1, 2)
def mutate(acc, bounds):
    acc.append(bounds[0])
def touches_local_only(items):
    acc = []
    mutate(acc, CONSTANT)
    return acc
def touches_argument(out):
    mutate(out, CONSTANT)
"""
        )
        # the mutation lands on a caller local -> invisible outside;
        # passing the module constant as `bounds` must NOT smear
        # MUTATES_ARG onto it (per-parameter binding, not a union)
        assert graph.inferred(f"{MOD}:touches_local_only") == frozenset()
        assert "MUTATES_ARG" in graph.inferred(f"{MOD}:touches_argument")

    def test_internal_state_is_not_a_public_effect(self):
        graph = graph_of(
            """
class Cache:
    def __init__(self):
        self._hits = 0
    def get(self, key):
        self._hits += 1
        return key
"""
        )
        inferred = graph.inferred(f"{MOD}:Cache.get")
        assert inferred <= {MUTATES_STATE}

    def test_effect_names_match_runtime_contract(self):
        # the analyzer's lattice and the @effects runtime validator
        # must accept exactly the same vocabulary
        from repro.effects import EFFECT_NAMES as runtime_names

        assert tuple(EFFECT_NAMES) == tuple(runtime_names)


class TestRuleDrills:
    def test_rl301_time_in_gate_module(self):
        source = """
import time
def decide(x):
    return helper(x)
def helper(x):
    return time.monotonic() + x
"""
        assert rules_of(source, "src/repro/online/gate.py", ["RL301"]) == [
            "RL301"
        ]

    def test_rl301_clean_gate_module(self):
        source = """
def decide(x):
    return helper(x)
def helper(x):
    return x + 1
"""
        assert rules_of(source, "src/repro/online/gate.py", ["RL301"]) == []

    def test_rl302_global_mutation_under_task(self):
        source = """
from repro.core.parallel import parallel_map
_CACHE = {}
def task(item):
    _CACHE[item] = 1
    return item
def run(items):
    return parallel_map(task, items)
"""
        assert rules_of(source, PATH, ["RL302"]) == ["RL302"]

    def test_rl302_declared_io_is_sanctioned(self):
        source = """
from repro.core.parallel import parallel_map
from repro.effects import effects
@effects("IO")
def task(item):
    with open(item) as handle:
        return handle.read()
def run(items):
    return parallel_map(task, items)
"""
        assert rules_of(source, PATH, ["RL302"]) == []

    def test_rl302_undeclared_io_is_flagged(self):
        source = """
from repro.core.parallel import parallel_map
def task(item):
    with open(item) as handle:
        return handle.read()
def run(items):
    return parallel_map(task, items)
"""
        assert rules_of(source, PATH, ["RL302"]) == ["RL302"]

    def test_rl303_env_under_digest(self):
        source = """
import os
def digest(payload):
    return str(sorted(payload)) + os.environ.get("HOME", "")
"""
        assert rules_of(source, PATH, ["RL303"]) == ["RL303"]

    def test_rl303_clean_digest(self):
        source = """
import hashlib
def digest(payload):
    return hashlib.sha256(repr(sorted(payload)).encode()).hexdigest()
"""
        assert rules_of(source, PATH, ["RL303"]) == []

    def test_rl304_mismatch_and_stale(self):
        source = """
import os
from repro.effects import effects
@effects("READS_CONFIG")
def reads_env_instead():
    return os.environ.get("X")
@effects("IO")
def actually_pure(x):
    return x + 1
"""
        diags = lint_source(source, PATH, checkers=all_checkers(["RL304"]))
        messages = sorted(d.message for d in diags)
        assert len(messages) == 3  # missing READS_ENV + 2 stale declarations
        assert any("infers READS_ENV" in m for m in messages)
        assert any(
            "declares READS_CONFIG" in m and "stale" in m for m in messages
        )
        assert any("declares IO" in m and "stale" in m for m in messages)

    def test_rl304_honest_declaration_clean(self):
        source = """
import os
from repro.effects import effects
@effects("READS_ENV")
def honest():
    return os.environ.get("X")
"""
        assert rules_of(source, PATH, ["RL304"]) == []

    def test_rl305_twin_excess_effect(self):
        source = """
import os
from repro.twins import twin_of
def slow(items):
    return sorted(items)
@twin_of("repro.online.example:slow")
def slow_flat(items):
    os.environ.get("X")
    return sorted(items)
"""
        assert rules_of(source, PATH, ["RL305"]) == ["RL305"]

    def test_rl305_effect_equivalent_twin_clean(self):
        source = """
from repro.twins import twin_of
def slow(items):
    return sorted(items)
@twin_of("repro.online.example:slow")
def slow_flat(items):
    return sorted(items)
"""
        assert rules_of(source, PATH, ["RL305"]) == []

    def test_suppression_comment_wins(self):
        source = """
import os
def digest(payload):  # repro-lint: disable=RL303
    return str(payload) + os.environ.get("HOME", "")
"""
        assert rules_of(source, PATH, ["RL303"]) == []


class TestExplainMode:
    def test_multi_hop_witness_chain(self):
        graph = graph_of(
            """
import time
def a():
    return b()
def b():
    return c()
def c():
    return time.time()
"""
        )
        chain = graph.witness_chain(f"{MOD}:a", TIME)
        assert [step.spec for step in chain] == [
            f"{MOD}:a",
            f"{MOD}:b",
            f"{MOD}:c",
        ]
        text = graph.explain(f"{MOD}:a")
        assert "inferred: TIME" in text
        assert "time.time()" in text

    def test_cli_explain_real_task(self, capsys):
        assert cli_main(["effects", "repro.harness.experiment:_scheme_task"]) == 0
        out = capsys.readouterr().out
        assert "declared:" in out
        assert "READS_CONFIG" in out and "IO" in out

    def test_cli_explain_rejects_bad_spec(self, capsys):
        assert cli_main(["effects", "no-colon-here"]) == 2
        assert cli_main(["effects", "repro.nosuch.module:f"]) == 2


class TestRuleCatalogue:
    def test_list_rules_pins_the_catalogue(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        by_id = {}
        for line in lines:
            rule_id, rest = line.split(None, 1)
            by_id[rule_id] = line
        # ids are unique, sorted, and every family is present
        assert sorted(by_id) == [line.split(None, 1)[0] for line in lines]
        for rule_id in ("RL001", "RL101", "RL201", "RL211"):
            assert rule_id in by_id
        for rule_id, module in [
            ("RL301", "effects"),
            ("RL302", "effects"),
            ("RL303", "effects"),
            ("RL304", "effects"),
            ("RL305", "effects"),
        ]:
            line = by_id[rule_id]
            assert f"[checkers.{module}]" in line
            assert ":" in line.split("]", 1)[1]  # summary text present

    def test_every_registered_rule_is_listed(self, capsys):
        cli_main(["--list-rules"])
        listed = {
            line.split(None, 1)[0]
            for line in capsys.readouterr().out.strip().splitlines()
        }
        registered = {checker.rule for checker in all_checkers()}
        assert listed == registered

"""Tests for the simulated MPI-IO middleware."""

import pytest

from repro.cluster import ClusterSpec
from repro.layouts import FixedStripeLayout
from repro.mpiio import MPIJob, dispatch
from repro.pfs import HybridPFS
from repro.schemes.base import LayoutView
from repro.tracing import IOCollector
from repro.units import KiB


@pytest.fixture
def setup():
    spec = ClusterSpec(num_hservers=2, num_sservers=2)
    pfs = HybridPFS(spec)
    view = LayoutView(
        {}, default=FixedStripeLayout(spec.server_ids, 64 * KiB, obj="f")
    )
    return spec, pfs, view


class TestDispatch:
    def test_dispatch_issues_and_completes(self, setup):
        _, pfs, view = setup
        done = dispatch(pfs, view, "f", "read", 0, 128 * KiB)
        pfs.sim.run()
        assert done.fired
        assert sum(pfs.per_server_bytes()) == 128 * KiB


class TestMPIJob:
    def test_spmd_program_runs_all_ranks(self, setup):
        _, pfs, view = setup
        job = MPIJob(pfs, view, size=4)
        seen = []

        def program(rank):
            with rank.open("f") as fh:
                yield fh.write_at(rank.rank * 64 * KiB, 64 * KiB)
            seen.append(rank.rank)

        makespan = job.run(program)
        assert sorted(seen) == [0, 1, 2, 3]
        assert makespan > 0

    def test_comm_size_visible(self, setup):
        _, pfs, view = setup
        job = MPIJob(pfs, view, size=3)
        sizes = []

        def program(rank):
            sizes.append(rank.size)
            return
            yield  # pragma: no cover - makes this a generator

        job.run(program)
        assert sizes == [3, 3, 3]

    def test_collector_traces_operations(self, setup):
        _, pfs, view = setup
        collector = IOCollector(clock=lambda: pfs.sim.now)
        job = MPIJob(pfs, view, size=2, collector=collector)

        def program(rank):
            fh = rank.open("f")
            yield fh.read_at(0, 4 * KiB)
            yield fh.write_at(64 * KiB, 4 * KiB)
            fh.close()

        job.run(program)
        trace = collector.trace()
        assert len(trace) == 4
        assert {r.op for r in trace} == {"read", "write"}

    def test_collection_can_be_disabled_per_file(self, setup):
        _, pfs, view = setup
        collector = IOCollector()
        job = MPIJob(pfs, view, size=1, collector=collector)

        def program(rank):
            fh = rank.open("f", collect=False)
            yield fh.read_at(0, 4 * KiB)

        job.run(program)
        assert len(collector) == 0

    def test_closed_file_rejects_io(self, setup):
        _, pfs, view = setup
        job = MPIJob(pfs, view, size=1)
        errors = []

        def program(rank):
            fh = rank.open("f")
            fh.close()
            try:
                fh.read_at(0, 4 * KiB)
            except ValueError as exc:
                errors.append(exc)
            return
            yield  # pragma: no cover

        job.run(program)
        assert len(errors) == 1

    def test_invalid_job_size(self, setup):
        _, pfs, view = setup
        with pytest.raises(ValueError):
            MPIJob(pfs, view, size=0)

    def test_synchronous_io_serializes_per_rank(self, setup):
        _, pfs, view = setup
        job = MPIJob(pfs, view, size=1)
        times = []

        def program(rank):
            fh = rank.open("f")
            yield fh.write_at(0, 64 * KiB)
            times.append(rank.now)
            yield fh.write_at(10 * 64 * KiB, 64 * KiB)
            times.append(rank.now)

        job.run(program)
        assert times[1] > times[0] > 0

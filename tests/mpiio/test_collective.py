"""Tests for collective MPI-IO operations (read_at_all/write_at_all)."""

import pytest

from repro.cluster import ClusterSpec
from repro.layouts import FixedStripeLayout
from repro.mpiio import MPIJob
from repro.pfs import HybridPFS
from repro.schemes.base import LayoutView
from repro.tracing import IOCollector
from repro.units import KiB


@pytest.fixture
def setup():
    spec = ClusterSpec(num_hservers=2, num_sservers=2)
    pfs = HybridPFS(spec)
    view = LayoutView(
        {}, default=FixedStripeLayout(spec.server_ids, 64 * KiB, obj="f")
    )
    return spec, pfs, view


class TestCollectiveIO:
    def test_all_ranks_resume_together(self, setup):
        """The implicit barrier: every rank resumes at the same simulated
        time, even though their portions differ wildly in size."""
        _, pfs, view = setup
        job = MPIJob(pfs, view, size=4)
        resume_times = {}

        def program(rank):
            fh = rank.open("f")
            # rank 0 writes 1 MiB, the rest 4 KiB: very uneven portions
            size = 1024 * KiB if rank.rank == 0 else 4 * KiB
            yield fh.write_at_all(rank.rank * 1024 * KiB, size)
            resume_times[rank.rank] = rank.now

        job.run(program)
        assert len(set(resume_times.values())) == 1

    def test_collective_waits_for_stragglers_to_arrive(self, setup):
        """The operation is not issued until the last rank arrives."""
        _, pfs, view = setup
        job = MPIJob(pfs, view, size=2)
        resume_times = {}

        def program(rank):
            fh = rank.open("f")
            if rank.rank == 1:
                yield 5.0  # compute phase delays this rank's arrival
            yield fh.write_at_all(rank.rank * 64 * KiB, 4 * KiB)
            resume_times[rank.rank] = rank.now

        job.run(program)
        # nobody can finish before the straggler arrived at t=5
        assert min(resume_times.values()) > 5.0
        assert len(set(resume_times.values())) == 1

    def test_successive_collectives_pair_up_by_sequence(self, setup):
        _, pfs, view = setup
        job = MPIJob(pfs, view, size=2)
        log = []

        def program(rank):
            fh = rank.open("f")
            for step in range(3):
                yield fh.write_at_all((rank.rank + 2 * step) * 64 * KiB, 4 * KiB)
                log.append((step, rank.rank, rank.now))

        job.run(program)
        by_step = {}
        for step, _rank, t in log:
            by_step.setdefault(step, set()).add(t)
        # each step's participants share one completion time, and the
        # steps strictly advance
        assert all(len(times) == 1 for times in by_step.values())
        t0, t1, t2 = (by_step[i].pop() for i in range(3))
        assert t0 < t1 < t2

    def test_collective_recorded_by_collector(self, setup):
        _, pfs, view = setup
        collector = IOCollector(clock=lambda: pfs.sim.now)
        job = MPIJob(pfs, view, size=2, collector=collector)

        def program(rank):
            fh = rank.open("f")
            yield fh.read_at_all(rank.rank * 64 * KiB, 8 * KiB)

        job.run(program)
        trace = collector.trace()
        assert len(trace) == 2
        assert {r.rank for r in trace} == {0, 1}

    def test_collective_on_closed_file_rejected(self, setup):
        _, pfs, view = setup
        job = MPIJob(pfs, view, size=1)
        errors = []

        def program(rank):
            fh = rank.open("f")
            fh.close()
            try:
                fh.write_at_all(0, 4 * KiB)
            except ValueError as exc:
                errors.append(exc)
            return
            yield  # pragma: no cover

        job.run(program)
        assert len(errors) == 1

    def test_collective_slower_portions_dominate(self, setup):
        """Collective makespan equals the independent-writes makespan
        for the same portions (same I/O, plus the barrier)."""
        _, pfs, view = setup
        job = MPIJob(pfs, view, size=4)

        def collective_program(rank):
            fh = rank.open("f")
            yield fh.write_at_all(rank.rank * 256 * KiB, 256 * KiB)

        makespan_collective = job.run(collective_program)

        spec2 = ClusterSpec(num_hservers=2, num_sservers=2)
        pfs2 = HybridPFS(spec2)
        job2 = MPIJob(pfs2, view, size=4)

        def independent_program(rank):
            fh = rank.open("f")
            yield fh.write_at(rank.rank * 256 * KiB, 256 * KiB)

        makespan_independent = job2.run(independent_program)
        assert makespan_collective == pytest.approx(makespan_independent)

"""Tests for region-composed layouts."""

import pytest

from repro.exceptions import LayoutError
from repro.layouts import (
    FixedStripeLayout,
    Region,
    RegionLayout,
    VariedStripeLayout,
    check_tiling,
)


def simple_regions():
    return [
        Region(0, 100, FixedStripeLayout([0, 1], stripe=10, obj="f/r0")),
        Region(100, 250, FixedStripeLayout([2, 3], stripe=25, obj="f/r1")),
        Region(250, 400, VariedStripeLayout([0, 1], [2, 3], h=5, s=20, obj="f/r2")),
    ]


class TestRegionLayout:
    def test_region_lookup(self):
        layout = RegionLayout(simple_regions())
        idx, region = layout.region_at(0)
        assert idx == 0
        idx, region = layout.region_at(99)
        assert idx == 0
        idx, region = layout.region_at(100)
        assert idx == 1
        idx, region = layout.region_at(399)
        assert idx == 2

    def test_offsets_are_region_local(self):
        layout = RegionLayout(simple_regions())
        frags = layout.map_extent(100, 25)
        assert len(frags) == 1
        assert frags[0].server == 2
        assert frags[0].offset == 0  # local to region 1
        assert frags[0].obj == "f/r1"
        assert frags[0].logical_offset == 100  # global logical space

    def test_extent_spanning_regions(self):
        layout = RegionLayout(simple_regions())
        frags = layout.map_extent(90, 30)
        check_tiling(90, 30, frags)
        objs = {f.obj for f in frags}
        assert objs == {"f/r0", "f/r1"}

    def test_tiling_across_everything(self):
        layout = RegionLayout(simple_regions())
        check_tiling(0, 400, layout.map_extent(0, 400))

    def test_growth_beyond_last_region(self):
        layout = RegionLayout(simple_regions())
        frags = layout.map_extent(395, 20)  # extends past 400
        check_tiling(395, 20, frags)
        assert all(f.obj == "f/r2" for f in frags)

    def test_servers_union(self):
        layout = RegionLayout(simple_regions())
        assert set(layout.servers) == {0, 1, 2, 3}

    def test_span(self):
        assert RegionLayout(simple_regions()).span == 400

    def test_zero_length(self):
        assert RegionLayout(simple_regions()).map_extent(10, 0) == []


class TestValidation:
    def test_empty_regions_rejected(self):
        with pytest.raises(LayoutError):
            RegionLayout([])

    def test_gap_between_regions_rejected(self):
        with pytest.raises(LayoutError):
            RegionLayout(
                [
                    Region(0, 100, FixedStripeLayout([0], 10)),
                    Region(150, 200, FixedStripeLayout([0], 10)),
                ]
            )

    def test_regions_must_start_at_zero(self):
        with pytest.raises(LayoutError):
            RegionLayout([Region(10, 100, FixedStripeLayout([0], 10))])

    def test_degenerate_region_rejected(self):
        with pytest.raises(LayoutError):
            Region(100, 100, FixedStripeLayout([0], 10))

    def test_negative_offset_rejected(self):
        layout = RegionLayout(simple_regions())
        with pytest.raises(LayoutError):
            layout.region_at(-1)
